//! Integration tests for the structured tracing layer: tracing off is
//! bit-identical to the seed behavior, and tracing on reconciles — span
//! for span — with `DriverStats` and the Figure 4 sample streams.

use jmake::core::{run_evaluation, DriverOptions, EvaluationRun};
use jmake::synth::WorkloadProfile;
use jmake::trace::{jsonl, Stage, Tracer};
use jmake::vcs::LogOptions;

fn run_with(workers: usize, tracer: Tracer) -> EvaluationRun {
    let profile = WorkloadProfile::tiny();
    let workload = jmake::synth::generate(&profile);
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .expect("tags exist");
    run_evaluation(
        &workload.repo,
        &commits,
        &DriverOptions {
            workers,
            tracer,
            ..DriverOptions::default()
        },
    )
}

/// The no-op tracer leaves every report and every Fig. 4 sample stream
/// bit-identical: tracing can never perturb the science.
#[test]
fn disabled_tracer_is_bit_identical_to_traced_run() {
    for workers in [1, 8] {
        let off = run_with(workers, Tracer::disabled());
        let on_tracer = Tracer::in_memory();
        let on = run_with(workers, on_tracer.clone());
        assert_eq!(off.results, on.results, "reports differ (workers={workers})");
        assert_eq!(
            off.samples, on.samples,
            "Fig. 4 samples differ (workers={workers})"
        );
        assert!(on_tracer.balance().is_balanced());
    }
}

/// Every span opened during a run is recorded exactly once, and the
/// span-derived totals reconcile with `DriverStats` and the virtual-clock
/// sample streams — for both a serial and a parallel driver.
#[test]
fn span_totals_reconcile_with_driver_stats_across_worker_counts() {
    for workers in [1, 8] {
        let tracer = Tracer::in_memory();
        let run = run_with(workers, tracer.clone());
        let balance = tracer.balance();
        assert!(
            balance.is_balanced(),
            "unbalanced spans (workers={workers}): {} opened, {} closed",
            balance.opened,
            balance.closed
        );
        let metrics = tracer.metrics();

        // Host wall-clock: the driver feeds the same measurement to the
        // stats counters and the spans, so totals match to the µs.
        assert_eq!(
            metrics.host_total_us(Stage::Checkout),
            run.stats.checkout_wall_us,
            "checkout host µs (workers={workers})"
        );
        assert_eq!(
            metrics.host_total_us(Stage::Show),
            run.stats.show_wall_us,
            "show host µs (workers={workers})"
        );
        assert_eq!(
            metrics.host_total_us(Stage::Check),
            run.stats.check_wall_us,
            "check host µs (workers={workers})"
        );

        // Virtual time: the umbrella check spans carry each report's
        // elapsed virtual time; the nested build spans carry exactly the
        // per-invocation samples behind Figures 4a/4b/4c.
        let reports_virtual: u64 = run
            .results
            .iter()
            .filter_map(|r| r.report())
            .map(|rep| rep.elapsed_us)
            .sum();
        assert_eq!(
            metrics.virtual_total_us(Stage::Check),
            reports_virtual,
            "check virtual µs (workers={workers})"
        );
        assert_eq!(
            metrics.virtual_total_us(Stage::ConfigSolve),
            run.samples.config.iter().sum::<u64>(),
            "config_solve virtual µs (workers={workers})"
        );
        assert_eq!(
            metrics.virtual_total_us(Stage::BuildI),
            run.samples.i_gen.iter().sum::<u64>(),
            "build_i virtual µs (workers={workers})"
        );
        assert_eq!(
            metrics.virtual_total_us(Stage::BuildO),
            run.samples.o_gen.iter().sum::<u64>(),
            "build_o virtual µs (workers={workers})"
        );
        // The build stages nest inside the check umbrella, so their
        // virtual sum can never exceed it.
        assert!(
            metrics.virtual_total_us(Stage::ConfigSolve)
                + metrics.virtual_total_us(Stage::BuildI)
                + metrics.virtual_total_us(Stage::BuildO)
                <= reports_virtual,
            "nested stage virtual time exceeds check umbrella (workers={workers})"
        );

        // Span counts line up with the sample streams too: one
        // config_solve span per solve (hit or miss), one build span per
        // invocation.
        assert_eq!(
            metrics.stage(Stage::BuildI).map_or(0, |s| s.count()),
            run.samples.i_gen.len() as u64,
            "build_i span count (workers={workers})"
        );
        assert_eq!(
            metrics.stage(Stage::BuildO).map_or(0, |s| s.count()),
            run.samples.o_gen.len() as u64,
            "build_o span count (workers={workers})"
        );

        // Shared-cache accounting: hit/miss outcomes on config_solve
        // spans are the same counters `CacheStats` reports.
        let (hits, misses) = metrics.cache_hits_misses();
        assert_eq!(hits, run.stats.cache.hits, "cache hits (workers={workers})");
        assert_eq!(
            misses, run.stats.cache.misses,
            "cache misses (workers={workers})"
        );
    }
}

/// The JSONL sink emits one parseable line per span, labelled with a
/// documented stage name and the owning patch id.
#[test]
fn jsonl_sink_round_trips_every_span() {
    let tracer = Tracer::in_memory();
    let run = run_with(2, tracer.clone());
    let lines = tracer.jsonl_lines();
    let balance = tracer.balance();
    let text = lines.join("\n");
    let parsed = jsonl::parse_all(&text).expect("every emitted line parses");
    assert_eq!(parsed.len(), lines.len());
    // Counter lines (scheduler queue pressure) ride along; every other
    // line is a span, and spans reconcile with the open/close balance.
    let mut records = Vec::new();
    let mut counters = Vec::new();
    for line in parsed {
        match line {
            jsonl::TraceLine::Span(r) => records.push(r),
            jsonl::TraceLine::Counter { name, value } => counters.push((name, value)),
        }
    }
    assert_eq!(records.len() as u64, balance.closed);
    for (name, _) in &counters {
        assert!(name.starts_with("sched_"), "unexpected counter {name}");
    }
    let commits: std::collections::BTreeSet<String> = run
        .results
        .iter()
        .map(|r| r.commit.to_string())
        .collect();
    for r in &records {
        let stage = r.stage.expect("stage present");
        assert!(
            Stage::ALL.contains(&stage),
            "undocumented stage {stage:?}"
        );
        let patch = r.patch.as_deref().expect("span carries its patch id");
        assert!(commits.contains(patch), "unknown patch id {patch}");
        if stage == Stage::BuildO {
            assert!(r.file.is_some(), "build_o span without file: {r:?}");
        }
    }
}
