//! Cross-crate integration tests: the full JMake stack over the synthetic
//! workload, end to end.

use jmake::core::{
    run_evaluation, DriverOptions, FileStatus, PatchOutcome, SliceStats, UncoveredReason,
};
use jmake::synth::{PathologyKind, WorkloadProfile};
use jmake::vcs::{CommitId, LogOptions};
use std::collections::BTreeSet;

fn tiny_run() -> (jmake::synth::SynthOutput, jmake::core::EvaluationRun) {
    let profile = WorkloadProfile::tiny();
    let workload = jmake::synth::generate(&profile);
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .expect("tags exist");
    let run = run_evaluation(
        &workload.repo,
        &commits,
        &DriverOptions {
            workers: 2,
            ..DriverOptions::default()
        },
    );
    (workload, run)
}

#[test]
fn evaluation_processes_every_selected_commit() {
    let (workload, run) = tiny_run();
    let selected = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .unwrap();
    assert_eq!(run.results.len(), selected.len());
    // Results come back in commit order despite parallel workers.
    let ids: Vec<_> = run.results.iter().map(|r| r.commit).collect();
    assert_eq!(ids, selected);
}

#[test]
fn majority_of_patches_are_certified() {
    let (_, run) = tiny_run();
    let stats = SliceStats::collect(&run.results, &|_| true);
    assert!(stats.patches > 20, "too few patches: {}", stats.patches);
    assert!(
        stats.success_rate() > 0.7,
        "success rate collapsed: {:.2}",
        stats.success_rate()
    );
    assert!(
        stats.success_rate() < 1.0,
        "pathologies disappeared entirely"
    );
}

#[test]
fn evaluation_is_deterministic_across_runs() {
    let (_, run_a) = tiny_run();
    let (_, run_b) = tiny_run();
    assert_eq!(run_a.results.len(), run_b.results.len());
    for (a, b) in run_a.results.iter().zip(&run_b.results) {
        assert_eq!(a.commit, b.commit);
        let (ra, rb) = (a.report().unwrap(), b.report().unwrap());
        assert_eq!(ra.is_success(), rb.is_success());
        assert_eq!(ra.elapsed_us, rb.elapsed_us);
        assert_eq!(ra.files.len(), rb.files.len());
    }
}

#[test]
fn reports_are_identical_across_worker_counts_and_cache_modes() {
    let profile = WorkloadProfile::tiny();
    let workload = jmake::synth::generate(&profile);
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .expect("tags exist");
    let run_with = |workers: usize, shared_cache: bool| {
        run_evaluation(
            &workload.repo,
            &commits,
            &DriverOptions {
                workers,
                shared_cache,
                ..DriverOptions::default()
            },
        )
    };
    let baseline = run_with(1, false);
    for (workers, shared_cache) in [(1, true), (8, false), (8, true)] {
        let other = run_with(workers, shared_cache);
        assert_eq!(
            baseline.results, other.results,
            "reports diverged at workers={workers} shared_cache={shared_cache}"
        );
    }
    // The cache actually participates: a multi-patch run must hit it.
    let cached = run_with(8, true);
    assert!(cached.stats.cache.hits > 0, "shared cache never hit");
    assert_eq!(run_with(8, false).stats.cache, Default::default());
}

#[test]
fn unresolvable_commits_yield_explicit_failures_not_omissions() {
    let profile = WorkloadProfile::tiny();
    let workload = jmake::synth::generate(&profile);
    let mut commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .expect("tags exist");
    let dangling = CommitId::from_raw(u32::MAX);
    commits.insert(0, dangling);
    commits.push(dangling);
    let run = run_evaluation(&workload.repo, &commits, &DriverOptions::default());
    // One outcome per input, in order — the bad commits don't vanish.
    assert_eq!(run.results.len(), commits.len());
    for idx in [0, commits.len() - 1] {
        assert_eq!(run.results[idx].commit, dangling);
        assert!(
            matches!(run.results[idx].outcome, PatchOutcome::CheckoutFailed(_)),
            "expected CheckoutFailed, got {:?}",
            run.results[idx].outcome
        );
    }
    assert_eq!(run.stats.checkout_failures, 2);
    assert_eq!(run.stats.checked, commits.len() - 2);
    // SliceStats quietly skips report-less results.
    let stats = SliceStats::collect(&run.results, &|_| true);
    assert!(stats.patches <= commits.len() - 2);
}

#[test]
fn planted_pathologies_are_diagnosed_with_matching_reasons() {
    let profile = WorkloadProfile {
        commits: 400,
        ..WorkloadProfile::tiny()
    };
    let workload = jmake::synth::generate(&profile);
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .unwrap();
    let run = run_evaluation(&workload.repo, &commits, &DriverOptions::default());
    let by_commit: std::collections::BTreeMap<_, _> = run
        .results
        .iter()
        .map(|r| (r.commit, r.report().expect("patch checked")))
        .collect();

    let expectation = |kind: PathologyKind| -> Option<UncoveredReason> {
        match kind {
            PathologyKind::UnsetConfig => Some(UncoveredReason::IfdefNotSetByAllyesconfig),
            PathologyKind::NeverConfig => Some(UncoveredReason::IfdefNeverSetInKernel),
            PathologyKind::Module => Some(UncoveredReason::IfdefModule),
            PathologyKind::IfndefOrElse => Some(UncoveredReason::IfndefOrElse),
            PathologyKind::BothBranches => Some(UncoveredReason::IfdefAndElse),
            PathologyKind::IfZero => Some(UncoveredReason::IfZero),
            PathologyKind::UnusedMacro => Some(UncoveredReason::UnusedMacro),
            _ => None,
        }
    };

    let mut checked = 0;
    for planted in &workload.planted {
        let Some(expected) = expectation(planted.kind) else {
            continue;
        };
        let Some(report) = by_commit.get(&planted.commit) else {
            continue; // filtered from the log (e.g. whitespace-only)
        };
        let file = report
            .files
            .iter()
            .find(|f| f.path == planted.path)
            .unwrap_or_else(|| panic!("planted file {} missing from report", planted.path));
        let reasons: BTreeSet<UncoveredReason> = file.uncovered.iter().map(|u| u.reason).collect();
        assert!(
            reasons.contains(&expected),
            "{:?} at {}: expected {:?}, got {:?}",
            planted.kind,
            planted.path,
            expected,
            reasons
        );
        checked += 1;
    }
    assert!(checked >= 5, "only {checked} planted pathologies verified");
}

#[test]
fn bootstrap_patches_are_flagged_not_crashed() {
    let profile = WorkloadProfile {
        commits: 400,
        ..WorkloadProfile::tiny()
    };
    let workload = jmake::synth::generate(&profile);
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .unwrap();
    let run = run_evaluation(&workload.repo, &commits, &DriverOptions::default());
    let by_commit: std::collections::BTreeMap<_, _> = run
        .results
        .iter()
        .map(|r| (r.commit, r.report().expect("patch checked")))
        .collect();
    let mut seen = 0;
    for planted in workload
        .planted
        .iter()
        .filter(|p| p.kind == PathologyKind::Bootstrap)
    {
        if let Some(report) = by_commit.get(&planted.commit) {
            let file = report.files.iter().find(|f| f.path == planted.path);
            if let Some(file) = file {
                assert_eq!(file.status, FileStatus::Bootstrap, "{}", planted.path);
                seen += 1;
            }
        }
    }
    assert!(seen >= 1, "no bootstrap patch exercised");
}

#[test]
fn heavy_file_patches_dominate_the_time_distribution() {
    let profile = WorkloadProfile {
        commits: 600,
        p_heavy: 0.01,
        ..WorkloadProfile::tiny()
    };
    let workload = jmake::synth::generate(&profile);
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .unwrap();
    let run = run_evaluation(&workload.repo, &commits, &DriverOptions::default());
    let heavy_commits: BTreeSet<_> = workload
        .planted
        .iter()
        .filter(|p| p.kind == PathologyKind::Heavy)
        .map(|p| p.commit)
        .collect();
    assert!(!heavy_commits.is_empty(), "no heavy patches generated");
    let mut heavy_max = 0u64;
    let mut normal_max = 0u64;
    for r in &run.results {
        let elapsed = r.report().expect("patch checked").elapsed_us;
        if heavy_commits.contains(&r.commit) {
            heavy_max = heavy_max.max(elapsed);
        } else {
            normal_max = normal_max.max(elapsed);
        }
    }
    assert!(
        heavy_max > 5 * normal_max,
        "heavy {heavy_max}us vs normal {normal_max}us"
    );
}

#[test]
fn samples_cover_all_three_figure4_buckets() {
    let (_, run) = tiny_run();
    assert!(!run.samples.config.is_empty());
    assert!(!run.samples.i_gen.is_empty());
    assert!(!run.samples.o_gen.is_empty());
    // Figure 4a: every configuration creation at 5 s or less.
    let worst_config = run.samples.config.iter().max().copied().unwrap_or(0);
    assert!(worst_config <= 5_000_000, "{worst_config}");
}

#[test]
fn janitor_slice_outperforms_overall_slice() {
    let profile = WorkloadProfile {
        commits: 800,
        ..WorkloadProfile::tiny()
    };
    let workload = jmake::synth::generate(&profile);
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .unwrap();
    let run = run_evaluation(&workload.repo, &commits, &DriverOptions::default());
    let names: BTreeSet<&str> = workload.janitor_names.iter().map(String::as_str).collect();
    let all = SliceStats::collect(&run.results, &|_| true);
    let janitor = SliceStats::collect(&run.results, &|a| names.contains(a));
    assert!(janitor.patches >= 10);
    // The paper's observation: janitor patches certify at least as often.
    assert!(
        janitor.success_rate() + 0.05 >= all.success_rate(),
        "janitor {:.2} vs all {:.2}",
        janitor.success_rate(),
        all.success_rate()
    );
}
