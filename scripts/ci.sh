#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   ./scripts/ci.sh          # build + tests + clippy
#
# Runs entirely offline — the workspace's only non-std dependencies are
# the vendored path crates under vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings (workspace)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings: broken intra-doc links fail)"
# The vendored offline stand-ins (rand/proptest/criterion) are excluded:
# they mimic external APIs and are not part of this repo's doc surface.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q \
  --exclude rand --exclude proptest --exclude criterion

echo "==> object-cache identity run (cached vs uncached reports)"
CACHED_OUT="$(mktemp /tmp/jmake-eval-cached.XXXXXX.out)"
UNCACHED_OUT="$(mktemp /tmp/jmake-eval-uncached.XXXXXX.out)"
trap 'rm -f "$CACHED_OUT" "$UNCACHED_OUT"' EXIT
# Same window with every host-side acceleration on (object cache +
# work stealing, the defaults) and with all of them off: every table,
# figure, and summary line must be byte-identical — the caches may only
# change wall-clock time.
./target/release/jmake-eval --commits 120 --workers 8 all > "$CACHED_OUT"
./target/release/jmake-eval --commits 120 --workers 1 \
  --no-object-cache --no-work-stealing --no-shared-cache all > "$UNCACHED_OUT"
diff -u "$UNCACHED_OUT" "$CACHED_OUT"

echo "==> cross-check smoke run (static reachability vs mutation coverage)"
CC_A="$(mktemp /tmp/jmake-crosscheck-a.XXXXXX.json)"
CC_B="$(mktemp /tmp/jmake-crosscheck-b.XXXXXX.json)"
trap 'rm -f "$CC_A" "$CC_B" "$CACHED_OUT" "$UNCACHED_OUT"' EXIT
# The static analyzer and the mutation pipeline must never provably
# disagree (jmake-eval exits non-zero on any discrepancy), and the
# discrepancy report must be byte-identical across worker counts and
# cache modes — it contains no wall-clock and no nondeterminism.
./target/release/jmake-eval --commits 120 --workers 8 --cross-check > "$CC_A"
./target/release/jmake-eval --commits 120 --workers 1 \
  --no-object-cache --no-work-stealing --no-shared-cache --cross-check > "$CC_B"
diff -u "$CC_A" "$CC_B"
grep -q '"clean": true' "$CC_A"

echo "==> trace smoke run (jmake-eval --trace + trace-check, object cache on)"
TRACE_FILE="$(mktemp /tmp/jmake-trace.XXXXXX.jsonl)"
trap 'rm -f "$TRACE_FILE" "$CC_A" "$CC_B" "$CACHED_OUT" "$UNCACHED_OUT"' EXIT
./target/release/jmake-eval --commits 120 --trace "$TRACE_FILE" --metrics summary > /dev/null
# The file must parse line-by-line against the documented schema, and
# every stage name must be one of the documented eight.
./target/release/jmake-eval trace-check "$TRACE_FILE" | tee /tmp/jmake-trace-check.out
for stage in $(awk 'NR > 1 { print $1 }' /tmp/jmake-trace-check.out); do
  case "$stage" in
    checkout|show|check|mutation_plan|config_solve|build_i|build_o|classify|retry|timeout|quarantine) ;;
    *) echo "unexpected stage name in trace: $stage" >&2; exit 1 ;;
  esac
done

echo "==> fault-injection smoke run (--faults transient:0.2 --fault-seed 7)"
FAULT_ERR="$(mktemp /tmp/jmake-faults.XXXXXX.err)"
trap 'rm -f "$FAULT_ERR" "$TRACE_FILE" "$CC_A" "$CC_B" "$CACHED_OUT" "$UNCACHED_OUT"' EXIT
# Every commit must produce exactly one outcome even under injected
# faults, and at a 20% transient rate bounded retry must recover every
# single one — no patch may go unreported or degrade.
./target/release/jmake-eval --commits 120 --workers 8 \
  --faults transient:0.2 --fault-seed 7 --stats summary > /dev/null 2> "$FAULT_ERR"
grep -q "fault recovery: injected" "$FAULT_ERR"
if grep -q "did not produce a report" "$FAULT_ERR"; then
  echo "fault smoke run left commits without an outcome:" >&2
  cat "$FAULT_ERR" >&2
  exit 1
fi

echo "==> tier-1 gate passed"
