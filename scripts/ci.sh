#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   ./scripts/ci.sh          # build + tests + clippy
#
# Runs entirely offline — the workspace's only non-std dependencies are
# the vendored path crates under vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings (workspace)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 gate passed"
