#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   ./scripts/ci.sh          # build + tests + clippy
#
# Runs entirely offline — the workspace's only non-std dependencies are
# the vendored path crates under vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q (workspace)"
cargo test --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings (workspace)"
cargo clippy --workspace --all-targets -- -D warnings -D clippy::redundant_clone \
  -D clippy::needless_pass_by_value -D clippy::manual_let_else

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings: broken intra-doc links fail)"
# The vendored offline stand-ins (rand/proptest/criterion) are excluded:
# they mimic external APIs and are not part of this repo's doc surface.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q \
  --exclude rand --exclude proptest --exclude criterion

echo "==> object-cache identity run (cached vs uncached reports)"
CACHED_OUT="$(mktemp /tmp/jmake-eval-cached.XXXXXX.out)"
UNCACHED_OUT="$(mktemp /tmp/jmake-eval-uncached.XXXXXX.out)"
trap 'rm -f "$CACHED_OUT" "$UNCACHED_OUT"' EXIT
# Same window with every host-side acceleration on (object cache +
# preprocess memo + work stealing, the defaults) and with all of them
# off: every table, figure, and summary line must be byte-identical —
# the caches may only change wall-clock time.
./target/release/jmake-eval --commits 120 --workers 8 all > "$CACHED_OUT"
./target/release/jmake-eval --commits 120 --workers 1 \
  --no-object-cache --no-work-stealing --no-shared-cache \
  --no-preproc-cache all > "$UNCACHED_OUT"
diff -u "$UNCACHED_OUT" "$CACHED_OUT"

echo "==> cross-check smoke run (static reachability vs mutation coverage)"
CC_A="$(mktemp /tmp/jmake-crosscheck-a.XXXXXX.json)"
CC_B="$(mktemp /tmp/jmake-crosscheck-b.XXXXXX.json)"
trap 'rm -f "$CC_A" "$CC_B" "$CACHED_OUT" "$UNCACHED_OUT"' EXIT
# The static analyzer and the mutation pipeline must never provably
# disagree (jmake-eval exits non-zero on any discrepancy), and the
# discrepancy report must be byte-identical across worker counts and
# cache modes — it contains no wall-clock and no nondeterminism.
./target/release/jmake-eval --commits 120 --workers 8 --cross-check > "$CC_A"
./target/release/jmake-eval --commits 120 --workers 1 \
  --no-object-cache --no-work-stealing --no-shared-cache --cross-check > "$CC_B"
diff -u "$CC_A" "$CC_B"
grep -q '"clean": true' "$CC_A"

echo "==> remediation smoke run (--fix: verified deltas, zero disagreements)"
FIX_A="$(mktemp /tmp/jmake-fix-a.XXXXXX.json)"
FIX_B="$(mktemp /tmp/jmake-fix-b.XXXXXX.json)"
trap 'rm -f "$FIX_A" "$FIX_B" "$CC_A" "$CC_B" "$CACHED_OUT" "$UNCACHED_OUT"' EXIT
# Every missed line must be root-caused without contradicting the dynamic
# classifier, and every emitted config delta must survive its single-trial
# verification re-run (jmake-eval exits non-zero on either failure). The
# report must be byte-identical across worker counts and cache modes.
./target/release/jmake-eval --commits 120 --workers 8 --fix > "$FIX_A"
./target/release/jmake-eval --commits 120 --workers 1 \
  --no-object-cache --no-work-stealing --no-shared-cache \
  --no-preproc-cache --fix > "$FIX_B"
diff -u "$FIX_A" "$FIX_B"
grep -q '"clean": true' "$FIX_A"
grep -q '"verification_failures": 0' "$FIX_A"
# With --fix off the reports must carry no trace of the remediator — the
# identity runs above double as the fix-off byte-baseline.
if grep -q 'FIX:' "$CACHED_OUT"; then
  echo "fix-off report mentions remediations:" >&2
  exit 1
fi

echo "==> trace smoke run (jmake-eval --trace + trace-check, object cache on)"
TRACE_FILE="$(mktemp /tmp/jmake-trace.XXXXXX.jsonl)"
trap 'rm -f "$TRACE_FILE" "$FIX_A" "$FIX_B" "$CC_A" "$CC_B" "$CACHED_OUT" "$UNCACHED_OUT"' EXIT
./target/release/jmake-eval --commits 120 --trace "$TRACE_FILE" --metrics summary > /dev/null
# The file must parse line-by-line against the documented schema, and
# every stage name must be one of the documented thirteen.
./target/release/jmake-eval trace-check "$TRACE_FILE" | tee /tmp/jmake-trace-check.out
for stage in $(awk 'NR > 1 { print $1 }' /tmp/jmake-trace-check.out); do
  case "$stage" in
    checkout|show|check|mutation_plan|config_solve|build_i|build_o|classify|remediate|retry|timeout|quarantine|portfolio) ;;
    *) echo "unexpected stage name in trace: $stage" >&2; exit 1 ;;
  esac
done

echo "==> persistent-tier identity run (cold vs warm --cache-dir reports)"
CACHE_DIR="$(mktemp -d /tmp/jmake-cache-dir.XXXXXX)"
COLD_OUT="$(mktemp /tmp/jmake-eval-cold.XXXXXX.out)"
WARM_OUT="$(mktemp /tmp/jmake-eval-warm.XXXXXX.out)"
WARM_ERR="$(mktemp /tmp/jmake-eval-warm.XXXXXX.err)"
trap 'rm -rf "$CACHE_DIR"; rm -f "$COLD_OUT" "$WARM_OUT" "$WARM_ERR" "$TRACE_FILE" "$FIX_A" "$FIX_B" "$CC_A" "$CC_B" "$CACHED_OUT" "$UNCACHED_OUT"' EXIT
# A cold run populates the disk tier; a warm run must load it, report a
# non-zero object-cache hit count, and print byte-identical tables —
# the tier may only move host-side time, never simulated results.
./target/release/jmake-eval --commits 120 --workers 8 \
  --cache-dir "$CACHE_DIR" all > "$COLD_OUT"
./target/release/jmake-eval --commits 120 --workers 8 \
  --cache-dir "$CACHE_DIR" --stats all > "$WARM_OUT" 2> "$WARM_ERR"
diff -u "$COLD_OUT" "$WARM_OUT"
grep -q "disk cache: loaded" "$WARM_ERR"
grep -q "object cache" "$WARM_ERR"
if grep -Eq "object cache +0\.0% hit rate" "$WARM_ERR"; then
  echo "warm --cache-dir run never hit the loaded tier:" >&2
  cat "$WARM_ERR" >&2
  exit 1
fi

echo "==> jmake-serve smoke run (daemon report vs local jmake-eval, then drain)"
SERVE_SOCK="$(mktemp -u /tmp/jmake-serve.XXXXXX.sock)"
SERVED_OUT="$(mktemp /tmp/jmake-serve.XXXXXX.out)"
trap 'rm -rf "$CACHE_DIR"; rm -f "$SERVE_SOCK" "$SERVED_OUT" "$COLD_OUT" "$WARM_OUT" "$WARM_ERR" "$TRACE_FILE" "$FIX_A" "$FIX_B" "$CC_A" "$CC_B" "$CACHED_OUT" "$UNCACHED_OUT"' EXIT
./target/release/jmake-serve --socket "$SERVE_SOCK" --parallel 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
# The served report must be byte-identical to the local run above.
./target/release/jmake-serve --client "$SERVE_SOCK" \
  --commits 120 --workers 8 all > "$SERVED_OUT"
diff -u "$COLD_OUT" "$SERVED_OUT"
./target/release/jmake-serve --client "$SERVE_SOCK" --shutdown
wait "$SERVE_PID"

echo "==> fault-injection smoke run (--faults transient:0.2 --fault-seed 7)"
FAULT_ERR="$(mktemp /tmp/jmake-faults.XXXXXX.err)"
trap 'rm -rf "$CACHE_DIR"; rm -f "$FAULT_ERR" "$SERVE_SOCK" "$SERVED_OUT" "$COLD_OUT" "$WARM_OUT" "$WARM_ERR" "$TRACE_FILE" "$FIX_A" "$FIX_B" "$CC_A" "$CC_B" "$CACHED_OUT" "$UNCACHED_OUT"' EXIT
# Every commit must produce exactly one outcome even under injected
# faults, and at a 20% transient rate bounded retry must recover every
# single one — no patch may go unreported or degrade.
./target/release/jmake-eval --commits 120 --workers 8 \
  --faults transient:0.2 --fault-seed 7 --stats summary > /dev/null 2> "$FAULT_ERR"
grep -q "fault recovery: injected" "$FAULT_ERR"
if grep -q "did not produce a report" "$FAULT_ERR"; then
  echo "fault smoke run left commits without an outcome:" >&2
  cat "$FAULT_ERR" >&2
  exit 1
fi

echo "==> portfolio smoke run (--portfolio 4: coverage beyond allyes, byte-identity)"
PF_A="$(mktemp /tmp/jmake-portfolio-a.XXXXXX.json)"
PF_B="$(mktemp /tmp/jmake-portfolio-b.XXXXXX.json)"
trap 'rm -rf "$CACHE_DIR"; rm -f "$PF_A" "$PF_B" "$FAULT_ERR" "$SERVE_SOCK" "$SERVED_OUT" "$COLD_OUT" "$WARM_OUT" "$WARM_ERR" "$TRACE_FILE" "$FIX_A" "$FIX_B" "$CC_A" "$CC_B" "$CACHED_OUT" "$UNCACHED_OUT"' EXIT
# A K=4 seeded portfolio must strictly beat the allyes-only baseline
# (covered > allyes ⇔ covered_conditional > 0, and randconfig members
# must certify tokens allyes missed), and the report must be
# byte-identical across worker counts and cache modes — selection is a
# pure function of (tree, arch, K, seed).
./target/release/jmake-eval --commits 120 --workers 8 \
  --portfolio 4 --rand-seed 1 > "$PF_A"
./target/release/jmake-eval --commits 120 --workers 1 \
  --no-object-cache --no-work-stealing --no-shared-cache \
  --no-preproc-cache --portfolio 4 --rand-seed 1 > "$PF_B"
diff -u "$PF_A" "$PF_B"
extract_pf() { sed -n "s/.*\"$2\": \([0-9]*\).*/\1/p" "$1" | head -n 1; }
PF_COND="$(extract_pf "$PF_A" covered_conditional)"
PF_RAND="$(extract_pf "$PF_A" by_rand)"
if [ -z "$PF_COND" ] || [ "$PF_COND" -eq 0 ]; then
  echo "portfolio covered no conditional lines beyond allyes:" >&2
  cat "$PF_A" >&2
  exit 1
fi
if [ -z "$PF_RAND" ] || [ "$PF_RAND" -eq 0 ]; then
  echo "portfolio randconfig members certified no tokens:" >&2
  cat "$PF_A" >&2
  exit 1
fi
echo "    portfolio covers $PF_COND conditional line(s), $PF_RAND token(s) via randconfig"

echo "==> bench-regression gate (patches/s vs committed BENCH_5.json, -10% floor)"
BENCH_OUT="$(mktemp /tmp/jmake-bench.XXXXXX.json)"
trap 'rm -rf "$CACHE_DIR"; rm -f "$BENCH_OUT" "$PF_A" "$PF_B" "$FAULT_ERR" "$SERVE_SOCK" "$SERVED_OUT" "$COLD_OUT" "$WARM_OUT" "$WARM_ERR" "$TRACE_FILE" "$FIX_A" "$FIX_B" "$CC_A" "$CC_B" "$CACHED_OUT" "$UNCACHED_OUT"' EXIT
# Re-run the standard 1,200-commit sweep (same seed/workers as the
# committed baseline) and fail if throughput drops more than 10% below
# the BENCH_5.json this repo ships. Wall-clock varies by machine, so
# the gate is a floor, not an equality check; refresh the baseline with
# the jmake-eval invocation documented in EXPERIMENTS.md when a PR
# legitimately moves it.
./target/release/jmake-eval --commits 1200 --seed 319123704645 --workers 4 \
  --bench-json "$BENCH_OUT" summary > /dev/null
# The artifact must carry the documented schema and the portfolio
# summary block (with "ran": false on a portfolio-less sweep).
grep -q '"schema": 4' "$BENCH_OUT"
grep -q '"portfolio": { "ran": false' "$BENCH_OUT"
extract_pps() { sed -n 's/.*"patches_per_sec": \([0-9.]*\).*/\1/p' "$1"; }
BASELINE_PPS="$(extract_pps BENCH_5.json)"
CURRENT_PPS="$(extract_pps "$BENCH_OUT")"
if [ -z "$BASELINE_PPS" ] || [ -z "$CURRENT_PPS" ]; then
  echo "could not extract patches_per_sec (baseline='$BASELINE_PPS' current='$CURRENT_PPS')" >&2
  exit 1
fi
echo "    baseline $BASELINE_PPS patches/s, current $CURRENT_PPS patches/s"
# Integer math in awk: fail when current < 0.9 * baseline.
if ! awk -v cur="$CURRENT_PPS" -v base="$BASELINE_PPS" \
    'BEGIN { exit !(cur >= 0.9 * base) }'; then
  echo "bench regression: $CURRENT_PPS patches/s is >10% below the committed $BASELINE_PPS" >&2
  exit 1
fi

echo "==> tier-1 gate passed"
