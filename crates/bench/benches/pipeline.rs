//! Criterion micro/throughput benchmarks for every pipeline stage, plus
//! the ablation benches DESIGN.md §5 calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jmake_core::{mutate, mutate_naive, run_evaluation, DriverOptions, JMake, Options};
use jmake_diff::{diff_to_patch, DiffOptions};
use jmake_kbuild::{
    BuildEngine, ConfigCache, ConfigKey, ConfigKind, ObjectCache, PathId, PreprocCache, TokenId,
};
use jmake_synth::WorkloadProfile;
use jmake_vcs::LogOptions;
use std::sync::Arc;

fn bench_profile() -> WorkloadProfile {
    WorkloadProfile {
        commits: 40,
        ..WorkloadProfile::tiny()
    }
}

/// Substrate: unified diff of two medium files.
fn bench_diff(c: &mut Criterion) {
    let old: String = (0..400).map(|i| format!("line number {i};\n")).collect();
    let new = old
        .replace("line number 37;", "changed 37;")
        .replace("line number 201;", "changed 201;")
        .replace("line number 322;", "changed 322;");
    c.bench_function("diff/myers_400_lines", |b| {
        b.iter(|| diff_to_patch("f.c", &old, &new, &DiffOptions::default()))
    });
}

/// Substrate: preprocessing a driver with its headers.
fn bench_preprocess(c: &mut Criterion) {
    let (tree, layout) = jmake_synth::generate_tree(&bench_profile());
    let mut engine = BuildEngine::new(tree.clone());
    let cfg = engine.make_config("x86_64", &ConfigKind::AllYes).unwrap();
    let file = layout
        .drivers
        .iter()
        .find(|d| d.arch_specific.is_none())
        .map(|d| d.c_path.clone())
        .expect("host driver exists");
    c.bench_function("cpp/make_i_one_driver", |b| {
        b.iter(|| {
            engine
                .make_i(&cfg, &tree, std::slice::from_ref(&file))
                .unwrap()
        })
    });
}

/// Hot path (DESIGN.md §13.1): preprocessing with the cross-patch
/// include memo cold vs warm. The warm case replays recorded
/// header-inclusion effects instead of re-expanding every header, which
/// is where the cross-patch speedup comes from.
fn bench_preproc_memo(c: &mut Criterion) {
    let (tree, layout) = jmake_synth::generate_tree(&bench_profile());
    let file = layout
        .drivers
        .iter()
        .find(|d| d.arch_specific.is_none())
        .map(|d| d.c_path.clone())
        .expect("host driver exists");
    let mut group = c.benchmark_group("check/preproc_memo");
    group.bench_function("memo_off", |b| {
        let mut engine = BuildEngine::new(tree.clone());
        let cfg = engine.make_config("x86_64", &ConfigKind::AllYes).unwrap();
        b.iter(|| {
            engine
                .make_i(&cfg, &tree, std::slice::from_ref(&file))
                .unwrap()
        })
    });
    group.bench_function("memo_warm", |b| {
        let mut engine = BuildEngine::new(tree.clone());
        let memo = Arc::new(PreprocCache::new());
        engine.set_preproc_cache(Arc::clone(&memo));
        let cfg = engine.make_config("x86_64", &ConfigKind::AllYes).unwrap();
        // Prime the memo once; subsequent iterations replay from it.
        engine
            .make_i(&cfg, &tree, std::slice::from_ref(&file))
            .unwrap();
        b.iter(|| {
            engine
                .make_i(&cfg, &tree, std::slice::from_ref(&file))
                .unwrap()
        })
    });
    group.finish();
}

/// Hot path (DESIGN.md §13.2): interner lookup cost. `hit` is the
/// steady-state path every cache key construction takes; `resolve` is
/// the id → &str direction used when rendering reports.
fn bench_intern_lookup(c: &mut Criterion) {
    let paths: Vec<String> = (0..64)
        .map(|i| format!("drivers/net/bench_intern_{i}/main.c"))
        .collect();
    for p in &paths {
        PathId::intern(p);
    }
    let ids: Vec<PathId> = paths.iter().map(|p| PathId::intern(p)).collect();
    let mut group = c.benchmark_group("intern/lookup");
    group.bench_function("hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % paths.len();
            PathId::intern(&paths[i])
        })
    });
    group.bench_function("resolve", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % ids.len();
            ids[i].as_str()
        })
    });
    group.bench_function("miss_then_hit", |b| {
        // Token text is bounded in practice; reuse a small rotating set
        // so the pool stays bounded while still exercising the hash.
        let tokens: Vec<String> = (0..16).map(|i| format!("jmake_bench_tok_{i}")).collect();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % tokens.len();
            TokenId::intern(&tokens[i])
        })
    });
    group.finish();
}

/// Substrate: Kconfig allyesconfig resolution.
fn bench_kconfig(c: &mut Criterion) {
    let (tree, _) = jmake_synth::generate_tree(&bench_profile());
    c.bench_function("kconfig/allyesconfig", |b| {
        b.iter(|| {
            let mut engine = BuildEngine::new(tree.clone());
            engine.make_config("x86_64", &ConfigKind::AllYes).unwrap()
        })
    });
}

/// Core: the mutation engine on a realistic file.
fn bench_mutation(c: &mut Criterion) {
    let (tree, layout) = jmake_synth::generate_tree(&bench_profile());
    let path = &layout.drivers[0].c_path;
    let content = tree.get(path).unwrap();
    let changed: jmake_diff::ChangedLines = (1..=content.lines().count() as u32)
        .step_by(4)
        .map(jmake_diff::ChangedLine::Line)
        .collect();
    c.bench_function("core/mutation_engine", |b| {
        b.iter(|| mutate(path, content, &changed))
    });
}

/// Core: one full patch check, end to end.
fn bench_check_patch(c: &mut Criterion) {
    let (tree, layout) = jmake_synth::generate_tree(&bench_profile());
    let path = layout.drivers[0].c_path.clone();
    let old = tree.get(&path).unwrap().to_string();
    let new = old.replace("+ 0;", "+ 1;");
    let patch = diff_to_patch(&path, &old, &new, &DiffOptions::default());
    let mut patched = tree;
    patched.insert(&path, new);
    c.bench_function("core/check_patch_end_to_end", |b| {
        b.iter(|| {
            let mut engine = BuildEngine::new(patched.clone());
            JMake::new().check_patch(&mut engine, &patch, "bench")
        })
    });
}

/// Ablation 1 (DESIGN.md §5): minimized vs naive mutation placement.
fn ablation_mutation_density(c: &mut Criterion) {
    let (tree, layout) = jmake_synth::generate_tree(&bench_profile());
    let path = &layout.drivers[0].c_path;
    let content = tree.get(path).unwrap();
    let changed: jmake_diff::ChangedLines = (1..=content.lines().count() as u32)
        .map(jmake_diff::ChangedLine::Line)
        .collect();
    let mut group = c.benchmark_group("ablation/mutation_density");
    group.bench_function("paper_placement", |b| {
        b.iter(|| mutate(path, content, &changed))
    });
    group.bench_function("naive_per_line", |b| {
        b.iter(|| mutate_naive(path, content, &changed))
    });
    // The quantity the paper optimizes: token count (reported via
    // criterion's output as iterations are equal-cost here).
    let minimized = mutate(path, content, &changed).mutations.len();
    let naive = mutate_naive(path, content, &changed).mutations.len();
    assert!(minimized <= naive);
    group.finish();
}

/// Ablation 2: grouped .i invocations (≤50) vs one file per invocation.
fn ablation_grouping(c: &mut Criterion) {
    let workload = jmake_synth::generate(&bench_profile());
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .unwrap();
    let commit = commits[0];
    let tree = workload.repo.checkout(commit).unwrap();
    let patch = workload.repo.show(commit).unwrap();
    let mut group = c.benchmark_group("ablation/grouping");
    for (name, limit) in [("grouped_50", 50usize), ("one_per_invocation", 1)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &limit, |b, &limit| {
            let jmake = JMake::with_options(Options {
                group_limit: limit,
                ..Options::default()
            });
            b.iter(|| {
                let mut engine = BuildEngine::new(tree.clone());
                jmake.check_patch(&mut engine, &patch, "bench")
            })
        });
    }
    group.finish();
}

/// Ablation 3: header-candidate ranking with vs without macro hints.
fn ablation_hint_ranking(c: &mut Criterion) {
    let (tree, layout) = jmake_synth::generate_tree(&bench_profile());
    let header = &layout.headers[0];
    let old = tree.get(&header.path).unwrap().to_string();
    let new = old.replace("<< 1)", "<< 2)");
    let patch = diff_to_patch(&header.path, &old, &new, &DiffOptions::default());
    let mut patched = tree;
    patched.insert(&header.path, new);
    let mut group = c.benchmark_group("ablation/hint_ranking");
    for (name, hints) in [("with_hints", true), ("without_hints", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &hints, |b, &hints| {
            let jmake = JMake::with_options(Options {
                use_header_hints: hints,
                ..Options::default()
            });
            b.iter(|| {
                let mut engine = BuildEngine::new(patched.clone());
                jmake.check_patch(&mut engine, &patch, "bench")
            })
        });
    }
    group.finish();
}

/// Ablation 4: prepared configurations on/off, and allmodconfig on/off.
fn ablation_config_sets(c: &mut Criterion) {
    let (tree, layout) = jmake_synth::generate_tree(&bench_profile());
    let drv = layout
        .drivers
        .iter()
        .find(|d| d.arch_specific.is_some())
        .expect("arch-specific driver");
    let old = tree.get(&drv.c_path).unwrap().to_string();
    let new = old.replace("+ 0;", "+ 1;");
    let patch = diff_to_patch(&drv.c_path, &old, &new, &DiffOptions::default());
    let mut patched = tree;
    patched.insert(&drv.c_path, new);
    let mut group = c.benchmark_group("ablation/config_sets");
    let variants: [(&str, Options); 3] = [
        (
            "allyes_only",
            Options {
                use_defconfigs: false,
                ..Options::default()
            },
        ),
        ("with_defconfigs", Options::default()),
        (
            "with_allmodconfig",
            Options {
                use_allmodconfig: true,
                ..Options::default()
            },
        ),
    ];
    for (name, opts) in variants {
        group.bench_function(name, |b| {
            let jmake = JMake::with_options(opts.clone());
            b.iter(|| {
                let mut engine = BuildEngine::new(patched.clone());
                jmake.check_patch(&mut engine, &patch, "bench")
            })
        });
    }
    group.finish();
}

/// Driver: the evaluation run with the cross-patch configuration cache
/// shared between workers vs solved per patch (the original behavior).
/// Reports are identical either way; this measures host wall-clock only.
fn driver_shared_config_cache(c: &mut Criterion) {
    // The default tree shape (8 arches, 12 drivers per subsystem): on the
    // tiny tree configuration solving is too cheap for the cache to show.
    let workload = jmake_synth::generate(&WorkloadProfile {
        commits: 120,
        ..WorkloadProfile::default()
    });
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .unwrap();
    let mut group = c.benchmark_group("driver/config_cache");
    group.sample_size(10);
    for (name, shared_cache) in [("shared_across_patches", true), ("per_patch_solve", false)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &shared_cache,
            |b, &shared_cache| {
                let opts = DriverOptions {
                    workers: 4,
                    shared_cache,
                    ..DriverOptions::default()
                };
                b.iter(|| run_evaluation(&workload.repo, &commits, &opts))
            },
        );
    }
    group.finish();
}

/// Driver: the content-addressed object cache off, cold (empty cache per
/// run), and warm (a pre-populated cache shared across runs via
/// `object_cache_handle`). Reports and virtual-time samples are
/// bit-identical across all three; only host wall-clock differs.
///
/// One worker, deliberately: this is a cache ablation, and extra threads
/// would fold scheduler noise into the comparison (on a single-core
/// runner they dominate it). Thread scaling is a separate axis.
fn driver_object_cache(c: &mut Criterion) {
    let workload = jmake_synth::generate(&WorkloadProfile {
        commits: 120,
        ..WorkloadProfile::default()
    });
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .unwrap();
    let mut group = c.benchmark_group("driver/object_cache");
    group.sample_size(10);
    group.bench_function("off", |b| {
        let opts = DriverOptions {
            workers: 1,
            object_cache: false,
            ..DriverOptions::default()
        };
        b.iter(|| run_evaluation(&workload.repo, &commits, &opts))
    });
    group.bench_function("cold", |b| {
        // No handle: each run builds and discards its own cache.
        let opts = DriverOptions {
            workers: 1,
            ..DriverOptions::default()
        };
        b.iter(|| run_evaluation(&workload.repo, &commits, &opts))
    });
    group.bench_function("warm", |b| {
        let opts = DriverOptions {
            workers: 1,
            object_cache_handle: Some(Arc::new(ObjectCache::new())),
            ..DriverOptions::default()
        };
        // Prime the shared cache once; every measured run then replays
        // the same content against a fully warm cache.
        run_evaluation(&workload.repo, &commits, &opts);
        b.iter(|| run_evaluation(&workload.repo, &commits, &opts))
    });
    group.finish();
}

/// Satellite: configuration-cache lookups through the interned
/// [`ConfigKey`] (an `Arc<str>` pair hashed directly, no per-lookup
/// string formatting).
fn config_key_lookup(c: &mut Criterion) {
    let (tree, _) = jmake_synth::generate_tree(&bench_profile());
    let fingerprint = ConfigCache::fingerprint_tree(&tree);
    let cache = ConfigCache::new();
    let kinds = [ConfigKind::AllYes, ConfigKind::AllMod];
    let arches = ["x86_64", "arm", "powerpc", "mips"];
    let mut engine = BuildEngine::new(tree);
    for arch in arches {
        for kind in &kinds {
            let cfg = engine.make_config(arch, kind).unwrap();
            cache.insert(
                fingerprint,
                &ConfigKey::new(arch, kind),
                kind.content_fingerprint(),
                cfg,
            );
        }
    }
    let mut group = c.benchmark_group("config_cache");
    group.bench_function("lookup_interned_key", |b| {
        let key = ConfigKey::new("powerpc", &ConfigKind::AllMod);
        let content_fp = ConfigKind::AllMod.content_fingerprint();
        b.iter(|| cache.peek(fingerprint, &key, content_fp))
    });
    group.bench_function("lookup_with_key_construction", |b| {
        // What a caller pays when it has not interned the key yet.
        b.iter(|| {
            let key = ConfigKey::new("powerpc", &ConfigKind::AllMod);
            cache.peek(fingerprint, &key, ConfigKind::AllMod.content_fingerprint())
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_diff,
        bench_preprocess,
        bench_preproc_memo,
        bench_intern_lookup,
        bench_kconfig,
        bench_mutation,
        bench_check_patch,
        ablation_mutation_density,
        ablation_grouping,
        ablation_hint_ranking,
        ablation_config_sets,
        driver_shared_config_cache,
        driver_object_cache,
        config_key_lookup
);
criterion_main!(benches);
