//! The evaluation harness: regenerates every table and figure of the
//! paper over the synthetic workload.
//!
//! The `jmake-eval` binary is the entry point
//! (`cargo run -p jmake-bench --release --bin jmake-eval -- all`);
//! this library holds the shared machinery so integration tests and the
//! criterion benches reuse it.

use jmake_core::{run_evaluation, DriverOptions, EvaluationRun, SliceStats};
use jmake_janitor::{compute_metrics, identify_janitors, JanitorReport, Maintainers, Thresholds};
use jmake_kbuild::clock::Cdf;
use jmake_synth::{SynthOutput, WorkloadProfile};
use jmake_vcs::LogOptions;
use std::collections::BTreeSet;

/// Everything one evaluation run produces.
#[derive(Debug, Clone)]
pub struct EvalContext {
    /// The synthetic workload.
    pub workload: SynthOutput,
    /// Raw per-patch results and timing samples.
    pub run: EvaluationRun,
    /// Aggregates over all patches.
    pub all: SliceStats,
    /// Aggregates over janitor-authored patches.
    pub janitor: SliceStats,
    /// The scaled Table I thresholds used for janitor identification.
    pub thresholds: Thresholds,
    /// The identified janitor ranking (Table II analogue).
    pub janitor_table: Vec<JanitorReport>,
}

/// Build the workload, run JMake over the window, aggregate.
pub fn build_context(profile: &WorkloadProfile, workers: usize) -> EvalContext {
    build_context_with(profile, workers, jmake_core::Options::default())
}

/// [`build_context`] with explicit pipeline options (allmodconfig /
/// coverage-config variants).
pub fn build_context_with(
    profile: &WorkloadProfile,
    workers: usize,
    jmake: jmake_core::Options,
) -> EvalContext {
    build_context_with_driver(
        profile,
        &DriverOptions {
            workers,
            jmake,
            ..DriverOptions::default()
        },
    )
}

/// [`build_context`] with full driver options (worker count, pipeline
/// options, shared configuration cache on or off).
pub fn build_context_with_driver(profile: &WorkloadProfile, driver: &DriverOptions) -> EvalContext {
    let workload = jmake_synth::generate(profile);
    build_context_from_workload(profile, workload, driver)
}

/// [`build_context_with_driver`] over a pre-generated workload. The
/// portfolio path needs this split: `jmake-eval --portfolio` generates the
/// workload once, selects randconfig seeds on its `v4.4` tree
/// ([`jmake_core::select_portfolio`]), stores them in
/// `driver.jmake.portfolio`, and only then runs the evaluation.
pub fn build_context_from_workload(
    profile: &WorkloadProfile,
    workload: SynthOutput,
    driver: &DriverOptions,
) -> EvalContext {
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .expect("tags exist");
    let run = run_evaluation(&workload.repo, &commits, driver);
    let janitor_names: BTreeSet<&str> = workload.janitor_names.iter().map(String::as_str).collect();
    let all = SliceStats::collect(&run.results, &|_| true);
    let janitor = SliceStats::collect(&run.results, &|a| janitor_names.contains(a));

    // Janitor identification over the full activity log, with window
    // thresholds scaled to the workload size (the paper's ≥20 window
    // patches assumes ~12,000 commits).
    let activity = workload.full_activity_log();
    let maintainers = Maintainers::parse(
        workload
            .repo
            .checkout(workload.repo.resolve_tag("v4.3").expect("tag"))
            .expect("checkout")
            .get("MAINTAINERS")
            .unwrap_or_default(),
    );
    let metrics = compute_metrics(&activity, &maintainers);
    let scale = profile.commits as f64 / 12_000.0;
    let thresholds = Thresholds {
        min_window_patches: ((20.0 * scale).round() as usize).max(1),
        min_subsystems: 20.min(10 + profile.drivers_per_subsystem),
        ..Thresholds::default()
    };
    let janitor_table = identify_janitors(&metrics, &thresholds);

    EvalContext {
        workload,
        run,
        all,
        janitor,
        thresholds,
        janitor_table,
    }
}

/// Render the portfolio report as deterministic JSON: the greedy
/// selection (static coverage per member, virtual-clock cost) plus the
/// measured per-config token attribution from the evaluation run —
/// `tokens.by_rand > 0` is the dynamic proof that portfolio members
/// certified mutations allyesconfig alone missed. The bytes depend only
/// on the selection and the run's reports, both of which are
/// byte-identical across worker counts, cache modes, and disk-tier
/// states, so the rendered JSON is too (the CI gate diffs it).
pub fn render_portfolio_json(portfolio: &jmake_core::Portfolio, ctx: &EvalContext) -> String {
    // Attribute every certified token to the configuration family that
    // certified it; `covered` descriptors are `arch/<kind key>`.
    let seeds = portfolio.seeds();
    let mut total = 0usize;
    let mut by_allyes = 0usize;
    let mut by_rand = vec![0usize; seeds.len()];
    let mut by_other = 0usize;
    for report in ctx.run.results.iter().filter_map(|r| r.report()) {
        for file in &report.files {
            for (_token, desc) in &file.covered {
                total += 1;
                let kind = desc.rsplit('/').next().unwrap_or(desc);
                if kind == "allyesconfig" {
                    by_allyes += 1;
                } else if let Some(i) = kind
                    .strip_prefix("randconfig:")
                    .and_then(|s| s.parse::<u64>().ok())
                    .and_then(|seed| seeds.iter().position(|s| *s == seed))
                {
                    by_rand[i] += 1;
                } else {
                    by_other += 1;
                }
            }
        }
    }
    let by_rand_total: usize = by_rand.iter().sum();

    let mut members = String::new();
    let mut rand_idx = 0usize;
    for (i, m) in portfolio.members.iter().enumerate() {
        let tokens = match m.kind {
            jmake_kbuild::ConfigKind::Rand { .. } => {
                rand_idx += 1;
                by_rand[rand_idx - 1]
            }
            _ => by_allyes,
        };
        members.push_str(&format!(
            "{}    {{\"config\": \"{}\", \"cost_virtual_us\": {}, \"new_lines\": {}, \"tokens_certified\": {}}}",
            if i == 0 { "" } else { ",\n" },
            m.kind,
            m.cost_virtual_us,
            m.new_lines,
            tokens,
        ));
    }
    format!(
        "{{\n  \"schema\": 1,\n  \"arch\": \"{}\",\n  \"requested\": {},\n  \"rand_seed\": {},\n  \"pool\": {},\n  \"cost_virtual_us\": {},\n  \"lines\": {{\"total\": {}, \"allyes\": {}, \"conditional\": {}, \"covered_conditional\": {}, \"covered\": {}, \"dead\": {}, \"unfixable\": {}}},\n  \"tokens\": {{\"certified\": {}, \"by_allyes\": {}, \"by_rand\": {}, \"by_other\": {}}},\n  \"members\": [\n{}\n  ]\n}}\n",
        portfolio.arch,
        portfolio.requested,
        portfolio.rand_seed,
        portfolio.pool,
        portfolio.total_cost_virtual_us(),
        portfolio.total_lines(),
        portfolio.allyes_lines,
        portfolio.conditional_lines,
        portfolio.covered_conditional_lines,
        portfolio.covered_lines(),
        portfolio.dead_lines,
        portfolio.unfixable_lines,
        total,
        by_allyes,
        by_rand_total,
        by_other,
        members,
    )
}

/// Count certified tokens attributed to any of the given randconfig
/// seeds — the `--bench-json` schema-4 `tokens_by_rand` field and the CI
/// gate's dynamic evidence that the portfolio certified mutations
/// allyesconfig alone missed.
pub fn rand_certified_tokens(ctx: &EvalContext, seeds: &[u64]) -> usize {
    ctx.run
        .results
        .iter()
        .filter_map(|r| r.report())
        .flat_map(|report| &report.files)
        .flat_map(|file| &file.covered)
        .filter(|(_, desc)| {
            desc.rsplit('/')
                .next()
                .and_then(|kind| kind.strip_prefix("randconfig:"))
                .and_then(|s| s.parse::<u64>().ok())
                .is_some_and(|seed| seeds.contains(&seed))
        })
        .count()
}

/// Render a CDF as a fixed set of `(seconds, fraction)` checkpoints plus
/// the quantiles the paper quotes.
pub fn render_cdf(title: &str, samples_us: &[u64], checkpoints_secs: &[f64]) -> String {
    let cdf = Cdf::new(samples_us);
    let mut out = format!("{title}  (n = {})\n", cdf.len());
    out.push_str("  seconds  fraction<=\n");
    for &s in checkpoints_secs {
        out.push_str(&format!(
            "  {s:>7.1}  {:>9.3}\n",
            cdf.fraction_at((s * 1e6) as u64)
        ));
    }
    out.push_str(&format!(
        "  p50 = {:.2}s  p90 = {:.2}s  p95 = {:.2}s  p99 = {:.2}s  max = {:.2}s\n",
        cdf.quantile(0.5) as f64 / 1e6,
        cdf.quantile(0.9) as f64 / 1e6,
        cdf.quantile(0.95) as f64 / 1e6,
        cdf.quantile(0.99) as f64 / 1e6,
        cdf.max() as f64 / 1e6,
    ));
    out
}

/// The full `(seconds, fraction)` series of a CDF, for plotting.
pub fn cdf_series(samples_us: &[u64]) -> Vec<(f64, f64)> {
    Cdf::new(samples_us).series()
}

/// Table I: the thresholds (paper values plus the scaled window minimum).
pub fn render_table1(ctx: &EvalContext) -> String {
    let t = &ctx.thresholds;
    format!(
        "Table I — thresholds on janitor activity\n\
         # patches              >= {}\n\
         # subsystems           >= {}\n\
         # lists                >= {}\n\
         # maintainer patches   <  {:.0}%\n\
         # window patches       >= {} (scaled to workload)\n",
        t.min_patches,
        t.min_subsystems,
        t.min_lists,
        t.max_maintainer_fraction * 100.0,
        t.min_window_patches,
    )
}

/// Table II: the identified janitors.
pub fn render_table2(ctx: &EvalContext) -> String {
    let mut out = String::from("Table II — janitors identified (ranked by file cv)\n");
    out.push_str(&jmake_janitor::select::render_table(&ctx.janitor_table));
    out
}

/// Table III: patch-kind split, all vs janitor patches.
pub fn render_table3(ctx: &EvalContext) -> String {
    format!(
        "Table III — characteristics of patches\n--- all patches ({}) ---\n{}--- janitor patches ({}) ---\n{}",
        ctx.all.patches,
        ctx.all.render_kinds(),
        ctx.janitor.patches,
        ctx.janitor.render_kinds(),
    )
}

/// Table IV: reasons changed lines escaped the compiler (janitor slice,
/// as in the paper; the all-patches column is included for context).
pub fn render_table4(ctx: &EvalContext) -> String {
    format!(
        "Table IV — why changed lines are not subjected to the compiler\n--- janitor file instances ---\n{}--- all file instances ---\n{}",
        ctx.janitor.render_reasons(),
        ctx.all.render_reasons(),
    )
}

/// The §V.B prose numbers.
pub fn render_summary(ctx: &EvalContext) -> String {
    let a = &ctx.all;
    let j = &ctx.janitor;
    let pct = |n: usize, d: usize| {
        if d == 0 {
            0.0
        } else {
            100.0 * n as f64 / d as f64
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "== Summary (paper §V.B analogues) ==\n\
         patches considered                    all: {:>6}   janitor: {:>5}\n\
         patch fully certified                 all: {:>5.1}%   janitor: {:>5.1}%  (paper: 85% / 88%)\n\
         …with allyesconfig only               all: {:>5.1}%                      (paper: 84%)\n",
        a.patches,
        j.patches,
        100.0 * a.success_rate(),
        100.0 * j.success_rate(),
        pct(a.patch_success_allyes_only, a.patches),
    ));
    out.push_str(&format!(
        ".c instances                          all: {:>6}   janitor: {:>5}\n\
         …full at first error-free compile     all: {:>5.1}%  (paper: 88%)\n\
         …compiled yet lines missed            all: {:>6}   (paper: 415, 3%)\n\
         …of those, rescued by more configs    all: {:>6}   (paper: 54)\n\
         non-arch .c needing non-host arch     all: {:>6}   janitor: {:>5}  (paper: 365 / 38)\n",
        a.c_instances,
        j.c_instances,
        pct(a.c_full_on_first_success, a.c_instances),
        a.c_compiled_but_initially_uncovered,
        a.c_rescued_by_more_configs,
        a.c_nonarch_needing_other_arch,
        j.c_nonarch_needing_other_arch,
    ));
    out.push_str(&format!(
        "instances benefiting from x86_64      all: {:>5.1}%   janitor: {:>5.1}%  (paper: 96% / 95%)\n",
        pct(a.instances_touching_host, a.instances_with_coverage),
        pct(j.instances_touching_host, j.instances_with_coverage),
    ));
    out.push_str(&format!(
        ".c mutations: one / <=3               all: {:>4.0}% / {:>4.0}%  (paper: 82% / 95%)\n\
         .c mutations janitor: one / <=3            {:>4.0}% / {:>4.0}%  (paper: 91% / 98%)\n\
         .h mutations: one / <=3               all: {:>4.0}% / {:>4.0}%  (paper: 75% / 92%)\n",
        100.0 * a.c_mutations.fraction_le(1),
        100.0 * a.c_mutations.fraction_le(3),
        100.0 * j.c_mutations.fraction_le(1),
        100.0 * j.c_mutations.fraction_le(3),
        100.0 * a.h_mutations.fraction_le(1),
        100.0 * a.h_mutations.fraction_le(3),
    ));
    out.push_str(&format!(
        ".h instances                          all: {:>6}   janitor: {:>5}\n\
         …certified via the patch's own .c     all: {:>5.1}%   janitor: {:>5.1}%  (paper: 66% / 76%)\n\
         …rescued via candidate .c files       all: {:>6}   (paper: 16%)\n\
         …never certified                      all: {:>6}   (paper: 2%)\n",
        a.h_instances,
        j.h_instances,
        pct(a.h_covered_by_patch_c, a.h_instances),
        pct(j.h_covered_by_patch_c, j.h_instances),
        a.h_rescued_by_candidates,
        a.h_never_covered,
    ));
    out.push_str(&format!(
        "patches touching bootstrap files      all: {:>6} ({:>4.1}%)  (paper: 317, 2%)\n",
        a.bootstrap_patches,
        pct(a.bootstrap_patches, a.patches),
    ));
    out
}

/// Render exactly the stdout `jmake-eval` produces for `command` — each
/// matching section followed by one newline, `"all"` emitting every
/// section in order. `jmake-serve` responds with the same bytes, so a
/// served report is byte-identical to a locally rendered one (the CI
/// gate diffs them). `None` for an unknown command.
pub fn render_command(ctx: &EvalContext, command: &str) -> Option<String> {
    let print_all = command == "all";
    let mut out = String::new();
    let mut printed = false;
    let mut emit = |name: &str, text: String| {
        if print_all || command == name {
            out.push_str(&text);
            out.push('\n');
            printed = true;
        }
    };
    emit("table1", render_table1(ctx));
    emit("table2", render_table2(ctx));
    emit("table3", render_table3(ctx));
    emit("table4", render_table4(ctx));
    let (f4a, f4b, f4c) = render_fig4(ctx);
    emit("fig4a", f4a);
    emit("fig4b", f4b);
    emit("fig4c", f4c);
    let (f5, f6) = render_fig5_fig6(ctx);
    emit("fig5", f5);
    emit("fig6", f6);
    emit("summary", render_summary(ctx));
    printed.then_some(out)
}

/// Figure 4a/4b/4c.
pub fn render_fig4(ctx: &EvalContext) -> (String, String, String) {
    let s = &ctx.run.samples;
    (
        render_cdf(
            "Figure 4a — configuration-creation time per invocation (paper: all <= 5s)",
            &s.config,
            &[0.5, 1.0, 2.0, 3.0, 5.0],
        ),
        render_cdf(
            "Figure 4b — .i generation time per invocation (paper: 98% <= 15s, max 22s)",
            &s.i_gen,
            &[0.5, 1.0, 2.0, 5.0, 15.0, 22.0],
        ),
        render_cdf(
            "Figure 4c — .o generation time per invocation (paper: 97% <= 7s, heavy outliers > 6000s)",
            &s.o_gen,
            &[0.5, 1.0, 3.0, 7.0, 15.0],
        ),
    )
}

/// Figure 5 (all patches) and Figure 6 (janitor patches).
pub fn render_fig5_fig6(ctx: &EvalContext) -> (String, String) {
    (
        render_cdf(
            "Figure 5 — overall JMake time per patch, all patches (paper: 82% <= 30s, 95% <= 60s)",
            &ctx.all.patch_times_us,
            &[5.0, 10.0, 30.0, 60.0, 120.0, 600.0],
        ),
        render_cdf(
            "Figure 6 — overall JMake time per patch, janitor patches (paper: >90% <= 60s, max ~1080s)",
            &ctx.janitor.patch_times_us,
            &[5.0, 10.0, 30.0, 60.0, 120.0, 600.0],
        ),
    )
}
