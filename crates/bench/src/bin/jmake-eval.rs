//! Regenerate the paper's tables and figures over the synthetic workload.
//!
//! ```text
//! jmake-eval [OPTIONS] <table1|table2|table3|table4|fig4a|fig4b|fig4c|fig5|fig6|summary|all>
//! jmake-eval trace-check <trace.jsonl>
//!
//!   --commits N        window size (default 1200; paper scale ~12000)
//!   --seed S           workload seed
//!   --workers W        parallel workers (default 4; the paper used 25)
//!   --full             shorthand for --commits 12000
//!   --allmodconfig     also try allmodconfig (the paper's Table IV remedy)
//!   --coverage         also try coverage-maximizing generated configs
//!   --portfolio K      select a K-config portfolio up front (greedy
//!                      newly-reachable-lines per virtual-clock dollar
//!                      over the v4.4 tree's presence conditions; member
//!                      0 is always allyesconfig, the rest are seeded
//!                      randconfigs) and fan every trial out to its
//!                      members; prints the portfolio report — static
//!                      line coverage plus measured per-config token
//!                      attribution — as JSON on stdout
//!   --rand-seed N      base seed for the randconfig candidate pool
//!                      (default 1; candidate i samples with seed N+i,
//!                      deterministically — same seed, same configs,
//!                      everywhere)
//!   --no-shared-cache  solve every configuration per patch (original
//!                      per-patch-cleanup behavior; slower wall-clock,
//!                      identical reports)
//!   --no-object-cache  disable the content-addressed object cache
//!                      (every .i/.o is preprocessed from scratch;
//!                      slower wall-clock, identical reports)
//!   --no-work-stealing disable the typed warm-packet scheduler (idle
//!                      workers stop warming caches speculatively;
//!                      identical reports either way)
//!   --no-preproc-cache disable the cross-patch preprocess memo (every
//!                      header inclusion is expanded live; slower
//!                      wall-clock, identical reports)
//!   --bench-json FILE  write a machine-readable benchmark summary
//!                      (schema 4: patches/sec, per-stage host CPU µs,
//!                      end-to-end wall µs, cache hit rates, scheduler
//!                      stage counters, remediate-stage totals, portfolio
//!                      coverage summary — see DESIGN.md) to FILE
//!   --cache-dir DIR    persist the config and object caches under DIR
//!                      (created if missing) and pre-load them from it,
//!                      so a second run starts warm. Entries carry an
//!                      integrity digest verified on load; corrupt or
//!                      truncated files are quarantined under
//!                      DIR/quarantine and recomputed live. Host-side
//!                      only: reports are byte-identical cold vs. warm
//!                      (the CI gate diffs them)
//!   --stats            print driver statistics (cache hit rate,
//!                      per-stage wall-clock, failure counts)
//!   --trace FILE       write one JSON line per pipeline span to FILE
//!   --metrics          print per-stage span metrics (count, p50/p90/max
//!                      host µs, total virtual µs, config cache hit rate)
//!   --faults SPEC      inject deterministic faults; SPEC is a comma list
//!                      of kind:rate with kinds transient, latency,
//!                      corrupt, hang (e.g. "transient:0.2,corrupt:0.1").
//!                      Recovery is automatic (bounded retry, timeouts,
//!                      cache-shard quarantine); a commit whose retry
//!                      budget is exhausted degrades explicitly instead
//!                      of disappearing. Without --faults the run is
//!                      byte-identical to a build without the fault layer
//!   --fault-seed N     seed for the fault plan (default 1); the same
//!                      seed faults the same operations regardless of
//!                      worker count, scheduling, or cache mode
//!   --reach            print the static reachability classification of
//!                      the v4.4 tree (per-file allyes/conditional/dead
//!                      line counts plus every dead line with its proof)
//!                      as JSON on stdout
//!   --cross-check      replay the run against the static analyzer and
//!                      print the discrepancy report as JSON on stdout;
//!                      exits non-zero when static and dynamic verdicts
//!                      provably disagree (the CI gate)
//!   --fix              statically root-cause every missed line, then
//!                      synthesize and *verify* a minimal config delta
//!                      (or allmodconfig / cross-arch environment) that
//!                      would have covered it; prints the remediation
//!                      report as JSON on stdout and grafts per-file FIX
//!                      lines into the tables. Exits non-zero when a
//!                      static root cause disagrees with the dynamic
//!                      classifier or an emitted delta fails its
//!                      verification re-run (the CI gate). Without
//!                      `--fix` the reports are byte-identical to a
//!                      build without the remediator
//!   --fix-json FILE    write the remediation report to FILE as well
//!                      (implies --fix)
//!
//! With `--reach`/`--cross-check`/`--fix`/`--portfolio` and no explicit
//! table command, the tables are suppressed so stdout is pure JSON (pipe
//! into a file and `diff` across worker counts / cache modes / disk-tier
//! states — the bytes must match).
//!
//! `trace-check` re-parses a `--trace` file, validates every line against
//! the documented schema, and prints per-stage span counts. It exits
//! non-zero on the first malformed line.
//! ```

use jmake_bench::{build_context_from_workload, render_command, render_portfolio_json};
use jmake_core::DriverOptions;
use jmake_faults::{FaultSpec, Faults};
use jmake_kbuild::{
    BuildEngine, ConfigCache, ConfigKind, DiskCache, ObjectCache, PreprocCache, SourceTree,
};
use jmake_reach::{Reach, ReachEnv};
use jmake_synth::WorkloadProfile;
use jmake_trace::{Stage, Tracer};

/// Classify the whole `tree` statically: one model and one
/// allyes/allmod environment pair per architecture present, host
/// (x86_64) first so it serves as the primary model for non-arch files.
fn render_reach(tree: &SourceTree) -> Result<String, String> {
    let mut arches: Vec<String> = tree
        .iter()
        .filter_map(|(p, _)| {
            p.strip_prefix("arch/")
                .and_then(|r| r.strip_suffix("/Kconfig"))
                .filter(|a| !a.contains('/'))
                .map(str::to_string)
        })
        .collect();
    arches.sort();
    if let Some(i) = arches.iter().position(|a| a == "x86_64") {
        let host = arches.remove(i);
        arches.insert(0, host);
    }
    if arches.is_empty() {
        return Err("no arch/<a>/Kconfig in the tree".to_string());
    }
    let mut reach = Reach::new(tree);
    let mut envs = Vec::new();
    for arch in &arches {
        let mut engine = BuildEngine::new(tree.clone());
        let allyes = engine
            .make_config(arch, &ConfigKind::AllYes)
            .map_err(|e| format!("{arch}: {e}"))?;
        let allmod = engine
            .make_config(arch, &ConfigKind::AllMod)
            .map_err(|e| format!("{arch}: {e}"))?;
        reach.add_model(arch.clone(), allyes.model.clone());
        envs.push(ReachEnv {
            label: format!("{arch}-allyes"),
            arch: arch.clone(),
            config: allyes.config.clone(),
            allyes: true,
        });
        envs.push(ReachEnv {
            label: format!("{arch}-allmod"),
            arch: arch.clone(),
            config: allmod.config.clone(),
            allyes: false,
        });
    }
    for env in envs {
        reach.add_env(env);
    }
    Ok(reach.analyze().to_json())
}

/// Validate a trace file produced by `--trace`: every line must parse as
/// a span record with a documented stage name. Prints per-stage counts.
fn trace_check(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let lines = match jmake_trace::jsonl::parse_all(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace-check: {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut counts = std::collections::BTreeMap::new();
    let mut spans = 0usize;
    let mut counters = 0usize;
    for line in &lines {
        match line {
            jmake_trace::jsonl::TraceLine::Span(r) => {
                spans += 1;
                if let Some(stage) = r.stage {
                    *counts.entry(stage.name()).or_insert(0u64) += 1;
                }
            }
            jmake_trace::jsonl::TraceLine::Counter { .. } => counters += 1,
        }
    }
    println!("trace-check: {path}: {spans} span(s), {counters} counter(s) OK");
    for (stage, n) in counts {
        println!("  {stage:<14} {n}");
    }
    std::process::exit(0);
}

/// Machine-readable benchmark summary for `--bench-json` (hand-rolled:
/// the workspace carries no JSON serializer and the shape is fixed).
///
/// Schema 4 (documented in DESIGN.md): `host_cpu_us` holds the
/// per-stage host time *summed over workers* (schema 1 called this
/// `host_wall_us`, which misread as end-to-end time); `wall_us` is the
/// actual end-to-end evaluation wall clock; `preproc_cache_stats` and
/// `scheduler` cover the cross-patch preprocess memo and the typed
/// warm-packet scheduler; `remediate` reports the `--fix` pass (all
/// zeros with `ran: false` when remediation was off); `portfolio`
/// (schema 4) summarizes `--portfolio` selection and measured randconfig
/// token attribution (all zeros with `ran: false` when off).
fn render_bench_json(
    profile: &WorkloadProfile,
    driver: &DriverOptions,
    run: &jmake_core::EvaluationRun,
    wall_secs: f64,
    fix: Option<&(jmake_fix::FixReport, u64)>,
    portfolio: Option<&(jmake_core::Portfolio, usize)>,
) -> String {
    let s = &run.stats;
    let pps = if wall_secs > 0.0 {
        s.patches as f64 / wall_secs
    } else {
        0.0
    };
    let sched = s
        .scheduler
        .stages()
        .iter()
        .map(|(name, st)| {
            format!(
                "    \"{}\": {{ \"enqueued\": {}, \"executed\": {}, \"dropped\": {}, \"peak_depth\": {} }}",
                name, st.enqueued, st.executed, st.dropped, st.peak_depth
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let (fix_ran, fix_host_us, fix_virtual_us, fix_missed, fix_emitted, fix_verified, fix_unfixable) =
        match fix {
            Some((f, host_us)) => (
                true,
                *host_us,
                f.virtual_us,
                f.missed,
                f.deltas_emitted,
                f.deltas_verified,
                f.unfixable,
            ),
            None => (false, 0, 0, 0, 0, 0, 0),
        };
    let (pf_ran, pf_requested, pf_selected, pf_seed, pf_covered, pf_cond, pf_dead, pf_unfix, pf_cost, pf_tokens) =
        match portfolio {
            Some((p, tokens_by_rand)) => (
                true,
                p.requested,
                p.members.len(),
                p.rand_seed,
                p.covered_lines(),
                p.covered_conditional_lines,
                p.dead_lines,
                p.unfixable_lines,
                p.total_cost_virtual_us(),
                *tokens_by_rand,
            ),
            None => (false, 0, 0, 0, 0, 0, 0, 0, 0, 0),
        };
    format!(
        concat!(
            "{{\n",
            "  \"schema\": 4,\n",
            "  \"commits\": {},\n",
            "  \"seed\": {},\n",
            "  \"workers\": {},\n",
            "  \"shared_config_cache\": {},\n",
            "  \"object_cache\": {},\n",
            "  \"work_stealing\": {},\n",
            "  \"preproc_cache\": {},\n",
            "  \"patches\": {},\n",
            "  \"checked\": {},\n",
            "  \"wall_seconds\": {:.3},\n",
            "  \"patches_per_sec\": {:.2},\n",
            "  \"wall_us\": {},\n",
            "  \"host_cpu_us\": {{ \"checkout\": {}, \"show\": {}, \"check\": {}, \"total\": {} }},\n",
            "  \"config_cache_stats\": {{ \"hits\": {}, \"misses\": {}, \"entries\": {}, \"hit_rate\": {:.4} }},\n",
            "  \"object_cache_stats\": {{ \"hits\": {}, \"negative_hits\": {}, \"misses\": {}, \"entries\": {}, \"hit_rate\": {:.4} }},\n",
            "  \"preproc_cache_stats\": {{ \"hits\": {}, \"misses\": {}, \"entries\": {}, \"hit_rate\": {:.4}, \"closure_hits\": {}, \"closure_misses\": {} }},\n",
            "  \"remediate\": {{ \"ran\": {}, \"host_us\": {}, \"virtual_us\": {}, \"missed\": {}, \"deltas_emitted\": {}, \"deltas_verified\": {}, \"unfixable\": {} }},\n",
            "  \"portfolio\": {{ \"ran\": {}, \"requested\": {}, \"selected\": {}, \"rand_seed\": {}, \"covered_lines\": {}, \"covered_conditional_lines\": {}, \"dead_lines\": {}, \"unfixable_lines\": {}, \"cost_virtual_us\": {}, \"tokens_by_rand\": {} }},\n",
            "  \"scheduler\": {{\n{}\n  }}\n",
            "}}\n",
        ),
        profile.commits,
        profile.seed,
        driver.workers,
        driver.shared_cache,
        driver.object_cache,
        driver.work_stealing,
        driver.preproc_cache,
        s.patches,
        s.checked,
        wall_secs,
        pps,
        (wall_secs * 1e6) as u64,
        s.checkout_wall_us,
        s.show_wall_us,
        s.check_wall_us,
        s.total_wall_us,
        s.cache.hits,
        s.cache.misses,
        s.cache.entries,
        s.cache.hit_rate(),
        s.object.hits,
        s.object.negative_hits,
        s.object.misses,
        s.object.entries,
        s.object.hit_rate(),
        s.preproc.hits,
        s.preproc.misses,
        s.preproc.entries,
        s.preproc.hit_rate(),
        s.preproc.closure_hits,
        s.preproc.closure_misses,
        fix_ran,
        fix_host_us,
        fix_virtual_us,
        fix_missed,
        fix_emitted,
        fix_verified,
        fix_unfixable,
        pf_ran,
        pf_requested,
        pf_selected,
        pf_seed,
        pf_covered,
        pf_cond,
        pf_dead,
        pf_unfix,
        pf_cost,
        pf_tokens,
        sched,
    )
}

/// Write the bench summary, creating missing parent directories first
/// (same behavior `Tracer::to_file` has for `--trace FILE`).
fn write_bench_json(path: &str, json: &str) -> std::io::Result<()> {
    let path = std::path::Path::new(path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, json)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace-check") {
        match args.get(1) {
            Some(path) => trace_check(path),
            None => {
                eprintln!("usage: jmake-eval trace-check <trace.jsonl>");
                std::process::exit(2);
            }
        }
    }
    let mut profile = WorkloadProfile::default();
    let mut driver = DriverOptions::default();
    let mut explicit_command: Option<String> = None;
    let mut show_stats = false;
    let mut show_metrics = false;
    let mut do_reach = false;
    let mut do_cross_check = false;
    let mut do_fix = false;
    let mut portfolio_k: Option<usize> = None;
    let mut rand_seed: u64 = 1;
    let mut fix_json: Option<String> = None;
    let mut bench_json: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut fault_spec: Option<FaultSpec> = None;
    let mut fault_seed: u64 = 1;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--commits" => {
                profile.commits = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(profile.commits);
            }
            "--seed" => {
                profile.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(profile.seed);
            }
            "--workers" => {
                driver.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(driver.workers);
            }
            "--full" => profile.commits = 12_000,
            "--allmodconfig" => driver.jmake.use_allmodconfig = true,
            "--coverage" => driver.jmake.use_coverage_configs = true,
            "--portfolio" => {
                let Some(k) = it.next().and_then(|v| v.parse().ok()).filter(|k| *k >= 1) else {
                    eprintln!("--portfolio needs an integer K >= 1");
                    std::process::exit(2);
                };
                portfolio_k = Some(k);
            }
            "--rand-seed" => {
                let Some(seed) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--rand-seed needs an integer");
                    std::process::exit(2);
                };
                rand_seed = seed;
            }
            "--no-shared-cache" => driver.shared_cache = false,
            "--no-object-cache" => driver.object_cache = false,
            "--no-work-stealing" => driver.work_stealing = false,
            "--no-preproc-cache" => driver.preproc_cache = false,
            "--bench-json" => {
                let Some(path) = it.next() else {
                    eprintln!("--bench-json needs a file path");
                    std::process::exit(2);
                };
                bench_json = Some(path.clone());
            }
            "--cache-dir" => {
                let Some(dir) = it.next() else {
                    eprintln!("--cache-dir needs a directory path");
                    std::process::exit(2);
                };
                cache_dir = Some(dir.clone());
            }
            "--stats" => show_stats = true,
            "--trace" => {
                let Some(path) = it.next() else {
                    eprintln!("--trace needs a file path");
                    std::process::exit(2);
                };
                driver.tracer = match Tracer::to_file(std::path::Path::new(path)) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot open trace file {path}: {e}");
                        std::process::exit(1);
                    }
                };
            }
            "--metrics" => show_metrics = true,
            "--faults" => {
                let Some(spec) = it.next() else {
                    eprintln!("--faults needs a spec like transient:0.2,corrupt:0.1");
                    std::process::exit(2);
                };
                fault_spec = match FaultSpec::parse(spec) {
                    Ok(s) => Some(s),
                    Err(e) => {
                        eprintln!("--faults: {e}");
                        std::process::exit(2);
                    }
                };
            }
            "--fault-seed" => {
                let Some(seed) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--fault-seed needs an integer");
                    std::process::exit(2);
                };
                fault_seed = seed;
            }
            "--reach" => do_reach = true,
            "--cross-check" => do_cross_check = true,
            "--fix" => do_fix = true,
            "--fix-json" => {
                let Some(path) = it.next() else {
                    eprintln!("--fix-json needs a file path");
                    std::process::exit(2);
                };
                fix_json = Some(path.clone());
                do_fix = true;
            }
            cmd if !cmd.starts_with("--") => explicit_command = Some(cmd.to_string()),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    // `--metrics` without `--trace` still needs span recording; keep the
    // records in memory instead of a file.
    if show_metrics && !driver.tracer.is_enabled() {
        driver.tracer = Tracer::in_memory();
    }
    let tracer = driver.tracer.clone();
    if let Some(spec) = &fault_spec {
        driver.faults = Faults::new(*spec, fault_seed);
        eprintln!("fault injection enabled: {spec} (seed {fault_seed})");
    }
    // Open the persistent tier and pre-load both caches before the run;
    // corrupt entries quarantine on load and are recomputed live.
    let disk = cache_dir.as_ref().map(|dir| match DiskCache::open(dir) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot open cache dir {dir}: {e}");
            std::process::exit(1);
        }
    });
    if let Some(disk) = &disk {
        let objects = std::sync::Arc::new(ObjectCache::new());
        let configs = std::sync::Arc::new(ConfigCache::new());
        let preproc = std::sync::Arc::new(PreprocCache::new());
        match disk.load(&objects, &configs, &preproc, &driver.faults) {
            Ok(s) => eprintln!(
                "disk cache: loaded {} object / {} config / {} preproc entr{} from {} ({} quarantined)",
                s.objects_loaded,
                s.configs_loaded,
                s.preproc_loaded,
                if s.objects_loaded + s.configs_loaded + s.preproc_loaded == 1 { "y" } else { "ies" },
                disk.root().display(),
                s.entries_quarantined,
            ),
            Err(e) => {
                eprintln!("cannot load cache dir {}: {e}", disk.root().display());
                std::process::exit(1);
            }
        }
        driver.object_cache_handle = Some(objects);
        driver.config_cache_handle = Some(configs);
        driver.preproc_cache_handle = Some(preproc);
    }

    eprintln!(
        "generating workload (seed {:#x}, {} commits) and running JMake with {} workers (shared config cache: {})…",
        profile.seed,
        profile.commits,
        driver.workers,
        if driver.shared_cache { "on" } else { "off" },
    );
    let started = std::time::Instant::now();
    let workload = jmake_synth::generate(&profile);
    // Portfolio selection runs before the evaluation: pick the randconfig
    // seeds on the v4.4 tree, then hand them to every worker's pipeline
    // options. Selection is a pure function of (tree, arch, K, seed) on a
    // scratch engine, so it never perturbs the run's virtual clock.
    let portfolio = portfolio_k.map(|k| {
        let tree = match workload
            .repo
            .resolve_tag("v4.4")
            .and_then(|id| workload.repo.checkout(id))
        {
            Ok(t) => t,
            Err(e) => {
                eprintln!("--portfolio: cannot check out v4.4: {e}");
                std::process::exit(1);
            }
        };
        let mut span = tracer.span(Stage::Portfolio).with_arch("x86_64");
        let selected = match jmake_core::select_portfolio(&tree, "x86_64", k, rand_seed) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("--portfolio: {e}");
                std::process::exit(1);
            }
        };
        span.set_virtual_us(selected.total_cost_virtual_us());
        drop(span);
        driver.jmake.portfolio = selected.seeds();
        eprintln!(
            "portfolio: K={} rand-seed {} → {} member(s) from {} candidate(s); {} conditional line(s) covered beyond allyes ({} dead, {} beyond the pool), cost {}µs virtual",
            k,
            rand_seed,
            selected.members.len(),
            selected.pool,
            selected.covered_conditional_lines,
            selected.dead_lines,
            selected.unfixable_lines,
            selected.total_cost_virtual_us(),
        );
        selected
    });
    let mut ctx = build_context_from_workload(&profile, workload, &driver);
    eprintln!(
        "evaluation finished in {:.1}s wall clock ({} patches)",
        started.elapsed().as_secs_f64(),
        ctx.all.patches
    );
    if let Some(disk) = &disk {
        let objects = driver
            .object_cache_handle
            .as_ref()
            .expect("set alongside --cache-dir");
        let configs = driver
            .config_cache_handle
            .as_ref()
            .expect("set alongside --cache-dir");
        let preproc = driver
            .preproc_cache_handle
            .as_ref()
            .expect("set alongside --cache-dir");
        // Persisting is best-effort: a full disk loses warm starts, not
        // results.
        match disk.store(objects, configs, preproc) {
            Ok(s) => eprintln!(
                "disk cache: stored {} new object / {} new config / {} new preproc entries under {}",
                s.objects_stored,
                s.configs_stored,
                s.preproc_stored,
                disk.root().display(),
            ),
            Err(e) => {
                eprintln!("WARNING: cannot persist cache dir {}: {e}", disk.root().display());
            }
        }
    }
    let failures = ctx.run.stats.patches - ctx.run.stats.checked;
    if failures > 0 {
        eprintln!(
            "WARNING: {failures} patch(es) did not produce a report (checkout {}, show {}, panics {}, degraded {})",
            ctx.run.stats.checkout_failures,
            ctx.run.stats.show_failures,
            ctx.run.stats.panics,
            ctx.run.stats.degraded
        );
    }
    if fault_spec.is_some() {
        eprintln!("fault recovery: {}", ctx.run.stats.faults);
    }
    // Freeze the evaluation wall clock before the remediation pass so
    // `patches_per_sec` keeps measuring checking throughput, with or
    // without `--fix`.
    let wall_secs = started.elapsed().as_secs_f64();
    let fix_summary: Option<(jmake_fix::FixReport, u64)> = if do_fix {
        let fctx = jmake_fix::FixContext {
            configs: driver
                .config_cache_handle
                .clone()
                .unwrap_or_else(|| std::sync::Arc::new(ConfigCache::new())),
            objects: driver.object_cache_handle.clone(),
            preproc: driver.preproc_cache_handle.clone(),
            tracer: tracer.clone(),
        };
        let fix_started = std::time::Instant::now();
        let fix = jmake_fix::remediate_with(&ctx.workload.repo, &ctx.run, &fctx);
        let host_us = fix_started.elapsed().as_micros() as u64;
        jmake_fix::annotate_run(&mut ctx.run, &fix);
        eprintln!(
            "remediation finished in {:.1}s wall clock ({} missed line(s), {} delta(s) emitted, {} verified, {} unfixable)",
            fix_started.elapsed().as_secs_f64(),
            fix.missed,
            fix.deltas_emitted,
            fix.deltas_verified,
            fix.unfixable,
        );
        Some((fix, host_us))
    } else {
        None
    };
    if show_stats {
        eprint!("{}", ctx.run.stats.render());
    }
    if let Some(path) = &bench_json {
        let portfolio_summary = portfolio
            .as_ref()
            .map(|p| (p.clone(), jmake_bench::rand_certified_tokens(&ctx, &p.seeds())));
        let json = render_bench_json(
            &profile,
            &driver,
            &ctx.run,
            wall_secs,
            fix_summary.as_ref(),
            portfolio_summary.as_ref(),
        );
        if let Err(e) = write_bench_json(path, &json) {
            eprintln!("cannot write bench summary {path}: {e}");
            // Flush the trace file before bailing out: exiting with spans
            // still buffered would silently truncate `--trace` output.
            if let Err(e) = tracer.flush() {
                eprintln!("WARNING: flushing trace file failed: {e}");
            }
            std::process::exit(1);
        }
        eprintln!("bench summary written to {path}");
    }
    if let Err(e) = tracer.flush() {
        eprintln!("WARNING: flushing trace file failed: {e}");
    }
    if show_metrics {
        eprint!("{}", tracer.metrics().render());
        let balance = tracer.balance();
        if !balance.is_balanced() {
            eprintln!(
                "WARNING: unbalanced spans ({} opened, {} closed)",
                balance.opened, balance.closed
            );
        }
    }

    let mut exit_code = 0;
    if do_reach {
        let tree = ctx
            .workload
            .repo
            .resolve_tag("v4.4")
            .and_then(|id| ctx.workload.repo.checkout(id));
        match tree {
            Ok(tree) => match render_reach(&tree) {
                Ok(json) => print!("{json}"),
                Err(e) => {
                    eprintln!("--reach: {e}");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("--reach: cannot check out v4.4: {e}");
                std::process::exit(1);
            }
        }
    }
    if do_cross_check {
        let report = jmake_core::cross_check(&ctx.workload.repo, &ctx.run);
        print!("{}", report.to_json());
        if !report.is_clean() {
            eprintln!(
                "CROSS-CHECK FAILED: {} discrepanc{} between static reachability and mutation coverage",
                report.discrepancies.len(),
                if report.discrepancies.len() == 1 { "y" } else { "ies" }
            );
            exit_code = 1;
        } else {
            eprintln!(
                "cross-check clean: {} patches, {} tokens, {} dead-agreed, {} allyes-agreed, {} skipped",
                report.patches,
                report.tokens,
                report.dead_agreed,
                report.allyes_agreed,
                report.skipped.len()
            );
        }
    }
    if let Some((fix, _)) = &fix_summary {
        let json = fix.to_json();
        print!("{json}");
        if let Some(path) = &fix_json {
            if let Err(e) = write_bench_json(path, &json) {
                eprintln!("cannot write remediation report {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("remediation report written to {path}");
        }
        if fix.is_clean() {
            eprintln!(
                "remediation clean: {} missed line(s), every emitted delta verified ({} of {}), {} unfixable, 0 disagreements",
                fix.missed, fix.deltas_verified, fix.deltas_emitted, fix.unfixable
            );
        } else {
            eprintln!(
                "REMEDIATION FAILED: {} static/dynamic disagreement(s), {} delta(s) failed verification",
                fix.disagreements.len(),
                fix.verification_failures,
            );
            exit_code = 1;
        }
    }
    if let Some(p) = &portfolio {
        print!("{}", render_portfolio_json(p, &ctx));
        eprintln!(
            "portfolio report: {} member(s), {}/{} line(s) covered, {} dead, {} beyond the pool",
            p.members.len(),
            p.covered_lines(),
            p.total_lines(),
            p.dead_lines,
            p.unfixable_lines,
        );
    }
    // With `--reach`/`--cross-check`/`--fix`/`--portfolio` and no explicit
    // command, stdout stays pure JSON for CI diffing.
    if explicit_command.is_none() && (do_reach || do_cross_check || do_fix || portfolio.is_some()) {
        std::process::exit(exit_code);
    }

    let command = explicit_command.unwrap_or_else(|| "all".to_string());
    match render_command(&ctx, &command) {
        Some(text) => print!("{text}"),
        None => {
            eprintln!("unknown command {command:?}");
            std::process::exit(2);
        }
    }
    std::process::exit(exit_code);
}
