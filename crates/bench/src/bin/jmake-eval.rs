//! Regenerate the paper's tables and figures over the synthetic workload.
//!
//! ```text
//! jmake-eval [OPTIONS] <table1|table2|table3|table4|fig4a|fig4b|fig4c|fig5|fig6|summary|all>
//!
//!   --commits N        window size (default 1200; paper scale ~12000)
//!   --seed S           workload seed
//!   --workers W        parallel workers (default 4; the paper used 25)
//!   --full             shorthand for --commits 12000
//!   --allmodconfig     also try allmodconfig (the paper's Table IV remedy)
//!   --coverage         also try coverage-maximizing generated configs
//!   --no-shared-cache  solve every configuration per patch (original
//!                      per-patch-cleanup behavior; slower wall-clock,
//!                      identical reports)
//!   --stats            print driver statistics (cache hit rate,
//!                      per-stage wall-clock, failure counts)
//! ```

use jmake_bench::{
    build_context_with_driver, render_fig4, render_fig5_fig6, render_summary, render_table1,
    render_table2, render_table3, render_table4,
};
use jmake_core::DriverOptions;
use jmake_synth::WorkloadProfile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = WorkloadProfile::default();
    let mut driver = DriverOptions::default();
    let mut command = String::from("all");
    let mut show_stats = false;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--commits" => {
                profile.commits = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(profile.commits);
            }
            "--seed" => {
                profile.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(profile.seed);
            }
            "--workers" => {
                driver.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(driver.workers);
            }
            "--full" => profile.commits = 12_000,
            "--allmodconfig" => driver.jmake.use_allmodconfig = true,
            "--coverage" => driver.jmake.use_coverage_configs = true,
            "--no-shared-cache" => driver.shared_cache = false,
            "--stats" => show_stats = true,
            cmd if !cmd.starts_with("--") => command = cmd.to_string(),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "generating workload (seed {:#x}, {} commits) and running JMake with {} workers (shared config cache: {})…",
        profile.seed,
        profile.commits,
        driver.workers,
        if driver.shared_cache { "on" } else { "off" },
    );
    let started = std::time::Instant::now();
    let ctx = build_context_with_driver(&profile, &driver);
    eprintln!(
        "evaluation finished in {:.1}s wall clock ({} patches)",
        started.elapsed().as_secs_f64(),
        ctx.all.patches
    );
    let failures = ctx.run.stats.patches - ctx.run.stats.checked;
    if failures > 0 {
        eprintln!(
            "WARNING: {failures} patch(es) did not produce a report (checkout {}, show {}, panics {})",
            ctx.run.stats.checkout_failures, ctx.run.stats.show_failures, ctx.run.stats.panics
        );
    }
    if show_stats {
        eprint!("{}", ctx.run.stats.render());
    }

    let print_all = command == "all";
    let mut printed = false;
    let mut emit = |name: &str, text: String| {
        if print_all || command == name {
            println!("{text}");
            printed = true;
        }
    };
    emit("table1", render_table1(&ctx));
    emit("table2", render_table2(&ctx));
    emit("table3", render_table3(&ctx));
    emit("table4", render_table4(&ctx));
    let (f4a, f4b, f4c) = render_fig4(&ctx);
    emit("fig4a", f4a);
    emit("fig4b", f4b);
    emit("fig4c", f4c);
    let (f5, f6) = render_fig5_fig6(&ctx);
    emit("fig5", f5);
    emit("fig6", f6);
    emit("summary", render_summary(&ctx));
    if !printed {
        eprintln!("unknown command {command:?}");
        std::process::exit(2);
    }
}
