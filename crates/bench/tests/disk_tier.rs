//! Determinism contract for the persistent cache tier (DESIGN.md §10):
//! a report rendered from a cold run, from a warm run that loaded the
//! disk tier, and from a second warm run must be **byte-identical**, at
//! any worker count — the tier may only move host-side time, never
//! simulated results. A warm run must also actually hit the loaded
//! entries, or the tier is dead weight.

use jmake_bench::{build_context_with_driver, render_command};
use jmake_core::DriverOptions;
use jmake_faults::Faults;
use jmake_kbuild::{ConfigCache, DiskCache, DiskTierStats, ObjectCache, PreprocCache};
use jmake_synth::WorkloadProfile;
use std::path::PathBuf;
use std::sync::Arc;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "jmake-disk-tier-{tag}-{}-{}",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").replace("::", "-"),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn profile() -> WorkloadProfile {
    WorkloadProfile {
        commits: 25,
        ..WorkloadProfile::default()
    }
}

/// Evaluate with fresh in-memory caches backed by `cache_dir`, returning
/// the full rendered report, the in-memory object-cache hit count, and
/// the disk-tier load stats.
fn run(cache_dir: &PathBuf, workers: usize) -> (String, u64, DiskTierStats) {
    let objects = Arc::new(ObjectCache::new());
    let configs = Arc::new(ConfigCache::new());
    let preproc = Arc::new(PreprocCache::new());
    let disk = DiskCache::open(cache_dir).unwrap();
    let loaded = disk
        .load(&objects, &configs, &preproc, &Faults::disabled())
        .unwrap();
    assert_eq!(loaded.entries_quarantined, 0, "healthy tier, nothing quarantined");
    let driver = DriverOptions {
        workers,
        object_cache_handle: Some(Arc::clone(&objects)),
        config_cache_handle: Some(Arc::clone(&configs)),
        preproc_cache_handle: Some(Arc::clone(&preproc)),
        ..DriverOptions::default()
    };
    let ctx = build_context_with_driver(&profile(), &driver);
    let report = render_command(&ctx, "all").unwrap();
    disk.store(&objects, &configs, &preproc).unwrap();
    (report, objects.stats().hits, loaded)
}

#[test]
fn cold_warm_warm_reports_are_byte_identical_across_worker_counts() {
    let dir = tempdir("identity");

    let (cold, _, _) = run(&dir, 1);
    assert!(!cold.is_empty());

    // The cold run persisted entries the warm runs must find.
    let stored: Vec<_> = walk(&dir.join("objects"));
    assert!(!stored.is_empty(), "cold run persisted object entries");
    assert!(
        !walk(&dir.join("preproc")).is_empty(),
        "cold run persisted preproc entries"
    );

    for workers in [1, 8] {
        for round in ["warm", "warm again"] {
            let (report, hits, loaded) = run(&dir, workers);
            assert_eq!(
                report, cold,
                "{round} report with {workers} worker(s) differs from cold"
            );
            assert!(
                hits > 0,
                "{round} run with {workers} worker(s) never hit the loaded tier"
            );
            assert!(
                loaded.preproc_loaded > 0,
                "{round} run with {workers} worker(s) loaded no preproc entries"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupting_every_entry_on_disk_changes_nothing_but_the_quarantine() {
    let dir = tempdir("corrupt");
    let (cold, _, _) = run(&dir, 2);

    // Truncate every persisted entry: each must quarantine, none may
    // surface as a wrong result — the report stays byte-identical.
    let entries: Vec<_> = walk(&dir.join("objects"))
        .into_iter()
        .chain(walk(&dir.join("configs")))
        .chain(walk(&dir.join("preproc")))
        .collect();
    assert!(!entries.is_empty());
    for path in &entries {
        let bytes = std::fs::read(path).unwrap();
        std::fs::write(path, &bytes[..bytes.len() / 2]).unwrap();
    }

    let objects = Arc::new(ObjectCache::new());
    let configs = Arc::new(ConfigCache::new());
    let preproc = Arc::new(PreprocCache::new());
    let disk = DiskCache::open(&dir).unwrap();
    let loaded = disk
        .load(&objects, &configs, &preproc, &Faults::disabled())
        .unwrap();
    assert_eq!(loaded.entries_quarantined as usize, entries.len());
    assert_eq!(
        loaded.objects_loaded + loaded.configs_loaded + loaded.preproc_loaded,
        0
    );

    let driver = DriverOptions {
        workers: 2,
        object_cache_handle: Some(objects),
        config_cache_handle: Some(configs),
        preproc_cache_handle: Some(preproc),
        ..DriverOptions::default()
    };
    let report = render_command(&build_context_with_driver(&profile(), &driver), "all").unwrap();
    assert_eq!(report, cold, "a fully-corrupt tier must degrade to a cold run");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Every `.entry` file under `root`, recursively.
fn walk(root: &PathBuf) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(dir) = std::fs::read_dir(root) else {
        return out;
    };
    for entry in dir.flatten() {
        let path = entry.path();
        if path.is_dir() {
            out.extend(walk(&path));
        } else if path.extension().is_some_and(|e| e == "entry") {
            out.push(path);
        }
    }
    out
}
