//! Bit-identity tests for the cross-patch preprocess memo (the
//! `PreprocCache`).
//!
//! The contract: replaying recorded header-inclusion effects may change
//! wall-clock time only. Reports, per-patch outcomes, and Figure-4
//! virtual-time sample streams must be bit-identical with the memo on or
//! off, at any worker count, and whether the cache starts cold or is
//! reused warm across runs.

use jmake_core::{run_evaluation, DriverOptions, EvaluationRun};
use jmake_kbuild::PreprocCache;
use jmake_synth::WorkloadProfile;
use jmake_vcs::LogOptions;
use std::sync::Arc;

fn eval(
    workload: &jmake_synth::SynthOutput,
    commits: &[jmake_vcs::CommitId],
    workers: usize,
    preproc_cache: bool,
    handle: Option<Arc<PreprocCache>>,
) -> EvaluationRun {
    run_evaluation(
        &workload.repo,
        commits,
        &DriverOptions {
            workers,
            preproc_cache,
            preproc_cache_handle: handle,
            ..DriverOptions::default()
        },
    )
}

/// {workers 1, 8} × {preproc memo on/off}: every configuration must
/// reproduce the single-worker memo-off baseline bit for bit.
#[test]
fn reports_and_samples_bit_identical_with_memo_on_or_off() {
    let profile = WorkloadProfile {
        commits: 30,
        ..WorkloadProfile::tiny()
    };
    let workload = jmake_synth::generate(&profile);
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .unwrap();
    assert!(!commits.is_empty());

    let baseline = eval(&workload, &commits, 1, false, None);
    assert_eq!(baseline.results.len(), commits.len());

    for workers in [1, 8] {
        for preproc_cache in [false, true] {
            let run = eval(&workload, &commits, workers, preproc_cache, None);
            let label = format!("workers={workers} preproc_cache={preproc_cache}");
            assert_eq!(run.results, baseline.results, "reports differ: {label}");
            assert_eq!(run.samples, baseline.samples, "samples differ: {label}");
        }
    }
}

/// A memo handle reused across runs (cold vs warm) changes wall-clock
/// only: identical reports and samples, and the warm run replays more
/// inclusions from the shared cache than the cold one recorded.
#[test]
fn warm_preproc_cache_replays_identically_and_hits() {
    let profile = WorkloadProfile {
        commits: 20,
        ..WorkloadProfile::tiny()
    };
    let workload = jmake_synth::generate(&profile);
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .unwrap();

    let handle = Arc::new(PreprocCache::new());
    let cold = eval(&workload, &commits, 4, true, Some(Arc::clone(&handle)));
    let warm = eval(&workload, &commits, 4, true, Some(Arc::clone(&handle)));
    assert_eq!(cold.results, warm.results);
    assert_eq!(cold.samples, warm.samples);
    assert!(
        warm.stats.preproc.hits > cold.stats.preproc.hits,
        "warm run should replay from the pre-populated memo (cold {} vs warm {})",
        cold.stats.preproc.hits,
        warm.stats.preproc.hits
    );
    assert_eq!(warm.results.len(), commits.len());
}
