//! Determinism contract for randconfig portfolios (DESIGN.md §15): the
//! rendered portfolio report — selection, line accounting, and per-member
//! token attribution — must be **byte-identical** across worker counts,
//! cache modes, and disk-tier states. Caches and the tier may only move
//! host-side time, never which lines a config covers or which tokens a
//! member certifies. A K>1 portfolio must also measurably beat the
//! allyes-only baseline, or the whole exercise is dead weight.

use jmake_bench::{build_context_from_workload, render_portfolio_json};
use jmake_core::{select_portfolio, DriverOptions, Portfolio};
use jmake_faults::Faults;
use jmake_kbuild::{ConfigCache, DiskCache, ObjectCache, PreprocCache};
use jmake_synth::WorkloadProfile;
use std::path::PathBuf;
use std::sync::Arc;

fn profile() -> WorkloadProfile {
    WorkloadProfile {
        commits: 60,
        ..WorkloadProfile::default()
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "jmake-portfolio-{tag}-{}-{}",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").replace("::", "-"),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Mirror `jmake-eval --portfolio K`: generate the workload, select the
/// portfolio on the v4.4 tree, fan the chosen seeds out through the
/// driver, and render the portfolio report. Returns the report bytes and
/// the selection itself.
fn run(
    k: usize,
    workers: usize,
    caches: bool,
    cache_dir: Option<&PathBuf>,
) -> (String, Portfolio) {
    let workload = jmake_synth::generate(&profile());
    let tree = workload
        .repo
        .resolve_tag("v4.4")
        .and_then(|id| workload.repo.checkout(id))
        .unwrap();
    let selected = select_portfolio(&tree, "x86_64", k, 1).unwrap();

    let mut driver = DriverOptions {
        workers,
        shared_cache: caches,
        object_cache: caches,
        preproc_cache: caches,
        work_stealing: caches,
        ..DriverOptions::default()
    };
    driver.jmake.portfolio = selected.seeds();
    let disk = cache_dir.map(|dir| {
        let objects = Arc::new(ObjectCache::new());
        let configs = Arc::new(ConfigCache::new());
        let preproc = Arc::new(PreprocCache::new());
        let disk = DiskCache::open(dir).unwrap();
        disk.load(&objects, &configs, &preproc, &Faults::disabled())
            .unwrap();
        driver.object_cache_handle = Some(Arc::clone(&objects));
        driver.config_cache_handle = Some(Arc::clone(&configs));
        driver.preproc_cache_handle = Some(Arc::clone(&preproc));
        (disk, objects, configs, preproc)
    });

    let ctx = build_context_from_workload(&profile(), workload, &driver);
    if let Some((disk, objects, configs, preproc)) = disk {
        disk.store(&objects, &configs, &preproc).unwrap();
    }
    (render_portfolio_json(&selected, &ctx), selected)
}

#[test]
fn portfolio_reports_are_byte_identical_across_workers_caches_and_tier() {
    let (baseline, selected) = run(4, 1, true, None);
    assert!(baseline.contains("\"schema\": 1"));
    assert!(
        selected.members.len() >= 2,
        "K=4 must pick at least one randconfig beyond allyes"
    );

    // Worker counts and cache modes.
    let (w8, _) = run(4, 8, true, None);
    assert_eq!(w8, baseline, "8-worker report differs from 1-worker");
    let (nocache, _) = run(4, 8, false, None);
    assert_eq!(nocache, baseline, "cache-off report differs from cache-on");

    // Disk tier: a cold run that populates the tier, then a warm run
    // that loads it, must both render the same bytes.
    let dir = tempdir("identity");
    let (cold, _) = run(4, 4, true, Some(&dir));
    assert_eq!(cold, baseline, "cold disk-tier report differs");
    let (warm, _) = run(4, 4, true, Some(&dir));
    assert_eq!(warm, baseline, "warm disk-tier report differs from cold");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_k4_portfolio_covers_lines_and_tokens_allyes_alone_misses() {
    let (report, selected) = run(4, 2, true, None);

    // Static coverage: the randconfig members reach conditional lines the
    // allyes baseline provably cannot (they are conditional precisely
    // because allyes misses them).
    assert!(
        selected.covered_conditional_lines > 0,
        "portfolio covered no conditional lines beyond allyes"
    );
    assert!(selected.covered_lines() > selected.allyes_lines);

    // Dynamic attribution: tokens certified by randconfig members alone
    // show up in the report, so the sweep measurably benefits.
    let (k1, k1_selected) = run(1, 2, true, None);
    assert_eq!(k1_selected.members.len(), 1, "K=1 is the allyes baseline");
    assert!(k1.contains("\"by_rand\": 0"));
    assert!(
        !report.contains("\"by_rand\": 0"),
        "K=4 certified no tokens via randconfig members:\n{report}"
    );
}
