//! Chaos suite for the deterministic fault-injection layer (DESIGN.md §9).
//!
//! The contract under test: `--faults` may change *what happens* to a
//! commit, but never silently. Every commit gets exactly one outcome
//! under every fault profile, degradation only appears when a retry
//! budget was genuinely exhausted, and a run with no faults configured
//! is byte-identical to one without the fault layer at all.

use jmake_core::{run_evaluation, DriverOptions, EvaluationRun, PatchOutcome};
use jmake_faults::{FaultKind, FaultSpec, Faults};
use jmake_synth::WorkloadProfile;
use jmake_trace::{Stage, Tracer};
use jmake_vcs::{CommitId, LogOptions};
use proptest::prelude::*;
use std::sync::OnceLock;

fn workload(commits: usize) -> (jmake_synth::SynthOutput, Vec<CommitId>) {
    let profile = WorkloadProfile {
        commits,
        ..WorkloadProfile::tiny()
    };
    let workload = jmake_synth::generate(&profile);
    let range = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .unwrap();
    assert!(!range.is_empty());
    (workload, range)
}

/// The 60-commit range the chaos property sweeps, generated once — each
/// of the property's cases runs a fresh evaluation over the same repo.
fn chaos_workload() -> &'static (jmake_synth::SynthOutput, Vec<CommitId>) {
    static WORKLOAD: OnceLock<(jmake_synth::SynthOutput, Vec<CommitId>)> = OnceLock::new();
    WORKLOAD.get_or_init(|| workload(60))
}

fn eval(
    workload: &jmake_synth::SynthOutput,
    commits: &[CommitId],
    workers: usize,
    caches: bool,
    faults: Faults,
    tracer: Tracer,
) -> EvaluationRun {
    run_evaluation(
        &workload.repo,
        commits,
        &DriverOptions {
            workers,
            shared_cache: caches,
            object_cache: caches,
            work_stealing: caches,
            faults,
            tracer,
            ..DriverOptions::default()
        },
    )
}

/// One outcome per input commit, in input order — the "never drop a
/// commit" half of the contract.
fn assert_one_outcome_per_commit(run: &EvaluationRun, commits: &[CommitId]) {
    assert_eq!(run.results.len(), commits.len());
    for (result, commit) in run.results.iter().zip(commits) {
        assert_eq!(result.commit, *commit, "outcomes out of input order");
    }
}

/// With no `--faults`, the explicit `Faults::disabled()` handle leaves
/// reports and sample streams byte-identical across worker counts and
/// cache modes — the fault layer is invisible until asked for.
#[test]
fn fault_free_runs_are_byte_identical_across_the_matrix() {
    let (workload, commits) = workload(30);
    let baseline = eval(
        &workload,
        &commits,
        1,
        false,
        Faults::disabled(),
        Tracer::disabled(),
    );
    for workers in [1, 8] {
        for caches in [false, true] {
            let run = eval(
                &workload,
                &commits,
                workers,
                caches,
                Faults::disabled(),
                Tracer::disabled(),
            );
            let label = format!("workers={workers} caches={caches}");
            assert_eq!(run.results, baseline.results, "reports differ: {label}");
            assert_eq!(run.samples, baseline.samples, "samples differ: {label}");
            assert_eq!(run.stats.degraded, 0);
            assert_eq!(run.stats.faults.injected_total(), 0);
        }
    }
}

/// The same fault seed produces the same outcomes whether one worker or
/// eight race through the range: fault fates travel with the commit.
#[test]
fn fault_outcomes_are_deterministic_across_worker_counts() {
    let (workload, commits) = workload(40);
    let spec = FaultSpec::default()
        .with_rate(FaultKind::Transient, 0.3)
        .with_rate(FaultKind::Hang, 0.1);
    let one = eval(
        &workload,
        &commits,
        1,
        true,
        Faults::new(spec, 42),
        Tracer::disabled(),
    );
    let eight = eval(
        &workload,
        &commits,
        8,
        true,
        Faults::new(spec, 42),
        Tracer::disabled(),
    );
    assert_eq!(one.results, eight.results);
    assert_eq!(one.samples, eight.samples);
    assert_eq!(one.stats.faults, eight.stats.faults);
}

/// Corruption recovery is charge-identical: a corrupted cache entry is
/// detected, its shard quarantined, and the unit recomputed — so even a
/// run where *every* lookup is corrupted produces byte-identical reports
/// and samples. Only wall-clock (and the quarantine counters) change.
#[test]
fn corrupted_cache_entries_are_quarantined_without_changing_reports() {
    let (workload, commits) = workload(30);
    let baseline = eval(
        &workload,
        &commits,
        1,
        true,
        Faults::disabled(),
        Tracer::disabled(),
    );
    let spec = FaultSpec::default().with_rate(FaultKind::Corrupt, 1.0);
    let run = eval(
        &workload,
        &commits,
        4,
        true,
        Faults::new(spec, 7),
        Tracer::disabled(),
    );
    assert_eq!(run.results, baseline.results);
    assert_eq!(run.samples, baseline.samples);
    assert!(
        run.stats.faults.corruptions_detected > 0,
        "a rate-1.0 corrupt profile must detect at least one corruption"
    );
    assert!(run.stats.faults.quarantined_shards > 0);
    assert_eq!(run.stats.object.corruptions_detected, run.stats.faults.corruptions_detected);
}

/// The issue's acceptance run: `--faults transient:0.5` over a
/// 120-commit range completes with zero dropped commits and visible
/// retry spans in the trace.
#[test]
fn transient_half_rate_over_120_commits_drops_nothing_and_retries() {
    let (workload, commits) = workload(120);
    let tracer = Tracer::in_memory();
    let spec = FaultSpec::default().with_rate(FaultKind::Transient, 0.5);
    let run = eval(
        &workload,
        &commits,
        8,
        true,
        Faults::new(spec, 1),
        tracer.clone(),
    );
    assert_one_outcome_per_commit(&run, &commits);
    assert!(run.stats.faults.retries > 0, "rate 0.5 must force retries");
    let metrics = tracer.metrics();
    let retry_spans = metrics.stage(Stage::Retry).map_or(0, |s| s.count());
    assert!(retry_spans > 0, "retry spans must be visible in the trace");
    assert_eq!(run.stats.faults.retries, retry_spans);
}

proptest! {
    /// Random fault profiles over a 60-commit range never panic, never
    /// drop a commit, and degrade only when a retry budget was actually
    /// exhausted.
    #[test]
    fn chaos_profiles_never_drop_commits(
        transient_pct in 0u32..60,
        latency_pct in 0u32..60,
        corrupt_pct in 0u32..60,
        hang_pct in 0u32..40,
        seed in 0u64..u64::MAX,
        workers in 1usize..8,
        caches in prop::bool::ANY,
    ) {
        let (workload, commits) = chaos_workload();
        let spec = FaultSpec::default()
            .with_rate(FaultKind::Transient, transient_pct as f64 / 100.0)
            .with_rate(FaultKind::Latency, latency_pct as f64 / 100.0)
            .with_rate(FaultKind::Corrupt, corrupt_pct as f64 / 100.0)
            .with_rate(FaultKind::Hang, hang_pct as f64 / 100.0);
        let run = eval(
            workload,
            commits,
            workers,
            caches,
            Faults::new(spec, seed),
            Tracer::disabled(),
        );
        assert_one_outcome_per_commit(&run, commits);

        let snap = run.stats.faults;
        let mut degraded_outcomes = 0u64;
        let mut degraded_trials = 0u64;
        for result in &run.results {
            match &result.outcome {
                PatchOutcome::Panicked(msg) => {
                    panic!("faults must degrade, not panic: {msg}")
                }
                PatchOutcome::Degraded { reason, .. } => {
                    prop_assert!(reason.contains("gave up"), "{reason}");
                    degraded_outcomes += 1;
                }
                PatchOutcome::Checked(report) => {
                    degraded_trials += report
                        .files
                        .iter()
                        .map(|f| f.degraded_trials.len() as u64)
                        .sum::<u64>();
                }
                PatchOutcome::CheckoutFailed(_) | PatchOutcome::ShowFailed(_) => {}
            }
        }
        prop_assert_eq!(degraded_outcomes, run.stats.degraded as u64);
        // Degraded outcomes/trials appear only when a retry budget was
        // genuinely exhausted; zero exhaustion means zero degradation.
        if snap.exhausted == 0 {
            prop_assert_eq!(degraded_outcomes, 0);
            prop_assert_eq!(degraded_trials, 0);
        }
        if degraded_outcomes + degraded_trials > 0 {
            prop_assert!(snap.exhausted > 0);
        }
        // Quarantine implies a detected corruption and vice versa can
        // only happen with the cache on.
        if snap.quarantined_shards > 0 {
            prop_assert!(snap.corruptions_detected > 0);
            prop_assert!(caches);
        }
    }
}
