//! Static-vs-dynamic cross-check over the synthetic workload
//! (DESIGN.md §8).
//!
//! The contract under test: the reachability analyzer's per-line verdicts
//! and the mutation pipeline's observed coverage must never provably
//! disagree on the real workload, and the discrepancy report must be
//! byte-identical whichever caches are on and however many workers run —
//! it contains no wall-clock and no nondeterminism.

use jmake_core::{cross_check, run_evaluation, DriverOptions, EvaluationRun};
use jmake_synth::WorkloadProfile;
use jmake_vcs::LogOptions;

fn eval(
    workload: &jmake_synth::SynthOutput,
    commits: &[jmake_vcs::CommitId],
    workers: usize,
    caches: bool,
) -> EvaluationRun {
    run_evaluation(
        &workload.repo,
        commits,
        &DriverOptions {
            workers,
            shared_cache: caches,
            object_cache: caches,
            work_stealing: caches,
            ..DriverOptions::default()
        },
    )
}

/// {workers 1, 8} × {caches on, off}: every cell is clean and serializes
/// to the exact same bytes.
#[test]
fn cross_check_is_clean_and_bit_identical_across_the_matrix() {
    let profile = WorkloadProfile {
        commits: 40,
        ..WorkloadProfile::tiny()
    };
    let workload = jmake_synth::generate(&profile);
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .unwrap();
    assert!(!commits.is_empty());

    let baseline_run = eval(&workload, &commits, 1, false);
    let baseline = cross_check(&workload.repo, &baseline_run);
    assert!(
        baseline.is_clean(),
        "static analyzer and mutation pipeline disagree:\n{}",
        baseline.to_json()
    );
    assert!(baseline.patches > 0, "nothing was cross-checked");
    assert!(baseline.tokens > 0, "no tokens were attributed");
    assert!(
        baseline.allyes_agreed > 0,
        "expected at least one allyes-reachable token to be covered"
    );
    let baseline_json = baseline.to_json();

    for workers in [1, 8] {
        for caches in [false, true] {
            let run = eval(&workload, &commits, workers, caches);
            let report = cross_check(&workload.repo, &run);
            assert_eq!(
                report.to_json(),
                baseline_json,
                "cross-check report differs: workers={workers} caches={caches}"
            );
        }
    }
}
