//! Soundness and bit-identity tests for the content-addressed object
//! cache and the work-stealing driver (DESIGN.md §7).
//!
//! The contract under test: host-side caches and speculative warming may
//! change wall-clock time only — every report, every virtual-time sample,
//! and every per-patch outcome must be bit-identical whichever caches are
//! on and however many workers run.

use jmake_core::{run_evaluation, DriverOptions, EvaluationRun};
use jmake_kbuild::{BuildEngine, BuildError, ConfigKind, ObjectCache, SourceTree};
use jmake_synth::WorkloadProfile;
use jmake_vcs::LogOptions;
use std::sync::Arc;

/// A one-driver kernel, small enough to reason about cache counters.
fn tiny_tree() -> SourceTree {
    let mut tree = SourceTree::new();
    tree.insert("Kconfig", "config DRV\n\tbool \"drv\"\n");
    tree.insert("arch/x86_64/Kconfig", "config X86_64\n\tdef_bool y\n");
    tree.insert("Makefile", "obj-y += drivers/\n");
    tree.insert("drivers/Makefile", "obj-$(CONFIG_DRV) += drv.o\n");
    tree.insert("drivers/drv.c", "int drv_init(void)\n{\nreturn 0;\n}\n");
    tree
}

#[test]
fn mutated_file_never_hits_a_stale_entry() {
    let cache = Arc::new(ObjectCache::new());
    let tree = tiny_tree();
    let mut engine = BuildEngine::new(tree.clone());
    engine.set_object_cache(Arc::clone(&cache));
    let cfg = engine.make_config("x86_64", &ConfigKind::AllYes).unwrap();
    let files = vec!["drivers/drv.c".to_string()];

    // Cold: one miss, entry stored.
    let first = engine.make_i(&cfg, &tree, &files).unwrap();
    let text_v0 = first[0].1.as_ref().unwrap().text.clone();
    assert_eq!(cache.stats().misses, 1);
    assert_eq!(cache.stats().hits, 0);

    // Same content again: a hit, and the identical artifact.
    let second = engine.make_i(&cfg, &tree, &files).unwrap();
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(second[0].1.as_ref().unwrap().text, text_v0);

    // Changed content: the blob hash changes, so the stale entry cannot
    // be returned — the result must reflect the new content.
    let mut mutated = tree.clone();
    mutated.insert("drivers/drv.c", "int drv_init(void)\n{\nreturn 1;\n}\n");
    let third = engine.make_i(&cfg, &mutated, &files).unwrap();
    let text_v1 = third[0].1.as_ref().unwrap().text.clone();
    assert_ne!(text_v1, text_v0);
    assert!(text_v1.contains("return 1"));
    assert_eq!(cache.stats().misses, 2);

    // And flipping back still hits the original entry, not the new one.
    let fourth = engine.make_i(&cfg, &tree, &files).unwrap();
    assert_eq!(fourth[0].1.as_ref().unwrap().text, text_v0);
    assert_eq!(cache.stats().hits, 2);
}

#[test]
fn failed_preprocessing_is_cached_negatively() {
    let cache = Arc::new(ObjectCache::new());
    let mut tree = tiny_tree();
    tree.insert("drivers/drv.c", "#error boom\nint drv_init(void) { return 0; }\n");
    let mut engine = BuildEngine::new(tree.clone());
    engine.set_object_cache(Arc::clone(&cache));
    let cfg = engine.make_config("x86_64", &ConfigKind::AllYes).unwrap();
    let files = vec!["drivers/drv.c".to_string()];

    let first = engine.make_i(&cfg, &tree, &files).unwrap();
    let err1 = first[0].1.as_ref().unwrap_err().to_string();
    assert!(
        matches!(
            first[0].1.as_ref().unwrap_err(),
            BuildError::PreprocessFailed { .. }
        ),
        "expected a preprocess failure, got {err1}"
    );
    assert_eq!(cache.stats().misses, 1);
    assert_eq!(cache.stats().negative_hits, 0);

    // The error itself is served from the cache the second time.
    let second = engine.make_i(&cfg, &tree, &files).unwrap();
    assert_eq!(second[0].1.as_ref().unwrap_err().to_string(), err1);
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(cache.stats().negative_hits, 1);

    // make_o on the same broken file: its own (O-kind) entry, also
    // negative, also replayed on the second call.
    let o1 = engine.make_o(&cfg, &tree, "drivers/drv.c").unwrap_err();
    let o2 = engine.make_o(&cfg, &tree, "drivers/drv.c").unwrap_err();
    assert_eq!(o1.to_string(), o2.to_string());
    assert_eq!(cache.stats().negative_hits, 2);
}

fn eval(
    workload: &jmake_synth::SynthOutput,
    commits: &[jmake_vcs::CommitId],
    workers: usize,
    shared_cache: bool,
    object_cache: bool,
    work_stealing: bool,
    handle: Option<Arc<ObjectCache>>,
) -> EvaluationRun {
    run_evaluation(
        &workload.repo,
        commits,
        &DriverOptions {
            workers,
            shared_cache,
            object_cache,
            work_stealing,
            object_cache_handle: handle,
            ..DriverOptions::default()
        },
    )
}

/// The full matrix the issue calls out: {workers 1, 8} × {object cache
/// on/off} × {shared config cache on/off}, work stealing enabled wherever
/// its prerequisites hold. Reports AND Figure-4 sample streams must match
/// the most conservative configuration bit for bit.
#[test]
fn reports_and_samples_bit_identical_across_the_matrix() {
    let profile = WorkloadProfile {
        commits: 30,
        ..WorkloadProfile::tiny()
    };
    let workload = jmake_synth::generate(&profile);
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .unwrap();
    assert!(!commits.is_empty());

    let baseline = eval(&workload, &commits, 1, false, false, false, None);
    assert_eq!(baseline.results.len(), commits.len());

    for workers in [1, 8] {
        for object_cache in [false, true] {
            for shared_cache in [false, true] {
                let run = eval(
                    &workload,
                    &commits,
                    workers,
                    shared_cache,
                    object_cache,
                    true,
                    None,
                );
                let label = format!(
                    "workers={workers} shared={shared_cache} object={object_cache}"
                );
                assert_eq!(run.results, baseline.results, "reports differ: {label}");
                assert_eq!(run.samples, baseline.samples, "samples differ: {label}");
            }
        }
    }

    // Stealing explicitly off at 8 workers with both caches on.
    let run = eval(&workload, &commits, 8, true, true, false, None);
    assert_eq!(run.results, baseline.results);
    assert_eq!(run.samples, baseline.samples);
}

/// A warm cache reused across runs (cold vs warm) changes wall-clock
/// only: identical reports and samples, and the warm run actually hits.
#[test]
fn warm_cache_replays_identically_and_hits() {
    let profile = WorkloadProfile {
        commits: 20,
        ..WorkloadProfile::tiny()
    };
    let workload = jmake_synth::generate(&profile);
    let commits = workload
        .repo
        .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
        .unwrap();

    let handle = Arc::new(ObjectCache::new());
    let cold = eval(
        &workload,
        &commits,
        4,
        true,
        true,
        true,
        Some(Arc::clone(&handle)),
    );
    let warm = eval(
        &workload,
        &commits,
        4,
        true,
        true,
        true,
        Some(Arc::clone(&handle)),
    );
    assert_eq!(cold.results, warm.results);
    assert_eq!(cold.samples, warm.samples);
    assert!(
        warm.stats.object.hits > cold.stats.object.hits,
        "warm run should hit the pre-populated cache (cold {} vs warm {})",
        cold.stats.object.hits,
        warm.stats.object.hits
    );
    assert_eq!(warm.results.len(), commits.len());
}
