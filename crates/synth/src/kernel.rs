//! Generation of the miniature kernel tree.

use crate::names::{dev_name, DRIVER_STEMS, SUBSYSTEMS};
use crate::profile::WorkloadProfile;
use jmake_kbuild::SourceTree;
use rand::rngs::StdRng;
use rand::Rng;

/// One generated driver/source unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverInfo {
    /// Short name (`falcon0`).
    pub name: String,
    /// Subsystem directory (`drivers/net`).
    pub subsystem: String,
    /// Gating Kconfig symbol (`FALCON0_NET`), `None` for `obj-y` files.
    pub config: Option<String>,
    /// The `.c` file.
    pub c_path: String,
    /// Local header, when the driver has one.
    pub h_path: Option<String>,
    /// Non-host architecture this driver is restricted to, if any.
    pub arch_specific: Option<String>,
    /// Index of the shared header the driver includes.
    pub shared_header: usize,
}

/// One shared header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderInfo {
    /// Path under `include/linux/`.
    pub path: String,
    /// The function-like macro it defines (used by drivers).
    pub macro_name: String,
}

/// Everything the commit generator needs to know about the tree.
#[derive(Debug, Clone, Default)]
pub struct KernelLayout {
    /// All drivers/source units, in generation order.
    pub drivers: Vec<DriverInfo>,
    /// Shared headers.
    pub headers: Vec<HeaderInfo>,
    /// Architectures generated.
    pub arches: Vec<String>,
    /// Files the build system compiles for itself (paper §V.D).
    pub bootstrap_files: Vec<String>,
    /// The whole-kernel-compile trigger (paper §V.C).
    pub heavy_file: String,
    /// Kconfig symbols allyesconfig can never set (depends on `!FULL`
    /// style); used for planted Table IV row-1 edits.
    pub unsettable_configs: Vec<String>,
    /// Documentation files (for doc-only commits).
    pub doc_files: Vec<String>,
}

/// Generate the tree and its layout.
pub fn generate_kernel(profile: &WorkloadProfile, rng: &mut StdRng) -> (SourceTree, KernelLayout) {
    let mut tree = SourceTree::new();
    let mut layout = KernelLayout {
        arches: profile.arches.iter().map(|s| s.to_string()).collect(),
        ..KernelLayout::default()
    };

    generate_arches(profile, &mut tree, &mut layout);
    generate_headers(profile, &mut tree, &mut layout);
    generate_top_level(profile, &mut tree, &mut layout);
    generate_subsystems(profile, &mut tree, &mut layout, rng);
    generate_maintainers(profile, &mut tree, &layout);
    generate_docs(&mut tree, &mut layout);

    (tree, layout)
}

fn generate_arches(profile: &WorkloadProfile, tree: &mut SourceTree, layout: &mut KernelLayout) {
    for (i, arch) in profile.arches.iter().enumerate() {
        let upper = arch.to_uppercase();
        tree.insert(
            format!("arch/{arch}/Kconfig"),
            format!("config {upper}\n\tdef_bool y\n\nconfig {upper}_HAS_DMA\n\tdef_bool y\n"),
        );
        tree.insert(
            format!("arch/{arch}/include/asm/arch.h"),
            format!(
                "#ifndef _ASM_{upper}_ARCH_H\n#define _ASM_{upper}_ARCH_H\n#define ARCH_ID {i}\n#define ARCH_PAGE_SHIFT 12\n#define ARCH_DMA_BASE 0x{:x}000\n#endif\n",
                0x40 + i
            ),
        );
        tree.insert(
            format!("arch/{arch}/kernel/Makefile"),
            if *arch == "powerpc" {
                "obj-y += setup.o asm-offsets.o prom_init.o\n".to_string()
            } else {
                "obj-y += setup.o asm-offsets.o\n".to_string()
            },
        );
        tree.insert(
            format!("arch/{arch}/kernel/setup.c"),
            format!(
                "/* arch setup for {arch} */\n#include <asm/arch.h>\n\nint {arch}_setup(void)\n{{\n\tint id = ARCH_ID + 0;\n\treturn id << ARCH_PAGE_SHIFT;\n}}\n"
            ),
        );
        let asm_offsets = format!("arch/{arch}/kernel/asm-offsets.c");
        tree.insert(
            asm_offsets.clone(),
            format!("/* bootstrap: offsets for {arch} */\nint main_offsets(void)\n{{\n\treturn 0;\n}}\n"),
        );
        layout.bootstrap_files.push(asm_offsets);
        // A default configuration enabling the arch's specific drivers,
        // and picking the HZ choice member allyesconfig does not.
        tree.insert(
            format!("arch/{arch}/configs/{arch}_defconfig"),
            format!("CONFIG_{upper}=y\nCONFIG_KERNEL_CORE=y\nCONFIG_HZ_1000=y\n"),
        );
        // A board file so the arch subtree mentions its drivers' configs
        // (filled in by generate_subsystems via append).
        tree.insert(
            format!("arch/{arch}/mach/Makefile"),
            "obj-y += board.o\n".to_string(),
        );
        tree.insert(
            format!("arch/{arch}/mach/board.c"),
            format!("/* board glue for {arch} */\n#include <asm/arch.h>\nint {arch}_board_init(void)\n{{\n\treturn ARCH_DMA_BASE;\n}}\n"),
        );
    }
    let heavy = "arch/powerpc/kernel/prom_init.c";
    tree.insert(
        heavy,
        "/* prom_init: compiling this triggers a whole-kernel build */\nint prom_init(void)\n{\n\treturn 0;\n}\n",
    );
    layout.heavy_file = heavy.to_string();
}

fn generate_headers(profile: &WorkloadProfile, tree: &mut SourceTree, layout: &mut KernelLayout) {
    tree.insert(
        "include/linux/kernel.h",
        "#ifndef _LINUX_KERNEL_H\n#define _LINUX_KERNEL_H\n#define KBUILD_NOP(x) (x)\n#define ARRAY_COUNT(a) (sizeof(a) / sizeof((a)[0]))\n#define pr_info(fmt) kbuild_log(fmt)\nint kbuild_log(const char *fmt);\n#endif\n",
    );
    for i in 0..profile.shared_headers {
        let path = format!("include/linux/shared{i}.h");
        let mac = format!("SHARED{i}_SCALE");
        tree.insert(
            &path,
            format!(
                "#ifndef _LINUX_SHARED{i}_H\n#define _LINUX_SHARED{i}_H\n/* shared helper {i} */\n#define SHARED{i}_BASE {base}\n#define {mac}(x) \\\n\t(((x) + SHARED{i}_BASE) << 1)\n#define SHARED{i}_SPARE(x) ((x) | 1)\n#endif\n",
                base = 10 + i,
            ),
        );
        layout.headers.push(HeaderInfo {
            path,
            macro_name: mac,
        });
    }
}

fn generate_top_level(
    _profile: &WorkloadProfile,
    tree: &mut SourceTree,
    layout: &mut KernelLayout,
) {
    let subsystem_dirs: Vec<&str> = SUBSYSTEMS.iter().map(|(d, _, _)| *d).collect();
    let top_dirs: Vec<&str> = {
        let mut seen = Vec::new();
        for d in &subsystem_dirs {
            let top = d.split('/').next().expect("non-empty dir");
            if !seen.contains(&top) {
                seen.push(top);
            }
        }
        seen
    };
    tree.insert(
        "Makefile",
        top_dirs
            .iter()
            .map(|d| format!("obj-y += {d}/\n"))
            .collect::<String>(),
    );
    // drivers/Makefile descends into each drivers/<x> subsystem.
    let driver_subdirs: Vec<&str> = subsystem_dirs
        .iter()
        .filter_map(|d| d.strip_prefix("drivers/"))
        .collect();
    tree.insert(
        "drivers/Makefile",
        driver_subdirs
            .iter()
            .map(|d| format!("obj-y += {d}/\n"))
            .collect::<String>(),
    );
    // Top-level Kconfig: core symbols + sources + a kernel-style timer
    // frequency choice (allyesconfig is *forced to make a choice*; the
    // arch defconfigs pick the other member).
    let mut kconfig = String::from(
        "config KERNEL_CORE\n\tdef_bool y\n\nconfig EXPERT\n\tbool \"Expert options\"\n\nconfig SLIMLINE\n\tbool \"Slim build\"\n\tdepends on !KERNEL_CORE\n\nconfig DEAD_OPTION\n\tbool \"Dead\"\n\tdepends on MISSING_EVERYWHERE\n\nchoice\n\tprompt \"Timer frequency\"\nconfig HZ_100\n\tbool \"100 Hz\"\nconfig HZ_1000\n\tbool \"1000 Hz\"\nendchoice\n\n",
    );
    for (dir, _, _) in SUBSYSTEMS {
        kconfig.push_str(&format!("source \"{dir}/Kconfig\"\n"));
    }
    tree.insert("Kconfig", kconfig);
    layout.unsettable_configs.push("SLIMLINE".to_string());
    // The bootstrap file every build touches first.
    tree.insert(
        "kernel/bounds.c",
        "/* bootstrap: generates bounds.h during setup */\nint kernel_bounds(void)\n{\n\treturn 64;\n}\n",
    );
    layout.bootstrap_files.push("kernel/bounds.c".to_string());
}

fn generate_subsystems(
    profile: &WorkloadProfile,
    tree: &mut SourceTree,
    layout: &mut KernelLayout,
    rng: &mut StdRng,
) {
    let non_host: Vec<&str> = profile.arches.iter().skip(1).copied().collect();
    for (s_idx, (dir, parent_sym, _list)) in SUBSYSTEMS.iter().enumerate() {
        let is_core = !dir.starts_with("drivers/");
        let mut kconfig = format!("config {parent_sym}\n\tdef_bool y\n\n");
        let mut makefile = String::new();
        for d_idx in 0..profile.drivers_per_subsystem {
            let stem = DRIVER_STEMS[(s_idx * 7 + d_idx) % DRIVER_STEMS.len()];
            let name = format!("{stem}{s_idx}_{d_idx}");
            let upper = name.to_uppercase();
            let shared = rng.gen_range(0..profile.shared_headers.max(1));
            // Some core-subsystem files are unconditionally built.
            let unconditional = is_core && d_idx % 2 == 0;
            let arch_specific = if !unconditional
                && !non_host.is_empty()
                && rng.gen_bool(profile.arch_specific_driver_rate)
            {
                Some(non_host[rng.gen_range(0..non_host.len())].to_string())
            } else {
                None
            };
            let config = if unconditional {
                None
            } else {
                Some(upper.clone())
            };
            if let Some(cfg) = &config {
                let dep = match &arch_specific {
                    // A third of arch-specific drivers also exclude EXPERT
                    // builds: allyesconfig (which sets EXPERT=y) can never
                    // enable them, but the arch defconfig can — the
                    // prepared-configuration benefit of paper §V.B
                    // (84% → 85%).
                    Some(a) if d_idx % 3 == 0 => format!(
                        "\tdepends on {parent_sym} && {} && !EXPERT\n",
                        a.to_uppercase()
                    ),
                    Some(a) => format!("\tdepends on {parent_sym} && {}\n", a.to_uppercase()),
                    None => format!("\tdepends on {parent_sym}\n"),
                };
                kconfig.push_str(&format!(
                    "config {cfg}\n\ttristate \"{name} driver\"\n{dep}\n"
                ));
                makefile.push_str(&format!("obj-$(CONFIG_{cfg}) += {name}.o\n"));
            } else {
                makefile.push_str(&format!("obj-y += {name}.o\n"));
            }
            let has_local_header = d_idx % 3 == 0;
            let h_path = has_local_header.then(|| format!("{dir}/{name}.h"));
            let c_path = format!("{dir}/{name}.c");
            tree.insert(
                c_path.clone(),
                driver_c(&name, dir, shared, h_path.is_some(), &arch_specific),
            );
            if let Some(h) = &h_path {
                tree.insert(h.clone(), driver_h(&name));
            }
            // Arch-specific drivers get mentioned by their arch's board
            // file, feeding the §III.C heuristic.
            if let (Some(arch), Some(cfg)) = (&arch_specific, &config) {
                let board = format!("arch/{arch}/mach/board.c");
                let mut content = tree.get(&board).unwrap_or_default().to_string();
                content.push_str(&format!(
                    "#ifdef CONFIG_{cfg}\nint {arch}_{name}_wired;\n#endif\n"
                ));
                tree.insert(board, content);
                // And the arch defconfig enables it.
                let dc = format!("arch/{arch}/configs/{arch}_defconfig");
                let mut content = tree.get(&dc).unwrap_or_default().to_string();
                content.push_str(&format!("CONFIG_{cfg}=y\nCONFIG_{parent_sym}=y\n"));
                tree.insert(dc, content);
            }
            layout.drivers.push(DriverInfo {
                name,
                subsystem: dir.to_string(),
                config,
                c_path,
                h_path,
                arch_specific,
                shared_header: shared,
            });
        }
        tree.insert(format!("{dir}/Kconfig"), kconfig);
        tree.insert(format!("{dir}/Makefile"), makefile);
    }
    // kernel/ already hosts bounds.c: extend its Makefile.
    let mut km = tree.get("kernel/Makefile").unwrap_or_default().to_string();
    km.push_str("obj-y += bounds.o\n");
    tree.insert("kernel/Makefile", km);
}

/// The driver `.c` template, full of recognizable knobs the commit
/// generator edits.
fn driver_c(
    name: &str,
    dir: &str,
    shared: usize,
    local_header: bool,
    arch_specific: &Option<String>,
) -> String {
    let upper = name.to_uppercase();
    let mut s = String::new();
    s.push_str(&format!(
        "/*\n * {name}: synthetic driver in {dir}\n * exercises shared{shared}.h helpers\n */\n"
    ));
    s.push_str("#include <linux/kernel.h>\n");
    s.push_str(&format!("#include <linux/shared{shared}.h>\n"));
    if local_header {
        s.push_str(&format!("#include \"{name}.h\"\n"));
    }
    if arch_specific.is_some() {
        s.push_str("#include <asm/arch.h>\n");
    }
    s.push_str(&format!(
        "\n#define {upper}_REG(x) (((x) & 0xf) << 2)\n#define {upper}_IRQ 14\n"
    ));
    let units = if local_header {
        format!("\n\tv += {upper}_MAX_UNITS;")
    } else {
        String::new()
    };
    s.push_str(&format!(
        "\nstatic int {name}_threshold = 10;\n\nint {name}_probe(void)\n{{\n\tint v = {upper}_REG(3) + SHARED{shared}_SCALE(2) + {upper}_IRQ;{units}\n\treturn v + {name}_threshold + 0;\n}}\n"
    ));
    if arch_specific.is_some() {
        s.push_str(&format!(
            "\nint {name}_map(void)\n{{\n\treturn ARCH_DMA_BASE + {upper}_IRQ;\n}}\n"
        ));
    }
    s.push_str(&format!(
        "\nint {name}_remove(void)\n{{\n\tpr_info(\"{name}: removed\");\n\treturn 0;\n}}\n"
    ));
    s
}

fn driver_h(name: &str) -> String {
    let upper = name.to_uppercase();
    format!(
        "#ifndef _{upper}_H\n#define _{upper}_H\n/* interface of {name} */\n#define {upper}_MAX_UNITS 4\n#define {upper}_UNIT(x) ((x) % {upper}_MAX_UNITS)\nint {name}_probe(void);\nint {name}_remove(void);\n#endif\n"
    )
}

fn generate_maintainers(profile: &WorkloadProfile, tree: &mut SourceTree, layout: &KernelLayout) {
    let mut text = String::new();
    let m_count = profile.maintainers.max(1);
    for (i, (dir, _, list)) in SUBSYSTEMS.iter().enumerate() {
        let maint = dev_name("maint", i % m_count);
        text.push_str(&format!(
            "{} SUBSYSTEM\nM:\t{maint} <m{i}@example.org>\nL:\t{list}\nF:\t{dir}/\n\n",
            dir.to_uppercase().replace('/', " ")
        ));
    }
    // Finer-grained entries per driver group, so breadth-first developers
    // cross many MAINTAINERS entries (the paper's subsystem proxy).
    for (i, drv) in layout.drivers.iter().enumerate() {
        if i % 3 != 0 {
            continue;
        }
        let maint = dev_name("maint", (i / 3) % m_count);
        let list = SUBSYSTEMS
            .iter()
            .find(|(d, _, _)| *d == drv.subsystem)
            .map(|(_, _, l)| *l)
            .unwrap_or("linux-kernel@vger.example.org");
        text.push_str(&format!(
            "{} DRIVER\nM:\t{maint} <d{i}@example.org>\nL:\t{list}\nF:\t{}\n",
            drv.name.to_uppercase(),
            drv.c_path
        ));
        if let Some(h) = &drv.h_path {
            text.push_str(&format!("F:\t{h}\n"));
        }
        text.push('\n');
    }
    tree.insert("MAINTAINERS", text);
}

fn generate_docs(tree: &mut SourceTree, layout: &mut KernelLayout) {
    for (topic, body) in [
        (
            "Documentation/networking/netdev-FAQ.txt",
            "All changes should be tested with allyesconfig and allmodconfig.\n",
        ),
        (
            "Documentation/process/submitting.txt",
            "Compile-test your patches.\n",
        ),
        ("tools/perf/builtin-stat.c", "int perf_stat;\n"),
        ("scripts/checkpatch.pl", "# style checker\n"),
    ] {
        tree.insert(topic, body);
        layout.doc_files.push(topic.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmake_kbuild::{BuildEngine, ConfigKind};
    use rand::SeedableRng;

    fn generate() -> (SourceTree, KernelLayout) {
        let profile = WorkloadProfile::tiny();
        let mut rng = StdRng::seed_from_u64(profile.seed);
        generate_kernel(&profile, &mut rng)
    }

    #[test]
    fn tree_has_kernel_shape() {
        let (tree, layout) = generate();
        assert!(tree.contains("Kconfig"));
        assert!(tree.contains("Makefile"));
        assert!(tree.contains("MAINTAINERS"));
        assert!(tree.contains("arch/x86_64/Kconfig"));
        assert!(tree.contains("include/linux/kernel.h"));
        assert!(!layout.drivers.is_empty());
        assert!(layout
            .bootstrap_files
            .contains(&"kernel/bounds.c".to_string()));
        assert_eq!(layout.heavy_file, "arch/powerpc/kernel/prom_init.c");
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = generate();
        let (b, _) = generate();
        assert_eq!(a, b);
    }

    #[test]
    fn host_allyesconfig_builds_and_enables_drivers() {
        let (tree, layout) = generate();
        let mut engine = BuildEngine::new(tree);
        let cfg = engine.make_config("x86_64", &ConfigKind::AllYes).unwrap();
        let enabled = layout
            .drivers
            .iter()
            .filter(|d| d.config.as_ref().is_some_and(|c| cfg.config.is_enabled(c)))
            .count();
        assert!(enabled > 0, "no gated driver enabled");
        // Arch-specific drivers must NOT be enabled on the host.
        for d in layout.drivers.iter().filter(|d| d.arch_specific.is_some()) {
            let c = d.config.as_ref().unwrap();
            assert!(!cfg.config.is_enabled(c), "{c} enabled on host");
        }
    }

    #[test]
    fn every_driver_compiles_for_its_arch() {
        let (tree, layout) = generate();
        let mut engine = BuildEngine::new(tree.clone());
        for d in &layout.drivers {
            let arch = d.arch_specific.clone().unwrap_or_else(|| "x86_64".into());
            let cfg = engine.make_config(&arch, &ConfigKind::AllYes).unwrap();
            let allyes = engine.make_o(&cfg, &tree, &d.c_path);
            if allyes.is_ok() {
                continue;
            }
            // !EXPERT drivers are unreachable by allyesconfig by design;
            // their arch defconfig must build them instead.
            let kind = ConfigKind::Defconfig(format!("arch/{arch}/configs/{arch}_defconfig"));
            let cfg = engine.make_config(&arch, &kind).unwrap();
            let via_defconfig = engine.make_o(&cfg, &tree, &d.c_path);
            assert!(
                via_defconfig.is_ok(),
                "{}: allyes {:?}, defconfig {:?}",
                d.c_path,
                allyes,
                via_defconfig
            );
        }
    }

    #[test]
    fn unsettable_config_really_is_unsettable() {
        let (tree, layout) = generate();
        let mut engine = BuildEngine::new(tree);
        let cfg = engine.make_config("x86_64", &ConfigKind::AllYes).unwrap();
        for c in &layout.unsettable_configs {
            assert!(!cfg.config.is_enabled(c), "{c} should be unsettable");
        }
    }

    #[test]
    fn defconfigs_exist_and_resolve() {
        let (tree, _) = generate();
        let mut engine = BuildEngine::new(tree);
        let kind = ConfigKind::Defconfig("arch/arm/configs/arm_defconfig".to_string());
        let cfg = engine.make_config("arm", &kind).unwrap();
        assert!(cfg.config.is_enabled("ARM"));
    }

    #[test]
    fn maintainers_parse_and_cover_drivers() {
        let (tree, layout) = generate();
        let m = jmake_janitor::Maintainers::parse(tree.get("MAINTAINERS").unwrap());
        assert!(m.len() >= SUBSYSTEMS.len());
        for d in &layout.drivers {
            assert!(
                !m.entries_for(&d.c_path).is_empty(),
                "{} not covered by MAINTAINERS",
                d.c_path
            );
        }
    }
}
