//! Synthetic Linux-kernel workload generation for the JMake evaluation.
//!
//! The paper evaluates JMake over the real kernel tree and the 12,946
//! commits between v4.3 and v4.4. Neither is available here, so this crate
//! generates the closest synthetic equivalent (see DESIGN.md §1):
//!
//! - [`kernel`] — a miniature kernel-shaped [`SourceTree`]: per-arch
//!   `arch/<a>/{Kconfig,kernel,include,configs}`, subsystem directories
//!   with Kconfig files and Kbuild makefiles, drivers with macros,
//!   comments and conditional-compilation blocks, shared headers, a
//!   MAINTAINERS file, bootstrap files (`kernel/bounds.c`,
//!   `asm-offsets.c`) and the `prom_init.c` heavy-file analogue;
//! - [`authors`] — developer personas: breadth-first janitors (named
//!   after the paper's Table II), subsystem maintainers, and regular
//!   contributors, plus the long pre-window activity log the janitor
//!   analysis observes (v3.0→v4.3 in the paper);
//! - [`commits`] — the evaluated commit stream: merges, documentation-only
//!   commits, ordinary fixes, and deliberately planted pathological edits
//!   matching every row of the paper's Table IV, at rates set by the
//!   [`WorkloadProfile`].
//!
//! Everything is deterministic in the profile's seed.

pub mod authors;
pub mod commits;
pub mod kernel;
pub mod names;
pub mod profile;

pub use authors::{Persona, Role};
pub use commits::{CommitInfo, PathologyKind, PlantedPathology, SynthOutput};
pub use kernel::{DriverInfo, KernelLayout};
pub use profile::WorkloadProfile;

use jmake_kbuild::SourceTree;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generate the full workload: base tree, commit stream, activity log.
pub fn generate(profile: &WorkloadProfile) -> SynthOutput {
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let (tree, layout) = kernel::generate_kernel(profile, &mut rng);
    let personas = authors::personas(profile, &layout, &mut rng);
    commits::generate_stream(profile, tree, layout, &personas, &mut rng)
}

/// Convenience: just the base tree (for examples and benches that need a
/// kernel but no history).
pub fn generate_tree(profile: &WorkloadProfile) -> (SourceTree, KernelLayout) {
    let mut rng = StdRng::seed_from_u64(profile.seed);
    kernel::generate_kernel(profile, &mut rng)
}
