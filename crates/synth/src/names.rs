//! Deterministic name pools for the generator.

/// Subsystem directories (under the tree root) with their parent Kconfig
/// symbol and mailing list.
pub const SUBSYSTEMS: &[(&str, &str, &str)] = &[
    ("drivers/net", "NET_DRIVERS", "netdev@vger.example.org"),
    ("drivers/usb", "USB_SUPPORT", "linux-usb@vger.example.org"),
    ("drivers/gpu", "GPU_SUPPORT", "dri-devel@lists.example.org"),
    ("drivers/staging", "STAGING", "devel@driverdev.example.org"),
    ("drivers/char", "CHAR_MISC", "linux-kernel@vger.example.org"),
    ("drivers/dma", "DMADEVICES", "dmaengine@vger.example.org"),
    ("drivers/i2c", "I2C_SUPPORT", "linux-i2c@vger.example.org"),
    ("drivers/spi", "SPI_SUPPORT", "linux-spi@vger.example.org"),
    ("drivers/mmc", "MMC_SUPPORT", "linux-mmc@vger.example.org"),
    (
        "drivers/media",
        "MEDIA_SUPPORT",
        "linux-media@vger.example.org",
    ),
    ("fs", "FS_SUPPORT", "linux-fsdevel@vger.example.org"),
    ("sound", "SOUND", "alsa-devel@alsa-project.example.org"),
    ("net", "NET", "netdev@vger.example.org"),
    ("crypto", "CRYPTO", "linux-crypto@vger.example.org"),
    ("block", "BLOCK", "linux-block@vger.example.org"),
    ("mm", "MM_CORE", "linux-mm@kvack.example.org"),
    ("kernel", "KERNEL_CORE", "linux-kernel@vger.example.org"),
    ("lib", "LIB_CORE", "linux-kernel@vger.example.org"),
];

/// Driver base names, reused across subsystems with numeric suffixes.
pub const DRIVER_STEMS: &[&str] = &[
    "falcon",
    "osprey",
    "heron",
    "kestrel",
    "merlin",
    "harrier",
    "condor",
    "swift",
    "plover",
    "avocet",
    "dunlin",
    "godwit",
    "curlew",
    "lapwing",
    "sanderling",
    "turnstone",
    "whimbrel",
    "redshank",
    "snipe",
    "woodcock",
];

/// The ten janitor personas — named after the paper's Table II.
pub const JANITORS: &[&str] = &[
    "Javier Martinez Canillas",
    "Luis de Bethencourt",
    "Dan Carpenter",
    "Julia Lawall",
    "Shraddha Barke",
    "Joe Perches",
    "Axel Lin",
    "Daniel Borkmann",
    "Fabio Estevam",
    "Jarkko Nikula",
];

/// Per-janitor pre-window patch volume, proportional to Table II's patch
/// counts (118, 104, 1554, 653, 160, 1078, 1044, 121, 790, 173).
pub const JANITOR_VOLUMES: &[usize] = &[118, 104, 1554, 653, 160, 1078, 1044, 121, 790, 173];

/// Per-janitor target file-cv (Table II's cv column, ×100).
pub const JANITOR_CV_X100: &[usize] = &[25, 41, 43, 67, 72, 81, 92, 129, 129, 135];

/// First/last name pools for generated maintainers and regular devs.
pub const FIRST_NAMES: &[&str] = &[
    "Alex", "Bryn", "Chris", "Dana", "Eli", "Finn", "Gael", "Harper", "Ira", "Jules", "Kim", "Lee",
    "Morgan", "Noor", "Otto", "Page", "Quinn", "Ray", "Sasha", "Tay",
];
pub const LAST_NAMES: &[&str] = &[
    "Adler", "Berg", "Costa", "Dietrich", "Egger", "Fischer", "Grau", "Huber", "Iversen", "Jansen",
    "Koch", "Lang", "Maier", "Novak", "Olsen", "Petit", "Quast", "Roth", "Schmid", "Toth",
];

/// A deterministic full name for index `i` within a role pool.
pub fn dev_name(role: &str, i: usize) -> String {
    let f = FIRST_NAMES[i % FIRST_NAMES.len()];
    let l = LAST_NAMES[(i / FIRST_NAMES.len() + i) % LAST_NAMES.len()];
    format!("{f} {l} ({role}{i})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_consistent() {
        assert_eq!(JANITORS.len(), 10);
        assert_eq!(JANITOR_VOLUMES.len(), 10);
        assert_eq!(JANITOR_CV_X100.len(), 10);
        assert!(SUBSYSTEMS.len() >= 15);
        assert!(DRIVER_STEMS.len() >= 20);
    }

    #[test]
    fn dev_names_unique_within_pool() {
        let names: std::collections::BTreeSet<String> =
            (0..60).map(|i| dev_name("dev", i)).collect();
        assert_eq!(names.len(), 60);
    }
}
