//! The tunable workload profile.

/// Every knob of the synthetic workload. Defaults are calibrated so the
/// JMake evaluation over the generated stream reproduces the *shape* of
/// the paper's results (see EXPERIMENTS.md for paper-vs-measured).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Master seed; everything is deterministic in it.
    pub seed: u64,

    // ---- tree shape ----
    /// Architectures to generate under `arch/` (first is the host).
    pub arches: Vec<&'static str>,
    /// Drivers per subsystem directory.
    pub drivers_per_subsystem: usize,
    /// Shared headers under `include/linux/`.
    pub shared_headers: usize,
    /// Fraction of drivers whose Kconfig symbol depends on a non-host
    /// architecture (the paper's 365 non-arch instances that only compile
    /// elsewhere).
    pub arch_specific_driver_rate: f64,

    // ---- commit stream ----
    /// Commits in the evaluated window (paper: 12,946; default scaled).
    pub commits: usize,
    /// Fraction of merge commits (filtered by `--no-merges`).
    pub merge_rate: f64,
    /// Fraction of commits touching only Documentation/tools/scripts
    /// (paper: 2,099 of 12,946 ignored ≈ 16%).
    pub doc_only_rate: f64,
    /// Fraction of window commits authored by janitor personas
    /// (paper: 591 of ~11,057 considered patches).
    pub janitor_rate: f64,
    /// Files touched per patch: probability of a second/third file.
    pub multi_file_rate: f64,
    /// Among source patches: fraction touching a header too
    /// (Table III: 23% both, 5% h-only overall; janitors 10% / 2%).
    pub header_touch_rate: f64,
    pub header_only_rate: f64,
    /// Janitor-specific overrides for the two rates above.
    pub janitor_header_touch_rate: f64,
    pub janitor_header_only_rate: f64,
    /// Fraction of edits that are comment-only.
    pub comment_edit_rate: f64,
    /// Fraction of edits that change a macro definition.
    pub macro_edit_rate: f64,

    // ---- pathology rates (per source-touching patch) ----
    /// `#ifdef CONFIG_X` where allyesconfig cannot set X.
    pub p_under_unset_config: f64,
    /// `#ifdef CONFIG_X` where X is declared nowhere.
    pub p_under_never_config: f64,
    /// `#ifdef MODULE`.
    pub p_under_module: f64,
    /// `#ifndef …` / `#else` of a satisfied guard.
    pub p_under_ifndef_or_else: f64,
    /// Changes in both branches of one conditional.
    pub p_both_branches: f64,
    /// `#if 0`.
    pub p_if_zero: f64,
    /// New or edited macro that nothing expands.
    pub p_unused_macro: f64,
    /// Patch touches a bootstrap file (paper §V.D: ≈2%).
    pub p_bootstrap: f64,
    /// Patch touches the heavy `prom_init.c` analogue (paper: 3 patches).
    pub p_heavy: f64,
    /// Janitor pathology multiplier (<1: janitors trip slightly less
    /// often — 88% vs 85% success in the paper).
    pub janitor_pathology_factor: f64,

    // ---- pre-window activity (janitor analysis observation period) ----
    /// Regular developers to simulate.
    pub regular_devs: usize,
    /// Maintainer personas (one to two subsystems each).
    pub maintainers: usize,
    /// Scale factor on the per-persona pre-window patch counts.
    pub prewindow_scale: f64,
}

impl Default for WorkloadProfile {
    fn default() -> Self {
        WorkloadProfile {
            seed: 0x4a4d414b45, // "JMAKE"
            arches: vec![
                "x86_64", "arm", "powerpc", "mips", "blackfin", "parisc", "s390", "sparc",
            ],
            drivers_per_subsystem: 12,
            shared_headers: 18,
            arch_specific_driver_rate: 0.06,
            commits: 1_200,
            merge_rate: 0.055,
            doc_only_rate: 0.16,
            janitor_rate: 0.054,
            multi_file_rate: 0.35,
            header_touch_rate: 0.25,
            header_only_rate: 0.055,
            janitor_header_touch_rate: 0.105,
            janitor_header_only_rate: 0.022,
            comment_edit_rate: 0.10,
            macro_edit_rate: 0.15,
            p_under_unset_config: 0.035,
            p_under_never_config: 0.032,
            p_under_module: 0.020,
            p_under_ifndef_or_else: 0.018,
            p_both_branches: 0.008,
            p_if_zero: 0.008,
            p_unused_macro: 0.032,
            p_bootstrap: 0.024,
            p_heavy: 0.003,
            janitor_pathology_factor: 0.55,
            regular_devs: 60,
            maintainers: 24,
            prewindow_scale: 1.0,
        }
    }
}

impl WorkloadProfile {
    /// The paper-scale variant: ~12,000 commits.
    pub fn full_scale() -> Self {
        WorkloadProfile {
            commits: 12_000,
            ..WorkloadProfile::default()
        }
    }

    /// A tiny profile for unit tests.
    pub fn tiny() -> Self {
        WorkloadProfile {
            commits: 60,
            drivers_per_subsystem: 4,
            shared_headers: 6,
            regular_devs: 12,
            maintainers: 6,
            prewindow_scale: 0.2,
            ..WorkloadProfile::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rates_are_probabilities() {
        let p = WorkloadProfile::default();
        for v in [
            p.merge_rate,
            p.doc_only_rate,
            p.janitor_rate,
            p.multi_file_rate,
            p.header_touch_rate,
            p.header_only_rate,
            p.comment_edit_rate,
            p.macro_edit_rate,
            p.p_under_unset_config,
            p.p_under_never_config,
            p.p_under_module,
            p.p_under_ifndef_or_else,
            p.p_both_branches,
            p.p_if_zero,
            p.p_unused_macro,
            p.p_bootstrap,
            p.p_heavy,
        ] {
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
        assert_eq!(p.arches[0], "x86_64");
    }

    #[test]
    fn variants_scale() {
        assert!(WorkloadProfile::full_scale().commits >= 12_000);
        assert!(WorkloadProfile::tiny().commits < 100);
    }
}
