//! The evaluated commit stream (v4.3 → v4.4 analogue).

use crate::authors::{prewindow_activity, Persona, Role};
use crate::kernel::{DriverInfo, KernelLayout};
use crate::profile::WorkloadProfile;
use jmake_janitor::{ActivityLog, ActivityRecord};
use jmake_kbuild::SourceTree;
use jmake_vcs::{CommitId, Repo};
use rand::rngs::StdRng;
use rand::Rng;

/// A pathological edit deliberately planted (ground truth for tests and
/// for the Table IV cross-check).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedPathology {
    /// The commit carrying the edit.
    pub commit: CommitId,
    /// The file it was planted in.
    pub path: String,
    /// Which Table IV row it should land in.
    pub kind: PathologyKind,
}

/// The pathology taxonomy (Table IV + §V.C/V.D special files).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PathologyKind {
    /// `#ifdef` on a symbol allyesconfig cannot set.
    UnsetConfig,
    /// `#ifdef` on a symbol declared nowhere.
    NeverConfig,
    /// `#ifdef MODULE`.
    Module,
    /// `#ifndef` on an always-on symbol.
    IfndefOrElse,
    /// Edits in both branches of one conditional.
    BothBranches,
    /// `#if 0`.
    IfZero,
    /// A macro nothing expands.
    UnusedMacro,
    /// Touches a build-system bootstrap file (§V.D).
    Bootstrap,
    /// Touches the whole-kernel-compile trigger (§V.C).
    Heavy,
    /// A host-buildable file gains lines under an arch-specific `#ifdef`
    /// whose variable its Makefile mentions: the first (host) compilation
    /// succeeds but misses lines, and a later architecture rescues them —
    /// the paper's 54-instances case.
    ArchIfdef,
    /// A header macro that no `.c` file expands — the header can never be
    /// certified (the paper's 2% of `.h` instances).
    HeaderUnusedMacro,
}

/// Metadata for one generated commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitInfo {
    /// Repository id.
    pub id: CommitId,
    /// Author name.
    pub author: String,
    /// Merge commit (filtered by the paper's `--no-merges`).
    pub is_merge: bool,
    /// Touches only Documentation/tools/scripts (ignored by the paper).
    pub doc_only: bool,
    /// Authored by a janitor persona.
    pub janitor: bool,
}

/// Everything the evaluation needs.
#[derive(Debug, Clone)]
pub struct SynthOutput {
    /// The repository with the full window history, tagged `v4.3`/`v4.4`.
    pub repo: Repo,
    /// Tree layout of the base snapshot.
    pub layout: KernelLayout,
    /// Names of the ten janitor personas.
    pub janitor_names: Vec<String>,
    /// Pre-window activity (for the §IV analysis).
    pub prewindow: ActivityLog,
    /// Per-commit metadata, in order.
    pub commits: Vec<CommitInfo>,
    /// Ground-truth pathological edits.
    pub planted: Vec<PlantedPathology>,
}

impl SynthOutput {
    /// The combined activity log: pre-window records plus the window's
    /// commits (as the paper's v3.0→v4.4 observation).
    pub fn full_activity_log(&self) -> ActivityLog {
        let mut log = self.prewindow.clone();
        for c in &self.commits {
            if c.is_merge {
                continue;
            }
            if let Ok(files) = self.repo.changed_paths(c.id) {
                if !files.is_empty() {
                    log.push(ActivityRecord {
                        author: c.author.clone(),
                        files,
                        in_window: true,
                    });
                }
            }
        }
        log
    }
}

/// Generate the stream over `tree`.
pub fn generate_stream(
    profile: &WorkloadProfile,
    tree: SourceTree,
    layout: KernelLayout,
    personas: &[Persona],
    rng: &mut StdRng,
) -> SynthOutput {
    let mut repo = Repo::new();
    let mut current = tree;
    let base = repo.commit(&[], "Linus Torvalds", "Linux v4.3", &current);
    repo.tag("v4.3", base);

    let prewindow = prewindow_activity(profile, &layout, personas, rng);
    let janitors: Vec<&Persona> = personas
        .iter()
        .filter(|p| matches!(p.role, Role::Janitor { .. }))
        .collect();
    let others: Vec<&Persona> = personas
        .iter()
        .filter(|p| !matches!(p.role, Role::Janitor { .. }))
        .collect();

    let mut commits = Vec::new();
    let mut planted = Vec::new();
    let mut prev = base;
    let mut unused_macro_counter = 0usize;
    // Rescue pairs: an unconditionally-built file whose Makefile also
    // mentions an arch-specific sibling's config variable.
    let rescue_pairs: Vec<(String, String)> = {
        let mut pairs = Vec::new();
        for d in layout.drivers.iter().filter(|d| d.config.is_none()) {
            if let Some(sibling) = layout.drivers.iter().find(|s| {
                s.subsystem == d.subsystem && s.arch_specific.is_some() && s.config.is_some()
            }) {
                pairs.push((
                    d.c_path.clone(),
                    sibling.config.clone().expect("checked is_some"),
                ));
            }
        }
        pairs
    };

    for i in 0..profile.commits {
        let is_janitor = rng.gen_bool(profile.janitor_rate);
        let persona = if is_janitor {
            janitors[rng.gen_range(0..janitors.len())]
        } else {
            others[rng.gen_range(0..others.len())]
        };
        let author = persona.name.clone();

        // Merge commits: same tree, two parents.
        if i > 2 && rng.gen_bool(profile.merge_rate) {
            let other_parent = repo
                .nth(rng.gen_range(0..repo.len().saturating_sub(1)))
                .expect("repo has commits");
            let id = repo.commit(
                &[prev, other_parent],
                "Linus Torvalds",
                &format!("Merge branch 'topic-{i}'"),
                &current,
            );
            commits.push(CommitInfo {
                id,
                author: "Linus Torvalds".to_string(),
                is_merge: true,
                doc_only: false,
                janitor: false,
            });
            prev = id;
            continue;
        }

        // Documentation/tools-only commits.
        if rng.gen_bool(profile.doc_only_rate) {
            let doc = &layout.doc_files[rng.gen_range(0..layout.doc_files.len())];
            let mut content = current.get(doc).unwrap_or_default().to_string();
            content.push_str(&format!("update {i}\n"));
            current.insert(doc.clone(), content);
            let id = repo.commit(&[prev], &author, &format!("docs: update ({i})"), &current);
            commits.push(CommitInfo {
                id,
                author,
                is_merge: false,
                doc_only: true,
                janitor: is_janitor,
            });
            prev = id;
            continue;
        }

        // Source edit.
        let mut touched_pathology: Option<(String, PathologyKind)> = None;
        self_edit(
            profile,
            &layout,
            persona,
            &mut current,
            rng,
            &mut touched_pathology,
            &mut unused_macro_counter,
            is_janitor,
            &rescue_pairs,
        );
        let id = repo.commit(
            &[prev],
            &author,
            &format!("treewide: cleanup pass {i}"),
            &current,
        );
        if let Some((path, kind)) = touched_pathology {
            planted.push(PlantedPathology {
                commit: id,
                path,
                kind,
            });
        }
        commits.push(CommitInfo {
            id,
            author,
            is_merge: false,
            doc_only: false,
            janitor: is_janitor,
        });
        prev = id;
    }
    repo.tag("v4.4", prev);

    SynthOutput {
        repo,
        layout,
        janitor_names: janitors.iter().map(|p| p.name.clone()).collect(),
        prewindow,
        commits,
        planted,
    }
}

/// Apply one patch's worth of edits to `current`.
#[allow(clippy::too_many_arguments)]
fn self_edit(
    profile: &WorkloadProfile,
    layout: &KernelLayout,
    persona: &Persona,
    current: &mut SourceTree,
    rng: &mut StdRng,
    pathology: &mut Option<(String, PathologyKind)>,
    unused_macro_counter: &mut usize,
    is_janitor: bool,
    rescue_pairs: &[(String, String)],
) {
    let factor = if is_janitor {
        profile.janitor_pathology_factor
    } else {
        1.0
    };
    // Special-file patches first (bootstrap / heavy).
    if rng.gen_bool(profile.p_bootstrap * factor) {
        let path = &layout.bootstrap_files[rng.gen_range(0..layout.bootstrap_files.len())];
        bump_number(current, path);
        *pathology = Some((path.clone(), PathologyKind::Bootstrap));
        return;
    }
    // The prom_init.c analogue is arch-maintainer territory; janitor
    // patches never hit it (the paper's Fig. 6 tops out around 18 min
    // while Fig. 5 reaches 100 min).
    if !is_janitor && rng.gen_bool(profile.p_heavy) {
        bump_number(current, &layout.heavy_file);
        *pathology = Some((layout.heavy_file.clone(), PathologyKind::Heavy));
        return;
    }
    // The choice-member rescue: lines under the HZ member allyesconfig
    // loses land in an arch-specific driver whose defconfig (a §III.C
    // candidate) picks CONFIG_HZ_1000 — the prepared-configuration benefit.
    if rng.gen_bool(0.01) {
        if let Some(drv) = layout
            .drivers
            .iter()
            .filter(|d| d.arch_specific.is_some())
            .nth(rng.gen_range(0..layout.drivers.len().max(1)) % 3)
        {
            if let Some(content) = current.get(&drv.c_path) {
                let name = &drv.name;
                current.insert(
                    drv.c_path.clone(),
                    format!("{content}\n#ifdef CONFIG_HZ_1000\nint {name}_fast_tick;\n#endif\n"),
                );
                bump_number(current, &drv.c_path);
                return;
            }
        }
    }
    // The multi-architecture rescue case: a host-compilable file gains
    // lines under an arch sibling's #ifdef (plus an ordinary edit so the
    // host compilation is useful but incomplete).
    if !rescue_pairs.is_empty() && rng.gen_bool(0.015) {
        let (path, cfg) = &rescue_pairs[rng.gen_range(0..rescue_pairs.len())];
        if let Some(content) = current.get(path) {
            let stem = path
                .rsplit('/')
                .next()
                .unwrap_or("f")
                .trim_end_matches(".c")
                .to_string();
            current.insert(
                path.clone(),
                format!("{content}\n#ifdef CONFIG_{cfg}\nint {stem}_arch_wired_path;\n#endif\n"),
            );
        }
        bump_number(current, path);
        *pathology = Some((path.clone(), PathologyKind::ArchIfdef));
        return;
    }

    let (header_touch, header_only) = if is_janitor {
        (
            profile.janitor_header_touch_rate,
            profile.janitor_header_only_rate,
        )
    } else {
        (profile.header_touch_rate, profile.header_only_rate)
    };

    if rng.gen_bool(header_only) {
        // Header-only patch: tweak a shared header's macro. A slice of
        // these touch the SPARE macro nothing expands — the headers JMake
        // can never certify (paper: 2% of .h instances).
        let h = &layout.headers[rng.gen_range(0..layout.headers.len())];
        if rng.gen_bool(0.12) {
            edit_shared_header_spare(current, &h.path);
            *pathology = Some((h.path.clone(), PathologyKind::HeaderUnusedMacro));
        } else {
            edit_shared_header(current, &h.path);
        }
        return;
    }

    // Pick 1–3 drivers from the persona's range.
    let pool: Vec<&DriverInfo> = layout
        .drivers
        .iter()
        .filter(|d| {
            persona.home_subsystems.is_empty()
                || persona.home_subsystems.contains(&d.subsystem)
                || is_janitor
        })
        .collect();
    let pool = if pool.is_empty() {
        layout.drivers.iter().collect()
    } else {
        pool
    };
    let mut n_files = 1;
    if rng.gen_bool(profile.multi_file_rate) {
        n_files += 1;
        if rng.gen_bool(profile.multi_file_rate) {
            n_files += 1;
        }
    }

    // At most one pathology per patch, decided up front.
    let path_roll: f64 = rng.gen();
    let mut acc = 0.0;
    let mut chosen_pathology = None;
    for (p, kind) in [
        (profile.p_under_unset_config, PathologyKind::UnsetConfig),
        (profile.p_under_never_config, PathologyKind::NeverConfig),
        (profile.p_under_module, PathologyKind::Module),
        (profile.p_under_ifndef_or_else, PathologyKind::IfndefOrElse),
        (profile.p_both_branches, PathologyKind::BothBranches),
        (profile.p_if_zero, PathologyKind::IfZero),
        (profile.p_unused_macro, PathologyKind::UnusedMacro),
    ] {
        acc += p * factor;
        if path_roll < acc {
            chosen_pathology = Some(kind);
            break;
        }
    }

    for f in 0..n_files {
        let drv = pool[rng.gen_range(0..pool.len())];
        if f == 0 {
            if let Some(kind) = chosen_pathology {
                plant_pathology(current, drv, kind, unused_macro_counter);
                *pathology = Some((drv.c_path.clone(), kind));
                continue;
            }
        }
        // Ordinary edit.
        let roll: f64 = rng.gen();
        if roll < profile.comment_edit_rate {
            comment_edit(current, &drv.c_path);
        } else if roll < profile.comment_edit_rate + profile.macro_edit_rate {
            macro_edit(current, &drv.c_path);
        } else {
            bump_number(current, &drv.c_path);
        }
        // Some patches rework a file in several places (the paper's
        // multi-mutation instances: 18% of .c instances need >1).
        if rng.gen_bool(0.15) {
            macro_edit(current, &drv.c_path);
            comment_edit(current, &drv.c_path);
        }
    }
    // Header-touching patches additionally change a header the first
    // driver uses.
    if rng.gen_bool(header_touch) {
        let drv = pool[rng.gen_range(0..pool.len())];
        match &drv.h_path {
            Some(h) if rng.gen_bool(0.5) => edit_local_header(current, h),
            _ => {
                let h = &layout.headers[drv.shared_header % layout.headers.len()];
                edit_shared_header(current, &h.path);
                // Make sure a .c of the patch exercises the header: bump
                // the driver too (this is the common both-.c-and-.h shape).
                bump_number(current, &drv.c_path);
            }
        }
    }
}

/// Increment the first integer literal that follows `= ` or `+ ` on a
/// `return`/initializer knob line.
fn bump_number(tree: &mut SourceTree, path: &str) {
    let Some(content) = tree.get(path) else {
        return;
    };
    let mut lines: Vec<String> = content.lines().map(str::to_string).collect();
    for line in lines.iter_mut() {
        let t = line.trim_start();
        if !(t.starts_with("return") || t.contains("_threshold = ")) {
            continue;
        }
        if let Some(new_line) = bump_in_line(line) {
            *line = new_line;
            tree.insert(path, lines.join("\n") + "\n");
            return;
        }
    }
    // No knob found: append a fresh one inside a new function.
    let name = path
        .rsplit('/')
        .next()
        .unwrap_or("x")
        .trim_end_matches(".c")
        .replace(['-', '.'], "_");
    lines.push(format!(
        "\nint {name}_extra_{}(void)\n{{\n\treturn 0;\n}}",
        lines.len()
    ));
    tree.insert(path, lines.join("\n") + "\n");
}

/// Replace the last integer run in a line with value+1.
fn bump_in_line(line: &str) -> Option<String> {
    let bytes = line.as_bytes();
    let mut end = None;
    for (i, b) in bytes.iter().enumerate().rev() {
        if b.is_ascii_digit() {
            end = Some(i + 1);
            break;
        }
    }
    let end = end?;
    let mut start = end;
    while start > 0 && bytes[start - 1].is_ascii_digit() {
        start -= 1;
    }
    let value: u64 = line[start..end].parse().ok()?;
    Some(format!("{}{}{}", &line[..start], value + 1, &line[end..]))
}

/// Append to a comment line (changed lines that need no compilation).
fn comment_edit(tree: &mut SourceTree, path: &str) {
    let Some(content) = tree.get(path) else {
        return;
    };
    let mut lines: Vec<String> = content.lines().map(str::to_string).collect();
    if let Some(line) = lines.iter_mut().find(|l| l.trim_start().starts_with("* ")) {
        line.push_str(" (tidied)");
    } else {
        lines.insert(0, "/* reviewed */".to_string());
    }
    tree.insert(path, lines.join("\n") + "\n");
}

/// Bump the numeric payload of the driver's `_IRQ` macro definition.
fn macro_edit(tree: &mut SourceTree, path: &str) {
    let Some(content) = tree.get(path) else {
        return;
    };
    let mut lines: Vec<String> = content.lines().map(str::to_string).collect();
    for line in lines.iter_mut() {
        if line.starts_with("#define") && line.contains("_IRQ") {
            if let Some(new_line) = bump_in_line(line) {
                *line = new_line;
                tree.insert(path, lines.join("\n") + "\n");
                return;
            }
        }
    }
    bump_number(tree, path);
}

/// Bump the shift amount in the shared header's SCALE macro (its name is
/// the §III.E hint that leads back to the using drivers), and often the
/// BASE constant too — kernel headers typically change several macros at
/// once, which is why 25% of the paper's `.h` instances need more than
/// one mutation.
fn edit_shared_header(tree: &mut SourceTree, path: &str) {
    let Some(content) = tree.get(path) else {
        return;
    };
    let mut lines: Vec<String> = content.lines().map(str::to_string).collect();
    // A quarter of the headers get a two-macro edit (deterministic in the
    // path so the workload stays reproducible).
    let also_base = path.bytes().map(usize::from).sum::<usize>() % 4 == 0;
    let mut edited = false;
    for line in lines.iter_mut() {
        let is_scale = line.contains("<< ");
        let is_base = also_base && line.contains("_BASE ") && line.starts_with("#define");
        if is_scale || is_base {
            if let Some(new_line) = bump_in_line(line) {
                *line = new_line;
                edited = true;
            }
        }
    }
    if edited {
        tree.insert(path, lines.join("\n") + "\n");
    }
}

/// Bump the OR-mask in the SPARE macro — which no `.c` file ever expands,
/// so the change can never be certified.
fn edit_shared_header_spare(tree: &mut SourceTree, path: &str) {
    let Some(content) = tree.get(path) else {
        return;
    };
    let mut lines: Vec<String> = content.lines().map(str::to_string).collect();
    for line in lines.iter_mut() {
        if line.contains("_SPARE(") {
            if let Some(new_line) = bump_in_line(line) {
                *line = new_line;
                tree.insert(path, lines.join("\n") + "\n");
                return;
            }
        }
    }
}

/// Bump the MAX_UNITS constant in a driver-local header.
fn edit_local_header(tree: &mut SourceTree, path: &str) {
    let Some(content) = tree.get(path) else {
        return;
    };
    let mut lines: Vec<String> = content.lines().map(str::to_string).collect();
    for line in lines.iter_mut() {
        if line.contains("_MAX_UNITS") && line.starts_with("#define") {
            if let Some(new_line) = bump_in_line(line) {
                *line = new_line;
                tree.insert(path, lines.join("\n") + "\n");
                return;
            }
        }
    }
}

/// Append a pathological block to the driver (all its lines are added
/// lines, so JMake must track them).
fn plant_pathology(
    tree: &mut SourceTree,
    drv: &DriverInfo,
    kind: PathologyKind,
    unused_macro_counter: &mut usize,
) {
    let Some(content) = tree.get(&drv.c_path) else {
        return;
    };
    let name = &drv.name;
    let upper = name.to_uppercase();
    let block = match kind {
        PathologyKind::UnsetConfig => format!(
            "\n#ifdef CONFIG_SLIMLINE\nint {name}_slim_mode;\n#endif\n"
        ),
        PathologyKind::NeverConfig => format!(
            "\n#ifdef CONFIG_{upper}_LEGACY_IO\nint {name}_legacy_io;\n#endif\n"
        ),
        PathologyKind::Module => format!(
            "\n#ifdef MODULE\nint {name}_unload_note;\n#endif\n"
        ),
        PathologyKind::IfndefOrElse => format!(
            "\n#ifndef CONFIG_KERNEL_CORE\nint {name}_nocore_fallback;\n#endif\n"
        ),
        PathologyKind::BothBranches => format!(
            "\n#ifdef CONFIG_KERNEL_CORE\nint {name}_core_path;\n#else\nint {name}_alt_path;\n#endif\n"
        ),
        PathologyKind::IfZero => format!(
            "\n#if 0\nint {name}_disabled_experiment;\n#endif\n"
        ),
        PathologyKind::UnusedMacro => {
            *unused_macro_counter += 1;
            format!(
                "\n#define {upper}_SPARE_HELPER_{n}(x) ((x) * 3)\n",
                n = *unused_macro_counter
            )
        }
        // Handled before plant_pathology is ever called.
        PathologyKind::Bootstrap
        | PathologyKind::Heavy
        | PathologyKind::ArchIfdef
        | PathologyKind::HeaderUnusedMacro => String::new(),
    };
    tree.insert(&drv.c_path, format!("{content}{block}"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmake_vcs::LogOptions;

    fn output() -> SynthOutput {
        let profile = WorkloadProfile::tiny();
        crate::generate(&profile)
    }

    #[test]
    fn stream_has_expected_structure() {
        let out = output();
        assert_eq!(out.commits.len(), WorkloadProfile::tiny().commits);
        assert_eq!(out.janitor_names.len(), 10);
        assert!(out.repo.resolve_tag("v4.3").is_ok());
        assert!(out.repo.resolve_tag("v4.4").is_ok());
        let merges = out.commits.iter().filter(|c| c.is_merge).count();
        let docs = out.commits.iter().filter(|c| c.doc_only).count();
        assert!(merges > 0, "no merges generated");
        assert!(docs > 0, "no doc-only commits generated");
    }

    #[test]
    fn paper_log_filters_apply() {
        let out = output();
        let ids = out
            .repo
            .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
            .unwrap();
        // Merges and empty diffs filtered; everything else modifies files.
        let all = out.commits.len();
        assert!(ids.len() < all);
        assert!(ids.len() > all / 2);
        for id in &ids {
            assert!(!out.repo.get(*id).unwrap().is_merge());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = output();
        let b = output();
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.planted, b.planted);
    }

    #[test]
    fn edits_apply_and_produce_diffs() {
        let out = output();
        let ids = out
            .repo
            .log(&LogOptions::paper_defaults().range("v4.3", "v4.4"))
            .unwrap();
        let patch = out.repo.show(ids[0]).unwrap();
        assert!(!patch.files.is_empty());
    }

    #[test]
    fn bump_in_line_increments_last_number() {
        assert_eq!(
            bump_in_line("\treturn v + x_threshold + 0;").unwrap(),
            "\treturn v + x_threshold + 1;"
        );
        assert_eq!(
            bump_in_line("#define X_IRQ 14").unwrap(),
            "#define X_IRQ 15"
        );
        assert_eq!(bump_in_line("no digits"), None);
    }

    #[test]
    fn pathologies_are_planted_at_expected_rates() {
        let profile = WorkloadProfile {
            commits: 400,
            ..WorkloadProfile::tiny()
        };
        let out = crate::generate(&profile);
        assert!(!out.planted.is_empty());
        let kinds: std::collections::BTreeSet<PathologyKind> =
            out.planted.iter().map(|p| p.kind).collect();
        // With 400 commits, at least the common pathologies appear.
        assert!(
            kinds.contains(&PathologyKind::UnsetConfig)
                || kinds.contains(&PathologyKind::NeverConfig)
                || kinds.contains(&PathologyKind::UnusedMacro),
            "{kinds:?}"
        );
    }

    #[test]
    fn full_activity_log_includes_window() {
        let out = output();
        let log = out.full_activity_log();
        let window = log.records.iter().filter(|r| r.in_window).count();
        assert!(window > 0);
        assert!(log.records.len() > out.prewindow.records.len());
    }

    #[test]
    fn planted_pathology_is_visible_in_checkout() {
        let out = output();
        if let Some(p) = out.planted.iter().find(|p| {
            matches!(
                p.kind,
                PathologyKind::UnsetConfig | PathologyKind::NeverConfig | PathologyKind::IfZero
            )
        }) {
            let tree = out.repo.checkout(p.commit).unwrap();
            let content = tree.get(&p.path).unwrap();
            assert!(
                content.contains("#ifdef") || content.contains("#if 0"),
                "{content}"
            );
        }
    }
}
