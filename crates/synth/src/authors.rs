//! Developer personas and the pre-window activity log.

use crate::kernel::KernelLayout;
use crate::names::{dev_name, JANITORS, JANITOR_CV_X100, JANITOR_VOLUMES};
use crate::profile::WorkloadProfile;
use jmake_janitor::{ActivityLog, ActivityRecord};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// What kind of contributor a persona is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// Breadth-first cleanup developer (paper §IV).
    Janitor {
        /// Index into the Table II name pool.
        index: usize,
    },
    /// Depth-first owner of one or two subsystems.
    Maintainer {
        /// Index into the maintainer pool (matches MAINTAINERS entries).
        index: usize,
    },
    /// Ordinary contributor.
    Regular {
        /// Index into the regular pool.
        index: usize,
    },
}

/// One contributor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Persona {
    /// Author string used in commits.
    pub name: String,
    /// Behavioural role.
    pub role: Role,
    /// Subsystem directories this persona gravitates to (empty = all).
    pub home_subsystems: Vec<String>,
}

/// Build the full persona population.
pub fn personas(
    profile: &WorkloadProfile,
    layout: &KernelLayout,
    rng: &mut StdRng,
) -> Vec<Persona> {
    let subsystems: Vec<String> = {
        let mut s: Vec<String> = layout.drivers.iter().map(|d| d.subsystem.clone()).collect();
        s.sort();
        s.dedup();
        s
    };
    let mut out = Vec::new();
    for (i, name) in JANITORS.iter().enumerate() {
        out.push(Persona {
            name: name.to_string(),
            role: Role::Janitor { index: i },
            home_subsystems: Vec::new(),
        });
    }
    for i in 0..profile.maintainers {
        // Homes mirror the MAINTAINERS generation rule (kernel.rs):
        // maintainer i is the M: of every subsystem entry j ≡ i (mod
        // maintainer count), so their patches really count as maintainer
        // patches.
        let mut homes: Vec<String> = crate::names::SUBSYSTEMS
            .iter()
            .enumerate()
            .filter(|(j, _)| j % profile.maintainers.max(1) == i)
            .map(|(_, (dir, _, _))| dir.to_string())
            .collect();
        if homes.is_empty() {
            homes.push(subsystems[i % subsystems.len()].clone());
        }
        out.push(Persona {
            name: dev_name("maint", i),
            role: Role::Maintainer { index: i },
            home_subsystems: homes,
        });
    }
    for i in 0..profile.regular_devs {
        let n_homes = 1 + rng.gen_range(0..3);
        let mut homes = subsystems.clone();
        homes.shuffle(rng);
        homes.truncate(n_homes);
        out.push(Persona {
            name: dev_name("dev", i),
            role: Role::Regular { index: i },
            home_subsystems: homes,
        });
    }
    out
}

/// Generate the pre-window activity (the paper observes v3.0→v4.4; the
/// evaluated window's records are added from the repository afterwards).
pub fn prewindow_activity(
    profile: &WorkloadProfile,
    layout: &KernelLayout,
    personas: &[Persona],
    rng: &mut StdRng,
) -> ActivityLog {
    let mut log = ActivityLog::default();
    let all_c: Vec<&str> = layout.drivers.iter().map(|d| d.c_path.as_str()).collect();
    for p in personas {
        match &p.role {
            Role::Janitor { index } => {
                let volume =
                    ((JANITOR_VOLUMES[*index] as f64) * profile.prewindow_scale).round() as usize;
                let cv = JANITOR_CV_X100[*index] as f64 / 100.0;
                janitor_records(&mut log, &p.name, volume.max(10), cv, &all_c, rng);
            }
            Role::Maintainer { .. } => {
                // Concentrated work on few files of the home subsystems —
                // high cv and a high maintainer fraction.
                let files: Vec<&str> = layout
                    .drivers
                    .iter()
                    .filter(|d| p.home_subsystems.contains(&d.subsystem))
                    .map(|d| d.c_path.as_str())
                    .collect();
                if files.is_empty() {
                    continue;
                }
                let volume = ((120.0 * profile.prewindow_scale) as usize).max(8);
                for _ in 0..volume {
                    // 70% of patches land on the two hottest files.
                    let f = if rng.gen_bool(0.7) {
                        files[rng.gen_range(0..files.len().min(2))]
                    } else {
                        files[rng.gen_range(0..files.len())]
                    };
                    log.push(ActivityRecord {
                        author: p.name.clone(),
                        files: vec![f.to_string()],
                        in_window: false,
                    });
                }
            }
            Role::Regular { index } => {
                let files: Vec<&str> = layout
                    .drivers
                    .iter()
                    .filter(|d| {
                        p.home_subsystems.is_empty() || p.home_subsystems.contains(&d.subsystem)
                    })
                    .map(|d| d.c_path.as_str())
                    .collect();
                if files.is_empty() {
                    continue;
                }
                // Volume varies so some regulars miss the Table I patch
                // threshold entirely.
                let volume =
                    (((5 + (index % 9) * 8) as f64) * profile.prewindow_scale).round() as usize;
                for _ in 0..volume.max(2) {
                    let f = files[rng.gen_range(0..files.len())];
                    log.push(ActivityRecord {
                        author: p.name.clone(),
                        files: vec![f.to_string()],
                        in_window: false,
                    });
                }
            }
        }
    }
    log
}

/// Emit `volume` single-file records spread over the whole tree with a
/// per-file count distribution whose coefficient of variation approximates
/// `target_cv` (a hot subset of files absorbs extra patches).
fn janitor_records(
    log: &mut ActivityLog,
    author: &str,
    volume: usize,
    target_cv: f64,
    all_files: &[&str],
    rng: &mut StdRng,
) {
    // Two-point construction: fraction p of files are "hot" with count h,
    // the rest have count 1. cv = sqrt(p(1-p))·(h-1) / (1 + p(h-1)).
    let p_hot = 0.1f64;
    let spread = (p_hot * (1.0 - p_hot)).sqrt();
    // Solve cv for h: h = 1 + cv / (spread - cv·p_hot), clamped.
    let denom = spread - target_cv * p_hot;
    let h = if denom > 0.01 {
        (1.0 + target_cv / denom).clamp(1.0, 40.0)
    } else {
        40.0
    };
    let mean = 1.0 + p_hot * (h - 1.0);
    let distinct = ((volume as f64 / mean).round() as usize).clamp(1, all_files.len());
    let mut pool: Vec<&str> = all_files.to_vec();
    pool.shuffle(rng);
    pool.truncate(distinct);
    let hot_count = ((distinct as f64) * p_hot).round() as usize;
    let mut emitted = 0usize;
    for (i, f) in pool.iter().enumerate() {
        let count = if i < hot_count { h.round() as usize } else { 1 };
        for _ in 0..count {
            if emitted >= volume {
                break;
            }
            log.push(ActivityRecord {
                author: author.to_string(),
                files: vec![f.to_string()],
                in_window: false,
            });
            emitted += 1;
        }
    }
    // Top up with uniform picks if rounding left us short.
    while emitted < volume {
        let f = pool[rng.gen_range(0..pool.len())];
        log.push(ActivityRecord {
            author: author.to_string(),
            files: vec![f.to_string()],
            in_window: false,
        });
        emitted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmake_janitor::{compute_metrics, Maintainers};
    use rand::SeedableRng;

    fn setup() -> (
        WorkloadProfile,
        KernelLayout,
        Vec<Persona>,
        ActivityLog,
        Maintainers,
    ) {
        let profile = WorkloadProfile::tiny();
        let mut rng = StdRng::seed_from_u64(profile.seed);
        let (tree, layout) = crate::kernel::generate_kernel(&profile, &mut rng);
        let personas = personas(&profile, &layout, &mut rng);
        let log = prewindow_activity(&profile, &layout, &personas, &mut rng);
        let maint = Maintainers::parse(tree.get("MAINTAINERS").unwrap());
        (profile, layout, personas, log, maint)
    }

    #[test]
    fn population_has_all_roles() {
        let (profile, _, personas, ..) = setup();
        let janitors = personas
            .iter()
            .filter(|p| matches!(p.role, Role::Janitor { .. }))
            .count();
        assert_eq!(janitors, 10);
        assert_eq!(
            personas.len(),
            10 + profile.maintainers + profile.regular_devs
        );
    }

    #[test]
    fn janitors_have_lower_cv_than_maintainers() {
        let (_, _, _, log, maint) = setup();
        let metrics = compute_metrics(&log, &maint);
        let avg = |role_pred: &dyn Fn(&str) -> bool| {
            let vals: Vec<f64> = metrics
                .iter()
                .filter(|m| role_pred(&m.author) && m.patches > 5)
                .map(|m| m.file_cv())
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        let janitor_cv = avg(&|n: &str| JANITORS.contains(&n));
        let maint_cv = avg(&|n: &str| n.contains("maint"));
        assert!(
            janitor_cv < maint_cv,
            "janitor cv {janitor_cv} ≥ maintainer cv {maint_cv}"
        );
    }

    #[test]
    fn maintainers_have_high_maintainer_fraction() {
        let (_, _, _, log, maint) = setup();
        let metrics = compute_metrics(&log, &maint);
        let m = metrics
            .iter()
            .find(|m| m.author.contains("maint0"))
            .expect("maintainer 0 active");
        assert!(m.maintainer_fraction() > 0.3, "{}", m.maintainer_fraction());
        for j in metrics
            .iter()
            .filter(|m| JANITORS.contains(&m.author.as_str()))
        {
            assert!(j.maintainer_fraction() < 0.05, "{}", j.author);
        }
    }

    #[test]
    fn janitor_cv_ordering_roughly_tracks_table_two() {
        let (_, _, _, log, maint) = setup();
        let metrics = compute_metrics(&log, &maint);
        let cv_of = |name: &str| {
            metrics
                .iter()
                .find(|m| m.author == name)
                .map(|m| m.file_cv())
                .unwrap_or(0.0)
        };
        // The lowest-cv janitor of Table II should stay well below the
        // highest-cv one.
        assert!(cv_of("Javier Martinez Canillas") < cv_of("Jarkko Nikula"));
    }

    #[test]
    fn volumes_scale_with_table_two() {
        let (_, _, _, log, _) = setup();
        let count = |name: &str| log.by_author(name).count();
        assert!(count("Dan Carpenter") > count("Luis de Bethencourt"));
    }
}
