//! Record/replay memoization of header-inclusion effects.
//!
//! Preprocessing the same header under the same macro environment is the
//! dominant repeated host cost of the `check` hot path: every trial of
//! every patch re-expands the same include closure. This module defines
//! the *mechanism* — a key that pins everything an inclusion's outcome
//! depends on, an effect record capturing everything the inclusion did to
//! preprocessor state, and a storage trait the build layer implements
//! (`jmake-kbuild`'s sharded `PreprocCache`).
//!
//! Soundness argument, part by part:
//!
//! - The *output chunk* of an included header depends on the header's
//!   include closure (contents of every file reachable from it under the
//!   active search paths — pinned by `closure_fp`), the macro table at
//!   entry (pinned by the running [`MacroTable::fingerprint`] — the
//!   config's predefined macros are *in* the table, so the macro
//!   environment fingerprint subsumes `-D` state), the pragma-once set
//!   (pinned by `pragma_fp`), and the nesting depth (the depth limit
//!   makes deep closures fail; pinned by `depth`).
//! - Line markers inside the chunk are relative to the header's own
//!   files, deterministic given the key — *except* the very first marker
//!   decision, which compares against the caller's output state. After
//!   any flush the output state is fully determined by flushed content,
//!   so only that first decision is entry-dependent. Effects therefore
//!   carry the first flush's `(path, first_line)` ([`IncludeEffect::
//!   first_flush`]); recordings whose first flush *skipped* its marker
//!   are discarded, and replay requires the current output state to make
//!   the same emit decision — otherwise the inclusion runs live.
//! - Side effects on the macro table are replayed as an ordered event
//!   log; errors, first-inclusion records, pragma-once additions, and
//!   expanded-macro names are replayed verbatim. After replay the
//!   preprocessor state is byte-for-byte what live processing would have
//!   produced, so `.i` text, diagnostics, and downstream reports are
//!   unchanged — only host time is saved. The virtual clock never sees
//!   any of this (it is charged per `make` invocation, above this layer).
//!
//! [`MacroTable::fingerprint`]: crate::MacroTable::fingerprint

use crate::error::CppError;
use crate::macros::MacroDef;
use std::sync::Arc;

/// Everything a memoizable inclusion's outcome depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IncludeKey {
    /// Canonical path of the included header.
    pub path: String,
    /// Fingerprint of the header's include closure: path + content of
    /// every file lexically reachable from it (the build layer computes
    /// this with the same walk that keys its object cache, folding the
    /// architecture's search paths in).
    pub closure_fp: u64,
    /// [`crate::MacroTable::fingerprint`] at the moment of inclusion.
    pub macro_fp: u64,
    /// Multiset fingerprint of the pragma-once set at inclusion.
    pub pragma_fp: u64,
    /// Include nesting depth of the header (depth-limit diagnostics
    /// depend on it).
    pub depth: u32,
}

/// One macro-table mutation, replayed in order. Definitions are shared
/// (`Arc`), so replaying a recording bumps refcounts instead of cloning
/// token bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MacroEvent {
    /// `#define` (or redefinition).
    Define(Arc<MacroDef>),
    /// `#undef`.
    Undef(String),
}

/// Everything processing one header (and its nested includes) did to the
/// preprocessor state.
#[derive(Debug, Clone, Default)]
pub struct IncludeEffect {
    /// Output text appended (starts with the header's line marker).
    pub chunk: String,
    /// `(out_file, out_line)` after the inclusion, when it produced any
    /// output; `None` means the output state passed through unchanged.
    pub exit_marker: Option<(String, u32)>,
    /// Diagnostics appended.
    pub errors: Vec<CppError>,
    /// Macro names expanded (order-free; deduplicated).
    pub expanded: Vec<String>,
    /// Files resolved, in first-resolution order (appended to the
    /// translation unit's include list unless already present).
    pub includes: Vec<String>,
    /// Paths newly added to the pragma-once set.
    pub pragma_adds: Vec<String>,
    /// Ordered macro-table mutations.
    pub macro_events: Vec<MacroEvent>,
    /// `(path, first_line)` of the recording's first flush, which emitted
    /// a line marker; `None` iff the inclusion produced no output. Replay
    /// is only valid where the same emit decision holds.
    pub first_flush: Option<(String, u32)>,
}

/// Storage + closure-fingerprint oracle for include memoization.
///
/// Implementations decide *whether* a header is cacheable at all by
/// returning `None` from [`IncludeMemo::closure_fp`] (computed includes
/// and other lexically-opaque constructs make a closure unfingerprintable).
pub trait IncludeMemo: Send + Sync {
    /// The include-closure fingerprint of `canon_path` under the active
    /// tree and architecture, or `None` when it cannot be pinned.
    fn closure_fp(&self, canon_path: &str) -> Option<u64>;

    /// Look up a recorded effect.
    fn lookup(&self, key: &IncludeKey) -> Option<Arc<IncludeEffect>>;

    /// Record an effect (first writer wins on races).
    fn insert(&self, key: IncludeKey, effect: Arc<IncludeEffect>);
}
