//! Property tests over the preprocessor stack.

use crate::lexer::lex;
use crate::lines::logical_lines;
use crate::preprocess::{MapResolver, Preprocessor};
use crate::syntax::validate;
use crate::token::{render_tokens, TokenKind};
use proptest::prelude::*;

/// A small C-ish source generator: lines of declarations, macro defs,
/// conditionals, and comments.
fn c_source() -> impl Strategy<Value = String> {
    let line = prop_oneof![
        "[a-z]{1,6}".prop_map(|v| format!("int {v};")),
        "[a-z]{1,6}".prop_map(|v| format!("static long {v} = 42;")),
        ("[A-Z]{1,6}", 0u32..99).prop_map(|(n, v)| format!("#define {n} {v}")),
        "[A-Z]{1,6}".prop_map(|n| format!("#ifdef {n}")),
        Just("#else".to_string()),
        Just("#endif".to_string()),
        Just("/* a comment */".to_string()),
        Just("// line comment".to_string()),
        ("[a-z]{1,4}", "[a-z]{1,4}").prop_map(|(a, b)| format!("{a}({b});")),
    ];
    prop::collection::vec(line, 0..30).prop_map(|ls| {
        // Balance conditionals so the source is well-formed.
        let mut depth = 0i32;
        let mut out = Vec::new();
        for l in ls {
            if l.starts_with("#ifdef") {
                depth += 1;
            } else if l == "#endif" {
                if depth == 0 {
                    continue;
                }
                depth -= 1;
            } else if l == "#else" && depth == 0 {
                continue;
            }
            out.push(l);
        }
        for _ in 0..depth {
            out.push("#endif".to_string());
        }
        if out.is_empty() {
            String::new()
        } else {
            out.join("\n") + "\n"
        }
    })
}

proptest! {
    /// Preprocessing well-formed conditional structure raises no
    /// conditional-nesting diagnostics and terminates.
    #[test]
    fn preprocess_never_panics_and_conditionals_balance(src in c_source()) {
        let out = Preprocessor::new(MapResolver::new()).preprocess("p.c", &src);
        for e in &out.errors {
            prop_assert!(
                !matches!(e.kind, crate::error::CppErrorKind::UnterminatedConditional),
                "balanced source produced {e}"
            );
        }
    }

    /// The .i output of a clean run re-validates (no invalid characters,
    /// balanced or at worst unbalanced the same way the source was).
    #[test]
    fn clean_output_has_no_directives(src in c_source()) {
        let out = Preprocessor::new(MapResolver::new()).preprocess("p.c", &src);
        for line in out.text.lines() {
            let t = line.trim_start();
            if let Some(rest) = t.strip_prefix('#') {
                // Only line markers may remain.
                prop_assert!(rest.trim_start().chars().next().is_none_or(|c| c.is_ascii_digit()),
                    "directive leaked into .i: {line}");
            }
        }
    }

    /// Lexing is total and every non-whitespace char lands in some token.
    #[test]
    fn lexer_is_total(s in "[ -~]{0,60}") {
        let toks = lex(&s, 1);
        let nonws: usize = s.chars().filter(|c| !c.is_whitespace()).count();
        // Unterminated literals may absorb whitespace; count non-whitespace
        // coverage, which must be exact.
        let covered: usize = toks
            .iter()
            .flat_map(|t| t.text.chars())
            .filter(|c| !c.is_whitespace())
            .count();
        prop_assert_eq!(nonws, covered);
    }

    /// render ∘ lex preserves the token stream (lex(render(lex(s))) == lex(s)).
    #[test]
    fn relex_of_render_is_stable(s in "[ -~]{0,60}") {
        let toks = lex(&s, 1);
        let rendered = render_tokens(&toks);
        let again = lex(&rendered, 1);
        let a: Vec<(&TokenKind, &str)> = toks.iter().map(|t| (&t.kind, t.text.as_str())).collect();
        let b: Vec<(&TokenKind, &str)> = again.iter().map(|t| (&t.kind, t.text.as_str())).collect();
        prop_assert_eq!(a, b);
    }

    /// logical_lines covers every physical line exactly once, in order.
    #[test]
    fn logical_lines_cover_all_physical_lines(src in c_source()) {
        let lls = logical_lines(&src);
        let physical = src.lines().count() as u32;
        let mut next = 1u32;
        for ll in &lls {
            prop_assert!(ll.first_line >= next);
            prop_assert!(ll.last_line >= ll.first_line);
            next = ll.last_line + 1;
        }
        prop_assert!(next >= physical, "lost trailing lines");
    }

    /// validate accepts everything a clean preprocess of generated C emits.
    #[test]
    fn validator_accepts_clean_i_files(src in c_source()) {
        let out = Preprocessor::new(MapResolver::new()).preprocess("p.c", &src);
        if out.is_clean() {
            match validate(&out.text) {
                Ok(()) | Err(crate::error::SyntaxError::EmptyTranslationUnit) => {}
                Err(e) => {
                    // Generated code has balanced parens per line only when
                    // parens appear in calls; our generator always closes.
                    prop_assert!(false, "validator rejected clean output: {e}\n{}", out.text);
                }
            }
        }
    }
}
