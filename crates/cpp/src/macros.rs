//! Macro definitions and the macro table.

use crate::lexer::lex;
use crate::token::Token;
use std::collections::HashMap;

/// A macro definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroDef {
    /// Macro name.
    pub name: String,
    /// `None` for object-like macros; parameter names for function-like.
    pub params: Option<Vec<String>>,
    /// Whether the parameter list ended with `...` (`__VA_ARGS__`).
    pub variadic: bool,
    /// Replacement-list tokens.
    pub body: Vec<Token>,
}

impl MacroDef {
    /// An object-like macro whose body is lexed from `body`.
    pub fn object(name: impl Into<String>, body: &str) -> Self {
        MacroDef {
            name: name.into(),
            params: None,
            variadic: false,
            body: lex(body, 0),
        }
    }

    /// A function-like macro whose body is lexed from `body`.
    pub fn function(name: impl Into<String>, params: Vec<String>, body: &str) -> Self {
        MacroDef {
            name: name.into(),
            params: Some(params),
            variadic: false,
            body: lex(body, 0),
        }
    }

    /// True for function-like macros.
    pub fn is_function_like(&self) -> bool {
        self.params.is_some()
    }
}

/// The set of live macro definitions during preprocessing.
#[derive(Debug, Clone, Default)]
pub struct MacroTable {
    defs: HashMap<String, MacroDef>,
}

impl MacroTable {
    /// An empty table.
    pub fn new() -> Self {
        MacroTable::default()
    }

    /// Define (or redefine) a macro.
    pub fn define(&mut self, def: MacroDef) {
        self.defs.insert(def.name.clone(), def);
    }

    /// Remove a macro; silently ignores unknown names (like `#undef`).
    pub fn undef(&mut self, name: &str) {
        self.defs.remove(name);
    }

    /// Look up a macro.
    pub fn get(&self, name: &str) -> Option<&MacroDef> {
        self.defs.get(name)
    }

    /// `defined(name)`.
    pub fn is_defined(&self, name: &str) -> bool {
        self.defs.contains_key(name)
    }

    /// Number of live definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True when no macros are defined.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Iterate over the defined names (arbitrary order).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.defs.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_lookup_undef() {
        let mut t = MacroTable::new();
        t.define(MacroDef::object("FOO", "1"));
        assert!(t.is_defined("FOO"));
        assert_eq!(t.get("FOO").unwrap().body[0].text, "1");
        t.undef("FOO");
        assert!(!t.is_defined("FOO"));
        t.undef("FOO"); // idempotent
        assert!(t.is_empty());
    }

    #[test]
    fn redefinition_replaces() {
        let mut t = MacroTable::new();
        t.define(MacroDef::object("X", "1"));
        t.define(MacroDef::object("X", "2"));
        assert_eq!(t.get("X").unwrap().body[0].text, "2");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn function_like_detection() {
        let m = MacroDef::function("MAX", vec!["a".into(), "b".into()], "((a)>(b)?(a):(b))");
        assert!(m.is_function_like());
        assert!(!MacroDef::object("Y", "").is_function_like());
    }
}
