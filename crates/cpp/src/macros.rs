//! Macro definitions and the macro table.

use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use std::collections::HashMap;
use std::sync::Arc;

/// A macro definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroDef {
    /// Macro name.
    pub name: String,
    /// `None` for object-like macros; parameter names for function-like.
    pub params: Option<Vec<String>>,
    /// Whether the parameter list ended with `...` (`__VA_ARGS__`).
    pub variadic: bool,
    /// Replacement-list tokens.
    pub body: Vec<Token>,
}

impl MacroDef {
    /// An object-like macro whose body is lexed from `body`.
    pub fn object(name: impl Into<String>, body: &str) -> Self {
        MacroDef {
            name: name.into(),
            params: None,
            variadic: false,
            body: lex(body, 0),
        }
    }

    /// A function-like macro whose body is lexed from `body`.
    pub fn function(name: impl Into<String>, params: Vec<String>, body: &str) -> Self {
        MacroDef {
            name: name.into(),
            params: Some(params),
            variadic: false,
            body: lex(body, 0),
        }
    }

    /// True for function-like macros.
    pub fn is_function_like(&self) -> bool {
        self.params.is_some()
    }

    /// A 64-bit content hash of the definition (name, parameters, body
    /// tokens including layout and provenance lines — anything that can
    /// influence expansion output).
    pub fn content_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv_str(&mut h, &self.name);
        match &self.params {
            None => fnv_byte(&mut h, 0),
            Some(params) => {
                fnv_byte(&mut h, 1);
                fnv_u64(&mut h, params.len() as u64);
                for p in params {
                    fnv_str(&mut h, p);
                }
            }
        }
        fnv_byte(&mut h, self.variadic as u8);
        fnv_u64(&mut h, self.body.len() as u64);
        for t in &self.body {
            let (tag, ch) = match t.kind {
                TokenKind::Ident => (0u8, 0u32),
                TokenKind::Number => (1, 0),
                TokenKind::Str => (2, 0),
                TokenKind::Char => (3, 0),
                TokenKind::Punct => (4, 0),
                TokenKind::Other(c) => (5, c as u32),
            };
            fnv_byte(&mut h, tag);
            fnv_u64(&mut h, ch as u64);
            fnv_str(&mut h, &t.text);
            fnv_byte(&mut h, t.space_before as u8);
            fnv_u64(&mut h, t.line as u64);
        }
        h
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_byte(h: &mut u64, b: u8) {
    *h ^= b as u64;
    *h = h.wrapping_mul(FNV_PRIME);
}

fn fnv_u64(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        fnv_byte(h, b);
    }
}

fn fnv_str(h: &mut u64, s: &str) {
    for b in s.as_bytes() {
        fnv_byte(h, *b);
    }
    // Length-prefix-free separator: a byte that never occurs in UTF-8.
    fnv_byte(h, 0xff);
}

/// A 64-bit hash of a standalone string (used for the pragma-once set
/// fingerprint).
pub(crate) fn str_hash(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_str(&mut h, s);
    h
}

/// The set of live macro definitions during preprocessing.
///
/// Maintains a running order-independent fingerprint of its contents
/// (a multiset fold over per-definition hashes), so "is the macro
/// environment identical to last time?" is an O(1) question — the key
/// discipline behind cross-patch preprocess memoization.
#[derive(Debug, Clone, Default)]
pub struct MacroTable {
    defs: HashMap<Arc<str>, MacroSlot>,
    fp: u64,
}

/// One live definition plus its memoized content hash, so replacement
/// and `#undef` adjust the running fingerprint without re-hashing.
#[derive(Debug, Clone)]
struct MacroSlot {
    hash: u64,
    def: Arc<MacroDef>,
}

impl MacroTable {
    /// An empty table.
    pub fn new() -> Self {
        MacroTable::default()
    }

    /// Define (or redefine) a macro.
    pub fn define(&mut self, def: MacroDef) {
        self.define_shared(Arc::new(def));
    }

    /// Define (or redefine) a macro whose definition is already shared —
    /// cloning a table and replaying recorded definitions both bump a
    /// refcount instead of deep-copying token bodies.
    pub fn define_shared(&mut self, def: Arc<MacroDef>) {
        let hash = def.content_hash();
        let name: Arc<str> = Arc::from(def.name.as_str());
        if let Some(old) = self.defs.insert(name, MacroSlot { hash, def }) {
            self.fp = self.fp.wrapping_sub(old.hash);
        }
        self.fp = self.fp.wrapping_add(hash);
    }

    /// Remove a macro; silently ignores unknown names (like `#undef`).
    pub fn undef(&mut self, name: &str) {
        if let Some(old) = self.defs.remove(name) {
            self.fp = self.fp.wrapping_sub(old.hash);
        }
    }

    /// The running fingerprint: equal for tables holding identical
    /// definition multisets, regardless of the order they were built in.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Look up a macro.
    pub fn get(&self, name: &str) -> Option<&MacroDef> {
        self.defs.get(name).map(|slot| &*slot.def)
    }

    /// `defined(name)`.
    pub fn is_defined(&self, name: &str) -> bool {
        self.defs.contains_key(name)
    }

    /// Number of live definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True when no macros are defined.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Iterate over the defined names (arbitrary order).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.defs.keys().map(|k| &**k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_lookup_undef() {
        let mut t = MacroTable::new();
        t.define(MacroDef::object("FOO", "1"));
        assert!(t.is_defined("FOO"));
        assert_eq!(t.get("FOO").unwrap().body[0].text, "1");
        t.undef("FOO");
        assert!(!t.is_defined("FOO"));
        t.undef("FOO"); // idempotent
        assert!(t.is_empty());
    }

    #[test]
    fn redefinition_replaces() {
        let mut t = MacroTable::new();
        t.define(MacroDef::object("X", "1"));
        t.define(MacroDef::object("X", "2"));
        assert_eq!(t.get("X").unwrap().body[0].text, "2");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fingerprint_is_order_independent_and_tracks_content() {
        let mut a = MacroTable::new();
        a.define(MacroDef::object("X", "1"));
        a.define(MacroDef::object("Y", "2"));
        let mut b = MacroTable::new();
        b.define(MacroDef::object("Y", "2"));
        b.define(MacroDef::object("X", "1"));
        assert_eq!(a.fingerprint(), b.fingerprint());

        // Redefinition changes the fingerprint; undef restores emptiness.
        let before = a.fingerprint();
        a.define(MacroDef::object("X", "99"));
        assert_ne!(a.fingerprint(), before);
        a.undef("X");
        a.undef("Y");
        assert_eq!(a.fingerprint(), MacroTable::new().fingerprint());

        // Define-then-undef round-trips to the prior fingerprint.
        let mut c = MacroTable::new();
        c.define(MacroDef::object("K", "7"));
        let mid = c.fingerprint();
        c.define(MacroDef::object("T", "t"));
        c.undef("T");
        assert_eq!(c.fingerprint(), mid);
    }

    #[test]
    fn content_hash_distinguishes_shape() {
        let obj = MacroDef::object("M", "1");
        let f = MacroDef::function("M", vec![], "1");
        assert_ne!(obj.content_hash(), f.content_hash());
        assert_ne!(
            MacroDef::object("M", "1").content_hash(),
            MacroDef::object("M", "2").content_hash()
        );
        assert_eq!(
            MacroDef::object("M", "1").content_hash(),
            MacroDef::object("M", "1").content_hash()
        );
    }

    #[test]
    fn function_like_detection() {
        let m = MacroDef::function("MAX", vec!["a".into(), "b".into()], "((a)>(b)?(a):(b))");
        assert!(m.is_function_like());
        assert!(!MacroDef::object("Y", "").is_function_like());
    }
}
