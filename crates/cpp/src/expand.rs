//! Macro expansion: substitution, stringification, pasting, rescanning.

use crate::error::CppErrorKind;
use crate::lexer::lex;
use crate::macros::MacroTable;
use crate::token::{render_tokens, Token, TokenKind};
use std::collections::HashSet;

/// Expands macro invocations in token sequences.
///
/// Recursion is prevented with an active-macro stack (a macro name is not
/// re-expanded while its own expansion is being processed), the same
/// strategy that makes `#define x x` terminate in real preprocessors.
#[derive(Debug)]
pub struct Expander<'t> {
    table: &'t MacroTable,
    /// Names of every macro that was actually expanded — JMake's unused-
    /// macro classification consumes this.
    pub expanded_names: HashSet<String>,
    /// Diagnostics raised during expansion (wrong argument counts).
    pub errors: Vec<CppErrorKind>,
}

impl<'t> Expander<'t> {
    /// Create an expander over `table`.
    pub fn new(table: &'t MacroTable) -> Self {
        Expander {
            table,
            expanded_names: HashSet::new(),
            errors: Vec::new(),
        }
    }

    /// Fully expand `tokens`.
    pub fn expand(&mut self, tokens: &[Token]) -> Vec<Token> {
        let mut active = Vec::new();
        self.expand_inner(tokens, &mut active)
    }

    fn expand_inner(&mut self, tokens: &[Token], active: &mut Vec<String>) -> Vec<Token> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if t.kind != TokenKind::Ident {
                out.push(t.clone());
                i += 1;
                continue;
            }
            let name = t.text.clone();
            if active.contains(&name) {
                out.push(t.clone());
                i += 1;
                continue;
            }
            let Some(def) = self.table.get(&name) else {
                out.push(t.clone());
                i += 1;
                continue;
            };
            let def = def.clone();
            match &def.params {
                None => {
                    self.expanded_names.insert(name.clone());
                    let substituted = self.substitute(&def.body, &[], &[], def.variadic);
                    active.push(name);
                    let mut rescanned = self.expand_inner(&substituted, active);
                    active.pop();
                    fix_leading_space(&mut rescanned, t.space_before);
                    out.extend(rescanned);
                    i += 1;
                }
                Some(params) => {
                    // Function-like: only an invocation if `(` follows.
                    if !matches!(tokens.get(i + 1), Some(n) if n.is_punct("(")) {
                        out.push(t.clone());
                        i += 1;
                        continue;
                    }
                    let (args, consumed) = collect_args(&tokens[i + 1..]);
                    let Some(args) = args else {
                        // Unbalanced parens: give up on this invocation.
                        out.push(t.clone());
                        i += 1;
                        continue;
                    };
                    let arity_ok = if def.variadic {
                        args.len() >= params.len()
                    } else {
                        args.len() == params.len()
                            || (params.is_empty() && args.len() == 1 && args[0].is_empty())
                    };
                    if !arity_ok {
                        self.errors.push(CppErrorKind::WrongArgumentCount {
                            name: name.clone(),
                            expected: params.len(),
                            got: args.len(),
                        });
                    }
                    self.expanded_names.insert(name.clone());
                    // Pre-expand arguments (C99 6.10.3.1) for ordinary use.
                    let expanded_args: Vec<Vec<Token>> =
                        args.iter().map(|a| self.expand_inner(a, active)).collect();
                    let (named, varargs) = split_args(params, &args, def.variadic);
                    let (named_exp, varargs_exp) = split_args(params, &expanded_args, def.variadic);
                    let substituted = self.substitute_fn(
                        &def.body,
                        params,
                        &named,
                        &named_exp,
                        &varargs,
                        &varargs_exp,
                    );
                    active.push(name);
                    let mut rescanned = self.expand_inner(&substituted, active);
                    active.pop();
                    fix_leading_space(&mut rescanned, t.space_before);
                    out.extend(rescanned);
                    i += 1 + consumed;
                }
            }
        }
        out
    }

    /// Object-like substitution: only `##` pasting applies.
    fn substitute(
        &mut self,
        body: &[Token],
        _params: &[String],
        _args: &[Vec<Token>],
        _variadic: bool,
    ) -> Vec<Token> {
        paste_pass(body.to_vec())
    }

    /// Function-like substitution: parameter replacement, `#`, `##`.
    #[allow(clippy::too_many_arguments)]
    fn substitute_fn(
        &mut self,
        body: &[Token],
        params: &[String],
        raw: &[Vec<Token>],
        expanded: &[Vec<Token>],
        varargs_raw: &[Vec<Token>],
        varargs_expanded: &[Vec<Token>],
    ) -> Vec<Token> {
        let param_index = |name: &str| params.iter().position(|p| p == name);
        let mut out: Vec<Token> = Vec::new();
        let mut i = 0;
        while i < body.len() {
            let t = &body[i];
            // Stringification: # param
            if t.is_punct("#") {
                if let Some(next) = body.get(i + 1) {
                    if next.kind == TokenKind::Ident {
                        let arg = if next.text == "__VA_ARGS__" {
                            Some(join_varargs(varargs_raw))
                        } else {
                            param_index(&next.text)
                                .map(|idx| raw.get(idx).cloned().unwrap_or_default())
                        };
                        if let Some(arg) = arg {
                            out.push(Token {
                                kind: TokenKind::Str,
                                text: stringify(&arg),
                                space_before: t.space_before,
                                line: t.line,
                            });
                            i += 2;
                            continue;
                        }
                    }
                }
            }
            // Paste operands use RAW (unexpanded) arguments.
            let next_is_paste = matches!(body.get(i + 1), Some(n) if n.is_punct("##"));
            let prev_was_paste = !out.is_empty() && i > 0 && body[i - 1].is_punct("##");
            if t.kind == TokenKind::Ident {
                let replacement = if t.text == "__VA_ARGS__" {
                    if next_is_paste || prev_was_paste {
                        Some(join_varargs(varargs_raw))
                    } else {
                        Some(join_varargs(varargs_expanded))
                    }
                } else if let Some(idx) = param_index(&t.text) {
                    let source = if next_is_paste || prev_was_paste {
                        raw
                    } else {
                        expanded
                    };
                    Some(source.get(idx).cloned().unwrap_or_default())
                } else {
                    None
                };
                if let Some(mut rep) = replacement {
                    fix_leading_space(&mut rep, t.space_before);
                    out.extend(rep);
                    i += 1;
                    continue;
                }
            }
            out.push(t.clone());
            i += 1;
        }
        paste_pass(out)
    }
}

/// Give the first token of an expansion the spacing of the macro name it
/// replaces, so rendered output keeps word boundaries.
fn fix_leading_space(tokens: &mut [Token], space: bool) {
    if let Some(first) = tokens.first_mut() {
        first.space_before = space;
    }
}

/// Collect macro arguments starting at the `(` token. Returns the argument
/// token lists and the number of tokens consumed (including both parens),
/// or `None` if the parens never balance.
fn collect_args(tokens: &[Token]) -> (Option<Vec<Vec<Token>>>, usize) {
    debug_assert!(tokens[0].is_punct("("));
    let mut depth = 0usize;
    let mut args: Vec<Vec<Token>> = vec![Vec::new()];
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct("(") {
            depth += 1;
            if depth == 1 {
                continue;
            }
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return (Some(args), i + 1);
            }
        } else if t.is_punct(",") && depth == 1 {
            args.push(Vec::new());
            continue;
        }
        args.last_mut().expect("args never empty").push(t.clone());
    }
    (None, tokens.len())
}

/// Partition collected arguments into named parameters and varargs.
fn split_args(
    params: &[String],
    args: &[Vec<Token>],
    variadic: bool,
) -> (Vec<Vec<Token>>, Vec<Vec<Token>>) {
    if variadic {
        let n = params.len();
        let named = args.iter().take(n).cloned().collect();
        let rest = args.iter().skip(n).cloned().collect();
        (named, rest)
    } else {
        (args.to_vec(), Vec::new())
    }
}

/// Join vararg argument lists with comma tokens (for `__VA_ARGS__`).
fn join_varargs(varargs: &[Vec<Token>]) -> Vec<Token> {
    let mut out = Vec::new();
    for (i, arg) in varargs.iter().enumerate() {
        if i > 0 {
            out.push(Token::punct(","));
        }
        out.extend(arg.iter().cloned());
    }
    out
}

/// C99 stringification: render, collapse internal whitespace to single
/// spaces, escape `\` and `"` inside string/char literals.
fn stringify(tokens: &[Token]) -> String {
    let rendered = render_tokens(tokens);
    let mut out = String::from("\"");
    for c in rendered.trim().chars() {
        match c {
            '"' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Resolve `##` pasting in a substituted body.
fn paste_pass(tokens: Vec<Token>) -> Vec<Token> {
    if !tokens.iter().any(|t| t.is_punct("##")) {
        return tokens;
    }
    let mut out: Vec<Token> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("##") && !out.is_empty() && i + 1 < tokens.len() {
            let left = out.pop().expect("checked non-empty");
            let right = &tokens[i + 1];
            let fused_text = format!("{}{}", left.text, right.text);
            let relexed = lex(&fused_text, left.line);
            if relexed.len() == 1 {
                let mut fused = relexed.into_iter().next().expect("len checked");
                fused.space_before = left.space_before;
                fused.line = left.line;
                out.push(fused);
            } else {
                // Invalid paste: keep both tokens (gcc diagnoses; we tolerate).
                out.push(left);
                out.push(right.clone());
            }
            i += 2;
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macros::MacroDef;

    fn expand_str(table: &MacroTable, src: &str) -> String {
        let mut e = Expander::new(table);
        let toks = e.expand(&lex(src, 1));
        render_tokens(&toks)
    }

    #[test]
    fn object_macro_expands() {
        let mut t = MacroTable::new();
        t.define(MacroDef::object("N", "42"));
        assert_eq!(expand_str(&t, "int x = N;"), "int x = 42;");
    }

    #[test]
    fn nested_object_macros() {
        let mut t = MacroTable::new();
        t.define(MacroDef::object("A", "B"));
        t.define(MacroDef::object("B", "7"));
        assert_eq!(expand_str(&t, "A"), "7");
    }

    #[test]
    fn self_reference_terminates() {
        let mut t = MacroTable::new();
        t.define(MacroDef::object("x", "x + 1"));
        assert_eq!(expand_str(&t, "x"), "x + 1");
    }

    #[test]
    fn mutual_recursion_terminates() {
        let mut t = MacroTable::new();
        t.define(MacroDef::object("P", "Q"));
        t.define(MacroDef::object("Q", "P"));
        // Expansion must terminate; P -> Q -> P(blocked).
        assert_eq!(expand_str(&t, "P"), "P");
    }

    #[test]
    fn function_macro_substitutes_args() {
        let mut t = MacroTable::new();
        t.define(MacroDef::function(
            "MUX",
            vec!["x".into()],
            "(((x) & 0xf) << 4)",
        ));
        assert_eq!(expand_str(&t, "MUX(chan)"), "(((chan) & 0xf) << 4)");
    }

    #[test]
    fn paper_figure1_macro_chain() {
        // The comedi example from Fig. 1: nested single-channel mux macros.
        let mut t = MacroTable::new();
        t.define(MacroDef::function(
            "HI",
            vec!["x".into()],
            "(((x) & 0xf) << 4)",
        ));
        t.define(MacroDef::function(
            "LO",
            vec!["x".into()],
            "(((x) & 0xf) << 0)",
        ));
        t.define(MacroDef::function(
            "SINGLE",
            vec!["x".into()],
            "(HI(x) | LO(x))",
        ));
        assert_eq!(
            expand_str(&t, "SINGLE(chan)"),
            "((((chan) & 0xf) << 4) | (((chan) & 0xf) << 0))"
        );
    }

    #[test]
    fn macro_name_without_parens_is_not_invoked() {
        let mut t = MacroTable::new();
        t.define(MacroDef::function("F", vec!["x".into()], "x"));
        assert_eq!(expand_str(&t, "int F;"), "int F;");
    }

    #[test]
    fn arguments_are_pre_expanded() {
        let mut t = MacroTable::new();
        t.define(MacroDef::object("K", "9"));
        t.define(MacroDef::function("ID", vec!["x".into()], "x"));
        assert_eq!(expand_str(&t, "ID(K)"), "9");
    }

    #[test]
    fn stringify_operator() {
        let mut t = MacroTable::new();
        t.define(MacroDef::function("S", vec!["x".into()], "#x"));
        assert_eq!(expand_str(&t, "S(a + b)"), "\"a + b\"");
    }

    #[test]
    fn stringify_escapes_quotes() {
        let mut t = MacroTable::new();
        t.define(MacroDef::function("S", vec!["x".into()], "#x"));
        assert_eq!(expand_str(&t, "S(\"hi\")"), "\"\\\"hi\\\"\"");
    }

    #[test]
    fn paste_operator_fuses_idents() {
        let mut t = MacroTable::new();
        t.define(MacroDef::function(
            "GLUE",
            vec!["a".into(), "b".into()],
            "a##b",
        ));
        assert_eq!(expand_str(&t, "GLUE(dev, _init)"), "dev_init");
    }

    #[test]
    fn paste_uses_raw_arguments() {
        let mut t = MacroTable::new();
        t.define(MacroDef::object("X", "expanded"));
        t.define(MacroDef::function("CAT", vec!["a".into()], "a##_t"));
        // Raw arg "X" is pasted, producing X_t (not expanded_t).
        assert_eq!(expand_str(&t, "CAT(X)"), "X_t");
    }

    #[test]
    fn variadic_macro() {
        let mut t = MacroTable::new();
        t.define(MacroDef {
            name: "pr".into(),
            params: Some(vec!["fmt".into()]),
            variadic: true,
            body: lex("printk(fmt, __VA_ARGS__)", 0),
        });
        assert_eq!(expand_str(&t, "pr(\"%d\", a, b)"), "printk(\"%d\", a, b)");
    }

    #[test]
    fn wrong_arity_is_diagnosed() {
        let mut t = MacroTable::new();
        t.define(MacroDef::function("F", vec!["a".into(), "b".into()], "a+b"));
        let mut e = Expander::new(&t);
        e.expand(&lex("F(1)", 1));
        assert_eq!(e.errors.len(), 1);
    }

    #[test]
    fn zero_arg_invocation_of_nullary_macro() {
        let mut t = MacroTable::new();
        t.define(MacroDef::function("F", vec![], "0"));
        let mut e = Expander::new(&t);
        let out = e.expand(&lex("F()", 1));
        assert_eq!(render_tokens(&out), "0");
        assert!(e.errors.is_empty());
    }

    #[test]
    fn expanded_names_are_recorded() {
        let mut t = MacroTable::new();
        t.define(MacroDef::object("USED", "1"));
        t.define(MacroDef::object("UNUSED", "2"));
        let mut e = Expander::new(&t);
        e.expand(&lex("int a = USED;", 1));
        assert!(e.expanded_names.contains("USED"));
        assert!(!e.expanded_names.contains("UNUSED"));
    }

    #[test]
    fn mutation_glyph_in_macro_body_propagates_to_use_site() {
        // Core JMake mechanism (paper Fig. 2): a mutation inserted in a
        // macro body shows up wherever the macro is used.
        let mut t = MacroTable::new();
        let mut def = MacroDef::function("HI", vec!["x".into()], "(((x) & 0xf) << 4)");
        def.body.extend(lex("\u{2261}\"define:f.c:49\"", 0));
        t.define(def);
        let out = expand_str(&t, "HI(chan)");
        assert!(out.contains("\u{2261}\"define:f.c:49\""), "{out}");
        assert!(out.contains("(((chan) & 0xf) << 4)"));
    }

    #[test]
    fn unbalanced_invocation_left_alone() {
        let mut t = MacroTable::new();
        t.define(MacroDef::function("F", vec!["x".into()], "x"));
        assert_eq!(expand_str(&t, "F(1"), "F(1");
    }
}
