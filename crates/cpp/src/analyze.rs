//! Lexical source mapping for the mutation engine.
//!
//! Paper §III.B distinguishes three kinds of changed lines: (1) lines
//! within a comment — never mutated; (2) lines within a macro definition —
//! one mutation per changed macro; (3) other lines — one mutation per
//! conditional-compilation section. Placement also needs to know whether a
//! `#define` line ends in a continuation backslash and whether a changed
//! line starts inside a comment that closes on that line.
//!
//! [`analyze`] computes all of that in one pass, per physical line.

use crate::lines::logical_lines;

/// Lexical facts about one physical source line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LineInfo {
    /// The line begins inside a block comment.
    pub starts_in_comment: bool,
    /// When [`LineInfo::starts_in_comment`] and the comment closes on this
    /// line: byte column just past the closing `*/`.
    pub comment_close_col: Option<usize>,
    /// Every non-whitespace character of the line is comment text.
    pub comment_only: bool,
    /// Index into [`SourceMap::macro_defs`] when the line is part of a
    /// macro definition (the `#define` logical line, including
    /// continuations).
    pub in_macro_def: Option<usize>,
    /// The line is (part of) a preprocessing directive.
    pub is_directive: bool,
    /// The line opens a conditional-compilation section boundary:
    /// `#if`, `#ifdef`, `#ifndef`, `#elif`, or `#else`.
    pub is_conditional: bool,
    /// The physical line ends with a `\` continuation.
    pub ends_with_continuation: bool,
}

/// A macro definition's span in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroDefSpan {
    /// Macro name.
    pub name: String,
    /// 1-based physical line of the `#define`.
    pub define_line: u32,
    /// 1-based last physical line of the definition (equals
    /// [`MacroDefSpan::define_line`] when there are no continuations).
    pub end_line: u32,
}

impl MacroDefSpan {
    /// True when `line` (1-based) is within this definition.
    pub fn contains(&self, line: u32) -> bool {
        line >= self.define_line && line <= self.end_line
    }
}

/// The full lexical map of a source file.
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    /// Per-physical-line facts; index 0 is line 1.
    pub lines: Vec<LineInfo>,
    /// All macro definitions, in source order.
    pub macro_defs: Vec<MacroDefSpan>,
}

impl SourceMap {
    /// Facts for 1-based `line`, if it exists.
    pub fn line(&self, line: u32) -> Option<&LineInfo> {
        self.lines.get((line as usize).checked_sub(1)?)
    }

    /// The macro definition containing 1-based `line`, if any.
    pub fn macro_def_at(&self, line: u32) -> Option<&MacroDefSpan> {
        let idx = self.line(line)?.in_macro_def?;
        self.macro_defs.get(idx)
    }

    /// Number of physical lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True for an empty file.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// Build the [`SourceMap`] of `src`.
pub fn analyze(src: &str) -> SourceMap {
    let mut lines = comment_scan(src);

    // Directive and macro-definition facts come from logical lines, which
    // already splice continuations and strip comments.
    let mut macro_defs = Vec::new();
    for ll in logical_lines(src) {
        if !ll.is_directive() {
            continue;
        }
        let (name, rest) = ll.directive().unwrap_or(("", ""));
        let first = ll.first_line as usize - 1;
        let last = (ll.last_line as usize - 1).min(lines.len().saturating_sub(1));
        for info in &mut lines[first..=last] {
            info.is_directive = true;
        }
        if matches!(name, "if" | "ifdef" | "ifndef" | "elif" | "else") {
            let anchor = conditional_anchor(src, &lines, first, last);
            lines[anchor].is_conditional = true;
        }
        if name == "define" {
            let macro_name: String = rest
                .chars()
                .take_while(|c| *c == '_' || c.is_ascii_alphanumeric())
                .collect();
            if !macro_name.is_empty() {
                let idx = macro_defs.len();
                macro_defs.push(MacroDefSpan {
                    name: macro_name,
                    define_line: ll.first_line,
                    end_line: ll.last_line,
                });
                for info in &mut lines[first..=last] {
                    info.in_macro_def = Some(idx);
                }
            }
        }
    }

    // Real cpp splices (phase 2) before stripping comments (phase 3), so a
    // block comment opened on a `#define` line swallows its newline and the
    // definition continues on the next physical line — through the comment
    // tail and any further `\` continuations. `logical_lines` deliberately
    // ends logical lines at comment-interior newlines, which truncated the
    // macro span there: an `#elif` sitting in such a continuation body kept
    // `is_conditional` from its (bogus) own logical line but lost the
    // enclosing `in_macro_def`. Extend each span along the continuation
    // chain and re-attribute the lines it covers.
    for (idx, def) in macro_defs.iter_mut().enumerate() {
        let mut end = def.end_line as usize - 1;
        loop {
            let next = end + 1;
            if next >= lines.len() {
                break;
            }
            // Continue while the definition's terminating newline was
            // inside an open comment, or a closed comment tail ends in a
            // continuation backslash.
            if !lines[end].ends_with_continuation && !lines[next].starts_in_comment {
                break;
            }
            // Never swallow a line some other definition already owns.
            if lines[next].in_macro_def.is_some_and(|j| j != idx) {
                break;
            }
            end = next;
        }
        let first = def.end_line as usize; // one past the old end
        for info in &mut lines[first..=end] {
            info.is_directive = true;
            info.in_macro_def = Some(idx);
            // Text spliced into a macro body is not a conditional boundary,
            // whatever it lexically looks like.
            info.is_conditional = false;
        }
        def.end_line = end as u32 + 1;
    }

    SourceMap { lines, macro_defs }
}

/// Physical line (0-based index into `lines`) that carries the `#` of a
/// directive whose logical line spans `first..=last`. When a directive's
/// logical line opens on the tail of a multi-line comment (`*/ \` followed
/// by `#elif …`), `first` is the comment tail, not the directive itself —
/// anchor conditional flags to the line whose code portion starts with `#`.
fn conditional_anchor(src: &str, lines: &[LineInfo], first: usize, last: usize) -> usize {
    for (off, raw) in src.lines().skip(first).take(last - first + 1).enumerate() {
        let idx = first + off;
        let info = &lines[idx];
        let code = if info.starts_in_comment {
            match info.comment_close_col {
                Some(col) => raw.get(col..).unwrap_or(""),
                None => continue, // whole line is comment text
            }
        } else {
            raw
        };
        if code.trim_start().starts_with('#') {
            return idx;
        }
    }
    first
}

/// Per-line comment facts via a char-level scan of the raw source.
fn comment_scan(src: &str) -> Vec<LineInfo> {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Code,
        Str,
        Chr,
        LineComment,
        BlockComment,
    }
    let mut out = Vec::new();
    let mut st = St::Code;
    for raw in src.lines() {
        let mut info = LineInfo {
            starts_in_comment: st == St::BlockComment,
            ends_with_continuation: raw.ends_with('\\'),
            ..LineInfo::default()
        };
        let mut has_code = false;
        let bytes: Vec<(usize, char)> = raw.char_indices().collect();
        let mut i = 0;
        while i < bytes.len() {
            let (pos, c) = bytes[i];
            let next = bytes.get(i + 1).map(|&(_, c)| c);
            match st {
                St::Code => match c {
                    '/' if next == Some('/') => {
                        st = St::LineComment;
                        i += 2;
                        continue;
                    }
                    '/' if next == Some('*') => {
                        st = St::BlockComment;
                        i += 2;
                        continue;
                    }
                    '"' => {
                        has_code = true;
                        st = St::Str;
                    }
                    '\'' => {
                        has_code = true;
                        st = St::Chr;
                    }
                    c if c.is_whitespace() => {}
                    '\\' => {} // continuation backslash
                    _ => has_code = true,
                },
                St::Str => {
                    if c == '\\' {
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        st = St::Code;
                    }
                }
                St::Chr => {
                    if c == '\\' {
                        i += 2;
                        continue;
                    }
                    if c == '\'' {
                        st = St::Code;
                    }
                }
                St::LineComment => {}
                St::BlockComment => {
                    if c == '*' && next == Some('/') {
                        st = St::Code;
                        if info.starts_in_comment && info.comment_close_col.is_none() {
                            info.comment_close_col = Some(pos + 2);
                        }
                        i += 2;
                        continue;
                    }
                }
            }
            i += 1;
        }
        // Line comments and unterminated string/char states end at newline.
        if st == St::LineComment {
            st = St::Code;
        }
        if st == St::Str || st == St::Chr {
            st = St::Code;
        }
        info.comment_only = !has_code && !raw.trim().is_empty();
        out.push(info);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_code_lines() {
        let m = analyze("int a;\nint b;\n");
        assert_eq!(m.len(), 2);
        let l1 = m.line(1).unwrap();
        assert!(!l1.comment_only && !l1.is_directive && !l1.starts_in_comment);
        assert!(m.line(3).is_none());
    }

    #[test]
    fn comment_only_lines_detected() {
        let src = "/* block\n   middle\n   end */\nint code; // trailing\n// whole line\n";
        let m = analyze(src);
        assert!(m.line(1).unwrap().comment_only);
        assert!(m.line(2).unwrap().comment_only);
        assert!(m.line(2).unwrap().starts_in_comment);
        assert!(m.line(3).unwrap().comment_only);
        assert!(!m.line(4).unwrap().comment_only);
        assert!(m.line(5).unwrap().comment_only);
    }

    #[test]
    fn comment_close_col_points_past_star_slash() {
        let src = "/* open\nend */ int x;\n";
        let m = analyze(src);
        let l2 = m.line(2).unwrap();
        assert!(l2.starts_in_comment);
        assert_eq!(l2.comment_close_col, Some(6));
        assert_eq!(&"end */ int x;"[6..], " int x;");
    }

    #[test]
    fn macro_def_span_single_line() {
        let m = analyze("#define HI(x) (((x) & 0xf) << 4)\nint y;\n");
        assert_eq!(m.macro_defs.len(), 1);
        let d = &m.macro_defs[0];
        assert_eq!(d.name, "HI");
        assert_eq!((d.define_line, d.end_line), (1, 1));
        assert!(m.line(1).unwrap().is_directive);
        assert_eq!(m.line(1).unwrap().in_macro_def, Some(0));
        assert_eq!(m.line(2).unwrap().in_macro_def, None);
    }

    #[test]
    fn macro_def_span_with_continuations() {
        let src = "#define SINGLE(x) \\\n (HI(x) | \\\n  LO(x))\nint z;\n";
        let m = analyze(src);
        let d = &m.macro_defs[0];
        assert_eq!((d.define_line, d.end_line), (1, 3));
        assert!(d.contains(2));
        assert!(!d.contains(4));
        assert!(m.line(1).unwrap().ends_with_continuation);
        assert!(m.line(2).unwrap().ends_with_continuation);
        assert!(!m.line(3).unwrap().ends_with_continuation);
        assert_eq!(m.line(2).unwrap().in_macro_def, Some(0));
        assert_eq!(m.macro_def_at(3).unwrap().name, "SINGLE");
    }

    #[test]
    fn conditional_directives_flagged() {
        let src = "#ifdef A\nint a;\n#elif defined(B)\nint b;\n#else\nint c;\n#endif\n";
        let m = analyze(src);
        assert!(m.line(1).unwrap().is_conditional);
        assert!(!m.line(2).unwrap().is_conditional);
        assert!(m.line(3).unwrap().is_conditional);
        assert!(m.line(5).unwrap().is_conditional);
        // #endif closes a section but does not open one.
        assert!(!m.line(7).unwrap().is_conditional);
        assert!(m.line(7).unwrap().is_directive);
    }

    #[test]
    fn comment_markers_in_strings_ignored() {
        let m = analyze("char *s = \"/* not a comment\";\nint x;\n");
        assert!(!m.line(1).unwrap().comment_only);
        assert!(!m.line(2).unwrap().starts_in_comment);
    }

    #[test]
    fn two_macros_indexed_in_order() {
        let src = "#define A 1\n#define B 2\n";
        let m = analyze(src);
        assert_eq!(m.macro_defs.len(), 2);
        assert_eq!(m.macro_def_at(1).unwrap().name, "A");
        assert_eq!(m.macro_def_at(2).unwrap().name, "B");
    }

    #[test]
    fn blank_lines_are_not_comment_only() {
        let m = analyze("\n  \nint x;\n");
        assert!(!m.line(1).unwrap().comment_only);
        assert!(!m.line(2).unwrap().comment_only);
    }

    #[test]
    fn define_inside_conditional() {
        let src = "#ifdef CONFIG_PM\n#define PM_OPS &pm_ops\n#endif\n";
        let m = analyze(src);
        assert!(m.line(1).unwrap().is_conditional);
        assert_eq!(m.macro_def_at(2).unwrap().name, "PM_OPS");
    }

    #[test]
    fn elif_in_macro_continuation_body_keeps_in_macro_def() {
        // The comment opened on the #define line swallows its newline
        // (splice happens before comment removal in real cpp), and the
        // `*/ \` tail splices the next line too — so the #elif text is
        // part of PICK's replacement list, not a conditional boundary.
        // Before the fix it was flagged is_conditional (attributed to the
        // comment-tail line, at that) while losing in_macro_def entirely.
        let src = "#ifdef CONFIG_X\n#define PICK(x) /* pick\nimpl */ \\\n#elif defined(CONFIG_Y)\nint y;\n#endif\n";
        let m = analyze(src);
        let d = &m.macro_defs[0];
        assert_eq!((d.define_line, d.end_line), (2, 4));
        for line in 2..=4 {
            let info = m.line(line).unwrap();
            assert_eq!(info.in_macro_def, Some(0), "line {line} lost in_macro_def");
            assert!(!info.is_conditional, "line {line} flagged conditional inside macro body");
            assert!(info.is_directive);
        }
        assert_eq!(m.macro_def_at(4).unwrap().name, "PICK");
        assert_eq!(m.line(5).unwrap().in_macro_def, None);
    }

    #[test]
    fn elif_spliced_into_define_is_macro_body() {
        // Plain backslash chain: the #elif physical line is spliced into
        // the define logical line and must carry its in_macro_def.
        let src = "#define PICK(x) \\\n  first(x) \\\n#elif defined(CONFIG_Y)\nint y;\n";
        let m = analyze(src);
        assert_eq!((m.macro_defs[0].define_line, m.macro_defs[0].end_line), (1, 3));
        let l3 = m.line(3).unwrap();
        assert_eq!(l3.in_macro_def, Some(0));
        assert!(!l3.is_conditional);
    }

    #[test]
    fn elif_after_completed_define_is_plain_conditional() {
        // Control: once the continuation chain ends, a following #elif is
        // an ordinary conditional outside the macro span.
        let src = "#ifdef CONFIG_X\n#define PICK(x) \\\n  first(x)\n#elif defined(CONFIG_Y)\nint y;\n#endif\n";
        let m = analyze(src);
        assert_eq!((m.macro_defs[0].define_line, m.macro_defs[0].end_line), (2, 3));
        let l4 = m.line(4).unwrap();
        assert!(l4.is_conditional);
        assert_eq!(l4.in_macro_def, None);
    }

    #[test]
    fn conditional_anchored_to_hash_line_after_comment_tail() {
        // A directive whose logical line opens on a comment tail (`*/ \`)
        // must flag the physical line holding the `#`, not the tail.
        let src = "#ifdef A\nint a; /* c\nc2 */ \\\n#elif defined(B)\nint b;\n#endif\n";
        let m = analyze(src);
        assert!(!m.line(3).unwrap().is_conditional, "comment tail flagged");
        assert!(m.line(4).unwrap().is_conditional, "#elif line not flagged");
    }

    #[test]
    fn comment_split_define_body_rejoined() {
        let src = "#define M(x) /* c\nc2 */ \\\n  body(x)\nint t;\n";
        let m = analyze(src);
        assert_eq!((m.macro_defs[0].define_line, m.macro_defs[0].end_line), (1, 3));
        assert_eq!(m.line(3).unwrap().in_macro_def, Some(0));
        assert_eq!(m.line(4).unwrap().in_macro_def, None);
    }

    #[test]
    fn empty_source() {
        let m = analyze("");
        assert!(m.is_empty());
        assert!(m.macro_defs.is_empty());
    }
}
