//! `#if` expression evaluation.
//!
//! Implements the C preprocessor constant-expression subset: integer
//! literals, character constants, `defined X` / `defined(X)`, unary
//! `+ - ! ~`, binary arithmetic, shifts, comparisons, bitwise and logical
//! operators, and the ternary conditional. Identifiers remaining after
//! macro expansion evaluate to 0, per the standard.

use crate::expand::Expander;
use crate::macros::MacroTable;
use crate::token::{Token, TokenKind};

/// Evaluate a `#if` expression.
///
/// `tokens` is the directive's token list *before* macro expansion;
/// `defined` is resolved first (its operand must not be expanded), then the
/// rest is macro-expanded and parsed.
///
/// # Errors
///
/// Returns a description of the malformation (empty expression, bad
/// operator placement, division by zero, unbalanced parens).
pub fn eval_if_expr(tokens: &[Token], table: &MacroTable) -> Result<i64, String> {
    let resolved = resolve_defined(tokens, table)?;
    let mut expander = Expander::new(table);
    let expanded = expander.expand(&resolved);
    let mut p = Parser {
        tokens: &expanded,
        pos: 0,
    };
    let v = p.ternary()?;
    if p.pos != p.tokens.len() {
        return Err(format!(
            "trailing tokens after expression: {:?}",
            p.tokens[p.pos].text
        ));
    }
    Ok(v)
}

/// Replace `defined NAME` / `defined(NAME)` with `1` or `0`.
fn resolve_defined(tokens: &[Token], table: &MacroTable) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_ident("defined") {
            let (name, consumed) = match tokens.get(i + 1) {
                Some(n) if n.kind == TokenKind::Ident => (n.text.clone(), 2),
                Some(n) if n.is_punct("(") => {
                    let id = tokens
                        .get(i + 2)
                        .filter(|t| t.kind == TokenKind::Ident)
                        .ok_or("defined( without identifier")?;
                    if !matches!(tokens.get(i + 3), Some(c) if c.is_punct(")")) {
                        return Err("defined(NAME without )".into());
                    }
                    (id.text.clone(), 4)
                }
                _ => return Err("defined without identifier".into()),
            };
            let val = if table.is_defined(&name) { "1" } else { "0" };
            out.push(Token::new(TokenKind::Number, val, t.space_before, t.line));
            i += consumed;
        } else {
            out.push(t.clone());
            i += 1;
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(t) if t.is_punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ternary(&mut self) -> Result<i64, String> {
        let cond = self.logical_or()?;
        if self.eat_punct("?") {
            let then = self.ternary()?;
            if !self.eat_punct(":") {
                return Err("expected : in ternary".into());
            }
            let els = self.ternary()?;
            Ok(if cond != 0 { then } else { els })
        } else {
            Ok(cond)
        }
    }

    fn logical_or(&mut self) -> Result<i64, String> {
        let mut v = self.logical_and()?;
        while self.eat_punct("||") {
            let r = self.logical_and()?;
            v = i64::from(v != 0 || r != 0);
        }
        Ok(v)
    }

    fn logical_and(&mut self) -> Result<i64, String> {
        let mut v = self.bit_or()?;
        while self.eat_punct("&&") {
            let r = self.bit_or()?;
            v = i64::from(v != 0 && r != 0);
        }
        Ok(v)
    }

    fn bit_or(&mut self) -> Result<i64, String> {
        let mut v = self.bit_xor()?;
        while self.eat_punct("|") {
            v |= self.bit_xor()?;
        }
        Ok(v)
    }

    fn bit_xor(&mut self) -> Result<i64, String> {
        let mut v = self.bit_and()?;
        while self.eat_punct("^") {
            v ^= self.bit_and()?;
        }
        Ok(v)
    }

    fn bit_and(&mut self) -> Result<i64, String> {
        let mut v = self.equality()?;
        while self.eat_punct("&") {
            v &= self.equality()?;
        }
        Ok(v)
    }

    fn equality(&mut self) -> Result<i64, String> {
        let mut v = self.relational()?;
        loop {
            if self.eat_punct("==") {
                v = i64::from(v == self.relational()?);
            } else if self.eat_punct("!=") {
                v = i64::from(v != self.relational()?);
            } else {
                return Ok(v);
            }
        }
    }

    fn relational(&mut self) -> Result<i64, String> {
        let mut v = self.shift()?;
        loop {
            if self.eat_punct("<=") {
                v = i64::from(v <= self.shift()?);
            } else if self.eat_punct(">=") {
                v = i64::from(v >= self.shift()?);
            } else if self.eat_punct("<") {
                v = i64::from(v < self.shift()?);
            } else if self.eat_punct(">") {
                v = i64::from(v > self.shift()?);
            } else {
                return Ok(v);
            }
        }
    }

    fn shift(&mut self) -> Result<i64, String> {
        let mut v = self.additive()?;
        loop {
            if self.eat_punct("<<") {
                let r = self.additive()? & 63;
                v = v.wrapping_shl(r as u32);
            } else if self.eat_punct(">>") {
                let r = self.additive()? & 63;
                v = v.wrapping_shr(r as u32);
            } else {
                return Ok(v);
            }
        }
    }

    fn additive(&mut self) -> Result<i64, String> {
        let mut v = self.multiplicative()?;
        loop {
            if self.eat_punct("+") {
                v = v.wrapping_add(self.multiplicative()?);
            } else if self.eat_punct("-") {
                v = v.wrapping_sub(self.multiplicative()?);
            } else {
                return Ok(v);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<i64, String> {
        let mut v = self.unary()?;
        loop {
            if self.eat_punct("*") {
                v = v.wrapping_mul(self.unary()?);
            } else if self.eat_punct("/") {
                let r = self.unary()?;
                if r == 0 {
                    return Err("division by zero in #if".into());
                }
                v = v.wrapping_div(r);
            } else if self.eat_punct("%") {
                let r = self.unary()?;
                if r == 0 {
                    return Err("modulo by zero in #if".into());
                }
                v = v.wrapping_rem(r);
            } else {
                return Ok(v);
            }
        }
    }

    fn unary(&mut self) -> Result<i64, String> {
        if self.eat_punct("!") {
            Ok(i64::from(self.unary()? == 0))
        } else if self.eat_punct("~") {
            Ok(!self.unary()?)
        } else if self.eat_punct("-") {
            Ok(self.unary()?.wrapping_neg())
        } else if self.eat_punct("+") {
            self.unary()
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<i64, String> {
        let Some(t) = self.peek() else {
            return Err("unexpected end of #if expression".into());
        };
        if t.is_punct("(") {
            self.pos += 1;
            let v = self.ternary()?;
            if !self.eat_punct(")") {
                return Err("missing ) in #if expression".into());
            }
            return Ok(v);
        }
        let v = match &t.kind {
            TokenKind::Number => {
                parse_int(&t.text).ok_or_else(|| format!("bad integer literal {:?}", t.text))?
            }
            TokenKind::Char => {
                parse_char(&t.text).ok_or_else(|| format!("bad character constant {:?}", t.text))?
            }
            // Any identifier surviving macro expansion is 0. This includes
            // `true`/`false` in pre-C23 preprocessor arithmetic — kernel
            // code does not rely on those in #if.
            TokenKind::Ident => 0,
            other => return Err(format!("unexpected token {:?} in #if", other)),
        };
        self.pos += 1;
        Ok(v)
    }
}

/// Parse a pp-number as an integer, honouring `0x`, `0b`, octal `0`, and
/// ignoring `u`/`l` suffixes. Returns `None` for floats or garbage.
fn parse_int(text: &str) -> Option<i64> {
    let lower = text.to_ascii_lowercase();
    let trimmed = lower.trim_end_matches(['u', 'l']);
    if trimmed.contains('.') || (trimmed.contains('e') && !trimmed.starts_with("0x")) {
        return None;
    }
    let (radix, digits) = if let Some(d) = trimmed.strip_prefix("0x") {
        (16, d)
    } else if let Some(d) = trimmed.strip_prefix("0b") {
        (2, d)
    } else if trimmed.len() > 1 && trimmed.starts_with('0') {
        (8, &trimmed[1..])
    } else {
        (10, trimmed)
    };
    u64::from_str_radix(digits, radix).ok().map(|v| v as i64)
}

/// Value of a character constant.
fn parse_char(text: &str) -> Option<i64> {
    let inner = text.strip_prefix('\'')?.strip_suffix('\'')?;
    let mut chars = inner.chars();
    let c = chars.next()?;
    let v = if c == '\\' {
        match chars.next()? {
            'n' => 10,
            't' => 9,
            'r' => 13,
            '0' => 0,
            '\\' => 92,
            '\'' => 39,
            '"' => 34,
            'x' => i64::from_str_radix(chars.as_str(), 16).ok()?,
            other => other as i64,
        }
    } else {
        c as i64
    };
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::macros::MacroDef;

    fn eval(src: &str) -> i64 {
        eval_if_expr(&lex(src, 1), &MacroTable::new()).unwrap()
    }

    fn eval_with(src: &str, table: &MacroTable) -> i64 {
        eval_if_expr(&lex(src, 1), table).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval("1 + 2 * 3"), 7);
        assert_eq!(eval("(1 + 2) * 3"), 9);
        assert_eq!(eval("10 / 3"), 3);
        assert_eq!(eval("10 % 3"), 1);
        assert_eq!(eval("-3 + 1"), -2);
    }

    #[test]
    fn radix_literals() {
        assert_eq!(eval("0x10"), 16);
        assert_eq!(eval("010"), 8);
        assert_eq!(eval("0b101"), 5);
        assert_eq!(eval("0xFFUL"), 255);
        assert_eq!(eval("0"), 0);
    }

    #[test]
    fn logic_and_comparison() {
        assert_eq!(eval("1 && 0"), 0);
        assert_eq!(eval("1 || 0"), 1);
        assert_eq!(eval("!5"), 0);
        assert_eq!(eval("3 > 2 && 2 >= 2 && 1 < 2 && 1 <= 1"), 1);
        assert_eq!(eval("1 == 1 && 1 != 2"), 1);
    }

    #[test]
    fn bitwise_and_shift() {
        assert_eq!(eval("1 << 4"), 16);
        assert_eq!(eval("256 >> 4"), 16);
        assert_eq!(eval("0xf0 & 0x1f"), 0x10);
        assert_eq!(eval("1 | 2 | 4"), 7);
        assert_eq!(eval("5 ^ 1"), 4);
        assert_eq!(eval("~0 & 0xff"), 0xff);
    }

    #[test]
    fn ternary_nests() {
        assert_eq!(eval("1 ? 2 : 3"), 2);
        assert_eq!(eval("0 ? 2 : 1 ? 4 : 5"), 4);
    }

    #[test]
    fn undefined_identifier_is_zero() {
        assert_eq!(eval("NOT_DEFINED_ANYWHERE + 1"), 1);
    }

    #[test]
    fn defined_operator_both_forms() {
        let mut t = MacroTable::new();
        t.define(MacroDef::object("CONFIG_SMP", "1"));
        assert_eq!(eval_with("defined(CONFIG_SMP)", &t), 1);
        assert_eq!(eval_with("defined CONFIG_SMP", &t), 1);
        assert_eq!(eval_with("defined(CONFIG_NUMA)", &t), 0);
        assert_eq!(eval_with("!defined(CONFIG_NUMA)", &t), 1);
    }

    #[test]
    fn defined_operand_is_not_macro_expanded() {
        let mut t = MacroTable::new();
        t.define(MacroDef::object("ALIAS", "REAL"));
        // defined(ALIAS) asks about ALIAS itself, which is defined.
        assert_eq!(eval_with("defined(ALIAS)", &t), 1);
    }

    #[test]
    fn macros_expand_in_expressions() {
        let mut t = MacroTable::new();
        t.define(MacroDef::object("LINUX_VERSION_CODE", "263168"));
        t.define(MacroDef::function(
            "KERNEL_VERSION",
            vec!["a".into(), "b".into(), "c".into()],
            "(((a) << 16) + ((b) << 8) + (c))",
        ));
        assert_eq!(
            eval_with("LINUX_VERSION_CODE >= KERNEL_VERSION(4, 4, 0)", &t),
            1
        );
    }

    #[test]
    fn char_constants() {
        assert_eq!(eval("'A'"), 65);
        assert_eq!(eval("'\\n'"), 10);
        assert_eq!(eval("'\\x41'"), 65);
    }

    #[test]
    fn division_by_zero_is_error() {
        assert!(eval_if_expr(&lex("1 / 0", 1), &MacroTable::new()).is_err());
        assert!(eval_if_expr(&lex("1 % 0", 1), &MacroTable::new()).is_err());
    }

    #[test]
    fn malformed_expressions_error() {
        assert!(eval_if_expr(&lex("", 1), &MacroTable::new()).is_err());
        assert!(eval_if_expr(&lex("(1", 1), &MacroTable::new()).is_err());
        assert!(eval_if_expr(&lex("1 +", 1), &MacroTable::new()).is_err());
        assert!(eval_if_expr(&lex("1 2", 1), &MacroTable::new()).is_err());
        assert!(eval_if_expr(&lex("defined()", 1), &MacroTable::new()).is_err());
        assert!(eval_if_expr(&lex("1 ? 2", 1), &MacroTable::new()).is_err());
    }

    #[test]
    fn kernel_style_compound_condition() {
        let mut t = MacroTable::new();
        t.define(MacroDef::object("CONFIG_PM", "1"));
        assert_eq!(
            eval_with("defined(CONFIG_PM) && !defined(CONFIG_PM_SLEEP)", &t),
            1
        );
    }
}
