//! The preprocessor driver: directives, includes, and `.i` generation.

use crate::cond::CondStack;
use crate::error::{CppError, CppErrorKind};
use crate::expand::Expander;
use crate::expr::eval_if_expr;
use crate::lexer::lex;
use crate::lines::{logical_lines, LogicalLine};
use crate::macros::{str_hash, MacroDef, MacroTable};
use crate::memo::{IncludeEffect, IncludeKey, IncludeMemo, MacroEvent};
use crate::token::{render_tokens, Token, TokenKind};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Maximum include nesting before [`CppErrorKind::IncludeDepthExceeded`].
const MAX_INCLUDE_DEPTH: usize = 64;

/// Supplies the content of `#include` targets.
///
/// Implementations resolve a target against the including file (for quoted
/// includes) and a set of search paths (for angle includes), mirroring
/// `-I` handling.
pub trait IncludeResolver {
    /// Resolve `target`; `quoted` distinguishes `"x.h"` from `<x.h>`,
    /// `including_file` is the canonical path of the file containing the
    /// directive. Returns the canonical path and content; the content is
    /// a shared handle so resolvers over long-lived trees hand out
    /// pointers instead of copying file text per inclusion.
    fn resolve(&self, target: &str, quoted: bool, including_file: &str)
        -> Option<(String, Arc<str>)>;
}

/// An [`IncludeResolver`] over an in-memory file map — the whole workspace
/// keeps source trees in memory (the paper ran its evaluation from a tmpfs
/// for the same reason).
#[derive(Debug, Clone, Default)]
pub struct MapResolver {
    files: BTreeMap<String, Arc<str>>,
    search_paths: Vec<String>,
}

impl MapResolver {
    /// Empty resolver with no files and no search paths.
    pub fn new() -> Self {
        MapResolver::default()
    }

    /// Add (or replace) a file.
    pub fn add_file(&mut self, path: impl Into<String>, content: impl Into<String>) {
        let content: String = content.into();
        self.files.insert(normalize(&path.into()), content.into());
    }

    /// Append an include search path (like `-I`).
    pub fn add_search_path(&mut self, path: impl Into<String>) {
        self.search_paths.push(path.into());
    }

    /// Borrow a file's content by canonical path.
    pub fn get(&self, path: &str) -> Option<&str> {
        self.files.get(&normalize(path)).map(|c| &**c)
    }
}

impl IncludeResolver for MapResolver {
    fn resolve(
        &self,
        target: &str,
        quoted: bool,
        including_file: &str,
    ) -> Option<(String, Arc<str>)> {
        let mut candidates = Vec::new();
        if quoted {
            let dir = match including_file.rsplit_once('/') {
                Some((d, _)) => d,
                None => "",
            };
            candidates.push(if dir.is_empty() {
                target.to_string()
            } else {
                format!("{dir}/{target}")
            });
        }
        for sp in &self.search_paths {
            candidates.push(format!("{sp}/{target}"));
        }
        candidates.push(target.to_string());
        for c in candidates {
            let c = normalize(&c);
            if let Some(content) = self.files.get(&c) {
                return Some((c, Arc::clone(content)));
            }
        }
        None
    }
}

/// First identifier of a directive operand (`#ifdef NAME`, `#undef NAME`).
fn first_ident(rest: &str) -> Option<String> {
    let t = rest.trim_start();
    let id: String = t
        .chars()
        .take_while(|c| *c == '_' || c.is_ascii_alphanumeric())
        .collect();
    if id.is_empty() || id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(id)
    }
}

/// Normalize `a/./b/../c` to `a/c`.
fn normalize(path: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            s => parts.push(s),
        }
    }
    parts.join("/")
}

/// Everything produced by one preprocessing run.
#[derive(Debug, Clone)]
pub struct PreprocessOutput {
    /// The `.i` text: expanded source with `# line "file"` markers.
    pub text: String,
    /// Diagnostics (empty for a clean run).
    pub errors: Vec<CppError>,
    /// Names of macros that were expanded at least once.
    pub expanded_macros: HashSet<String>,
    /// Canonical paths of every file included, in first-inclusion order.
    pub includes: Vec<String>,
    /// The macro table as it stood at end of the translation unit.
    pub macros: MacroTable,
}

impl PreprocessOutput {
    /// True when preprocessing raised no diagnostics.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// The preprocessor: configure predefined macros and search behaviour, then
/// run [`Preprocessor::preprocess`] per translation unit.
#[derive(Clone)]
pub struct Preprocessor<R> {
    resolver: R,
    predefined: MacroTable,
    memo: Option<Arc<dyn IncludeMemo>>,
}

impl<R: std::fmt::Debug> std::fmt::Debug for Preprocessor<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Preprocessor")
            .field("resolver", &self.resolver)
            .field("predefined", &self.predefined)
            .field("memo", &self.memo.is_some())
            .finish()
    }
}

impl<R: IncludeResolver> Preprocessor<R> {
    /// A preprocessor reading includes from `resolver`.
    pub fn new(resolver: R) -> Self {
        Preprocessor {
            resolver,
            predefined: MacroTable::new(),
            memo: None,
        }
    }

    /// Attach a header-inclusion memo (see [`crate::memo`]). Replayed
    /// inclusions leave the output and all preprocessor state
    /// byte-identical to live processing; only host time changes.
    pub fn set_memo(&mut self, memo: Arc<dyn IncludeMemo>) {
        self.memo = Some(memo);
    }

    /// Replace the whole predefined-macro table at once. A table built
    /// ahead of time (e.g. one per build configuration) shares its
    /// definitions by refcount, so installing it costs far less than
    /// re-`define`-ing every macro per translation unit.
    pub fn set_predefined(&mut self, table: MacroTable) {
        self.predefined = table;
    }

    /// Predefine an object-like macro (like `-D name=body`).
    pub fn define_object(&mut self, name: &str, body: &str) {
        self.predefined.define(MacroDef::object(name, body));
    }

    /// Predefine a function-like macro (e.g. the kernel's
    /// `IS_ENABLED(option)`).
    pub fn define_function(&mut self, name: &str, params: Vec<String>, body: &str) {
        self.predefined
            .define(MacroDef::function(name, params, body));
    }

    /// Remove a predefined macro (like `-U name`).
    pub fn undefine(&mut self, name: &str) {
        self.predefined.undef(name);
    }

    /// Access the resolver.
    pub fn resolver(&self) -> &R {
        &self.resolver
    }

    /// Preprocess one translation unit.
    pub fn preprocess(&self, path: &str, content: &str) -> PreprocessOutput {
        let mut st = State {
            resolver: &self.resolver,
            memo: self.memo.as_deref(),
            table: self.predefined.clone(),
            errors: Vec::new(),
            expanded: HashSet::new(),
            includes: Vec::new(),
            pragma_once: HashSet::new(),
            pragma_fp: 0,
            recording: false,
            rec_macros: Vec::new(),
            rec_expanded: Vec::new(),
            rec_includes: Vec::new(),
            rec_pragma: Vec::new(),
            rec_first_flush: None,
            out: String::new(),
            out_file: String::new(),
            out_line: 0,
        };
        st.process_file(path, content, 0);
        let State {
            table,
            errors,
            expanded,
            includes,
            out,
            ..
        } = st;
        PreprocessOutput {
            text: out,
            errors,
            expanded_macros: expanded,
            includes,
            macros: table,
        }
    }
}

struct State<'r, R> {
    resolver: &'r R,
    memo: Option<&'r dyn IncludeMemo>,
    table: MacroTable,
    errors: Vec<CppError>,
    expanded: HashSet<String>,
    includes: Vec<String>,
    pragma_once: HashSet<String>,
    /// Multiset fingerprint of `pragma_once` (memo key component).
    pragma_fp: u64,
    /// An include-effect recording is active (at most one at a time; the
    /// outermost memoizable inclusion records, nested ones run live or
    /// replay into the outer recording).
    recording: bool,
    rec_macros: Vec<MacroEvent>,
    rec_expanded: Vec<String>,
    rec_includes: Vec<String>,
    rec_pragma: Vec<String>,
    /// `(path, first_line, marker_emitted)` of the first flush inside the
    /// active recording — the only output decision that depends on the
    /// caller's state (see [`crate::memo`]).
    rec_first_flush: Option<(String, u32, bool)>,
    out: String,
    /// File the last emitted marker named.
    out_file: String,
    /// Source line of the last emitted output line.
    out_line: u32,
}

impl<'r, R: IncludeResolver> State<'r, R> {
    fn error(&mut self, file: &str, line: u32, kind: CppErrorKind) {
        self.errors.push(CppError {
            file: file.to_string(),
            line,
            kind,
        });
    }

    fn process_file(&mut self, path: &str, content: &str, depth: usize) {
        if depth > MAX_INCLUDE_DEPTH {
            self.error(path, 0, CppErrorKind::IncludeDepthExceeded);
            return;
        }
        let lls = logical_lines(content);
        let mut cond = CondStack::new();
        // Tokens of consecutive active text lines, flushed at directives.
        let mut run: Vec<Token> = Vec::new();

        for ll in &lls {
            if !ll.is_directive() {
                if cond.active() && !ll.is_blank() {
                    let mut toks = lex(&ll.text, ll.first_line);
                    self.replace_builtins(&mut toks, path);
                    run.extend(toks);
                }
                continue;
            }
            // Directive: flush the pending run first.
            self.flush(path, &mut run);
            let (name, rest) = ll.directive().expect("is_directive checked");
            let name = name.to_string();
            let rest = rest.to_string();
            self.handle_directive(path, ll, &name, &rest, &mut cond, depth);
        }
        self.flush(path, &mut run);
        if cond.depth() > 0 {
            let line = cond.innermost_open_line().unwrap_or(0);
            self.error(path, line, CppErrorKind::UnterminatedConditional);
        }
    }

    fn handle_directive(
        &mut self,
        path: &str,
        ll: &LogicalLine,
        name: &str,
        rest: &str,
        cond: &mut CondStack,
        depth: usize,
    ) {
        let line = ll.first_line;
        match name {
            "if" => {
                let value = if cond.active() {
                    self.eval_expr(path, line, rest)
                } else {
                    false
                };
                cond.push(value, line);
            }
            "ifdef" | "ifndef" => {
                let id = first_ident(rest);
                match id {
                    Some(id) => {
                        let defined = self.table.is_defined(&id);
                        let taken = if name == "ifdef" { defined } else { !defined };
                        cond.push(taken, line);
                    }
                    None => {
                        self.error(
                            path,
                            line,
                            CppErrorKind::MalformedDirective(format!("#{name} without identifier")),
                        );
                        cond.push(false, line);
                    }
                }
            }
            "elif" => {
                let value = cond.elif_needs_eval() && self.eval_expr(path, line, rest);
                if !cond.elif(value) {
                    self.error(
                        path,
                        line,
                        CppErrorKind::MalformedDirective("#elif without matching #if".into()),
                    );
                }
            }
            "else" => {
                if !cond.toggle_else() {
                    self.error(
                        path,
                        line,
                        CppErrorKind::MalformedDirective("#else without matching #if".into()),
                    );
                }
            }
            "endif" => {
                if !cond.pop() {
                    self.error(
                        path,
                        line,
                        CppErrorKind::MalformedDirective("#endif without matching #if".into()),
                    );
                }
            }
            _ if !cond.active() => {
                // All other directives are inert in dead regions.
            }
            "define" => self.handle_define(path, line, rest),
            "undef" => match first_ident(rest) {
                Some(id) => self.undef_macro(&id),
                None => self.error(
                    path,
                    line,
                    CppErrorKind::MalformedDirective("#undef without identifier".into()),
                ),
            },
            "include" => self.handle_include(path, line, rest, depth),
            "error" => self.error(path, line, CppErrorKind::UserError(rest.to_string())),
            "warning" | "pragma" | "line" | "ident" => {
                if name == "pragma" && rest.trim() == "once" {
                    self.pragma_insert(path);
                }
            }
            other => self.error(
                path,
                line,
                CppErrorKind::MalformedDirective(format!("unknown directive #{other}")),
            ),
        }
    }

    fn eval_expr(&mut self, path: &str, line: u32, rest: &str) -> bool {
        let toks = lex(rest, line);
        match eval_if_expr(&toks, &self.table) {
            Ok(v) => v != 0,
            Err(e) => {
                self.error(path, line, CppErrorKind::BadExpression(e));
                false
            }
        }
    }

    fn handle_define(&mut self, path: &str, line: u32, rest: &str) {
        // Name must start immediately; parameters only when '(' is adjacent.
        let rest_chars: Vec<char> = rest.chars().collect();
        let mut i = 0;
        while i < rest_chars.len()
            && (rest_chars[i] == '_' || rest_chars[i].is_ascii_alphanumeric())
        {
            i += 1;
        }
        if i == 0 {
            self.error(
                path,
                line,
                CppErrorKind::MalformedDirective("#define without name".into()),
            );
            return;
        }
        let name: String = rest_chars[..i].iter().collect();
        let (params, variadic, body_start) = if rest_chars.get(i) == Some(&'(') {
            // Function-like: parse parameter list.
            let rest_str: String = rest_chars[i + 1..].iter().collect();
            let Some(close) = rest_str.find(')') else {
                self.error(
                    path,
                    line,
                    CppErrorKind::MalformedDirective(format!("#define {name}( without )")),
                );
                return;
            };
            let params_str = &rest_str[..close];
            let mut params = Vec::new();
            let mut variadic = false;
            for p in params_str.split(',') {
                let p = p.trim();
                if p.is_empty() {
                    continue;
                }
                if p == "..." {
                    variadic = true;
                } else {
                    params.push(p.trim_end_matches("...").trim().to_string());
                    if p.ends_with("...") {
                        variadic = true;
                    }
                }
            }
            (Some(params), variadic, i + 1 + close + 1)
        } else {
            (None, false, i)
        };
        let body_text: String = rest_chars[body_start..].iter().collect();
        let body = lex(body_text.trim_start(), line);
        self.define_macro(Arc::new(MacroDef {
            name,
            params,
            variadic,
            body,
        }));
    }

    fn handle_include(&mut self, path: &str, line: u32, rest: &str, depth: usize) {
        let rest = rest.trim();
        // Computed includes: expand macros first when the target is not a
        // literal form.
        let expanded_rest;
        let target_text = if rest.starts_with('"') || rest.starts_with('<') {
            rest
        } else {
            let mut ex = Expander::new(&self.table);
            let toks = ex.expand(&lex(rest, line));
            let names = std::mem::take(&mut ex.expanded_names);
            drop(ex);
            for name in &names {
                self.note_expanded(name);
            }
            expanded_rest = render_tokens(&toks);
            expanded_rest.trim()
        };
        let (target, quoted) = if let Some(t) = target_text.strip_prefix('"') {
            match t.find('"') {
                Some(end) => (t[..end].to_string(), true),
                None => {
                    self.error(
                        path,
                        line,
                        CppErrorKind::MalformedDirective("unterminated include target".into()),
                    );
                    return;
                }
            }
        } else if let Some(t) = target_text.strip_prefix('<') {
            match t.find('>') {
                Some(end) => (t[..end].to_string(), false),
                None => {
                    self.error(
                        path,
                        line,
                        CppErrorKind::MalformedDirective("unterminated include target".into()),
                    );
                    return;
                }
            }
        } else {
            self.error(
                path,
                line,
                CppErrorKind::MalformedDirective(format!("bad include target {target_text:?}")),
            );
            return;
        };
        match self.resolver.resolve(&target, quoted, path) {
            Some((canon, content)) => {
                if self.pragma_once.contains(&canon) {
                    return;
                }
                self.note_include(&canon);
                self.memo_or_process(&canon, &content, depth);
            }
            None => self.error(path, line, CppErrorKind::IncludeNotFound(target)),
        }
    }

    /// Process an inclusion through the memo when one is attached and the
    /// header's closure is fingerprintable: replay a recorded effect,
    /// record a fresh one, or fall through to live processing.
    fn memo_or_process(&mut self, canon: &str, content: &str, depth: usize) {
        let inc_depth = depth + 1;
        if let Some(memo) = self.memo {
            if let Some(closure_fp) = memo.closure_fp(canon) {
                let key = IncludeKey {
                    path: canon.to_string(),
                    closure_fp,
                    macro_fp: self.table.fingerprint(),
                    pragma_fp: self.pragma_fp,
                    depth: inc_depth as u32,
                };
                if let Some(effect) = memo.lookup(&key) {
                    if self.marker_decision_matches(&effect) {
                        self.replay(&effect);
                        return;
                    }
                } else if !self.recording {
                    self.record(memo, key, canon, content, inc_depth);
                    return;
                }
            }
        }
        self.process_file(canon, content, inc_depth);
    }

    /// A recorded effect's opening bytes are valid here iff the current
    /// output state would make the same first-marker decision the
    /// recording saw (recordings whose first flush skipped its marker are
    /// never stored, so the decision to match is always "emit").
    fn marker_decision_matches(&self, effect: &IncludeEffect) -> bool {
        match &effect.first_flush {
            None => true,
            Some((p, l)) => self.out_file != *p || *l != self.out_line + 1,
        }
    }

    /// Live-process `canon` while capturing its effect, then store the
    /// recording under `key`.
    fn record(
        &mut self,
        memo: &dyn IncludeMemo,
        key: IncludeKey,
        canon: &str,
        content: &str,
        inc_depth: usize,
    ) {
        self.recording = true;
        self.rec_first_flush = None;
        let out_start = self.out.len();
        let err_start = self.errors.len();
        self.process_file(canon, content, inc_depth);
        self.recording = false;
        let expanded = std::mem::take(&mut self.rec_expanded);
        let includes = std::mem::take(&mut self.rec_includes);
        let pragma_adds = std::mem::take(&mut self.rec_pragma);
        let macro_events = std::mem::take(&mut self.rec_macros);
        let first_flush = match self.rec_first_flush.take() {
            None => None,
            Some((p, l, true)) => Some((p, l)),
            // The first flush skipped its marker, so the chunk's opening
            // bytes depend on the caller's output state in a way replay
            // cannot re-create; drop the recording.
            Some((_, _, false)) => return,
        };
        let chunk = self.out[out_start..].to_string();
        let effect = IncludeEffect {
            exit_marker: (!chunk.is_empty()).then(|| (self.out_file.clone(), self.out_line)),
            chunk,
            errors: self.errors[err_start..].to_vec(),
            expanded,
            includes,
            pragma_adds,
            macro_events,
            first_flush,
        };
        memo.insert(key, Arc::new(effect));
    }

    /// Apply a recorded effect, leaving every piece of state byte-for-byte
    /// as live processing would have. Runs through the recording-aware
    /// helpers so a replay inside an outer recording is captured by it.
    fn replay(&mut self, effect: &IncludeEffect) {
        if self.recording && self.rec_first_flush.is_none() {
            if let Some((p, l)) = &effect.first_flush {
                self.rec_first_flush = Some((p.clone(), *l, true));
            }
        }
        self.out.push_str(&effect.chunk);
        if let Some((file, line)) = &effect.exit_marker {
            self.out_file.clone_from(file);
            self.out_line = *line;
        }
        // Plain pushes: an outer recording captures errors by index range.
        self.errors.extend(effect.errors.iter().cloned());
        for name in &effect.expanded {
            self.note_expanded(name);
        }
        for inc in &effect.includes {
            self.note_include(inc);
        }
        for p in &effect.pragma_adds {
            self.pragma_insert(p);
        }
        for ev in &effect.macro_events {
            match ev {
                MacroEvent::Define(def) => self.define_macro(def.clone()),
                MacroEvent::Undef(name) => self.undef_macro(name),
            }
        }
    }

    /// Record a first inclusion, in translation-unit order.
    fn note_include(&mut self, canon: &str) {
        if self.recording && !self.rec_includes.iter().any(|p| p == canon) {
            self.rec_includes.push(canon.to_string());
        }
        if !self.includes.iter().any(|p| p == canon) {
            self.includes.push(canon.to_string());
        }
    }

    /// Record an expanded-macro name.
    fn note_expanded(&mut self, name: &str) {
        if self.recording && !self.rec_expanded.iter().any(|n| n == name) {
            self.rec_expanded.push(name.to_string());
        }
        if !self.expanded.contains(name) {
            self.expanded.insert(name.to_string());
        }
    }

    /// Add to the pragma-once set, maintaining its fingerprint.
    fn pragma_insert(&mut self, path: &str) {
        if self.pragma_once.insert(path.to_string()) {
            self.pragma_fp = self.pragma_fp.wrapping_add(str_hash(path));
            if self.recording {
                self.rec_pragma.push(path.to_string());
            }
        }
    }

    /// Define a macro, logging the event when recording.
    fn define_macro(&mut self, def: Arc<MacroDef>) {
        if self.recording {
            self.rec_macros.push(MacroEvent::Define(Arc::clone(&def)));
        }
        self.table.define_shared(def);
    }

    /// Undefine a macro, logging the event when recording.
    fn undef_macro(&mut self, name: &str) {
        if self.recording {
            self.rec_macros.push(MacroEvent::Undef(name.to_string()));
        }
        self.table.undef(name);
    }

    /// Replace `__FILE__` and `__LINE__` before expansion.
    fn replace_builtins(&self, tokens: &mut [Token], path: &str) {
        for t in tokens.iter_mut() {
            if t.kind == TokenKind::Ident {
                if t.text == "__FILE__" {
                    t.kind = TokenKind::Str;
                    t.text = format!("\"{path}\"");
                } else if t.text == "__LINE__" {
                    t.kind = TokenKind::Number;
                    t.text = t.line.to_string();
                }
            }
        }
    }

    /// Expand and emit a run of text-line tokens.
    fn flush(&mut self, path: &str, run: &mut Vec<Token>) {
        if run.is_empty() {
            return;
        }
        let tokens = std::mem::take(run);
        let first_line = tokens.first().map(|t| t.line).unwrap_or(0);
        let mut ex = Expander::new(&self.table);
        let expanded = ex.expand(&tokens);
        let names = std::mem::take(&mut ex.expanded_names);
        let kinds = std::mem::take(&mut ex.errors);
        drop(ex);
        for name in &names {
            self.note_expanded(name);
        }
        for kind in kinds {
            self.error(path, first_line, kind);
        }
        // Re-sync line markers like gcc -E.
        let emit_marker = self.out_file != path || first_line != self.out_line + 1;
        if self.recording && self.rec_first_flush.is_none() {
            self.rec_first_flush = Some((path.to_string(), first_line, emit_marker));
        }
        if emit_marker {
            self.out.push_str(&format!("# {first_line} \"{path}\"\n"));
            self.out_file = path.to_string();
        }
        // Render, breaking output lines where source lines advanced.
        let mut current_line = first_line;
        let mut line_tokens: Vec<Token> = Vec::new();
        for t in expanded {
            if t.line > current_line {
                self.out.push_str(render_tokens(&line_tokens).trim_end());
                self.out.push('\n');
                // Blank filler lines keep .i line numbers readable.
                for _ in current_line + 1..t.line {
                    self.out.push('\n');
                }
                current_line = t.line;
                line_tokens.clear();
            }
            line_tokens.push(t);
        }
        if !line_tokens.is_empty() {
            self.out.push_str(render_tokens(&line_tokens).trim_end());
            self.out.push('\n');
        }
        self.out_line = current_line;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(src: &str) -> PreprocessOutput {
        Preprocessor::new(MapResolver::new()).preprocess("t.c", src)
    }

    #[test]
    fn plain_code_passes_through() {
        let out = pp("int main(void)\n{\nreturn 0;\n}\n");
        assert!(out.is_clean());
        assert!(out.text.contains("int main(void)"));
        assert!(out.text.contains("return 0;"));
    }

    #[test]
    fn object_macro_definition_and_use() {
        let out = pp("#define N 4\nint a[N];\n");
        assert!(out.is_clean());
        assert!(out.text.contains("int a[4];"));
        assert!(!out.text.contains("#define"));
        assert!(out.expanded_macros.contains("N"));
    }

    #[test]
    fn ifdef_excludes_dead_code() {
        let out = pp("#ifdef NOPE\nint dead;\n#else\nint live;\n#endif\n");
        assert!(out.is_clean());
        assert!(!out.text.contains("dead"));
        assert!(out.text.contains("live"));
    }

    #[test]
    fn if_zero_excludes_block() {
        let out = pp("#if 0\nint dead;\n#endif\nint live;\n");
        assert!(!out.text.contains("dead"));
        assert!(out.text.contains("live"));
    }

    #[test]
    fn elif_chain() {
        let src = "#if defined(A)\nint a;\n#elif defined(B)\nint b;\n#else\nint c;\n#endif\n";
        let mut p = Preprocessor::new(MapResolver::new());
        p.define_object("B", "1");
        let out = p.preprocess("t.c", src);
        assert!(out.text.contains("int b;"));
        assert!(!out.text.contains("int a;"));
        assert!(!out.text.contains("int c;"));
    }

    #[test]
    fn nested_conditionals() {
        let mut p = Preprocessor::new(MapResolver::new());
        p.define_object("OUTER", "1");
        let out = p.preprocess(
            "t.c",
            "#ifdef OUTER\n#ifdef INNER\nint both;\n#else\nint outer_only;\n#endif\n#endif\n",
        );
        assert!(out.text.contains("outer_only"));
        assert!(!out.text.contains("both"));
    }

    #[test]
    fn include_resolution_quoted_and_angle() {
        let mut r = MapResolver::new();
        r.add_file("include/linux/kernel.h", "#define KERN 1\n");
        r.add_file("drivers/net/local.h", "int local_decl;\n");
        r.add_file(
            "drivers/net/a.c",
            "#include <linux/kernel.h>\n#include \"local.h\"\nint x = KERN;\n",
        );
        r.add_search_path("include");
        let content = r.get("drivers/net/a.c").unwrap().to_string();
        let p = Preprocessor::new(r);
        let out = p.preprocess("drivers/net/a.c", &content);
        assert!(out.is_clean(), "{:?}", out.errors);
        assert!(out.text.contains("int local_decl;"));
        assert!(out.text.contains("int x = 1;"));
        assert_eq!(
            out.includes,
            vec![
                "include/linux/kernel.h".to_string(),
                "drivers/net/local.h".to_string()
            ]
        );
    }

    #[test]
    fn missing_include_is_diagnosed() {
        let out = pp("#include <no/such.h>\nint x;\n");
        assert_eq!(out.errors.len(), 1);
        assert!(matches!(
            out.errors[0].kind,
            CppErrorKind::IncludeNotFound(_)
        ));
        // Processing continues past the failure.
        assert!(out.text.contains("int x;"));
    }

    #[test]
    fn include_guard_prevents_reinclusion() {
        let mut r = MapResolver::new();
        r.add_file("h/g.h", "#ifndef G_H\n#define G_H\nint g_decl;\n#endif\n");
        r.add_search_path("h");
        let p = Preprocessor::new(r);
        let out = p.preprocess("t.c", "#include <g.h>\n#include <g.h>\n");
        assert!(out.is_clean());
        assert_eq!(out.text.matches("int g_decl;").count(), 1);
    }

    #[test]
    fn pragma_once_respected() {
        let mut r = MapResolver::new();
        r.add_file("h/p.h", "#pragma once\nint p_decl;\n");
        r.add_search_path("h");
        let p = Preprocessor::new(r);
        let out = p.preprocess("t.c", "#include <p.h>\n#include <p.h>\n");
        assert_eq!(out.text.matches("int p_decl;").count(), 1);
    }

    #[test]
    fn error_directive_only_fires_when_active() {
        let out = pp("#ifdef NOPE\n#error should not fire\n#endif\nint ok;\n");
        assert!(out.is_clean());
        let out2 = pp("#error boom\n");
        assert!(matches!(out2.errors[0].kind, CppErrorKind::UserError(_)));
    }

    #[test]
    fn unterminated_conditional_is_diagnosed() {
        let out = pp("#ifdef X\nint a;\n");
        assert!(out
            .errors
            .iter()
            .any(|e| e.kind == CppErrorKind::UnterminatedConditional));
    }

    #[test]
    fn stray_endif_is_diagnosed() {
        let out = pp("#endif\n");
        assert!(matches!(
            out.errors[0].kind,
            CppErrorKind::MalformedDirective(_)
        ));
    }

    #[test]
    fn undef_then_use_is_literal() {
        let out = pp("#define X 1\n#undef X\nint a = X;\n");
        assert!(out.text.contains("int a = X;"));
    }

    #[test]
    fn multiline_macro_definition_via_continuation() {
        let out = pp("#define SUM(a, b) \\\n ((a) + \\\n  (b))\nint s = SUM(1, 2);\n");
        assert!(out.is_clean());
        assert!(out.text.contains("int s = ((1) + (2));"));
    }

    #[test]
    fn multiline_invocation_spans_lines() {
        let out = pp("#define F(a, b) a + b\nint s = F(1,\n 2);\n");
        assert!(out.is_clean(), "{:?}", out.errors);
        assert!(out.text.contains("1 +"), "{}", out.text);
        assert!(out.text.contains('2'));
    }

    #[test]
    fn line_markers_emitted_on_file_switch() {
        let mut r = MapResolver::new();
        r.add_file("inc.h", "int from_header;\n");
        let p = Preprocessor::new(r);
        let out = p.preprocess("t.c", "#include \"inc.h\"\nint from_main;\n");
        assert!(out.text.contains("# 1 \"inc.h\""), "{}", out.text);
        assert!(out.text.contains("# 2 \"t.c\""), "{}", out.text);
    }

    #[test]
    fn mutation_glyph_passes_through_plain_code() {
        let out = pp("\u{2261}\"context:f.c:12\"\nint x;\n");
        assert!(out.text.contains("\u{2261}\"context:f.c:12\""));
    }

    #[test]
    fn mutation_in_dead_branch_disappears() {
        let out = pp("#ifdef NOPE\n\u{2261}\"context:f.c:2\"\nint dead;\n#endif\n");
        assert!(!out.text.contains('\u{2261}'));
    }

    #[test]
    fn mutation_in_unused_macro_disappears() {
        let out = pp("#define UNUSED_M(x) (x) \u{2261}\"define:f.c:1\"\nint y;\n");
        assert!(!out.text.contains('\u{2261}'));
    }

    #[test]
    fn mutation_in_used_macro_appears_at_use_site() {
        let out = pp("#define M(x) (x) \u{2261}\"define:f.c:1\"\nint y = M(3);\n");
        assert!(
            out.text.contains("(3) \u{2261}\"define:f.c:1\""),
            "{}",
            out.text
        );
    }

    #[test]
    fn file_and_line_builtins() {
        let out = pp("const char *f = __FILE__;\nint l = __LINE__;\n");
        assert!(out.text.contains("\"t.c\""));
        assert!(out.text.contains("int l = 2;"));
    }

    #[test]
    fn ifndef_taken_when_undefined() {
        let out = pp("#ifndef GUARD\nint first;\n#endif\n");
        assert!(out.text.contains("int first;"));
    }

    #[test]
    fn dead_branch_expressions_are_not_evaluated() {
        // The garbage expression sits in a branch that can never activate.
        let mut p = Preprocessor::new(MapResolver::new());
        p.define_object("A", "1");
        let out = p.preprocess(
            "t.c",
            "#if A\nint a;\n#elif )))garbage(((\nint b;\n#endif\n",
        );
        assert!(out.is_clean(), "{:?}", out.errors);
        assert!(out.text.contains("int a;"));
    }

    #[test]
    fn computed_include() {
        let mut r = MapResolver::new();
        r.add_file("h/target.h", "int computed;\n");
        r.add_search_path("h");
        let p = {
            let mut p = Preprocessor::new(r);
            p.define_object("TARGET", "<target.h>");
            p
        };
        let out = p.preprocess("t.c", "#include TARGET\n");
        assert!(out.is_clean(), "{:?}", out.errors);
        assert!(out.text.contains("int computed;"));
    }
}
