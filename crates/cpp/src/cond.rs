//! Conditional-compilation state tracking.

/// Where a conditional group currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchState {
    /// This branch is the live one; lines are emitted.
    Active,
    /// No branch has been taken yet; a later `#elif`/`#else` may activate.
    Pending,
    /// A branch was already taken; all remaining branches are dead.
    Done,
}

/// One open `#if`/`#ifdef`/`#ifndef` group.
#[derive(Debug, Clone, Copy)]
pub struct CondFrame {
    /// State of the current branch.
    pub state: BranchState,
    /// Whether the *enclosing* context was active (a nested conditional in
    /// a dead region can never activate).
    pub parent_active: bool,
    /// Whether `#else` has been seen (further `#elif`/`#else` is an error).
    pub saw_else: bool,
    /// Line of the opening directive (for unterminated-conditional
    /// diagnostics).
    pub opened_at: u32,
}

/// The conditional stack of a file being preprocessed.
#[derive(Debug, Clone, Default)]
pub struct CondStack {
    frames: Vec<CondFrame>,
}

impl CondStack {
    /// Empty stack.
    pub fn new() -> Self {
        CondStack::default()
    }

    /// True when the current position of the file is live.
    pub fn active(&self) -> bool {
        self.frames.iter().all(|f| f.state == BranchState::Active)
    }

    /// Open a group: `cond` is the evaluated controlling expression.
    pub fn push(&mut self, cond: bool, line: u32) {
        let parent_active = self.active();
        self.frames.push(CondFrame {
            state: if parent_active && cond {
                BranchState::Active
            } else if parent_active {
                BranchState::Pending
            } else {
                BranchState::Done
            },
            parent_active,
            saw_else: false,
            opened_at: line,
        });
    }

    /// True when the next `#elif`'s expression actually needs evaluating
    /// (the group is still pending and the enclosing context is live).
    /// Expressions in branches that can never activate are skipped, like
    /// gcc skips them — they may contain garbage.
    pub fn elif_needs_eval(&self) -> bool {
        matches!(
            self.frames.last(),
            Some(f) if f.state == BranchState::Pending && f.parent_active && !f.saw_else
        )
    }

    /// Handle `#elif cond`. Returns false when no group is open or `#else`
    /// was already seen.
    pub fn elif(&mut self, cond: bool) -> bool {
        let Some(top) = self.frames.last_mut() else {
            return false;
        };
        if top.saw_else {
            return false;
        }
        top.state = match top.state {
            BranchState::Active => BranchState::Done,
            BranchState::Pending if top.parent_active && cond => BranchState::Active,
            s => s,
        };
        true
    }

    /// Handle `#else`. Returns false when no group is open or `#else` was
    /// already seen.
    pub fn toggle_else(&mut self) -> bool {
        let Some(top) = self.frames.last_mut() else {
            return false;
        };
        if top.saw_else {
            return false;
        }
        top.saw_else = true;
        top.state = match top.state {
            BranchState::Active => BranchState::Done,
            BranchState::Pending if top.parent_active => BranchState::Active,
            s => s,
        };
        true
    }

    /// Handle `#endif`. Returns false when no group is open.
    pub fn pop(&mut self) -> bool {
        self.frames.pop().is_some()
    }

    /// Number of open groups (non-zero at end of file is an error).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Line of the innermost open group, if any.
    pub fn innermost_open_line(&self) -> Option<u32> {
        self.frames.last().map(|f| f.opened_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_if_else() {
        let mut s = CondStack::new();
        assert!(s.active());
        s.push(false, 1);
        assert!(!s.active());
        assert!(s.toggle_else());
        assert!(s.active());
        assert!(s.pop());
        assert!(s.active());
    }

    #[test]
    fn taken_branch_kills_else() {
        let mut s = CondStack::new();
        s.push(true, 1);
        assert!(s.active());
        s.toggle_else();
        assert!(!s.active());
        s.pop();
    }

    #[test]
    fn elif_chain_takes_first_true() {
        let mut s = CondStack::new();
        s.push(false, 1);
        assert!(!s.active());
        assert!(s.elif(true));
        assert!(s.active());
        assert!(s.elif(true)); // already taken: stays done
        assert!(!s.active());
        s.toggle_else();
        assert!(!s.active());
    }

    #[test]
    fn nested_dead_region_never_activates() {
        let mut s = CondStack::new();
        s.push(false, 1);
        s.push(true, 2); // nested in dead region
        assert!(!s.active());
        s.toggle_else();
        assert!(!s.active());
        s.pop();
        s.toggle_else(); // outer else
        assert!(s.active());
    }

    #[test]
    fn double_else_rejected() {
        let mut s = CondStack::new();
        s.push(true, 1);
        assert!(s.toggle_else());
        assert!(!s.toggle_else());
        assert!(!s.elif(true));
    }

    #[test]
    fn stray_endif_rejected() {
        let mut s = CondStack::new();
        assert!(!s.pop());
        assert!(!s.toggle_else());
        assert!(!s.elif(false));
    }

    #[test]
    fn depth_and_open_line() {
        let mut s = CondStack::new();
        s.push(true, 10);
        s.push(false, 20);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.innermost_open_line(), Some(20));
    }
}
