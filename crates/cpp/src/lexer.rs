//! Preprocessing-token lexer.
//!
//! Operates on *clean* text (comments already removed by
//! [`crate::lines::logical_lines`]) but tolerates raw text too: `//` and
//! `/*` sequences are lexed as punctuators in that case, so callers that
//! need comment semantics must clean first.

use crate::token::{Token, TokenKind};

/// Multi-character punctuators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "^=", "|=", "##", "#", "[", "]", "(", ")", "{", "}", ".", "&",
    "*", "+", "-", "~", "!", "/", "%", "<", ">", "^", "|", "?", ":", ";", "=", ",",
];

/// Lex `text` into preprocessing tokens.
///
/// `line` is the 1-based source line attributed to the tokens (callers
/// lexing a logical line pass its first physical line).
///
/// Characters that cannot begin any C token become [`TokenKind::Other`]
/// tokens — this is what makes JMake's mutation glyph detectable and what
/// makes the front-end validator reject mutated files.
pub fn lex(text: &str, line: u32) -> Vec<Token> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut space_before = false;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            space_before = true;
            i += 1;
            continue;
        }
        let start = i;
        let kind;
        if c == '_' || c.is_ascii_alphabetic() {
            while i < chars.len() && (chars[i] == '_' || chars[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            // Wide/encoded string or char prefixes: L"..." u8"..." etc.
            if i < chars.len()
                && (chars[i] == '"' || chars[i] == '\'')
                && is_literal_prefix(&chars[start..i])
            {
                let quote = chars[i];
                i = scan_quoted(&chars, i, quote);
                kind = if quote == '"' {
                    TokenKind::Str
                } else {
                    TokenKind::Char
                };
            } else {
                kind = TokenKind::Ident;
            }
        } else if c.is_ascii_digit()
            || (c == '.' && matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit()))
        {
            // pp-number: digits, letters, dots, and exponent signs.
            i += 1;
            while i < chars.len() {
                let d = chars[i];
                let continues = d == '_'
                    || d.is_ascii_alphanumeric()
                    || d == '.'
                    || ((d == '+' || d == '-') && matches!(chars[i - 1], 'e' | 'E' | 'p' | 'P'));
                if !continues {
                    break;
                }
                i += 1;
            }
            kind = TokenKind::Number;
        } else if c == '"' {
            i = scan_quoted(&chars, i, '"');
            kind = TokenKind::Str;
        } else if c == '\'' {
            i = scan_quoted(&chars, i, '\'');
            kind = TokenKind::Char;
        } else if let Some(p) = match_punct(&chars[i..]) {
            i += p.chars().count();
            kind = TokenKind::Punct;
        } else {
            i += 1;
            kind = TokenKind::Other(c);
        }
        out.push(Token {
            kind,
            text: chars[start..i].iter().collect(),
            space_before,
            line,
        });
        space_before = false;
    }
    out
}

fn is_literal_prefix(chars: &[char]) -> bool {
    let s: String = chars.iter().collect();
    matches!(s.as_str(), "L" | "u" | "U" | "u8")
}

/// Scan a quoted literal starting at the opening quote index; returns the
/// index just past the closing quote (or end of text if unterminated).
fn scan_quoted(chars: &[char], open: usize, quote: char) -> usize {
    let mut i = open + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            c if c == quote => return i + 1,
            _ => i += 1,
        }
    }
    chars.len()
}

fn match_punct(rest: &[char]) -> Option<&'static str> {
    PUNCTS.iter().copied().find(|p| {
        p.chars().zip(rest.iter()).filter(|(a, b)| a == *b).count() == p.chars().count()
            && rest.len() >= p.chars().count()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(TokenKind, String)> {
        lex(text, 1).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lexes_declaration() {
        let ts = kinds("static int x = 42;");
        assert_eq!(
            ts,
            vec![
                (TokenKind::Ident, "static".into()),
                (TokenKind::Ident, "int".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Number, "42".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn maximal_munch_on_punctuators() {
        let ts = kinds("a<<=b>>c##d");
        let puncts: Vec<String> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(puncts, vec!["<<=", ">>", "##"]);
    }

    #[test]
    fn pp_numbers_include_suffixes_and_exponents() {
        assert_eq!(kinds("0xFFUL")[0], (TokenKind::Number, "0xFFUL".into()));
        assert_eq!(kinds("1.5e-3f")[0], (TokenKind::Number, "1.5e-3f".into()));
        assert_eq!(kinds(".5")[0], (TokenKind::Number, ".5".into()));
    }

    #[test]
    fn dot_alone_is_punct() {
        assert_eq!(kinds("a.b")[1], (TokenKind::Punct, ".".into()));
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds("\"a\\\"b\"")[0],
            (TokenKind::Str, "\"a\\\"b\"".into())
        );
        assert_eq!(kinds("'\\n'")[0], (TokenKind::Char, "'\\n'".into()));
    }

    #[test]
    fn wide_string_prefix() {
        assert_eq!(kinds("L\"x\"")[0], (TokenKind::Str, "L\"x\"".into()));
        // But a normal identifier before a string stays separate.
        let ts = kinds("Lx \"y\"");
        assert_eq!(ts[0], (TokenKind::Ident, "Lx".into()));
        assert_eq!(ts[1], (TokenKind::Str, "\"y\"".into()));
    }

    #[test]
    fn mutation_glyph_is_other() {
        let ts = kinds("\u{2261}\"define:f.c:49\"");
        assert_eq!(ts[0], (TokenKind::Other('\u{2261}'), "\u{2261}".into()));
        assert_eq!(ts[1], (TokenKind::Str, "\"define:f.c:49\"".into()));
        assert!(!ts[1].1.is_empty());
    }

    #[test]
    fn at_sign_and_backtick_are_other() {
        assert!(matches!(kinds("@")[0].0, TokenKind::Other('@')));
        assert!(matches!(kinds("`")[0].0, TokenKind::Other('`')));
    }

    #[test]
    fn space_before_is_tracked() {
        let ts = lex("a + b", 7);
        assert!(!ts[0].space_before);
        assert!(ts[1].space_before);
        assert!(ts[2].space_before);
        assert_eq!(ts[0].line, 7);
    }

    #[test]
    fn unterminated_string_consumes_rest() {
        let ts = kinds("\"abc");
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0], (TokenKind::Str, "\"abc".into()));
    }

    #[test]
    fn hash_variants() {
        let ts = kinds("# ## #");
        let texts: Vec<_> = ts.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, vec!["#", "##", "#"]);
    }

    #[test]
    fn ellipsis() {
        assert_eq!(kinds("...")[0], (TokenKind::Punct, "...".into()));
    }
}
