//! Translation phases 2 and 3: line splicing and comment removal.
//!
//! Produces *logical lines*: physical lines joined by backslash-newline,
//! with comments replaced by a single space, each annotated with the range
//! of physical lines it came from.

/// A logical source line after splicing and comment removal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalLine {
    /// The cleaned text (no comments, no continuations, no trailing newline).
    pub text: String,
    /// 1-based first physical line.
    pub first_line: u32,
    /// 1-based last physical line (≥ `first_line` when continuations or a
    /// block comment spanned lines).
    pub last_line: u32,
}

impl LogicalLine {
    /// True when nothing but whitespace remains.
    pub fn is_blank(&self) -> bool {
        self.text.trim().is_empty()
    }

    /// True when the line is a preprocessing directive (first non-blank
    /// char is `#`).
    pub fn is_directive(&self) -> bool {
        self.text.trim_start().starts_with('#')
    }

    /// For a directive line, the directive name (`define`, `if`, …) and the
    /// rest of the line.
    pub fn directive(&self) -> Option<(&str, &str)> {
        let t = self.text.trim_start();
        let t = t.strip_prefix('#')?;
        let t = t.trim_start();
        let end = t
            .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
            .unwrap_or(t.len());
        Some((&t[..end], t[end..].trim_start()))
    }
}

/// Split source into logical lines: splice `\`-newline, strip comments
/// (string- and char-literal aware), and record physical line ranges.
///
/// Unterminated block comments run to end of file, like gcc with a warning;
/// unterminated string literals end at the newline (the front-end validator
/// reports those).
pub fn logical_lines(src: &str) -> Vec<LogicalLine> {
    // Phase 2: splice. Build (char, physical_line) stream.
    let mut spliced: Vec<(char, u32)> = Vec::with_capacity(src.len());
    let mut line = 1u32;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\\' && matches!(bytes.get(i + 1), Some('\n')) {
            line += 1;
            i += 2;
            continue;
        }
        if c == '\\'
            && matches!(bytes.get(i + 1), Some('\r'))
            && matches!(bytes.get(i + 2), Some('\n'))
        {
            line += 1;
            i += 3;
            continue;
        }
        spliced.push((c, line));
        if c == '\n' {
            line += 1;
        }
        i += 1;
    }

    // Phase 3: comments → single space.
    #[derive(PartialEq)]
    enum St {
        Code,
        Str,
        Chr,
        LineComment,
        BlockComment,
    }
    let mut st = St::Code;
    let mut clean: Vec<(char, u32)> = Vec::with_capacity(spliced.len());
    let mut i = 0;
    while i < spliced.len() {
        let (c, ln) = spliced[i];
        let next = spliced.get(i + 1).map(|&(c, _)| c);
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    clean.push((' ', ln));
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment;
                    clean.push((' ', ln));
                    i += 2;
                    continue;
                }
                '"' => {
                    st = St::Str;
                    clean.push((c, ln));
                }
                '\'' => {
                    st = St::Chr;
                    clean.push((c, ln));
                }
                _ => clean.push((c, ln)),
            },
            St::Str => {
                clean.push((c, ln));
                if c == '\\' {
                    if let Some(&(nc, nln)) = spliced.get(i + 1) {
                        clean.push((nc, nln));
                        i += 2;
                        continue;
                    }
                } else if c == '"' || c == '\n' {
                    st = St::Code;
                }
            }
            St::Chr => {
                clean.push((c, ln));
                if c == '\\' {
                    if let Some(&(nc, nln)) = spliced.get(i + 1) {
                        clean.push((nc, nln));
                        i += 2;
                        continue;
                    }
                } else if c == '\'' || c == '\n' {
                    st = St::Code;
                }
            }
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    clean.push((c, ln));
                }
                // else: drop comment char
            }
            St::BlockComment => {
                if c == '*' && next == Some('/') {
                    st = St::Code;
                    i += 2;
                    continue;
                }
                if c == '\n' {
                    // Keep the newline so a directive cannot absorb the
                    // following line, but the logical line range records it.
                    clean.push((c, ln));
                }
            }
        }
        i += 1;
    }

    // Split at newlines into logical lines. A block comment that spanned
    // lines left its newlines in place, so directives stay line-bounded.
    let mut out = Vec::new();
    let mut text = String::new();
    let mut first: Option<u32> = None;
    let mut last = 1u32;
    for (c, ln) in clean {
        if first.is_none() {
            first = Some(ln);
        }
        last = ln;
        if c == '\n' {
            out.push(LogicalLine {
                text: std::mem::take(&mut text),
                first_line: first.take().unwrap_or(ln),
                last_line: ln,
            });
        } else {
            text.push(c);
        }
    }
    if first.is_some() || !text.is_empty() {
        out.push(LogicalLine {
            text,
            first_line: first.unwrap_or(last),
            last_line: last,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_lines_pass_through() {
        let lls = logical_lines("int a;\nint b;\n");
        assert_eq!(lls.len(), 2);
        assert_eq!(lls[0].text, "int a;");
        assert_eq!((lls[0].first_line, lls[0].last_line), (1, 1));
        assert_eq!(lls[1].first_line, 2);
    }

    #[test]
    fn continuation_splices_and_tracks_range() {
        let lls = logical_lines("#define M(x) \\\n  ((x) + 1)\nint a;\n");
        assert_eq!(lls.len(), 2);
        assert_eq!(lls[0].text, "#define M(x)   ((x) + 1)");
        assert_eq!((lls[0].first_line, lls[0].last_line), (1, 2));
        assert_eq!(lls[1].first_line, 3);
    }

    #[test]
    fn line_comment_is_stripped() {
        let lls = logical_lines("int a; // trailing\nint b;\n");
        assert_eq!(lls[0].text, "int a;  ");
    }

    #[test]
    fn block_comment_becomes_space() {
        let lls = logical_lines("int/*x*/a;\n");
        assert_eq!(lls[0].text, "int a;");
    }

    #[test]
    fn multiline_block_comment_keeps_line_count() {
        let lls = logical_lines("a /* one\ntwo\nthree */ b\nnext\n");
        assert_eq!(lls.len(), 4);
        assert_eq!(lls[0].text, "a  ");
        assert_eq!(lls[1].text, "");
        assert_eq!(lls[2].text, " b");
        assert_eq!(lls[3].text, "next");
        assert_eq!(lls[3].first_line, 4);
    }

    #[test]
    fn comment_markers_inside_strings_are_ignored() {
        let lls = logical_lines("char *s = \"/* not a comment // \";\n");
        assert_eq!(lls[0].text, "char *s = \"/* not a comment // \";");
    }

    #[test]
    fn escaped_quote_in_string() {
        let lls = logical_lines("char *s = \"a\\\"b/*c*/\";\nint x;\n");
        assert_eq!(lls[0].text, "char *s = \"a\\\"b/*c*/\";");
        assert_eq!(lls[1].text, "int x;");
    }

    #[test]
    fn char_literal_with_quote() {
        let lls = logical_lines("char c = '\\''; /* x */ int y;\n");
        assert_eq!(lls[0].text, "char c = '\\'';   int y;");
    }

    #[test]
    fn directive_detection() {
        let lls = logical_lines("  #  define FOO 1\nbar\n");
        assert!(lls[0].is_directive());
        assert_eq!(lls[0].directive(), Some(("define", "FOO 1")));
        assert!(!lls[1].is_directive());
        assert_eq!(lls[1].directive(), None);
    }

    #[test]
    fn directive_with_no_rest() {
        let lls = logical_lines("#endif\n");
        assert_eq!(lls[0].directive(), Some(("endif", "")));
    }

    #[test]
    fn splice_inside_string_literal() {
        let lls = logical_lines("char *s = \"ab\\\ncd\";\n");
        assert_eq!(lls[0].text, "char *s = \"abcd\";");
        assert_eq!((lls[0].first_line, lls[0].last_line), (1, 2));
    }

    #[test]
    fn unterminated_block_comment_runs_out() {
        let lls = logical_lines("a /* never closed\nmore\n");
        assert_eq!(lls[0].text, "a  ");
        assert_eq!(lls[1].text, "");
    }

    #[test]
    fn no_trailing_newline_still_yields_line() {
        let lls = logical_lines("int x;");
        assert_eq!(lls.len(), 1);
        assert_eq!(lls[0].text, "int x;");
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(logical_lines("").is_empty());
    }
}
