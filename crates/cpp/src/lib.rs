//! A C preprocessor and compiler front end for JMake.
//!
//! JMake (paper §III.A) uses the compiler in exactly two ways:
//!
//! 1. **`make file.i`** — run only the preprocessor, producing the token
//!    stream the compiler proper would see. JMake's mutation glyph
//!    (an invalid character followed by a string literal) survives
//!    preprocessing verbatim, both in plain code and through macro
//!    expansion at macro *use* sites, but disappears from conditionally
//!    excluded regions and from unused macro definitions.
//! 2. **`make file.o`** — run the full front end on the *unmutated* file to
//!    verify that the chosen configuration really compiles it.
//!
//! This crate reproduces both from scratch:
//!
//! - [`lex`] — a C token stream (identifiers, pp-numbers,
//!   strings, char constants, punctuators, and `Other` for characters that
//!   are not valid C — the mutation glyph among them);
//! - [`Preprocessor`] — translation phases 2–4: line splicing, comment
//!   removal, directive handling (`#define`/`#undef`/`#include`/
//!   `#if`/`#ifdef`/`#ifndef`/`#elif`/`#else`/`#endif`/`#error`), object-
//!   and function-like macro expansion with `#`, `##`, `__VA_ARGS__`, and
//!   full `#if` expression evaluation;
//! - [`validate`] — the front-end stand-in: re-lexes the
//!   preprocessed output and rejects invalid characters, unterminated
//!   literals, and unbalanced bracketing, exactly the class of verification
//!   that makes a mutated file fail to produce a `.o`;
//! - [`analyze()`] — the lexical source map the mutation
//!   engine needs (paper §III.B): comment spans, macro-definition line
//!   ranges, conditional-compilation directive lines.
//!
//! # Example
//!
//! ```
//! use jmake_cpp::{Preprocessor, MapResolver};
//!
//! let mut pp = Preprocessor::new(MapResolver::default());
//! pp.define_object("CONFIG_FOO", "1");
//! let out = pp.preprocess("t.c", "#ifdef CONFIG_FOO\nint x;\n#endif\n");
//! assert!(out.text.contains("int x;"));
//! assert!(out.errors.is_empty());
//! ```

pub mod analyze;
pub mod cond;
pub mod error;
pub mod expand;
pub mod expr;
pub mod lexer;
pub mod lines;
pub mod macros;
pub mod memo;
pub mod preprocess;
pub mod syntax;
pub mod token;

pub use analyze::{analyze, LineInfo, MacroDefSpan, SourceMap};
pub use error::{CppError, SyntaxError};
pub use lexer::lex;
pub use macros::{MacroDef, MacroTable};
pub use memo::{IncludeEffect, IncludeKey, IncludeMemo, MacroEvent};
pub use preprocess::{IncludeResolver, MapResolver, PreprocessOutput, Preprocessor};
pub use syntax::validate;
pub use token::{Token, TokenKind};

#[cfg(test)]
mod proptests;
