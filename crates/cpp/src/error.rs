//! Error types for preprocessing and front-end validation.

use std::error::Error;
use std::fmt;

/// A diagnostic produced during preprocessing.
///
/// Preprocessing is error-tolerant: diagnostics are collected in
/// [`crate::PreprocessOutput::errors`] and the offending construct is
/// skipped, mirroring how a kernel build surfaces cascades of messages
/// rather than stopping at the first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CppError {
    /// File in which the problem occurred.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What went wrong.
    pub kind: CppErrorKind,
}

/// The kinds of preprocessing diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CppErrorKind {
    /// `#include` target could not be resolved.
    IncludeNotFound(String),
    /// Include nesting exceeded the implementation limit.
    IncludeDepthExceeded,
    /// A malformed directive (bad `#define` syntax, stray `#endif`, …).
    MalformedDirective(String),
    /// `#if`/`#elif` expression did not evaluate.
    BadExpression(String),
    /// `#error` directive reached in an active region.
    UserError(String),
    /// A conditional was still open at end of file.
    UnterminatedConditional,
    /// Function-like macro invocation with mismatched argument count.
    WrongArgumentCount {
        /// Macro name.
        name: String,
        /// Parameters declared.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
}

impl fmt::Display for CppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: ", self.file, self.line)?;
        match &self.kind {
            CppErrorKind::IncludeNotFound(t) => write!(f, "include not found: {t}"),
            CppErrorKind::IncludeDepthExceeded => write!(f, "include nesting too deep"),
            CppErrorKind::MalformedDirective(d) => write!(f, "malformed directive: {d}"),
            CppErrorKind::BadExpression(e) => write!(f, "bad #if expression: {e}"),
            CppErrorKind::UserError(m) => write!(f, "#error {m}"),
            CppErrorKind::UnterminatedConditional => write!(f, "unterminated conditional"),
            CppErrorKind::WrongArgumentCount {
                name,
                expected,
                got,
            } => write!(f, "macro {name} expects {expected} argument(s), got {got}"),
        }
    }
}

impl Error for CppError {}

/// A front-end validation failure: the preprocessed translation unit is not
/// acceptable C at the lexical/bracketing level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyntaxError {
    /// A character with no place in the C grammar (JMake's mutation glyph
    /// triggers this).
    InvalidCharacter {
        /// The offending character.
        ch: char,
        /// 1-based line in the preprocessed text.
        line: u32,
    },
    /// `(`/`[`/`{` with no matching closer, or a mismatched closer.
    UnbalancedDelimiter {
        /// The delimiter at fault.
        ch: char,
        /// 1-based line in the preprocessed text.
        line: u32,
    },
    /// A string or character literal ran to end of line unterminated.
    UnterminatedLiteral {
        /// 1-based line in the preprocessed text.
        line: u32,
    },
    /// The translation unit is empty (no tokens at all) — a kernel object
    /// must define something.
    EmptyTranslationUnit,
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyntaxError::InvalidCharacter { ch, line } => {
                write!(f, "line {line}: invalid character {ch:?} in program text")
            }
            SyntaxError::UnbalancedDelimiter { ch, line } => {
                write!(f, "line {line}: unbalanced delimiter {ch:?}")
            }
            SyntaxError::UnterminatedLiteral { line } => {
                write!(f, "line {line}: unterminated string or character literal")
            }
            SyntaxError::EmptyTranslationUnit => write!(f, "empty translation unit"),
        }
    }
}

impl Error for SyntaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = CppError {
            file: "a.c".into(),
            line: 12,
            kind: CppErrorKind::IncludeNotFound("x.h".into()),
        };
        assert_eq!(e.to_string(), "a.c:12: include not found: x.h");
    }

    #[test]
    fn syntax_error_display() {
        let e = SyntaxError::InvalidCharacter {
            ch: '\u{2261}',
            line: 3,
        };
        assert!(e.to_string().contains("invalid character"));
        assert!(SyntaxError::EmptyTranslationUnit
            .to_string()
            .contains("empty"));
    }
}
