//! Preprocessing tokens.

use std::fmt;

/// The kind of a preprocessing token.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `int`, `CONFIG_X86`).
    Ident,
    /// A pp-number (`42`, `0xff`, `1.5e3`, `0UL`).
    Number,
    /// A string literal, text includes the quotes (`"abc"`, `L"x"`).
    Str,
    /// A character constant, text includes the quotes (`'a'`, `'\n'`).
    Char,
    /// A punctuator (`+`, `<<=`, `...`, `##`).
    Punct,
    /// Any character that is not part of valid C source — JMake's mutation
    /// glyph lands here. The compiler front end rejects these.
    Other(char),
}

/// One preprocessing token, with enough layout information to re-render the
/// stream faithfully.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// Whether whitespace (or a comment) preceded this token.
    pub space_before: bool,
    /// 1-based source line the token started on (0 for synthesized tokens).
    pub line: u32,
}

impl Token {
    /// Construct a token.
    pub fn new(kind: TokenKind, text: impl Into<String>, space_before: bool, line: u32) -> Self {
        Token {
            kind,
            text: text.into(),
            space_before,
            line,
        }
    }

    /// An identifier token with no provenance (used when synthesizing
    /// expansion results).
    pub fn ident(text: impl Into<String>) -> Self {
        Token::new(TokenKind::Ident, text, true, 0)
    }

    /// A punctuator token with no provenance.
    pub fn punct(text: impl Into<String>) -> Self {
        Token::new(TokenKind::Punct, text, false, 0)
    }

    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True if this token is the punctuator `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Render a token slice back to text, honouring `space_before` but never
/// letting two tokens fuse into a different token (a conservative space is
/// inserted between adjacent identifiers/numbers).
pub fn render_tokens(tokens: &[Token]) -> String {
    let mut out = String::new();
    let mut prev_kind: Option<&TokenKind> = None;
    for t in tokens {
        let need_space = t.space_before
            || matches!(
                (prev_kind, &t.kind),
                (
                    Some(TokenKind::Ident | TokenKind::Number),
                    TokenKind::Ident | TokenKind::Number
                )
            );
        if need_space && !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&t.text);
        prev_kind = Some(&t.kind);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_preserves_adjacency() {
        let tokens = vec![
            Token::new(TokenKind::Ident, "x", false, 1),
            Token::new(TokenKind::Punct, "++", false, 1),
            Token::new(TokenKind::Ident, "y", true, 1),
        ];
        assert_eq!(render_tokens(&tokens), "x++ y");
    }

    #[test]
    fn render_inserts_protective_space_between_idents() {
        let tokens = vec![
            Token::new(TokenKind::Ident, "unsigned", false, 1),
            Token::new(TokenKind::Ident, "int", false, 1),
        ];
        assert_eq!(render_tokens(&tokens), "unsigned int");
    }

    #[test]
    fn glyph_string_adjacency_survives() {
        // The mutation marker: glyph immediately followed by a string.
        let tokens = vec![
            Token::new(TokenKind::Other('\u{2261}'), "\u{2261}", true, 1),
            Token::new(TokenKind::Str, "\"define:f.c:49\"", false, 1),
        ];
        assert_eq!(render_tokens(&tokens), "\u{2261}\"define:f.c:49\"");
    }

    #[test]
    fn helpers_classify() {
        assert!(Token::ident("foo").is_ident("foo"));
        assert!(!Token::ident("foo").is_ident("bar"));
        assert!(Token::punct("##").is_punct("##"));
    }
}
