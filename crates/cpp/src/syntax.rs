//! The compiler front-end stand-in.
//!
//! Paper §III.A: "JMake will not be able to produce a `.s`, `.lst`, or `.o`
//! file from a mutated file, as all of these are only generated for files
//! that pass all the verifications of the compiler front end." This module
//! is that verification: it re-lexes a preprocessed translation unit and
//! rejects exactly the constructs that make mutated source unacceptable —
//! invalid characters, unterminated literals, unbalanced bracketing — while
//! accepting any ordinary C token stream.

use crate::error::SyntaxError;
use crate::lexer::lex;
use crate::token::TokenKind;

/// Validate a preprocessed (`.i`) translation unit.
///
/// Checks performed, in order per line:
///
/// 1. `# line "file"` markers are skipped (they are not program text);
/// 2. every token must be valid C — [`TokenKind::Other`] is rejected
///    ([`SyntaxError::InvalidCharacter`]);
/// 3. string and character literals must close before end of line
///    ([`SyntaxError::UnterminatedLiteral`]);
/// 4. `()`, `[]`, `{}` must balance across the whole unit
///    ([`SyntaxError::UnbalancedDelimiter`]);
/// 5. the unit must contain at least one token
///    ([`SyntaxError::EmptyTranslationUnit`]).
///
/// # Errors
///
/// The first failure found, as a [`SyntaxError`].
pub fn validate(i_text: &str) -> Result<(), SyntaxError> {
    let mut stack: Vec<(char, u32)> = Vec::new();
    let mut any_tokens = false;
    for (idx, line) in i_text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        if line.trim_start().starts_with('#') {
            continue; // line marker or residual directive text
        }
        for t in lex(line, line_no) {
            any_tokens = true;
            match &t.kind {
                TokenKind::Other(c) => {
                    return Err(SyntaxError::InvalidCharacter {
                        ch: *c,
                        line: line_no,
                    });
                }
                TokenKind::Str if !closes_quoted(&t.text, '"') => {
                    return Err(SyntaxError::UnterminatedLiteral { line: line_no });
                }
                TokenKind::Char if !closes_quoted(&t.text, '\'') => {
                    return Err(SyntaxError::UnterminatedLiteral { line: line_no });
                }
                TokenKind::Punct => match t.text.as_str() {
                    "(" | "[" | "{" => {
                        stack.push((t.text.chars().next().expect("non-empty"), line_no))
                    }
                    ")" | "]" | "}" => {
                        let close = t.text.chars().next().expect("non-empty");
                        let expected_open = match close {
                            ')' => '(',
                            ']' => '[',
                            _ => '{',
                        };
                        match stack.pop() {
                            Some((open, _)) if open == expected_open => {}
                            _ => {
                                return Err(SyntaxError::UnbalancedDelimiter {
                                    ch: close,
                                    line: line_no,
                                })
                            }
                        }
                    }
                    _ => {}
                },
                _ => {}
            }
        }
    }
    if let Some(&(open, line)) = stack.first() {
        return Err(SyntaxError::UnbalancedDelimiter { ch: open, line });
    }
    if !any_tokens {
        return Err(SyntaxError::EmptyTranslationUnit);
    }
    Ok(())
}

/// A lexed literal is terminated iff it ends with the quote and is longer
/// than the opening (after skipping any L/u/U prefix).
fn closes_quoted(text: &str, quote: char) -> bool {
    let body = text.trim_start_matches(|c: char| c != quote && c != '"' && c != '\'');
    body.len() >= 2 && body.ends_with(quote)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_ordinary_c() {
        let src = "int main(void)\n{\n  int a[3] = {1, 2, 3};\n  return a[0];\n}\n";
        assert!(validate(src).is_ok());
    }

    #[test]
    fn rejects_mutation_glyph() {
        let src = "int x;\n\u{2261}\"context:f.c:2\"\nint y;\n";
        match validate(src) {
            Err(SyntaxError::InvalidCharacter { ch, line }) => {
                assert_eq!(ch, '\u{2261}');
                assert_eq!(line, 2);
            }
            other => panic!("expected InvalidCharacter, got {other:?}"),
        }
    }

    #[test]
    fn rejects_at_sign() {
        assert!(matches!(
            validate("int @ x;\n"),
            Err(SyntaxError::InvalidCharacter { ch: '@', .. })
        ));
    }

    #[test]
    fn skips_line_markers() {
        let src = "# 1 \"file with \u{2261} impossible name\"\nint x;\n";
        assert!(validate(src).is_ok());
    }

    #[test]
    fn rejects_unbalanced_delimiters() {
        assert!(matches!(
            validate("int f() {\n"),
            Err(SyntaxError::UnbalancedDelimiter { ch: '{', .. })
        ));
        assert!(matches!(
            validate("int a = (1;\n"),
            Err(SyntaxError::UnbalancedDelimiter { ch: '(', .. })
        ));
        assert!(matches!(
            validate("}\n"),
            Err(SyntaxError::UnbalancedDelimiter { ch: '}', line: 1 })
        ));
        assert!(matches!(
            validate("int a = [1};\n"),
            Err(SyntaxError::UnbalancedDelimiter { ch: '}', .. })
        ));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(matches!(
            validate("char *s = \"abc;\n"),
            Err(SyntaxError::UnterminatedLiteral { line: 1 })
        ));
    }

    #[test]
    fn rejects_empty_unit() {
        assert_eq!(validate(""), Err(SyntaxError::EmptyTranslationUnit));
        assert_eq!(
            validate("# 1 \"f.c\"\n\n"),
            Err(SyntaxError::EmptyTranslationUnit)
        );
    }

    #[test]
    fn glyph_inside_string_is_fine() {
        // Inside a string literal the glyph is data, not program text —
        // exactly why JMake wraps its token payload in a string.
        assert!(validate("const char *s = \"\u{2261}ok\";\n").is_ok());
    }

    #[test]
    fn brackets_balance_across_lines() {
        assert!(validate("int f(\nint x\n)\n{\nreturn x;\n}\n").is_ok());
    }
}
