//! Unified-diff machinery for JMake.
//!
//! The Linux kernel development process reasons about changes in terms of
//! *patches* (paper §II.C): sequences of hunks in which lines are annotated
//! with `-` (removed), `+` (added), or unannotated (context). JMake consumes
//! patches produced by `git show` and *produces* patches to mutate source
//! files (paper §III).
//!
//! This crate provides everything JMake needs from a diff toolchain, built
//! from scratch:
//!
//! - [`Patch`], [`FilePatch`], [`Hunk`], [`DiffLine`] — the patch model;
//! - [`parse_patch`] — a parser for `git show`-style unified diffs;
//! - [`Patch::render`] — the inverse, producing unified-diff text;
//! - [`apply`] / [`apply_reverse`] — strict patch application;
//! - [`diff_lines`] — a Myers O(ND) diff between two texts, with optional
//!   whitespace-insensitive comparison (the `-w` of `git log -w`);
//! - [`changed_lines`] — extraction of the *changed lines* of a file patch
//!   using exactly the rules of paper §III.B (added lines for hunks that add,
//!   the first surviving line — or end of file — for removal-only hunks).
//!
//! # Example
//!
//! ```
//! use jmake_diff::{diff_to_patch, apply, DiffOptions};
//!
//! let old = "a\nb\nc\n";
//! let new = "a\nB\nc\n";
//! let patch = diff_to_patch("f.c", old, new, &DiffOptions::default());
//! let round = apply(old, &patch.files[0]).unwrap();
//! assert_eq!(round, new);
//! ```

mod apply;
mod changed;
mod error;
mod hunk;
mod myers;
mod parse;
mod patch;
mod render;

pub use apply::{apply, apply_reverse};
pub use changed::{changed_lines, ChangedLine, ChangedLines};
pub use error::{ApplyError, ParseError};
pub use hunk::{DiffLine, Hunk};
pub use myers::{diff_lines, diff_to_patch, DiffOptions, Edit};
pub use parse::parse_patch;
pub use patch::{ChangeKind, FilePatch, Patch};

#[cfg(test)]
mod proptests;
