//! Strict application of file patches.

use crate::error::ApplyError;
use crate::hunk::DiffLine;
use crate::patch::FilePatch;

/// Apply `patch` to `content`, producing the new file text.
///
/// Application is strict (fuzz 0): every context and removed line must match
/// the target exactly at the position the hunk header names. This mirrors
/// how JMake applies its own mutation patches to pristine checkouts, where
/// any drift indicates a bug.
///
/// Output is in canonical form: non-empty results are always
/// newline-terminated (source trees in this workspace store text that way).
///
/// # Errors
///
/// [`ApplyError::OutOfBounds`] when a hunk names lines past the end of the
/// target, [`ApplyError::ContextMismatch`] when the target's text disagrees
/// with the hunk.
pub fn apply(content: &str, patch: &FilePatch) -> Result<String, ApplyError> {
    apply_inner(content, patch, false)
}

/// Apply `patch` in reverse (undo it): added lines are expected and removed,
/// removed lines are re-inserted.
///
/// # Errors
///
/// Same conditions as [`apply`].
pub fn apply_reverse(content: &str, patch: &FilePatch) -> Result<String, ApplyError> {
    apply_inner(content, patch, true)
}

fn apply_inner(content: &str, patch: &FilePatch, reverse: bool) -> Result<String, ApplyError> {
    let src: Vec<&str> = content.lines().collect();
    let mut out: Vec<String> = Vec::with_capacity(src.len());
    let mut cursor = 0usize; // index into src of next unconsumed line

    for (hunk_idx, hunk) in patch.hunks.iter().enumerate() {
        let (start, len) = if reverse {
            (hunk.new_start, hunk.new_len)
        } else {
            (hunk.old_start, hunk.old_len)
        };
        // `start` is 1-based. For a zero-length consume side, git's
        // convention is that `start` names the line *after which* the
        // insertion happens (0 = top of file).
        let target = if len == 0 {
            start as usize
        } else {
            start.saturating_sub(1) as usize
        };
        if target < cursor {
            return Err(ApplyError::OutOfBounds {
                hunk: hunk_idx,
                line: start,
            });
        }
        if target > src.len() {
            return Err(ApplyError::OutOfBounds {
                hunk: hunk_idx,
                line: start,
            });
        }
        out.extend(src[cursor..target].iter().map(|s| s.to_string()));
        cursor = target;

        for line in &hunk.lines {
            let (consume, emit) = match (line, reverse) {
                (DiffLine::Context(s), _) => (Some(s), Some(s)),
                (DiffLine::Added(s), false) | (DiffLine::Removed(s), true) => (None, Some(s)),
                (DiffLine::Removed(s), false) | (DiffLine::Added(s), true) => (Some(s), None),
            };
            if let Some(expected) = consume {
                let found = src.get(cursor).copied().ok_or(ApplyError::OutOfBounds {
                    hunk: hunk_idx,
                    line: (cursor + 1) as u32,
                })?;
                if found != expected {
                    return Err(ApplyError::ContextMismatch {
                        hunk: hunk_idx,
                        line: (cursor + 1) as u32,
                        expected: expected.clone(),
                        found: found.to_string(),
                    });
                }
                cursor += 1;
            }
            if let Some(text) = emit {
                out.push(text.clone());
            }
        }
    }
    out.extend(src[cursor..].iter().map(|s| s.to_string()));

    // Canonical form: a non-empty file is always newline-terminated.
    if out.is_empty() {
        Ok(String::new())
    } else {
        let mut result = out.join("\n");
        result.push('\n');
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hunk::Hunk;

    fn hunk(old_start: u32, new_start: u32, lines: Vec<DiffLine>) -> Hunk {
        let mut h = Hunk {
            old_start,
            new_start,
            lines,
            ..Hunk::default()
        };
        h.recount();
        h
    }

    #[test]
    fn applies_simple_replacement() {
        let patch = FilePatch::modify(
            "f.c",
            vec![hunk(
                2,
                2,
                vec![
                    DiffLine::Context("a".into()),
                    DiffLine::Removed("b".into()),
                    DiffLine::Added("B".into()),
                    DiffLine::Context("c".into()),
                ],
            )],
        );
        assert_eq!(apply("x\na\nb\nc\ny\n", &patch).unwrap(), "x\na\nB\nc\ny\n");
    }

    #[test]
    fn reverse_undoes_apply() {
        let patch = FilePatch::modify(
            "f.c",
            vec![hunk(
                1,
                1,
                vec![
                    DiffLine::Removed("old".into()),
                    DiffLine::Added("new1".into()),
                    DiffLine::Added("new2".into()),
                ],
            )],
        );
        let original = "old\ntail\n";
        let applied = apply(original, &patch).unwrap();
        assert_eq!(applied, "new1\nnew2\ntail\n");
        assert_eq!(apply_reverse(&applied, &patch).unwrap(), original);
    }

    #[test]
    fn insertion_at_top_with_zero_start() {
        let patch = FilePatch::modify(
            "f.c",
            vec![hunk(0, 1, vec![DiffLine::Added("first".into())])],
        );
        assert_eq!(apply("rest\n", &patch).unwrap(), "first\nrest\n");
    }

    #[test]
    fn insertion_into_empty_file() {
        let patch = FilePatch::modify(
            "f.c",
            vec![hunk(0, 1, vec![DiffLine::Added("only".into())])],
        );
        assert_eq!(apply("", &patch).unwrap(), "only\n");
    }

    #[test]
    fn context_mismatch_is_reported_with_position() {
        let patch = FilePatch::modify(
            "f.c",
            vec![hunk(1, 1, vec![DiffLine::Context("expected".into())])],
        );
        match apply("actual\n", &patch).unwrap_err() {
            ApplyError::ContextMismatch {
                line,
                expected,
                found,
                ..
            } => {
                assert_eq!(line, 1);
                assert_eq!(expected, "expected");
                assert_eq!(found, "actual");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn hunk_past_eof_is_out_of_bounds() {
        let patch = FilePatch::modify(
            "f.c",
            vec![hunk(10, 10, vec![DiffLine::Context("x".into())])],
        );
        assert!(matches!(
            apply("a\n", &patch).unwrap_err(),
            ApplyError::OutOfBounds { .. }
        ));
    }

    #[test]
    fn multi_hunk_offsets_accumulate() {
        // Two hunks; the second one's old_start refers to the ORIGINAL file.
        let patch = FilePatch::modify(
            "f.c",
            vec![
                hunk(
                    1,
                    1,
                    vec![DiffLine::Added("top".into()), DiffLine::Context("a".into())],
                ),
                hunk(
                    3,
                    4,
                    vec![DiffLine::Removed("c".into()), DiffLine::Added("C".into())],
                ),
            ],
        );
        assert_eq!(apply("a\nb\nc\nd\n", &patch).unwrap(), "top\na\nb\nC\nd\n");
    }

    #[test]
    fn deletion_of_whole_content_yields_empty() {
        let patch = FilePatch::modify("f.c", vec![hunk(1, 0, vec![DiffLine::Removed("a".into())])]);
        assert_eq!(apply("a\n", &patch).unwrap(), "");
    }

    #[test]
    fn normalizes_missing_trailing_newline() {
        let patch = FilePatch::modify(
            "f.c",
            vec![hunk(
                1,
                1,
                vec![DiffLine::Removed("a".into()), DiffLine::Added("b".into())],
            )],
        );
        assert_eq!(apply("a", &patch).unwrap(), "b\n");
    }
}
