//! File-level and patch-level containers.

use crate::hunk::Hunk;
use std::fmt;

/// What a [`FilePatch`] does to its file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChangeKind {
    /// The file exists before and after; its content changes.
    Modify,
    /// The file is created (`--- /dev/null`).
    Create,
    /// The file is deleted (`+++ /dev/null`).
    Delete,
}

impl fmt::Display for ChangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChangeKind::Modify => "modify",
            ChangeKind::Create => "create",
            ChangeKind::Delete => "delete",
        };
        f.write_str(s)
    }
}

/// The changes a patch makes to a single file.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FilePatch {
    /// Path of the file before the change (without the `a/` prefix).
    ///
    /// Equal to [`FilePatch::new_path`] except for renames; for created
    /// files it still records the destination path for convenience.
    pub old_path: String,
    /// Path of the file after the change (without the `b/` prefix).
    pub new_path: String,
    /// Create / modify / delete.
    pub kind: ChangeKind,
    /// The hunks, in ascending order of position.
    pub hunks: Vec<Hunk>,
}

impl FilePatch {
    /// A modification patch for `path` with the given hunks.
    pub fn modify(path: impl Into<String>, hunks: Vec<Hunk>) -> Self {
        let path = path.into();
        FilePatch {
            old_path: path.clone(),
            new_path: path,
            kind: ChangeKind::Modify,
            hunks,
        }
    }

    /// The path this patch is best known by (the new path, or the old path
    /// for deletions).
    pub fn path(&self) -> &str {
        match self.kind {
            ChangeKind::Delete => &self.old_path,
            _ => &self.new_path,
        }
    }

    /// Number of added lines across all hunks.
    pub fn added_count(&self) -> usize {
        self.hunks
            .iter()
            .flat_map(|h| &h.lines)
            .filter(|l| l.is_added())
            .count()
    }

    /// Number of removed lines across all hunks.
    pub fn removed_count(&self) -> usize {
        self.hunks
            .iter()
            .flat_map(|h| &h.lines)
            .filter(|l| l.is_removed())
            .count()
    }
}

/// A whole patch: the changes one commit makes to a set of files.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Patch {
    /// Per-file changes, in the order they appeared.
    pub files: Vec<FilePatch>,
}

impl Patch {
    /// An empty patch.
    pub fn new() -> Self {
        Patch::default()
    }

    /// Look up the patch for a specific path (matched against
    /// [`FilePatch::path`]).
    pub fn file(&self, path: &str) -> Option<&FilePatch> {
        self.files.iter().find(|f| f.path() == path)
    }

    /// Paths touched by this patch, in order.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.iter().map(|f| f.path())
    }

    /// True when no file is touched.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

impl FromIterator<FilePatch> for Patch {
    fn from_iter<T: IntoIterator<Item = FilePatch>>(iter: T) -> Self {
        Patch {
            files: iter.into_iter().collect(),
        }
    }
}

impl Extend<FilePatch> for Patch {
    fn extend<T: IntoIterator<Item = FilePatch>>(&mut self, iter: T) {
        self.files.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hunk::DiffLine;

    #[test]
    fn modify_constructor_mirrors_paths() {
        let fp = FilePatch::modify("drivers/net/a.c", vec![]);
        assert_eq!(fp.old_path, fp.new_path);
        assert_eq!(fp.path(), "drivers/net/a.c");
        assert_eq!(fp.kind, ChangeKind::Modify);
    }

    #[test]
    fn deletion_reports_old_path() {
        let fp = FilePatch {
            old_path: "gone.c".into(),
            new_path: "/dev/null".into(),
            kind: ChangeKind::Delete,
            hunks: vec![],
        };
        assert_eq!(fp.path(), "gone.c");
    }

    #[test]
    fn counts_added_and_removed() {
        let mut h = Hunk {
            old_start: 1,
            new_start: 1,
            lines: vec![
                DiffLine::Added("x".into()),
                DiffLine::Added("y".into()),
                DiffLine::Removed("z".into()),
            ],
            ..Hunk::default()
        };
        h.recount();
        let fp = FilePatch::modify("f.c", vec![h]);
        assert_eq!(fp.added_count(), 2);
        assert_eq!(fp.removed_count(), 1);
    }

    #[test]
    fn patch_lookup_by_path() {
        let p: Patch = vec![
            FilePatch::modify("a.c", vec![]),
            FilePatch::modify("b.h", vec![]),
        ]
        .into_iter()
        .collect();
        assert!(p.file("b.h").is_some());
        assert!(p.file("c.c").is_none());
        assert_eq!(p.paths().collect::<Vec<_>>(), vec!["a.c", "b.h"]);
    }
}
