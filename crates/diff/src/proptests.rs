//! Property-based tests tying the whole diff stack together.

use crate::{apply, apply_reverse, changed_lines, diff_to_patch, parse_patch, DiffOptions};
use proptest::prelude::*;

/// Strategy: a text of 0..40 short lines drawn from a small alphabet so
/// duplicate lines (the hard case for diffs) are common.
fn text() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just("alpha".to_string()),
            Just("beta".to_string()),
            Just("gamma".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just(String::new()),
            "[a-z]{1,8}",
        ],
        0..40,
    )
    .prop_map(|lines| {
        if lines.is_empty() {
            String::new()
        } else {
            lines.join("\n") + "\n"
        }
    })
}

proptest! {
    /// diff ∘ apply reproduces the target text exactly.
    #[test]
    fn diff_then_apply_is_identity(old in text(), new in text()) {
        let patch = diff_to_patch("f.c", &old, &new, &DiffOptions::default());
        let applied = match patch.files.first() {
            Some(fp) => apply(&old, fp).unwrap(),
            None => old.clone(),
        };
        prop_assert_eq!(applied, new);
    }

    /// Reverse-applying the patch restores the original text.
    #[test]
    fn apply_then_reverse_is_identity(old in text(), new in text()) {
        let patch = diff_to_patch("f.c", &old, &new, &DiffOptions::default());
        if let Some(fp) = patch.files.first() {
            let applied = apply(&old, fp).unwrap();
            let reversed = apply_reverse(&applied, fp).unwrap();
            prop_assert_eq!(reversed, old);
        }
    }

    /// parse ∘ render is the identity on the patch model.
    #[test]
    fn render_then_parse_round_trips(old in text(), new in text()) {
        let patch = diff_to_patch("f.c", &old, &new, &DiffOptions::default());
        let text = patch.render();
        let back = parse_patch(&text).unwrap();
        prop_assert_eq!(back, patch);
    }

    /// Changed lines are always within the new file (or EOF), and every
    /// added line is covered.
    #[test]
    fn changed_lines_are_in_bounds(old in text(), new in text()) {
        let patch = diff_to_patch("f.c", &old, &new, &DiffOptions::default());
        if let Some(fp) = patch.files.first() {
            let new_len = new.lines().count() as u32;
            let cl = changed_lines(fp, new_len);
            for n in cl.line_numbers() {
                prop_assert!(n >= 1 && n <= new_len.max(1),
                    "changed line {} out of bounds (len {})", n, new_len);
            }
            let added = fp.added_count();
            // Each position is an added line or the seam of a removal run,
            // and every removal run contains at least one removed line.
            prop_assert!(cl.len() <= added + fp.removed_count(),
                "more changed positions than possible");
            if added > 0 {
                prop_assert!(!cl.is_empty());
            }
        }
    }

    /// Whitespace-insensitive diff never reports pure-indentation edits.
    #[test]
    fn ignore_ws_is_quiet_on_reindent(base in text()) {
        let reindented: String = base
            .lines()
            .map(|l| format!("\t{l}\n"))
            .collect();
        let opts = DiffOptions { ignore_whitespace: true, ..DiffOptions::default() };
        let patch = diff_to_patch("f.c", &base, &reindented, &opts);
        prop_assert!(patch.is_empty(), "reindent produced hunks: {}", patch.render());
    }

    /// The edit script is minimal enough to never exceed the trivial bound.
    #[test]
    fn edit_count_bounded(old in text(), new in text()) {
        let edits = crate::diff_lines(&old, &new, &DiffOptions::default());
        let changes = edits.iter().filter(|e| !matches!(e, crate::Edit::Keep{..})).count();
        prop_assert!(changes <= old.lines().count() + new.lines().count());
    }
}
