//! Hunks and their annotated lines.

use std::fmt;

/// One line of a hunk, annotated as in a unified diff.
///
/// The payload never contains the trailing newline.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DiffLine {
    /// An unannotated line present in both versions.
    Context(String),
    /// A line present only in the new version (`+`).
    Added(String),
    /// A line present only in the old version (`-`).
    Removed(String),
}

impl DiffLine {
    /// The text of the line regardless of annotation.
    pub fn text(&self) -> &str {
        match self {
            DiffLine::Context(s) | DiffLine::Added(s) | DiffLine::Removed(s) => s,
        }
    }

    /// True for [`DiffLine::Added`].
    pub fn is_added(&self) -> bool {
        matches!(self, DiffLine::Added(_))
    }

    /// True for [`DiffLine::Removed`].
    pub fn is_removed(&self) -> bool {
        matches!(self, DiffLine::Removed(_))
    }

    /// True for [`DiffLine::Context`].
    pub fn is_context(&self) -> bool {
        matches!(self, DiffLine::Context(_))
    }

    /// The unified-diff annotation character: ` `, `+`, or `-`.
    pub fn sigil(&self) -> char {
        match self {
            DiffLine::Context(_) => ' ',
            DiffLine::Added(_) => '+',
            DiffLine::Removed(_) => '-',
        }
    }
}

impl fmt::Display for DiffLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.sigil(), self.text())
    }
}

/// A contiguous extract of a file patch: an `@@`-headed block of annotated
/// lines.
///
/// Line numbers are 1-based, as in unified diffs. An empty side (pure
/// insertion at the top of a file, say) is represented by git as
/// `start = 0, len = 0`; we preserve that convention.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Hunk {
    /// First line of the hunk in the old file (1-based; 0 when `old_len == 0`).
    pub old_start: u32,
    /// Number of old-file lines covered (context + removed).
    pub old_len: u32,
    /// First line of the hunk in the new file (1-based; 0 when `new_len == 0`).
    pub new_start: u32,
    /// Number of new-file lines covered (context + added).
    pub new_len: u32,
    /// The annotated lines.
    pub lines: Vec<DiffLine>,
}

impl Hunk {
    /// Recompute `old_len`/`new_len` from `lines`.
    ///
    /// Useful after constructing a hunk by hand.
    pub fn recount(&mut self) {
        self.old_len = self
            .lines
            .iter()
            .filter(|l| !l.is_added())
            .count()
            .try_into()
            .expect("hunk longer than u32::MAX lines");
        self.new_len = self
            .lines
            .iter()
            .filter(|l| !l.is_removed())
            .count()
            .try_into()
            .expect("hunk longer than u32::MAX lines");
    }

    /// True if the hunk adds at least one line.
    pub fn adds(&self) -> bool {
        self.lines.iter().any(DiffLine::is_added)
    }

    /// True if the hunk removes at least one line.
    pub fn removes(&self) -> bool {
        self.lines.iter().any(DiffLine::is_removed)
    }

    /// True if the hunk only removes (no added lines, possibly context).
    pub fn is_removal_only(&self) -> bool {
        self.removes() && !self.adds()
    }

    /// Iterate over `(new_file_line_number, line)` pairs for every line that
    /// exists in the new file (context and added lines).
    pub fn new_lines(&self) -> impl Iterator<Item = (u32, &DiffLine)> {
        let mut new_no = self.new_start;
        self.lines.iter().filter_map(move |l| {
            if l.is_removed() {
                None
            } else {
                let no = new_no;
                new_no += 1;
                Some((no, l))
            }
        })
    }

    /// Iterate over `(old_file_line_number, line)` pairs for every line that
    /// exists in the old file (context and removed lines).
    pub fn old_lines(&self) -> impl Iterator<Item = (u32, &DiffLine)> {
        let mut old_no = self.old_start;
        self.lines.iter().filter_map(move |l| {
            if l.is_added() {
                None
            } else {
                let no = old_no;
                old_no += 1;
                Some((no, l))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hunk {
        let mut h = Hunk {
            old_start: 10,
            new_start: 10,
            lines: vec![
                DiffLine::Context("a".into()),
                DiffLine::Removed("b".into()),
                DiffLine::Added("B".into()),
                DiffLine::Added("B2".into()),
                DiffLine::Context("c".into()),
            ],
            ..Hunk::default()
        };
        h.recount();
        h
    }

    #[test]
    fn recount_counts_sides_independently() {
        let h = sample();
        assert_eq!(h.old_len, 3); // a, b, c
        assert_eq!(h.new_len, 4); // a, B, B2, c
    }

    #[test]
    fn new_lines_number_from_new_start() {
        let h = sample();
        let nums: Vec<(u32, &str)> = h.new_lines().map(|(n, l)| (n, l.text())).collect();
        assert_eq!(nums, vec![(10, "a"), (11, "B"), (12, "B2"), (13, "c")]);
    }

    #[test]
    fn old_lines_number_from_old_start() {
        let h = sample();
        let nums: Vec<(u32, &str)> = h.old_lines().map(|(n, l)| (n, l.text())).collect();
        assert_eq!(nums, vec![(10, "a"), (11, "b"), (12, "c")]);
    }

    #[test]
    fn removal_only_detection() {
        let mut h = Hunk {
            old_start: 1,
            new_start: 1,
            lines: vec![DiffLine::Context("x".into()), DiffLine::Removed("y".into())],
            ..Hunk::default()
        };
        h.recount();
        assert!(h.is_removal_only());
        assert!(!sample().is_removal_only());
    }

    #[test]
    fn display_uses_sigils() {
        assert_eq!(DiffLine::Added("x".into()).to_string(), "+x");
        assert_eq!(DiffLine::Removed("x".into()).to_string(), "-x");
        assert_eq!(DiffLine::Context("x".into()).to_string(), " x");
    }
}
