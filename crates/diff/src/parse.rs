//! Parser for `git show`-style unified diffs.

use crate::error::ParseError;
use crate::hunk::{DiffLine, Hunk};
use crate::patch::{ChangeKind, FilePatch, Patch};

/// Parse the output of `git show` / `git diff` / `diff -u` into a [`Patch`].
///
/// Recognized structure, per file:
///
/// ```text
/// diff --git a/path b/path        (optional for plain `diff -u` output)
/// index 0123abc..456def 100644    (ignored)
/// old/new mode lines              (ignored)
/// --- a/path  |  --- /dev/null
/// +++ b/path  |  +++ /dev/null
/// @@ -os[,ol] +ns[,nl] @@ [section heading]
///  context / +added / -removed lines
/// \ No newline at end of file     (ignored)
/// ```
///
/// Leading commit headers (`commit …`, `Author: …`, message body) before the
/// first `diff --git` or `---` line are skipped, so raw `git show` output can
/// be fed in directly.
///
/// # Errors
///
/// Returns [`ParseError`] when hunk headers are malformed, hunk bodies are
/// shorter than their declared lengths, or annotated lines appear outside a
/// hunk.
pub fn parse_patch(input: &str) -> Result<Patch, ParseError> {
    Parser::new(input).run()
}

struct Parser<'a> {
    lines: Vec<&'a str>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            lines: input.lines().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&'a str> {
        self.lines.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<&'a str> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn here(&self) -> usize {
        self.pos + 1
    }

    fn run(mut self) -> Result<Patch, ParseError> {
        let mut patch = Patch::new();
        while let Some(line) = self.peek() {
            if line.starts_with("diff --git ") || is_old_header(line) {
                patch.files.push(self.file_patch()?);
            } else {
                self.pos += 1; // commit header, message, index line, etc.
            }
        }
        Ok(patch)
    }

    fn file_patch(&mut self) -> Result<FilePatch, ParseError> {
        let mut git_paths: Option<(String, String)> = None;
        if let Some(line) = self.peek() {
            if let Some(rest) = line.strip_prefix("diff --git ") {
                git_paths = split_git_paths(rest);
                self.pos += 1;
            }
        }
        // Skip metadata until `---`. A file patch may have no hunks at all
        // (mode-only change); then the next `diff --git` ends it.
        let mut old_header = None;
        while let Some(line) = self.peek() {
            if is_old_header(line) {
                old_header = Some(line);
                self.pos += 1;
                break;
            }
            if line.starts_with("diff --git ") {
                break;
            }
            self.pos += 1;
        }
        let (old_path, new_path, kind) = match old_header {
            Some(old) => {
                let new = self
                    .bump()
                    .ok_or_else(|| ParseError::new(self.here(), "missing +++ header after ---"))?;
                let new = new.strip_prefix("+++ ").ok_or_else(|| {
                    ParseError::new(self.here(), format!("expected +++ header, got {new:?}"))
                })?;
                let old = old.strip_prefix("--- ").expect("checked by is_old_header");
                header_paths(old, new, &git_paths)
            }
            None => {
                let (o, n) = git_paths.ok_or_else(|| {
                    ParseError::new(self.here(), "file patch with neither git nor --- header")
                })?;
                (o, n, ChangeKind::Modify)
            }
        };

        let mut hunks = Vec::new();
        while let Some(line) = self.peek() {
            if line.starts_with("@@") {
                hunks.push(self.hunk()?);
            } else {
                break;
            }
        }
        Ok(FilePatch {
            old_path,
            new_path,
            kind,
            hunks,
        })
    }

    fn hunk(&mut self) -> Result<Hunk, ParseError> {
        let header_line_no = self.here();
        let header = self.bump().expect("caller checked @@");
        let (old_start, old_len, new_start, new_len) =
            parse_hunk_header(header).ok_or_else(|| {
                ParseError::new(header_line_no, format!("malformed hunk header {header:?}"))
            })?;
        let mut lines = Vec::new();
        let (mut seen_old, mut seen_new) = (0u32, 0u32);
        while seen_old < old_len || seen_new < new_len {
            let line_no = self.here();
            let raw = self.bump().ok_or_else(|| {
                ParseError::new(
                    line_no,
                    format!("hunk body ended early: saw {seen_old}/{old_len} old, {seen_new}/{new_len} new lines"),
                )
            })?;
            if raw.starts_with('\\') {
                continue; // "\ No newline at end of file"
            }
            let (sigil, text) = split_sigil(raw);
            match sigil {
                ' ' => {
                    seen_old += 1;
                    seen_new += 1;
                    lines.push(DiffLine::Context(text.to_string()));
                }
                '+' => {
                    seen_new += 1;
                    lines.push(DiffLine::Added(text.to_string()));
                }
                '-' => {
                    seen_old += 1;
                    lines.push(DiffLine::Removed(text.to_string()));
                }
                other => {
                    return Err(ParseError::new(
                        line_no,
                        format!("unexpected hunk line sigil {other:?}"),
                    ));
                }
            }
        }
        // Trailing "\ No newline" marker after the last line.
        if matches!(self.peek(), Some(l) if l.starts_with('\\')) {
            self.pos += 1;
        }
        Ok(Hunk {
            old_start,
            old_len,
            new_start,
            new_len,
            lines,
        })
    }
}

fn is_old_header(line: &str) -> bool {
    line.starts_with("--- ")
}

/// Split `a/path b/path` from a `diff --git` header. Paths with spaces are
/// handled by looking for the ` b/` separator.
fn split_git_paths(rest: &str) -> Option<(String, String)> {
    let a = rest
        .strip_prefix("a/")
        .or_else(|| rest.strip_prefix("\"a/"))?;
    let idx = a.find(" b/")?;
    let old = a[..idx].trim_end_matches('"').to_string();
    let new = a[idx + 3..].trim_end_matches('"').to_string();
    Some((old, new))
}

fn strip_prefix_path(p: &str) -> &str {
    let p = p.split('\t').next().unwrap_or(p); // git appends "\t" + timestamp sometimes
    p.strip_prefix("a/")
        .or_else(|| p.strip_prefix("b/"))
        .unwrap_or(p)
}

fn header_paths(
    old: &str,
    new: &str,
    git_paths: &Option<(String, String)>,
) -> (String, String, ChangeKind) {
    let old = old.trim();
    let new = new.trim();
    if old == "/dev/null" {
        let path = strip_prefix_path(new).to_string();
        return (path.clone(), path, ChangeKind::Create);
    }
    if new == "/dev/null" {
        let path = strip_prefix_path(old).to_string();
        return (path, "/dev/null".to_string(), ChangeKind::Delete);
    }
    match git_paths {
        Some((o, n)) => (o.clone(), n.clone(), ChangeKind::Modify),
        None => (
            strip_prefix_path(old).to_string(),
            strip_prefix_path(new).to_string(),
            ChangeKind::Modify,
        ),
    }
}

/// Parse `@@ -os[,ol] +ns[,nl] @@ …` into its four numbers.
fn parse_hunk_header(header: &str) -> Option<(u32, u32, u32, u32)> {
    let rest = header.strip_prefix("@@ -")?;
    let end = rest.find(" @@")?;
    let nums = &rest[..end];
    let mut parts = nums.split(" +");
    let old = parts.next()?;
    let new = parts.next()?;
    if parts.next().is_some() {
        return None;
    }
    let (os, ol) = parse_range(old)?;
    let (ns, nl) = parse_range(new)?;
    Some((os, ol, ns, nl))
}

fn parse_range(s: &str) -> Option<(u32, u32)> {
    match s.split_once(',') {
        Some((a, b)) => Some((a.parse().ok()?, b.parse().ok()?)),
        None => Some((s.parse().ok()?, 1)),
    }
}

/// Split a hunk body line into its sigil and payload. An entirely empty line
/// inside a hunk is a context line whose payload is empty (git emits a lone
/// newline for those).
fn split_sigil(raw: &str) -> (char, &str) {
    let mut chars = raw.chars();
    match chars.next() {
        None => (' ', ""),
        Some(c) => (c, chars.as_str()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
commit 95ea3e760ef8f7b09823f394e19ea06f08ba7b41
Author: Someone <someone@example.com>

    staging: comedi: tidy up register defs

diff --git a/drivers/staging/comedi/drivers/cb_das16_cs.c b/drivers/staging/comedi/drivers/cb_das16_cs.c
index 0123abc..456def 100644
--- a/drivers/staging/comedi/drivers/cb_das16_cs.c
+++ b/drivers/staging/comedi/drivers/cb_das16_cs.c
@@ -49,2 +49,3 @@ header context
 unchanged
-old line
+new line
+extra line
@@ -107,2 +108,2 @@
-foo
+bar
 tail
";

    #[test]
    fn parses_git_show_output() {
        let p = parse_patch(SAMPLE).unwrap();
        assert_eq!(p.files.len(), 1);
        let f = &p.files[0];
        assert_eq!(f.path(), "drivers/staging/comedi/drivers/cb_das16_cs.c");
        assert_eq!(f.kind, ChangeKind::Modify);
        assert_eq!(f.hunks.len(), 2);
        let h0 = &f.hunks[0];
        assert_eq!(
            (h0.old_start, h0.old_len, h0.new_start, h0.new_len),
            (49, 2, 49, 3)
        );
        assert_eq!(h0.lines.len(), 4);
        assert_eq!(f.added_count(), 3);
        assert_eq!(f.removed_count(), 2);
    }

    #[test]
    fn parses_creation_and_deletion() {
        let text = "\
--- /dev/null
+++ b/new.c
@@ -0,0 +1,2 @@
+int x;
+int y;
--- a/old.c
+++ /dev/null
@@ -1,1 +0,0 @@
-int z;
";
        let p = parse_patch(text).unwrap();
        assert_eq!(p.files[0].kind, ChangeKind::Create);
        assert_eq!(p.files[0].path(), "new.c");
        assert_eq!(p.files[1].kind, ChangeKind::Delete);
        assert_eq!(p.files[1].path(), "old.c");
    }

    #[test]
    fn handles_no_newline_marker() {
        let text = "\
--- a/f.c
+++ b/f.c
@@ -1,1 +1,1 @@
-old
\\ No newline at end of file
+new
\\ No newline at end of file
";
        let p = parse_patch(text).unwrap();
        assert_eq!(p.files[0].hunks[0].lines.len(), 2);
    }

    #[test]
    fn empty_context_lines_are_preserved() {
        let text = "\
--- a/f.c
+++ b/f.c
@@ -1,3 +1,3 @@
 a

-b
+B
";
        let p = parse_patch(text).unwrap();
        let h = &p.files[0].hunks[0];
        assert_eq!(h.lines[1], DiffLine::Context(String::new()));
    }

    #[test]
    fn rejects_truncated_hunk() {
        let text = "\
--- a/f.c
+++ b/f.c
@@ -1,5 +1,5 @@
 a
";
        let err = parse_patch(text).unwrap_err();
        assert!(err.message.contains("ended early"), "{err}");
    }

    #[test]
    fn rejects_malformed_header() {
        let text = "\
--- a/f.c
+++ b/f.c
@@ nonsense @@
";
        assert!(parse_patch(text).is_err());
    }

    #[test]
    fn single_line_ranges_default_len_one() {
        assert_eq!(parse_hunk_header("@@ -5 +7 @@"), Some((5, 1, 7, 1)));
        assert_eq!(
            parse_hunk_header("@@ -5,0 +7,2 @@ fn ctx"),
            Some((5, 0, 7, 2))
        );
    }

    #[test]
    fn mode_only_file_patch_has_no_hunks() {
        let text = "\
diff --git a/script.sh b/script.sh
old mode 100644
new mode 100755
diff --git a/f.c b/f.c
--- a/f.c
+++ b/f.c
@@ -1,1 +1,1 @@
-a
+b
";
        let p = parse_patch(text).unwrap();
        assert_eq!(p.files.len(), 2);
        assert!(p.files[0].hunks.is_empty());
        assert_eq!(p.files[1].hunks.len(), 1);
    }
}
