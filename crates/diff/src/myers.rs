//! Line-based Myers diff and patch construction.

use crate::hunk::{DiffLine, Hunk};
use crate::patch::{FilePatch, Patch};

/// Options controlling diff computation.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Compare lines with all ASCII whitespace removed, like `git log -w`.
    ///
    /// The paper's evaluation collects patches with `-w` so that
    /// indentation-only churn does not count as a change (§V.A).
    pub ignore_whitespace: bool,
    /// Number of context lines around each change when grouping into hunks.
    pub context: usize,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            ignore_whitespace: false,
            context: 3,
        }
    }
}

/// One element of a line-level edit script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edit {
    /// Line `old_index` (0-based) is kept; it is line `new_index` in the new file.
    Keep { old_index: usize, new_index: usize },
    /// Line `old_index` (0-based) of the old file is deleted.
    Delete { old_index: usize },
    /// Line `new_index` (0-based) of the new file is inserted.
    Insert { new_index: usize },
}

/// Compute a minimal line-level edit script from `old` to `new` using the
/// Myers O(ND) algorithm.
///
/// When [`DiffOptions::ignore_whitespace`] is set, two lines compare equal
/// if they agree after every ASCII whitespace character is removed; the
/// *old* text is kept for context lines in that case.
pub fn diff_lines(old: &str, new: &str, opts: &DiffOptions) -> Vec<Edit> {
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    let key = |s: &str| -> String {
        if opts.ignore_whitespace {
            s.chars().filter(|c| !c.is_ascii_whitespace()).collect()
        } else {
            s.to_string()
        }
    };
    let ka: Vec<String> = a.iter().map(|s| key(s)).collect();
    let kb: Vec<String> = b.iter().map(|s| key(s)).collect();
    myers(&ka, &kb)
}

/// Compute a [`Patch`] (one modify-kind [`FilePatch`]) describing the change
/// from `old` to `new` at `path`.
pub fn diff_to_patch(path: &str, old: &str, new: &str, opts: &DiffOptions) -> Patch {
    let edits = diff_lines(old, new, opts);
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    let hunks = group_hunks(&edits, &a, &b, opts.context);
    if hunks.is_empty() {
        return Patch::new();
    }
    vec![FilePatch::modify(path, hunks)].into_iter().collect()
}

/// Classic Myers greedy algorithm over pre-keyed lines.
fn myers(a: &[String], b: &[String]) -> Vec<Edit> {
    let n = a.len();
    let m = b.len();
    let max = n + m;
    if max == 0 {
        return Vec::new();
    }
    let off = max as isize;
    // v[(k + off) as usize] = furthest x reached on diagonal k.
    let mut v = vec![0usize; 2 * max + 1];
    // trace[d] = v as it stood *before* round d's writes.
    let mut trace: Vec<Vec<usize>> = Vec::new();
    let mut d_final = 0;

    'outer: for d in 0..=max as isize {
        trace.push(v.clone());
        let mut k = -d;
        while k <= d {
            let ku = (k + off) as usize;
            let mut x = if k == -d || (k != d && v[ku - 1] < v[ku + 1]) {
                v[ku + 1] // move down (insertion)
            } else {
                v[ku - 1] + 1 // move right (deletion)
            };
            let mut y = (x as isize - k) as usize;
            while x < n && y < m && a[x] == b[y] {
                x += 1;
                y += 1;
            }
            v[ku] = x;
            if x >= n && y >= m {
                d_final = d;
                break 'outer;
            }
            k += 2;
        }
    }

    // Backtrack from (n, m) to (0, 0).
    let mut edits = Vec::new();
    let (mut x, mut y) = (n, m);
    for d in (1..=d_final).rev() {
        let vd = &trace[d as usize];
        let k = x as isize - y as isize;
        let ku = (k + off) as usize;
        let prev_k = if k == -d || (k != d && vd[ku - 1] < vd[ku + 1]) {
            k + 1
        } else {
            k - 1
        };
        let prev_ku = (prev_k + off) as usize;
        let prev_x = vd[prev_ku];
        let prev_y = (prev_x as isize - prev_k) as usize;
        // Walk back along the snake.
        while x > prev_x && y > prev_y {
            x -= 1;
            y -= 1;
            edits.push(Edit::Keep {
                old_index: x,
                new_index: y,
            });
        }
        if prev_k > k {
            // vertical move: insertion of b[y-1]
            y -= 1;
            edits.push(Edit::Insert { new_index: y });
        } else {
            // horizontal move: deletion of a[x-1]
            x -= 1;
            edits.push(Edit::Delete { old_index: x });
        }
        debug_assert_eq!((x, y), (prev_x, prev_y));
    }
    // Leading snake down to the origin.
    while x > 0 && y > 0 {
        x -= 1;
        y -= 1;
        edits.push(Edit::Keep {
            old_index: x,
            new_index: y,
        });
    }
    debug_assert_eq!((x, y), (0, 0));
    edits.reverse();
    debug_assert!(verify_edits(&edits, a.len(), b.len()));
    edits
}

fn verify_edits(edits: &[Edit], n: usize, m: usize) -> bool {
    let (mut x, mut y) = (0usize, 0usize);
    for e in edits {
        match e {
            Edit::Keep {
                old_index,
                new_index,
            } => {
                if *old_index != x || *new_index != y {
                    return false;
                }
                x += 1;
                y += 1;
            }
            Edit::Delete { old_index } => {
                if *old_index != x {
                    return false;
                }
                x += 1;
            }
            Edit::Insert { new_index } => {
                if *new_index != y {
                    return false;
                }
                y += 1;
            }
        }
    }
    x == n && y == m
}

/// Group an edit script into hunks with `context` lines of surrounding
/// context, merging changes whose gaps are ≤ 2 × context.
fn group_hunks(edits: &[Edit], a: &[&str], b: &[&str], context: usize) -> Vec<Hunk> {
    // Indices in `edits` that are changes.
    let change_idx: Vec<usize> = edits
        .iter()
        .enumerate()
        .filter(|(_, e)| !matches!(e, Edit::Keep { .. }))
        .map(|(i, _)| i)
        .collect();
    if change_idx.is_empty() {
        return Vec::new();
    }

    // Partition change indices into groups separated by > 2*context keeps.
    let mut groups: Vec<(usize, usize)> = Vec::new(); // inclusive ranges into edits
    let mut start = change_idx[0];
    let mut prev = change_idx[0];
    for &i in &change_idx[1..] {
        // `i - prev - 1` intervening Keep lines; split when more than twice
        // the context width would separate the changes.
        if i - prev > 2 * context + 1 {
            groups.push((start, prev));
            start = i;
        }
        prev = i;
    }
    groups.push((start, prev));

    // Running 1-based (old_line, new_line) position *before* consuming each edit.
    let mut positions = Vec::with_capacity(edits.len());
    let (mut x, mut y) = (1u32, 1u32);
    for e in edits {
        positions.push((x, y));
        match e {
            Edit::Keep { .. } => {
                x += 1;
                y += 1;
            }
            Edit::Delete { .. } => x += 1,
            Edit::Insert { .. } => y += 1,
        }
    }

    let mut hunks = Vec::new();
    for (g_start, g_end) in groups {
        let lo = g_start.saturating_sub(context);
        let hi = (g_end + context).min(edits.len().saturating_sub(1));
        let (old_start, new_start) = positions[lo];
        let lines = edits[lo..=hi]
            .iter()
            .map(|e| match e {
                Edit::Keep { old_index, .. } => DiffLine::Context(a[*old_index].to_string()),
                Edit::Delete { old_index } => DiffLine::Removed(a[*old_index].to_string()),
                Edit::Insert { new_index } => DiffLine::Added(b[*new_index].to_string()),
            })
            .collect();
        let mut h = Hunk {
            old_start,
            new_start,
            lines,
            ..Hunk::default()
        };
        h.recount();
        // git convention: an empty side gets start = previous line (0 at top).
        if h.old_len == 0 {
            h.old_start -= 1;
        }
        if h.new_len == 0 {
            h.new_start -= 1;
        }
        hunks.push(h);
    }
    hunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply;

    fn roundtrip(old: &str, new: &str) {
        let patch = diff_to_patch("f", old, new, &DiffOptions::default());
        if patch.files.is_empty() {
            assert_eq!(old, new, "empty patch but texts differ");
            return;
        }
        let applied = apply(old, &patch.files[0]).unwrap();
        assert_eq!(
            applied,
            new,
            "patch did not reproduce target\n{}",
            patch.render()
        );
    }

    #[test]
    fn identical_texts_produce_empty_patch() {
        let p = diff_to_patch("f", "a\nb\n", "a\nb\n", &DiffOptions::default());
        assert!(p.is_empty());
    }

    #[test]
    fn simple_replacement_roundtrips() {
        roundtrip("a\nb\nc\n", "a\nB\nc\n");
    }

    #[test]
    fn insertion_and_deletion_roundtrip() {
        roundtrip("a\nb\nc\nd\ne\n", "a\nc\nX\nd\ne\nf\n");
    }

    #[test]
    fn empty_to_content_and_back() {
        roundtrip("", "x\ny\n");
        roundtrip("x\ny\n", "");
    }

    #[test]
    fn distant_changes_make_separate_hunks() {
        let old: String = (0..40).map(|i| format!("line{i}\n")).collect();
        let new = old
            .replace("line3\n", "LINE3\n")
            .replace("line30\n", "LINE30\n");
        let p = diff_to_patch("f", &old, &new, &DiffOptions::default());
        assert_eq!(p.files[0].hunks.len(), 2);
        roundtrip(&old, &new);
    }

    #[test]
    fn nearby_changes_merge_into_one_hunk() {
        let old = "a\nb\nc\nd\ne\nf\ng\n";
        let new = "a\nB\nc\nd\ne\nF\ng\n";
        let p = diff_to_patch("f", old, new, &DiffOptions::default());
        assert_eq!(p.files[0].hunks.len(), 1);
        roundtrip(old, new);
    }

    #[test]
    fn ignore_whitespace_suppresses_indent_changes() {
        let opts = DiffOptions {
            ignore_whitespace: true,
            ..DiffOptions::default()
        };
        let p = diff_to_patch("f", "int x;\n  y();\n", "int x;\n\ty();\n", &opts);
        assert!(p.is_empty());
        // But real changes still show.
        let p2 = diff_to_patch("f", "int x;\n  y();\n", "int x;\n  z();\n", &opts);
        assert_eq!(p2.files[0].hunks.len(), 1);
    }

    #[test]
    fn minimality_on_known_case() {
        // Classic ABCABBA -> CBABAC example: minimal script has 5 edits.
        let a = "A\nB\nC\nA\nB\nB\nA\n";
        let b = "C\nB\nA\nB\nA\nC\n";
        let edits = diff_lines(a, b, &DiffOptions::default());
        let changes = edits
            .iter()
            .filter(|e| !matches!(e, Edit::Keep { .. }))
            .count();
        assert_eq!(changes, 5);
        roundtrip(a, b);
    }

    #[test]
    fn context_zero_produces_tight_hunks() {
        let opts = DiffOptions {
            context: 0,
            ..DiffOptions::default()
        };
        let p = diff_to_patch("f", "a\nb\nc\n", "a\nB\nc\n", &opts);
        let h = &p.files[0].hunks[0];
        assert_eq!(h.lines.len(), 2); // -b +B only
    }
}
