//! Error types for parsing and applying patches.

use std::error::Error;
use std::fmt;

/// A unified-diff parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the diff text where parsing failed.
    pub line: usize,
    /// Human-readable reason.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "diff parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseError {}

/// A patch-application failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// A hunk referred to a line past the end of the target.
    OutOfBounds {
        /// Index of the offending hunk within the file patch.
        hunk: usize,
        /// Old-file line the hunk expected to exist.
        line: u32,
    },
    /// The target's content did not match the hunk's context/removed lines.
    ContextMismatch {
        /// Index of the offending hunk within the file patch.
        hunk: usize,
        /// Old-file line where the mismatch occurred.
        line: u32,
        /// What the hunk expected there.
        expected: String,
        /// What the target actually contained.
        found: String,
    },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::OutOfBounds { hunk, line } => {
                write!(f, "hunk #{hunk} refers past end of file (line {line})")
            }
            ApplyError::ContextMismatch {
                hunk,
                line,
                expected,
                found,
            } => write!(
                f,
                "hunk #{hunk} mismatch at line {line}: expected {expected:?}, found {found:?}"
            ),
        }
    }
}

impl Error for ApplyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParseError::new(3, "bad header");
        assert_eq!(e.to_string(), "diff parse error at line 3: bad header");
        let a = ApplyError::ContextMismatch {
            hunk: 0,
            line: 7,
            expected: "x".into(),
            found: "y".into(),
        };
        assert!(a.to_string().contains("line 7"));
        let o = ApplyError::OutOfBounds { hunk: 2, line: 99 };
        assert!(o.to_string().contains("hunk #2"));
    }
}
