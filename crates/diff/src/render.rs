//! Rendering patches back to unified-diff text.

use crate::hunk::Hunk;
use crate::patch::{ChangeKind, FilePatch, Patch};
use std::fmt::Write as _;

impl Patch {
    /// Render this patch as `git diff`-style unified-diff text.
    ///
    /// [`crate::parse_patch`] ∘ [`Patch::render`] is the identity on the
    /// patch model (verified by property test).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.files {
            f.render_into(&mut out);
        }
        out
    }
}

impl FilePatch {
    fn render_into(&self, out: &mut String) {
        let (a, b) = match self.kind {
            ChangeKind::Create => (self.new_path.as_str(), self.new_path.as_str()),
            ChangeKind::Delete => (self.old_path.as_str(), self.old_path.as_str()),
            ChangeKind::Modify => (self.old_path.as_str(), self.new_path.as_str()),
        };
        let _ = writeln!(out, "diff --git a/{a} b/{b}");
        match self.kind {
            ChangeKind::Create => {
                let _ = writeln!(out, "--- /dev/null");
                let _ = writeln!(out, "+++ b/{b}");
            }
            ChangeKind::Delete => {
                let _ = writeln!(out, "--- a/{a}");
                let _ = writeln!(out, "+++ /dev/null");
            }
            ChangeKind::Modify => {
                let _ = writeln!(out, "--- a/{a}");
                let _ = writeln!(out, "+++ b/{b}");
            }
        }
        for h in &self.hunks {
            h.render_into(out);
        }
    }
}

impl Hunk {
    fn render_into(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "@@ -{} +{} @@",
            render_range(self.old_start, self.old_len),
            render_range(self.new_start, self.new_len)
        );
        for line in &self.lines {
            let _ = writeln!(out, "{}{}", line.sigil(), line.text());
        }
    }
}

fn render_range(start: u32, len: u32) -> String {
    if len == 1 {
        format!("{start}")
    } else {
        format!("{start},{len}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hunk::DiffLine;
    use crate::parse::parse_patch;

    #[test]
    fn render_then_parse_round_trips() {
        let mut h = Hunk {
            old_start: 3,
            new_start: 3,
            lines: vec![
                DiffLine::Context("keep".into()),
                DiffLine::Removed("drop".into()),
                DiffLine::Added("add".into()),
            ],
            ..Hunk::default()
        };
        h.recount();
        let patch: Patch = vec![FilePatch::modify("x/y.c", vec![h])]
            .into_iter()
            .collect();
        let text = patch.render();
        let back = parse_patch(&text).unwrap();
        assert_eq!(back, patch);
    }

    #[test]
    fn create_and_delete_render_dev_null() {
        let mut h = Hunk {
            old_start: 0,
            new_start: 1,
            lines: vec![DiffLine::Added("x".into())],
            ..Hunk::default()
        };
        h.recount();
        let create = FilePatch {
            old_path: "n.c".into(),
            new_path: "n.c".into(),
            kind: ChangeKind::Create,
            hunks: vec![h],
        };
        let patch: Patch = vec![create].into_iter().collect();
        let text = patch.render();
        assert!(text.contains("--- /dev/null"));
        let back = parse_patch(&text).unwrap();
        assert_eq!(back.files[0].kind, ChangeKind::Create);
    }

    #[test]
    fn range_of_len_one_omits_count() {
        assert_eq!(render_range(5, 1), "5");
        assert_eq!(render_range(5, 0), "5,0");
        assert_eq!(render_range(5, 3), "5,3");
    }
}
