//! Per-author activity metrics (paper §IV, Table II columns).

use crate::activity::ActivityLog;
use crate::maintainers::Maintainers;
use std::collections::BTreeMap;

/// Metrics for one author over the observation period.
#[derive(Debug, Clone, PartialEq)]
pub struct AuthorMetrics {
    /// Author name.
    pub author: String,
    /// Total patches contributed.
    pub patches: usize,
    /// Distinct MAINTAINERS entries (≈ subsystems) touched.
    pub subsystems: usize,
    /// Distinct mailing lists reached.
    pub lists: usize,
    /// Patches for which the author is a registered maintainer of a
    /// touched file (excluded from janitor analysis; Table I caps their
    /// share at 5%).
    pub maintainer_patches: usize,
    /// Patches in the evaluation window (v4.3→v4.4).
    pub window_patches: usize,
    /// Patch count per file ever touched.
    pub per_file: BTreeMap<String, u32>,
}

impl AuthorMetrics {
    /// Fraction of patches where the author acted as maintainer.
    pub fn maintainer_fraction(&self) -> f64 {
        if self.patches == 0 {
            0.0
        } else {
            self.maintainer_patches as f64 / self.patches as f64
        }
    }

    /// The coefficient of variation of per-file patch counts: standard
    /// deviation over mean. Low cv ⇒ evenly spread attention ⇒
    /// janitor-like (paper §IV).
    pub fn file_cv(&self) -> f64 {
        let n = self.per_file.len();
        if n == 0 {
            return 0.0;
        }
        let counts: Vec<f64> = self.per_file.values().map(|&c| f64::from(c)).collect();
        let mean = counts.iter().sum::<f64>() / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n as f64;
        var.sqrt() / mean
    }
}

/// Compute metrics for every author in `log`.
pub fn compute_metrics(log: &ActivityLog, maintainers: &Maintainers) -> Vec<AuthorMetrics> {
    let mut by_author: BTreeMap<&str, AuthorMetrics> = BTreeMap::new();
    for record in &log.records {
        let m = by_author
            .entry(record.author.as_str())
            .or_insert_with(|| AuthorMetrics {
                author: record.author.clone(),
                patches: 0,
                subsystems: 0,
                lists: 0,
                maintainer_patches: 0,
                window_patches: 0,
                per_file: BTreeMap::new(),
            });
        m.patches += 1;
        if record.in_window {
            m.window_patches += 1;
        }
        let mut is_maintainer_patch = false;
        for file in &record.files {
            *m.per_file.entry(file.clone()).or_insert(0) += 1;
            if maintainers.is_maintainer_of(&record.author, file) {
                is_maintainer_patch = true;
            }
        }
        if is_maintainer_patch {
            m.maintainer_patches += 1;
        }
    }
    // Second pass for distinct subsystem/list counts (set-valued, so
    // recomputed from the records per author).
    let mut out: Vec<AuthorMetrics> = Vec::new();
    for (author, mut metrics) in by_author {
        let mut subsystems = std::collections::BTreeSet::new();
        let mut lists = std::collections::BTreeSet::new();
        for record in log.by_author(author) {
            for file in &record.files {
                for entry in maintainers.entries_for(file) {
                    subsystems.insert(entry.name.clone());
                    for l in &entry.lists {
                        lists.insert(l.clone());
                    }
                }
            }
        }
        metrics.subsystems = subsystems.len();
        metrics.lists = lists.len();
        out.push(metrics);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityRecord;

    fn maintainers() -> Maintainers {
        Maintainers::parse(
            "NET\nM:\tDave\nL:\tnetdev@l\nF:\tdrivers/net/\n\nUSB\nM:\tGreg\nL:\tusb@l\nF:\tdrivers/usb/\n\nSOUND\nM:\tTakashi\nL:\talsa@l\nF:\tsound/\n",
        )
    }

    fn record(author: &str, files: &[&str], in_window: bool) -> ActivityRecord {
        ActivityRecord {
            author: author.to_string(),
            files: files.iter().map(|s| s.to_string()).collect(),
            in_window,
        }
    }

    #[test]
    fn counts_patches_subsystems_lists() {
        let mut log = ActivityLog::default();
        log.push(record("alice", &["drivers/net/a.c"], false));
        log.push(record("alice", &["drivers/usb/b.c"], true));
        log.push(record("alice", &["sound/c.c"], true));
        let ms = compute_metrics(&log, &maintainers());
        assert_eq!(ms.len(), 1);
        let a = &ms[0];
        assert_eq!(a.patches, 3);
        assert_eq!(a.subsystems, 3);
        assert_eq!(a.lists, 3);
        assert_eq!(a.window_patches, 2);
        assert_eq!(a.maintainer_patches, 0);
    }

    #[test]
    fn maintainer_patches_detected() {
        let mut log = ActivityLog::default();
        log.push(record("Dave", &["drivers/net/a.c"], true));
        log.push(record("Dave", &["sound/c.c"], true));
        let ms = compute_metrics(&log, &maintainers());
        let d = &ms[0];
        assert_eq!(d.maintainer_patches, 1);
        assert!((d.maintainer_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cv_zero_for_even_spread() {
        let mut log = ActivityLog::default();
        log.push(record("j", &["drivers/net/a.c"], true));
        log.push(record("j", &["drivers/net/b.c"], true));
        log.push(record("j", &["drivers/net/c.c"], true));
        let ms = compute_metrics(&log, &maintainers());
        assert!(ms[0].file_cv().abs() < 1e-12);
    }

    #[test]
    fn cv_grows_with_concentration() {
        // Concentrated: 4 patches on one file, 1 on another.
        let mut log = ActivityLog::default();
        for _ in 0..4 {
            log.push(record("m", &["drivers/net/hot.c"], true));
        }
        log.push(record("m", &["drivers/net/cold.c"], true));
        let concentrated = compute_metrics(&log, &maintainers())[0].file_cv();

        let mut even = ActivityLog::default();
        for f in ["a", "b", "c", "d", "e"] {
            even.push(record("m", &[&format!("drivers/net/{f}.c")], true));
        }
        let spread = compute_metrics(&even, &maintainers())[0].file_cv();
        assert!(concentrated > spread);
        // cv of {4,1}: mean 2.5, sd 1.5 → 0.6.
        assert!((concentrated - 0.6).abs() < 1e-9, "{concentrated}");
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = AuthorMetrics {
            author: "x".into(),
            patches: 0,
            subsystems: 0,
            lists: 0,
            maintainer_patches: 0,
            window_patches: 0,
            per_file: BTreeMap::new(),
        };
        assert_eq!(m.maintainer_fraction(), 0.0);
        assert_eq!(m.file_cv(), 0.0);
    }
}
