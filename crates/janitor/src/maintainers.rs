//! MAINTAINERS file parsing and path matching.

/// One MAINTAINERS entry — the paper's working approximation of a
/// *subsystem* (§IV).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Subsystem title line.
    pub name: String,
    /// `M:` maintainer names (angle-bracket emails stripped).
    pub maintainers: Vec<String>,
    /// `L:` mailing lists.
    pub lists: Vec<String>,
    /// `F:` file patterns.
    pub patterns: Vec<String>,
}

impl Entry {
    /// True when `path` matches one of this entry's `F:` patterns.
    ///
    /// Pattern semantics follow MAINTAINERS practice: a trailing `/` means
    /// the whole directory subtree, a `*` matches within one path segment,
    /// and anything else is an exact path.
    pub fn matches(&self, path: &str) -> bool {
        self.patterns.iter().any(|p| pattern_matches(p, path))
    }
}

fn pattern_matches(pattern: &str, path: &str) -> bool {
    if let Some(dir) = pattern.strip_suffix('/') {
        return path.starts_with(pattern) || path == dir;
    }
    if pattern.contains('*') {
        return glob_matches(pattern, path);
    }
    pattern == path
}

/// Minimal glob: `*` matches any run of non-`/` characters.
fn glob_matches(pattern: &str, path: &str) -> bool {
    fn rec(p: &[u8], s: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'*') => {
                // Try all spans not crossing '/'.
                for k in 0..=s.len() {
                    if rec(&p[1..], &s[k..]) {
                        return true;
                    }
                    if k < s.len() && s[k] == b'/' {
                        break;
                    }
                }
                false
            }
            Some(c) => s.first() == Some(c) && rec(&p[1..], &s[1..]),
        }
    }
    rec(pattern.as_bytes(), path.as_bytes())
}

/// The parsed MAINTAINERS database.
#[derive(Debug, Clone, Default)]
pub struct Maintainers {
    entries: Vec<Entry>,
}

impl Maintainers {
    /// Parse MAINTAINERS text: blank-line-separated entries, each headed
    /// by a title line followed by `M:`/`L:`/`F:` (and other, ignored)
    /// tagged lines.
    pub fn parse(text: &str) -> Maintainers {
        let mut entries = Vec::new();
        let mut current: Option<Entry> = None;
        for line in text.lines() {
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                if let Some(e) = current.take() {
                    if !e.patterns.is_empty() {
                        entries.push(e);
                    }
                }
                continue;
            }
            if let Some((tag, value)) = tagged(trimmed) {
                if let Some(e) = current.as_mut() {
                    match tag {
                        'M' => e.maintainers.push(strip_email(value)),
                        'L' => e.lists.push(value.to_string()),
                        'F' => e.patterns.push(value.to_string()),
                        _ => {}
                    }
                }
            } else if current.is_none() {
                current = Some(Entry {
                    name: trimmed.to_string(),
                    maintainers: Vec::new(),
                    lists: Vec::new(),
                    patterns: Vec::new(),
                });
            }
        }
        if let Some(e) = current.take() {
            if !e.patterns.is_empty() {
                entries.push(e);
            }
        }
        Maintainers { entries }
    }

    /// All entries whose patterns match `path`.
    pub fn entries_for(&self, path: &str) -> Vec<&Entry> {
        self.entries.iter().filter(|e| e.matches(path)).collect()
    }

    /// True when `author` is a registered maintainer for any entry
    /// matching `path`.
    pub fn is_maintainer_of(&self, author: &str, path: &str) -> bool {
        self.entries_for(path)
            .iter()
            .any(|e| e.maintainers.iter().any(|m| m == author))
    }

    /// All entries.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries were parsed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn tagged(line: &str) -> Option<(char, &str)> {
    let mut chars = line.chars();
    let tag = chars.next()?;
    if !tag.is_ascii_uppercase() {
        return None;
    }
    let rest = chars.as_str();
    let rest = rest.strip_prefix(':')?;
    Some((tag, rest.trim()))
}

fn strip_email(value: &str) -> String {
    match value.find('<') {
        Some(i) => value[..i].trim().to_string(),
        None => value.trim().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
NETWORKING DRIVERS
M:\tDavid Miller <davem@example.org>
L:\tnetdev@vger.example.org
S:\tMaintained
F:\tdrivers/net/
F:\tinclude/linux/netdevice.h

STAGING SUBSYSTEM
M:\tGreg KH <gregkh@example.org>
L:\tdevel@driverdev.example.org
F:\tdrivers/staging/

COMEDI DRIVERS
M:\tIan Abbott <abbotti@example.org>
M:\tH Hartley Sweeten <hsweeten@example.org>
L:\tdevel@driverdev.example.org
F:\tdrivers/staging/comedi/

WILDCARD ENTRY
M:\tSomeone <s@example.org>
L:\tmisc@example.org
F:\tdrivers/char/ipmi_*.c
";

    #[test]
    fn parses_entries() {
        let m = Maintainers::parse(SAMPLE);
        assert_eq!(m.len(), 4);
        let net = &m.entries()[0];
        assert_eq!(net.name, "NETWORKING DRIVERS");
        assert_eq!(net.maintainers, vec!["David Miller"]);
        assert_eq!(net.lists, vec!["netdev@vger.example.org"]);
        assert_eq!(net.patterns.len(), 2);
    }

    #[test]
    fn directory_pattern_matches_subtree() {
        let m = Maintainers::parse(SAMPLE);
        let hits = m.entries_for("drivers/net/ethernet/intel/e1000/main.c");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "NETWORKING DRIVERS");
    }

    #[test]
    fn overlapping_entries_both_match() {
        let m = Maintainers::parse(SAMPLE);
        let hits = m.entries_for("drivers/staging/comedi/drivers/cb_das16_cs.c");
        let names: Vec<&str> = hits.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["STAGING SUBSYSTEM", "COMEDI DRIVERS"]);
    }

    #[test]
    fn exact_file_pattern() {
        let m = Maintainers::parse(SAMPLE);
        assert_eq!(m.entries_for("include/linux/netdevice.h").len(), 1);
        assert!(m.entries_for("include/linux/other.h").is_empty());
    }

    #[test]
    fn glob_pattern_within_segment() {
        let m = Maintainers::parse(SAMPLE);
        assert_eq!(m.entries_for("drivers/char/ipmi_si.c").len(), 1);
        // * must not cross a path segment.
        assert!(m.entries_for("drivers/char/ipmi_sub/x.c").is_empty());
    }

    #[test]
    fn maintainer_detection() {
        let m = Maintainers::parse(SAMPLE);
        assert!(m.is_maintainer_of("Greg KH", "drivers/staging/foo.c"));
        assert!(!m.is_maintainer_of("Greg KH", "drivers/net/a.c"));
        assert!(m.is_maintainer_of("Ian Abbott", "drivers/staging/comedi/x.c"));
    }

    #[test]
    fn entries_without_patterns_are_dropped() {
        let m = Maintainers::parse("ORPHANED THING\nM:\tNobody <n@e.org>\n\n");
        assert!(m.is_empty());
    }

    #[test]
    fn multiple_maintainers_parsed() {
        let m = Maintainers::parse(SAMPLE);
        assert_eq!(m.entries()[2].maintainers.len(), 2);
    }
}
