//! Per-commit activity records.

use jmake_vcs::{CommitId, Repo, RepoError};

/// One commit's contribution, reduced to what the janitor analysis needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityRecord {
    /// Commit author.
    pub author: String,
    /// Files the commit touched.
    pub files: Vec<String>,
    /// Whether the record falls in the evaluation window (v4.3→v4.4 in
    /// the paper) rather than the longer observation period (v3.0→v4.4).
    pub in_window: bool,
}

/// The full activity log over the observation period.
#[derive(Debug, Clone, Default)]
pub struct ActivityLog {
    /// Records in history order.
    pub records: Vec<ActivityRecord>,
}

impl ActivityLog {
    /// Build from a repository: every non-merge commit becomes a record;
    /// commits after `window_from` (exclusive tag) are flagged as
    /// in-window.
    ///
    /// # Errors
    ///
    /// [`RepoError`] for an unknown tag.
    pub fn from_repo(repo: &Repo, window_from: &str) -> Result<ActivityLog, RepoError> {
        let from = repo.resolve_tag(window_from)?;
        let mut records = Vec::new();
        for commit in repo.all_commits() {
            if commit.is_merge() || commit.parents.is_empty() {
                continue;
            }
            let files = repo.changed_paths(commit.id)?;
            if files.is_empty() {
                continue;
            }
            records.push(ActivityRecord {
                author: commit.author.clone(),
                files,
                in_window: commit.id > from,
            });
        }
        Ok(ActivityLog { records })
    }

    /// Append a record (synthetic logs for the long observation period).
    pub fn push(&mut self, record: ActivityRecord) {
        self.records.push(record);
    }

    /// Records by a given author.
    pub fn by_author<'a>(&'a self, author: &'a str) -> impl Iterator<Item = &'a ActivityRecord> {
        self.records.iter().filter(move |r| r.author == author)
    }

    /// Number of in-window records for `author`.
    pub fn window_patches(&self, author: &str) -> usize {
        self.by_author(author).filter(|r| r.in_window).count()
    }
}

/// Marker re-export so callers can name the id type without importing vcs.
pub type SourceCommitId = CommitId;

#[cfg(test)]
mod tests {
    use super::*;
    use jmake_kbuild::SourceTree;

    fn tree(pairs: &[(&str, &str)]) -> SourceTree {
        let mut t = SourceTree::new();
        for (p, c) in pairs {
            t.insert(*p, *c);
        }
        t
    }

    #[test]
    fn builds_records_with_window_flags() {
        let mut repo = Repo::new();
        let base = repo.commit(&[], "root", "init", &tree(&[("a.c", "int a;\n")]));
        let c1 = repo.commit(&[base], "alice", "m1", &tree(&[("a.c", "int a1;\n")]));
        repo.tag("v4.3", c1);
        let c2 = repo.commit(
            &[c1],
            "alice",
            "m2",
            &tree(&[("a.c", "int a2;\n"), ("b.c", "int b;\n")]),
        );
        let _merge = repo.commit(
            &[c2, c1],
            "bob",
            "Merge",
            &tree(&[("a.c", "int a2;\n"), ("b.c", "int b;\n")]),
        );

        let log = ActivityLog::from_repo(&repo, "v4.3").unwrap();
        // Root and merge excluded.
        assert_eq!(log.records.len(), 2);
        assert!(!log.records[0].in_window);
        assert!(log.records[1].in_window);
        assert_eq!(
            log.records[1].files,
            vec!["a.c".to_string(), "b.c".to_string()]
        );
        assert_eq!(log.window_patches("alice"), 1);
        assert_eq!(log.by_author("alice").count(), 2);
    }
}
