//! Janitor selection: thresholds (Table I) and cv ranking (Table II).

use crate::metrics::AuthorMetrics;

/// The activity thresholds of paper Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Minimum patches over the observation period (paper: ≥ 10).
    pub min_patches: usize,
    /// Minimum distinct subsystems (paper: ≥ 20).
    pub min_subsystems: usize,
    /// Minimum distinct mailing lists (paper: ≥ 3).
    pub min_lists: usize,
    /// Maximum maintainer-patch share (paper: < 5%).
    pub max_maintainer_fraction: f64,
    /// Minimum patches inside the evaluation window — the paper
    /// additionally requires ≥ 20 patches between v4.3 and v4.4 so the
    /// janitor subset is large enough to study.
    pub min_window_patches: usize,
    /// How many ranked developers to keep (paper: top 10).
    pub top: usize,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            min_patches: 10,
            min_subsystems: 20,
            min_lists: 3,
            max_maintainer_fraction: 0.05,
            min_window_patches: 20,
            top: 10,
        }
    }
}

/// One row of the Table II analogue.
#[derive(Debug, Clone, PartialEq)]
pub struct JanitorReport {
    /// Developer name.
    pub author: String,
    /// Total patches over the observation period.
    pub patches: usize,
    /// Distinct subsystems touched.
    pub subsystems: usize,
    /// Distinct mailing lists reached.
    pub lists: usize,
    /// Maintainer-patch share (0.0–1.0).
    pub maintainer_fraction: f64,
    /// Coefficient of variation of per-file patch counts (the ranking
    /// key; low = breadth-first).
    pub file_cv: f64,
    /// Patches inside the evaluation window.
    pub window_patches: usize,
}

/// Apply Table I thresholds and rank by ascending file cv, keeping the top
/// `thresholds.top` developers (Table II).
pub fn identify_janitors(metrics: &[AuthorMetrics], thresholds: &Thresholds) -> Vec<JanitorReport> {
    let mut qualifying: Vec<JanitorReport> = metrics
        .iter()
        .filter(|m| {
            m.patches >= thresholds.min_patches
                && m.subsystems >= thresholds.min_subsystems
                && m.lists >= thresholds.min_lists
                && m.maintainer_fraction() < thresholds.max_maintainer_fraction
                && m.window_patches >= thresholds.min_window_patches
        })
        .map(|m| JanitorReport {
            author: m.author.clone(),
            patches: m.patches,
            subsystems: m.subsystems,
            lists: m.lists,
            maintainer_fraction: m.maintainer_fraction(),
            file_cv: m.file_cv(),
            window_patches: m.window_patches,
        })
        .collect();
    qualifying.sort_by(|a, b| {
        a.file_cv
            .partial_cmp(&b.file_cv)
            .expect("cv is never NaN")
            .then_with(|| a.author.cmp(&b.author))
    });
    qualifying.truncate(thresholds.top);
    qualifying
}

/// Render the Table II analogue as fixed-width text.
pub fn render_table(reports: &[JanitorReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>8} {:>11} {:>6} {:>11} {:>8}\n",
        "developer", "patches", "subsystems", "lists", "maintainer", "file cv"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<28} {:>8} {:>11} {:>6} {:>10.0}% {:>8.2}\n",
            r.author,
            r.patches,
            r.subsystems,
            r.lists,
            r.maintainer_fraction * 100.0,
            r.file_cv
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn metrics(
        author: &str,
        patches: usize,
        subsystems: usize,
        lists: usize,
        maintainer: usize,
        window: usize,
        per_file: &[u32],
    ) -> AuthorMetrics {
        AuthorMetrics {
            author: author.to_string(),
            patches,
            subsystems,
            lists,
            maintainer_patches: maintainer,
            window_patches: window,
            per_file: per_file
                .iter()
                .enumerate()
                .map(|(i, c)| (format!("f{i}.c"), *c))
                .collect::<BTreeMap<_, _>>(),
        }
    }

    #[test]
    fn thresholds_match_table_one() {
        let t = Thresholds::default();
        assert_eq!(t.min_patches, 10);
        assert_eq!(t.min_subsystems, 20);
        assert_eq!(t.min_lists, 3);
        assert!((t.max_maintainer_fraction - 0.05).abs() < 1e-12);
    }

    #[test]
    fn filters_and_ranks_by_cv() {
        let ms = vec![
            metrics("spread", 100, 40, 10, 0, 30, &[1; 50]), // cv 0
            metrics("lumpy", 100, 40, 10, 0, 30, &[20, 1, 1, 1]), // high cv
            metrics("narrow", 100, 5, 10, 0, 30, &[1; 50]),  // too few subsystems
            metrics("maintainer", 100, 40, 10, 50, 30, &[1; 50]), // 50% maintainer
            metrics("quiet", 100, 40, 10, 0, 3, &[1; 50]),   // too few in window
        ];
        let js = identify_janitors(&ms, &Thresholds::default());
        let names: Vec<&str> = js.iter().map(|j| j.author.as_str()).collect();
        assert_eq!(names, vec!["spread", "lumpy"]);
        assert!(js[0].file_cv < js[1].file_cv);
    }

    #[test]
    fn top_n_truncation() {
        let ms: Vec<AuthorMetrics> = (0..15)
            .map(|i| metrics(&format!("dev{i:02}"), 50, 30, 5, 0, 25, &[1; 30]))
            .collect();
        let t = Thresholds {
            top: 10,
            ..Thresholds::default()
        };
        assert_eq!(identify_janitors(&ms, &t).len(), 10);
    }

    #[test]
    fn table_renders_all_rows() {
        let ms = vec![metrics("dan carpenter", 1554, 400, 146, 0, 40, &[2; 700])];
        let js = identify_janitors(&ms, &Thresholds::default());
        let table = render_table(&js);
        assert!(table.contains("dan carpenter"));
        assert!(table.contains("1554"));
        assert!(table.lines().count() == 2);
    }
}
