//! Janitor identification for JMake (paper §IV).
//!
//! A *janitor* works on the code base breadth-first: many files, many
//! subsystems, roughly the same small amount of work on each. The paper
//! operationalizes this with the MAINTAINERS file (entries ≈ subsystems,
//! mailing lists as a coarser grouping) and four thresholds (Table I),
//! then ranks qualifying developers by the *coefficient of variation* of
//! their per-file patch counts — low cv means evenly spread attention.
//!
//! # Example
//!
//! ```
//! use jmake_janitor::{Maintainers, Thresholds};
//!
//! let m = Maintainers::parse("\
//! NETWORKING DRIVERS
//! M:\tDavid Miller <davem@example.org>
//! L:\tnetdev@vger.example.org
//! F:\tdrivers/net/
//! ");
//! let entries = m.entries_for("drivers/net/e1000.c");
//! assert_eq!(entries.len(), 1);
//! assert!(Thresholds::default().min_patches >= 10);
//! ```

pub mod activity;
pub mod maintainers;
pub mod metrics;
pub mod select;

pub use activity::{ActivityLog, ActivityRecord};
pub use maintainers::{Entry, Maintainers};
pub use metrics::{compute_metrics, AuthorMetrics};
pub use select::{identify_janitors, JanitorReport, Thresholds};
