//! # jmake-serve — the JMake evaluation daemon
//!
//! A long-running service that answers evaluation requests over a Unix
//! domain socket. Each request names a workload (commit count, seed,
//! worker count, config-strategy flags) and a report section; the daemon
//! runs it through the same work-stealing driver `jmake-eval` uses and
//! sends back the rendered report — **byte-identical** to what a local
//! `jmake-eval` run would print for the same parameters, because the
//! shared config/object caches only affect host-side time, never the
//! simulated results.
//!
//! Why a daemon at all: janitors iterating on a patch series ask for the
//! same portfolio over and over. A daemon keeps the caches warm across
//! requests (and, with `--cache-dir`, across restarts via the persistent
//! tier in [`jmake_kbuild::DiskCache`]), so the second request onward
//! skips the config-solving and object-compilation work entirely.
//!
//! See [`protocol`] for the JSONL wire format and [`server`] for the
//! batching/backpressure/drain machinery.

pub mod protocol;
pub mod server;

pub use protocol::{EvalRequest, Request, Response};
pub use server::{request, serve, ServerOptions};
