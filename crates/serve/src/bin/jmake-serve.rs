//! `jmake-serve` — evaluation daemon and its client, in one binary.
//!
//! Server mode (default):
//!
//! ```text
//! jmake-serve --socket PATH [--parallel N] [--queue N] [--cache-dir DIR]
//! ```
//!
//! Runs until a client sends `--shutdown`; queued evaluations are
//! drained (each still gets its response) before the process exits.
//! With `--cache-dir` the persistent tier is loaded at startup and
//! persisted at shutdown — the same on-disk format `jmake-eval
//! --cache-dir` uses, so the two can share a directory.
//!
//! Client mode:
//!
//! ```text
//! jmake-serve --client PATH [--id N] [--commits N] [--seed S]
//!             [--workers W] [--allmodconfig] [--coverage] [--fix] [COMMAND]
//! jmake-serve --client PATH --stats
//! jmake-serve --client PATH --shutdown
//! ```
//!
//! Prints the served report to stdout — byte-identical to `jmake-eval
//! COMMAND` with the same workload flags. With `--fix` the daemon also
//! runs the remediation pass against its warm caches; the remediation
//! JSON precedes the report, exactly as `jmake-eval --fix` prints it.

use jmake_serve::{request, serve, EvalRequest, Request, Response, ServerOptions};
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "usage:
  jmake-serve --socket PATH [--parallel N] [--queue N] [--cache-dir DIR]
  jmake-serve --client PATH [--id N] [--commits N] [--seed S] [--workers W]
              [--allmodconfig] [--coverage] [--fix] [COMMAND]
  jmake-serve --client PATH --stats
  jmake-serve --client PATH --shutdown";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut args = args.into_iter();

    let mut socket: Option<PathBuf> = None;
    let mut client: Option<PathBuf> = None;
    let mut parallel = ServerOptions::default().parallel;
    let mut queue = ServerOptions::default().queue_capacity;
    let mut cache_dir: Option<PathBuf> = None;
    let mut eval = EvalRequest::default();
    let mut command: Option<String> = None;
    let mut stats = false;
    let mut shutdown = false;

    fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value\n{USAGE}");
            exit(2);
        })
    }
    fn numeric<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("{flag}: cannot parse {raw:?}\n{USAGE}");
            exit(2);
        })
    }

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(value(&mut args, "--socket"))),
            "--client" => client = Some(PathBuf::from(value(&mut args, "--client"))),
            "--parallel" => parallel = numeric(&value(&mut args, "--parallel"), "--parallel"),
            "--queue" => queue = numeric(&value(&mut args, "--queue"), "--queue"),
            "--cache-dir" => cache_dir = Some(PathBuf::from(value(&mut args, "--cache-dir"))),
            "--id" => eval.id = numeric(&value(&mut args, "--id"), "--id"),
            "--commits" => eval.commits = numeric(&value(&mut args, "--commits"), "--commits"),
            "--seed" => eval.seed = numeric(&value(&mut args, "--seed"), "--seed"),
            "--workers" => eval.workers = numeric(&value(&mut args, "--workers"), "--workers"),
            "--allmodconfig" => eval.allmodconfig = true,
            "--coverage" => eval.coverage = true,
            "--fix" => eval.fix = true,
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if !other.starts_with('-') && command.is_none() => {
                command = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                exit(2);
            }
        }
    }

    match (socket, client) {
        (Some(_), Some(_)) => {
            eprintln!("--socket and --client are mutually exclusive\n{USAGE}");
            exit(2);
        }
        (None, None) => {
            eprintln!("one of --socket (server) or --client (client) is required\n{USAGE}");
            exit(2);
        }
        (Some(socket), None) => {
            if stats || shutdown || command.is_some() {
                eprintln!("client flags given in server mode\n{USAGE}");
                exit(2);
            }
            let opts = ServerOptions {
                socket,
                parallel,
                queue_capacity: queue,
                cache_dir,
            };
            if let Err(e) = serve(&opts) {
                eprintln!("jmake-serve: {e}");
                exit(1);
            }
        }
        (None, Some(path)) => {
            let req = if shutdown {
                Request::Shutdown
            } else if stats {
                Request::Stats
            } else {
                if let Some(command) = command {
                    eval.command = command;
                }
                Request::Eval(eval)
            };
            match request(&path, &req) {
                Ok(Response::Report { report, .. }) => print!("{report}"),
                Ok(Response::Error { id, error }) => {
                    eprintln!("jmake-serve: request {id} failed: {error}");
                    exit(1);
                }
                Ok(Response::Stats {
                    requests,
                    responses,
                    errors,
                }) => println!(
                    "requests={requests} responses={responses} errors={errors}"
                ),
                Ok(Response::ShuttingDown) => eprintln!("jmake-serve: server is draining"),
                Err(e) => {
                    eprintln!("jmake-serve: {}: {e}", path.display());
                    exit(1);
                }
            }
        }
    }
}
