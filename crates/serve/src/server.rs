//! The daemon: accepts JSONL requests over a Unix socket, batches them
//! into evaluation runs, and streams reports back.
//!
//! ## Architecture
//!
//! ```text
//! client ──connect──▶ reader thread ──push──▶ bounded queue ──pop──▶ eval workers
//!    ▲                                                                   │
//!    └────────────────────── response line (locked stream) ◀─────────────┘
//! ```
//!
//! - One reader thread per connection parses request lines and pushes
//!   evaluation jobs onto a **bounded queue**. A full queue blocks the
//!   reader — the client's socket fills and the sender stalls, which is
//!   the backpressure: the daemon never buffers unbounded work.
//! - A fixed pool of eval workers pops jobs and runs each through the
//!   same work-stealing driver `jmake-eval` uses, against **shared**
//!   config/object caches, so repeated portfolios start warm. Caches are
//!   host-side only, so a served report is byte-identical to a cold local
//!   run (the CI gate diffs them).
//! - [`Request::Shutdown`] acknowledges, stops accepting connections and
//!   new jobs, **drains** every queued job (each still gets its
//!   response), persists the disk tier when `--cache-dir` is set, then
//!   exits.
//! - Per-client counters (requests, responses, errors) answer
//!   [`Request::Stats`] and are logged when the connection closes.

use crate::protocol::{self, EvalRequest, Request, Response};
use jmake_bench::{build_context_with_driver, render_command};
use jmake_core::DriverOptions;
use jmake_faults::Faults;
use jmake_kbuild::{ConfigCache, DiskCache, ObjectCache, PreprocCache};
use jmake_synth::WorkloadProfile;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Unix socket path to listen on. A stale file from an unclean exit
    /// is removed before binding.
    pub socket: PathBuf,
    /// Concurrent evaluations (each internally runs its requested number
    /// of work-stealing driver workers).
    pub parallel: usize,
    /// Bounded-queue capacity; readers block when it is full.
    pub queue_capacity: usize,
    /// Persistent cache directory: pre-loaded at startup, persisted at
    /// shutdown (same format as `jmake-eval --cache-dir`).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            socket: PathBuf::from("jmake-serve.sock"),
            parallel: 2,
            queue_capacity: 8,
            cache_dir: None,
        }
    }
}

/// Per-connection counters, readable while the connection is live.
#[derive(Debug, Default)]
struct ClientStats {
    requests: AtomicU64,
    responses: AtomicU64,
    errors: AtomicU64,
}

/// One connected client: the write half (line-locked so concurrent eval
/// workers never interleave partial lines) plus its counters.
struct Client {
    id: u64,
    writer: Mutex<UnixStream>,
    stats: ClientStats,
}

impl Client {
    /// Write one response line and bump the matching counter. A client
    /// that hung up mid-evaluation is not an error worth more than a log
    /// line — the work itself stays valid (and cached).
    fn send(&self, response: &Response) {
        match response {
            Response::Error { .. } => self.stats.errors.fetch_add(1, Ordering::Relaxed),
            _ => self.stats.responses.fetch_add(1, Ordering::Relaxed),
        };
        let line = protocol::encode_response(response);
        let mut writer = self.writer.lock().expect("client writer poisoned");
        if writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            eprintln!("jmake-serve: client {}: response dropped (disconnected)", self.id);
        }
    }
}

/// One queued evaluation.
struct Job {
    client: Arc<Client>,
    eval: EvalRequest,
}

/// The bounded job queue. `push` blocks while full (backpressure),
/// `pop` blocks while empty; both wake up when draining starts, after
/// which pushes are refused and pops run the queue dry before `None`.
struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    space: Condvar,
    capacity: usize,
    draining: AtomicBool,
}

impl Queue {
    fn new(capacity: usize) -> Queue {
        Queue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
            draining: AtomicBool::new(false),
        }
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Enqueue, blocking while the queue is at capacity. `Err` when the
    /// server is draining and accepts no new work.
    fn push(&self, job: Job) -> Result<(), Job> {
        let mut jobs = self.jobs.lock().expect("job queue poisoned");
        while jobs.len() >= self.capacity {
            if self.is_draining() {
                return Err(job);
            }
            jobs = self.space.wait(jobs).expect("job queue poisoned");
        }
        if self.is_draining() {
            return Err(job);
        }
        jobs.push_back(job);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while empty. `None` only once draining *and*
    /// empty — queued jobs always run to completion.
    fn pop(&self) -> Option<Job> {
        let mut jobs = self.jobs.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = jobs.pop_front() {
                self.space.notify_one();
                return Some(job);
            }
            if self.is_draining() {
                return None;
            }
            jobs = self.ready.wait(jobs).expect("job queue poisoned");
        }
    }

    /// Refuse new work and wake every blocked reader and worker.
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.ready.notify_all();
        self.space.notify_all();
    }
}

/// The evaluation engine: shared caches plus the driver plumbing. One per
/// daemon; every request runs against the same caches, so repeated
/// portfolios answer from warm state (reports are byte-identical either
/// way — the caches are host-side only).
struct Engine {
    objects: Arc<ObjectCache>,
    configs: Arc<ConfigCache>,
    preproc: Arc<PreprocCache>,
}

impl Engine {
    fn new() -> Engine {
        Engine {
            objects: Arc::new(ObjectCache::new()),
            configs: Arc::new(ConfigCache::new()),
            preproc: Arc::new(PreprocCache::new()),
        }
    }

    /// Run one evaluation and render the requested report section —
    /// exactly the bytes `jmake-eval` would print for the same
    /// parameters. With `fix`, the remediation pass replays the run
    /// against the daemon's warm caches; its JSON report is prepended to
    /// the rendered section and FIX lines land in the tables, matching
    /// `jmake-eval --fix COMMAND` byte for byte (the fix report is
    /// host-time free, so warm caches never change the bytes).
    fn evaluate(&self, req: &EvalRequest) -> Result<String, String> {
        let profile = WorkloadProfile {
            commits: req.commits,
            seed: req.seed,
            ..WorkloadProfile::default()
        };
        let driver = DriverOptions {
            workers: req.workers,
            jmake: jmake_core::Options {
                use_allmodconfig: req.allmodconfig,
                use_coverage_configs: req.coverage,
                ..jmake_core::Options::default()
            },
            object_cache_handle: Some(Arc::clone(&self.objects)),
            config_cache_handle: Some(Arc::clone(&self.configs)),
            preproc_cache_handle: Some(Arc::clone(&self.preproc)),
            ..DriverOptions::default()
        };
        let mut ctx = build_context_with_driver(&profile, &driver);
        let mut out = String::new();
        if req.fix {
            let fctx = jmake_fix::FixContext {
                configs: Arc::clone(&self.configs),
                objects: Some(Arc::clone(&self.objects)),
                preproc: Some(Arc::clone(&self.preproc)),
                ..jmake_fix::FixContext::default()
            };
            let fix = jmake_fix::remediate_with(&ctx.workload.repo, &ctx.run, &fctx);
            jmake_fix::annotate_run(&mut ctx.run, &fix);
            out.push_str(&fix.to_json());
        }
        let rendered = render_command(&ctx, &req.command)
            .ok_or_else(|| format!("unknown command {:?}", req.command))?;
        out.push_str(&rendered);
        Ok(out)
    }
}

/// Run the daemon until a shutdown request drains it. Returns once every
/// queued evaluation has been answered and (with a cache dir) the caches
/// are persisted.
pub fn serve(opts: &ServerOptions) -> io::Result<()> {
    // A stale socket file from an unclean exit would fail the bind.
    let _ = std::fs::remove_file(&opts.socket);
    let listener = UnixListener::bind(&opts.socket)?;
    let engine = Arc::new(Engine::new());
    let disk = match &opts.cache_dir {
        Some(dir) => {
            let disk = DiskCache::open(dir)?;
            let s = disk.load(
                &engine.objects,
                &engine.configs,
                &engine.preproc,
                &Faults::disabled(),
            )?;
            eprintln!(
                "jmake-serve: loaded {} object / {} config / {} preproc entries from {} ({} quarantined)",
                s.objects_loaded,
                s.configs_loaded,
                s.preproc_loaded,
                disk.root().display(),
                s.entries_quarantined,
            );
            Some(disk)
        }
        None => None,
    };
    let queue = Arc::new(Queue::new(opts.queue_capacity));
    let workers: Vec<_> = (0..opts.parallel.max(1))
        .map(|_| {
            let queue = Arc::clone(&queue);
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                while let Some(job) = queue.pop() {
                    let response = match engine.evaluate(&job.eval) {
                        Ok(report) => Response::Report {
                            id: job.eval.id,
                            report,
                        },
                        Err(error) => Response::Error {
                            id: job.eval.id,
                            error,
                        },
                    };
                    job.client.send(&response);
                }
            })
        })
        .collect();

    eprintln!("jmake-serve: listening on {}", opts.socket.display());
    let mut next_client = 0u64;
    for stream in listener.incoming() {
        if queue.is_draining() {
            // Woken by the shutdown handler's self-connection.
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("jmake-serve: accept failed: {e}");
                continue;
            }
        };
        next_client += 1;
        let id = next_client;
        let queue = Arc::clone(&queue);
        let socket = opts.socket.clone();
        std::thread::spawn(move || {
            if let Err(e) = serve_client(stream, id, &queue, &socket) {
                eprintln!("jmake-serve: client {id}: {e}");
            }
        });
    }

    // Drain: workers finish every queued job, then see draining+empty.
    for worker in workers {
        let _ = worker.join();
    }
    if let Some(disk) = &disk {
        match disk.store(&engine.objects, &engine.configs, &engine.preproc) {
            Ok(s) => eprintln!(
                "jmake-serve: persisted {} new object / {} new config / {} new preproc entries under {}",
                s.objects_stored,
                s.configs_stored,
                s.preproc_stored,
                disk.root().display(),
            ),
            Err(e) => eprintln!(
                "jmake-serve: WARNING: cannot persist cache dir {}: {e}",
                disk.root().display()
            ),
        }
    }
    let _ = std::fs::remove_file(&opts.socket);
    eprintln!("jmake-serve: drained and shut down");
    Ok(())
}

/// Read request lines from one connection until EOF or shutdown.
fn serve_client(
    stream: UnixStream,
    id: u64,
    queue: &Arc<Queue>,
    socket: &std::path::Path,
) -> io::Result<()> {
    let client = Arc::new(Client {
        id,
        writer: Mutex::new(stream.try_clone()?),
        stats: ClientStats::default(),
    });
    for line in BufReader::new(stream).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        client.stats.requests.fetch_add(1, Ordering::Relaxed);
        match protocol::decode_request(&line) {
            Err(e) => client.send(&Response::Error {
                id: 0,
                error: format!("bad request: {e}"),
            }),
            Ok(Request::Stats) => client.send(&Response::Stats {
                requests: client.stats.requests.load(Ordering::Relaxed),
                responses: client.stats.responses.load(Ordering::Relaxed),
                errors: client.stats.errors.load(Ordering::Relaxed),
            }),
            Ok(Request::Shutdown) => {
                client.send(&Response::ShuttingDown);
                queue.begin_drain();
                // The accept loop is blocked in accept(2); a throwaway
                // connection wakes it so it can observe the drain flag.
                let _ = UnixStream::connect(socket);
                break;
            }
            Ok(Request::Eval(eval)) => {
                let request_id = eval.id;
                if queue
                    .push(Job {
                        client: Arc::clone(&client),
                        eval,
                    })
                    .is_err()
                {
                    client.send(&Response::Error {
                        id: request_id,
                        error: "server is draining and accepts no new work".to_string(),
                    });
                }
            }
        }
    }
    eprintln!(
        "jmake-serve: client {id} disconnected: {} request(s), {} response(s), {} error(s)",
        client.stats.requests.load(Ordering::Relaxed),
        client.stats.responses.load(Ordering::Relaxed),
        client.stats.errors.load(Ordering::Relaxed),
    );
    Ok(())
}

/// Connect to a running daemon, send one request, return its response.
/// One request per connection — the CLI's mode of use; the protocol
/// itself allows many per connection.
pub fn request(socket: &std::path::Path, request: &Request) -> io::Result<Response> {
    let mut stream = UnixStream::connect(socket)?;
    stream.write_all(protocol::encode_request(request).as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    if line.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection without responding",
        ));
    }
    protocol::decode_response(&line).map_err(|e| {
        io::Error::new(io::ErrorKind::InvalidData, format!("malformed response: {e}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn temp_socket(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("jmake-serve-test-{tag}-{}.sock", std::process::id()))
    }

    fn wait_for_socket(path: &std::path::Path) {
        for _ in 0..200 {
            if UnixStream::connect(path).is_ok() {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        panic!("server never came up on {}", path.display());
    }

    fn eval_request(id: u64, commits: usize, command: &str) -> EvalRequest {
        EvalRequest {
            id,
            commits,
            workers: 2,
            command: command.to_string(),
            ..EvalRequest::default()
        }
    }

    #[test]
    fn serves_byte_identical_reports_and_drains_on_shutdown() {
        let socket = temp_socket("e2e");
        let opts = ServerOptions {
            socket: socket.clone(),
            parallel: 2,
            queue_capacity: 4,
            cache_dir: None,
        };
        let server = std::thread::spawn(move || serve(&opts));
        wait_for_socket(&socket);

        // What jmake-eval would print locally for the same parameters.
        let req = eval_request(1, 10, "summary");
        let profile = WorkloadProfile {
            commits: req.commits,
            seed: req.seed,
            ..WorkloadProfile::default()
        };
        let driver = DriverOptions {
            workers: 2,
            ..DriverOptions::default()
        };
        let expected =
            render_command(&build_context_with_driver(&profile, &driver), "summary").unwrap();

        // Cold request, then a warm repeat: both byte-identical to local.
        for round in 0..2 {
            let resp = request(&socket, &Request::Eval(req.clone())).unwrap();
            assert_eq!(
                resp,
                Response::Report {
                    id: 1,
                    report: expected.clone()
                },
                "round {round}"
            );
        }

        // An unknown command answers an error, not a hang.
        let resp = request(&socket, &Request::Eval(eval_request(9, 10, "tableX"))).unwrap();
        assert!(matches!(resp, Response::Error { id: 9, .. }), "{resp:?}");

        // A fix request serves remediation JSON + annotated section,
        // byte-identical to `jmake-eval --fix summary` run locally.
        let mut fix_req = eval_request(4, 10, "summary");
        fix_req.fix = true;
        let mut local = build_context_with_driver(&profile, &driver);
        let fix = jmake_fix::remediate(&local.workload.repo, &local.run);
        jmake_fix::annotate_run(&mut local.run, &fix);
        let expected_fix = format!(
            "{}{}",
            fix.to_json(),
            render_command(&local, "summary").unwrap()
        );
        let resp = request(&socket, &Request::Eval(fix_req)).unwrap();
        assert_eq!(
            resp,
            Response::Report {
                id: 4,
                report: expected_fix
            },
            "served --fix output must match the local pass byte for byte"
        );

        // Per-client stats over one multi-request connection.
        let mut stream = UnixStream::connect(&socket).unwrap();
        for line in [
            protocol::encode_request(&Request::Eval(eval_request(2, 10, "table1"))),
            protocol::encode_request(&Request::Eval(eval_request(3, 10, "table1"))),
        ] {
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
        }
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reports = 0;
        for _ in 0..2 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            match protocol::decode_response(&line).unwrap() {
                Response::Report { id, .. } => {
                    assert!(id == 2 || id == 3);
                    reports += 1;
                }
                other => panic!("expected reports, got {other:?}"),
            }
        }
        assert_eq!(reports, 2);
        stream
            .write_all(format!("{}\n", protocol::encode_request(&Request::Stats)).as_bytes())
            .unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match protocol::decode_response(&line).unwrap() {
            Response::Stats {
                requests,
                responses,
                errors,
            } => {
                assert_eq!((requests, responses, errors), (3, 2, 0));
            }
            other => panic!("expected stats, got {other:?}"),
        }
        drop(reader);

        // Shutdown acknowledges, drains, and the server thread returns.
        let resp = request(&socket, &Request::Shutdown).unwrap();
        assert_eq!(resp, Response::ShuttingDown);
        server.join().unwrap().unwrap();
        assert!(!socket.exists(), "socket file removed on clean shutdown");
    }

    #[test]
    fn draining_server_refuses_new_work_but_finishes_queued_jobs() {
        let queue = Queue::new(2);
        let client = Arc::new(Client {
            id: 1,
            writer: Mutex::new({
                // A pair gives send() somewhere to write; the far end is
                // dropped, which Client::send tolerates.
                let (a, _b) = UnixStream::pair().unwrap();
                a
            }),
            stats: ClientStats::default(),
        });
        queue
            .push(Job {
                client: Arc::clone(&client),
                eval: EvalRequest::default(),
            })
            .unwrap_or_else(|_| panic!("push before drain"));
        queue.begin_drain();
        assert!(queue
            .push(Job {
                client: Arc::clone(&client),
                eval: EvalRequest::default(),
            })
            .is_err());
        // The queued job still drains.
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_none());
    }
}
