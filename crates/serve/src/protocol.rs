//! The `jmake-serve` wire protocol: JSONL over a Unix domain socket.
//!
//! One JSON object per line in each direction. The encoder reuses
//! [`jmake_trace::jsonl::escape`] and the decoder
//! [`jmake_trace::jsonl::JsonParser`] — the same primitives the trace-log
//! format is built on — so string framing cannot drift between the two
//! protocols (surrogate-pair handling included; report text is arbitrary).
//!
//! Requests:
//!
//! ```text
//! {"id":1,"commits":40,"seed":3735928559,"workers":4,
//!  "allmodconfig":false,"coverage":false,"fix":false,"command":"summary"}
//! {"stats":true}
//! {"shutdown":true}
//! ```
//!
//! Responses:
//!
//! ```text
//! {"ok":true,"id":1,"report":"…"}          evaluation succeeded
//! {"ok":false,"id":1,"error":"…"}          evaluation failed / bad request
//! {"ok":true,"stats":true,"requests":3,"responses":2,"errors":0}
//! {"ok":true,"shutdown":true}              drain acknowledged
//! ```
//!
//! Unknown keys are rejected (strict, like the trace parser), so a typo'd
//! field fails loudly instead of silently running a default evaluation.

use jmake_synth::WorkloadProfile;
use jmake_trace::jsonl::{escape, JsonParser};

/// One evaluation to run: the workload coordinates plus the report
/// section wanted. Field defaults mirror `jmake-eval`'s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Window size (commits in the evaluated range).
    pub commits: usize,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads inside the evaluation's work-stealing driver.
    pub workers: usize,
    /// Also try allmodconfig (the paper's Table IV remedy).
    pub allmodconfig: bool,
    /// Also try coverage-maximizing generated configs.
    pub coverage: bool,
    /// Also run the `jmake-fix` remediation pass: the remediation report
    /// (JSON) is prepended to the rendered section and per-file FIX lines
    /// appear in the tables — byte-identical to `jmake-eval --fix`.
    pub fix: bool,
    /// Report section (`all`, `summary`, `table1`…`fig6`).
    pub command: String,
}

impl Default for EvalRequest {
    fn default() -> Self {
        let profile = WorkloadProfile::default();
        EvalRequest {
            id: 0,
            commits: profile.commits,
            seed: profile.seed,
            workers: 4,
            allmodconfig: false,
            coverage: false,
            fix: false,
            command: "all".to_string(),
        }
    }
}

/// One client→server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run an evaluation and send the rendered report back.
    Eval(EvalRequest),
    /// Report this connection's request/response counters.
    Stats,
    /// Stop accepting work, drain queued evaluations, exit.
    Shutdown,
}

/// One server→client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The rendered report for request `id` — byte-identical to what
    /// `jmake-eval` prints for the same parameters.
    Report {
        /// Echoed correlation id.
        id: u64,
        /// The report text.
        report: String,
    },
    /// The request failed; `error` says why.
    Error {
        /// Echoed correlation id (0 when the request had none).
        id: u64,
        /// Human-readable reason.
        error: String,
    },
    /// Per-connection counters, answering [`Request::Stats`].
    Stats {
        /// Requests received on this connection.
        requests: u64,
        /// Successful responses sent.
        responses: u64,
        /// Error responses sent.
        errors: u64,
    },
    /// The server acknowledged [`Request::Shutdown`] and is draining.
    ShuttingDown,
}

/// Serialize a request as one JSON line (no trailing newline).
pub fn encode_request(request: &Request) -> String {
    match request {
        Request::Eval(r) => format!(
            "{{\"id\":{},\"commits\":{},\"seed\":{},\"workers\":{},\"allmodconfig\":{},\"coverage\":{},\"fix\":{},\"command\":\"{}\"}}",
            r.id, r.commits, r.seed, r.workers, r.allmodconfig, r.coverage, r.fix, escape(&r.command),
        ),
        Request::Stats => "{\"stats\":true}".to_string(),
        Request::Shutdown => "{\"shutdown\":true}".to_string(),
    }
}

/// Parse one request line. Strict about keys; evaluation fields are all
/// optional and default to [`EvalRequest::default`].
pub fn decode_request(line: &str) -> Result<Request, String> {
    let mut p = JsonParser::new(line.trim());
    let mut eval = EvalRequest::default();
    let mut stats = false;
    let mut shutdown = false;
    let mut saw_eval_field = false;
    p.expect('{')?;
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        match key.as_str() {
            "id" => eval.id = p.number()?,
            "commits" => {
                eval.commits = usize::try_from(p.number()?).map_err(|_| "commits out of range")?;
                saw_eval_field = true;
            }
            "seed" => {
                eval.seed = p.number()?;
                saw_eval_field = true;
            }
            "workers" => {
                eval.workers = usize::try_from(p.number()?)
                    .ok()
                    .filter(|w| *w > 0)
                    .ok_or("workers must be a positive integer")?;
                saw_eval_field = true;
            }
            "allmodconfig" => {
                eval.allmodconfig = p.boolean()?;
                saw_eval_field = true;
            }
            "coverage" => {
                eval.coverage = p.boolean()?;
                saw_eval_field = true;
            }
            "fix" => {
                eval.fix = p.boolean()?;
                saw_eval_field = true;
            }
            "command" => {
                eval.command = p.string()?;
                saw_eval_field = true;
            }
            "stats" => stats = p.boolean()?,
            "shutdown" => shutdown = p.boolean()?,
            other => return Err(format!("unknown request field {other:?}")),
        }
        p.skip_ws();
        if !p.eat(',') {
            p.expect('}')?;
            break;
        }
    }
    p.skip_ws();
    if !p.at_end() {
        return Err("trailing content after request object".to_string());
    }
    match (shutdown, stats) {
        (true, _) if saw_eval_field => Err("shutdown request cannot carry evaluation fields".into()),
        (_, true) if saw_eval_field => Err("stats request cannot carry evaluation fields".into()),
        (true, true) => Err("request cannot be both stats and shutdown".into()),
        (true, false) => Ok(Request::Shutdown),
        (false, true) => Ok(Request::Stats),
        (false, false) => Ok(Request::Eval(eval)),
    }
}

/// Serialize a response as one JSON line (no trailing newline).
pub fn encode_response(response: &Response) -> String {
    match response {
        Response::Report { id, report } => {
            format!("{{\"ok\":true,\"id\":{id},\"report\":\"{}\"}}", escape(report))
        }
        Response::Error { id, error } => {
            format!("{{\"ok\":false,\"id\":{id},\"error\":\"{}\"}}", escape(error))
        }
        Response::Stats {
            requests,
            responses,
            errors,
        } => format!(
            "{{\"ok\":true,\"stats\":true,\"requests\":{requests},\"responses\":{responses},\"errors\":{errors}}}"
        ),
        Response::ShuttingDown => "{\"ok\":true,\"shutdown\":true}".to_string(),
    }
}

/// Parse one response line.
pub fn decode_response(line: &str) -> Result<Response, String> {
    let mut p = JsonParser::new(line.trim());
    let mut ok = None;
    let mut id = 0;
    let mut report = None;
    let mut error = None;
    let mut stats = false;
    let mut shutdown = false;
    let (mut requests, mut responses, mut errors) = (0, 0, 0);
    p.expect('{')?;
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        match key.as_str() {
            "ok" => ok = Some(p.boolean()?),
            "id" => id = p.number()?,
            "report" => report = Some(p.string()?),
            "error" => error = Some(p.string()?),
            "stats" => stats = p.boolean()?,
            "shutdown" => shutdown = p.boolean()?,
            "requests" => requests = p.number()?,
            "responses" => responses = p.number()?,
            "errors" => errors = p.number()?,
            other => return Err(format!("unknown response field {other:?}")),
        }
        p.skip_ws();
        if !p.eat(',') {
            p.expect('}')?;
            break;
        }
    }
    p.skip_ws();
    if !p.at_end() {
        return Err("trailing content after response object".to_string());
    }
    match (ok, report, error) {
        (Some(true), _, _) if shutdown => Ok(Response::ShuttingDown),
        (Some(true), _, _) if stats => Ok(Response::Stats {
            requests,
            responses,
            errors,
        }),
        (Some(true), Some(report), None) => Ok(Response::Report { id, report }),
        (Some(false), None, Some(error)) => Ok(Response::Error { id, error }),
        _ => Err("response shape does not match any known variant".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Eval(EvalRequest {
                id: 7,
                commits: 123,
                seed: 0xdead_beef,
                workers: 8,
                allmodconfig: true,
                coverage: false,
                fix: true,
                command: "summary".to_string(),
            }),
            Request::Eval(EvalRequest::default()),
            Request::Stats,
            Request::Shutdown,
        ];
        for req in cases {
            let line = encode_request(&req);
            assert_eq!(decode_request(&line), Ok(req.clone()), "{line}");
        }
    }

    #[test]
    fn responses_round_trip_including_awkward_report_text() {
        let cases = [
            Response::Report {
                id: 3,
                report: "Table I\nline \"two\"\t😀 \u{10FFFF}\n".to_string(),
            },
            Response::Error {
                id: 0,
                error: "unknown command \"tableX\"".to_string(),
            },
            Response::Stats {
                requests: 5,
                responses: 4,
                errors: 1,
            },
            Response::ShuttingDown,
        ];
        for resp in cases {
            let line = encode_response(&resp);
            assert!(!line.contains('\n'), "framing must stay one line: {line}");
            assert_eq!(decode_response(&line), Ok(resp.clone()), "{line}");
        }
    }

    #[test]
    fn defaults_match_jmake_eval() {
        let Request::Eval(r) = decode_request("{}").unwrap() else {
            panic!("bare object is an eval request");
        };
        let profile = WorkloadProfile::default();
        assert_eq!(r.commits, profile.commits);
        assert_eq!(r.seed, profile.seed);
        assert_eq!(r.workers, 4);
        assert!(!r.fix, "remediation is opt-in, like jmake-eval --fix");
        assert_eq!(r.command, "all");
    }

    #[test]
    fn strict_about_unknown_fields_and_mixed_kinds() {
        assert!(decode_request("{\"comits\":5}").is_err());
        assert!(decode_request("{\"shutdown\":true,\"commits\":5}").is_err());
        assert!(decode_request("{\"stats\":true,\"shutdown\":true}").is_err());
        assert!(decode_response("{\"ok\":true}").is_err());
    }
}
