use super::*;
use jmake_core::{run_evaluation, DriverOptions, PatchOutcome};
use jmake_vcs::{CommitId, Repo};

/// Base tree shared by the fixtures: a Kconfig where `TINY` is settable
/// but excluded by allyesconfig (`depends on !FULL`), a tristate driver
/// symbol, and an always-built library file.
fn base_tree() -> SourceTree {
    let mut tree = SourceTree::new();
    tree.insert(
        "Kconfig",
        "config FULL\n\tbool \"full\"\n\tdefault y\n\
         config TINY\n\tbool \"tiny\"\n\tdepends on !FULL\n\
         config DRV\n\ttristate \"drv\"\n\tdefault y\n",
    );
    tree.insert("arch/x86_64/Kconfig", "config X86_64\n\tdef_bool y\n");
    tree.insert("Makefile", "obj-y += lib/\n");
    tree.insert(
        "lib/Makefile",
        "obj-y += t.o\nobj-$(CONFIG_DRV) += m.o\n",
    );
    tree.insert("lib/t.c", "int base;\n");
    tree.insert("lib/m.c", "int drv_base;\n");
    tree
}

fn one_commit(path: &str, new_content: &str) -> (Repo, Vec<CommitId>) {
    let tree = base_tree();
    let mut repo = Repo::new();
    let base = repo.commit(&[], "seed", "seed", &tree);
    let mut t2 = tree.clone();
    t2.insert(path, new_content);
    let c1 = repo.commit(&[base], "janitor", "edit", &t2);
    (repo, vec![c1])
}

fn run_on(repo: &Repo, commits: &[CommitId], workers: usize) -> EvaluationRun {
    let opts = DriverOptions {
        workers,
        ..DriverOptions::default()
    };
    run_evaluation(repo, commits, &opts)
}

fn remediation_for(report: &FixReport, line: u32) -> &Remediation {
    report
        .remediations
        .iter()
        .find(|r| r.line == line)
        .unwrap_or_else(|| panic!("no remediation for line {line}: {report:?}"))
}

#[test]
fn unsettable_guard_gets_verified_minimal_delta() {
    let (repo, commits) = one_commit(
        "lib/t.c",
        "int base;\n#ifdef CONFIG_TINY\nint tiny_path;\n#endif\n",
    );
    let run = run_on(&repo, &commits, 1);
    assert_eq!(run.stats.checked, 1);
    let report = remediate(&repo, &run);
    assert_eq!(report.patches, 1);
    assert!(report.missed >= 1);
    let r = remediation_for(&report, 2);
    assert_eq!(r.cause, "unsettable-under-allyes");
    assert!(r.agrees, "static and dynamic must agree: {r:?}");
    let Remedy::Delta { suggestion, flips } = &r.remedy else {
        panic!("expected a verified delta, got {:?}", r.remedy);
    };
    assert!(
        suggestion.contains("CONFIG_TINY=y") && suggestion.contains("CONFIG_FULL=n"),
        "unexpected suggestion {suggestion}"
    );
    assert_eq!(*flips, 2, "minimal delta flips exactly FULL and TINY");
    assert_eq!(report.deltas_emitted, 1);
    assert_eq!(report.deltas_verified, 1);
    assert_eq!(report.verification_failures, 0);
    assert!(report.is_clean(), "clean run expected: {report:?}");
}

#[test]
fn undeclared_guard_is_never_defined_and_unfixable() {
    let (repo, commits) = one_commit(
        "lib/t.c",
        "int base;\n#ifdef CONFIG_GHOST\nint ghost_path;\n#endif\n",
    );
    let run = run_on(&repo, &commits, 1);
    let report = remediate(&repo, &run);
    let r = remediation_for(&report, 2);
    assert_eq!(r.cause, "never-defined:GHOST");
    assert!(r.agrees, "{r:?}");
    assert!(
        matches!(&r.remedy, Remedy::Unfixable { reason } if reason.contains("GHOST")),
        "expected unfixable with the symbol named, got {:?}",
        r.remedy
    );
    assert_eq!(report.deltas_emitted, 0);
    assert!(report.is_clean());
}

#[test]
fn if_zero_is_root_caused_from_the_condition() {
    let (repo, commits) = one_commit("lib/t.c", "int base;\n#if 0\nint dead_path;\n#endif\n");
    let run = run_on(&repo, &commits, 1);
    let report = remediate(&repo, &run);
    let r = remediation_for(&report, 2);
    assert_eq!(r.cause, "if-0");
    assert!(r.agrees, "{r:?}");
    assert!(matches!(&r.remedy, Remedy::Unfixable { .. }));
    assert!(report.is_clean());
}

#[test]
fn module_guard_gets_verified_allmod_environment() {
    let (repo, commits) = one_commit(
        "lib/m.c",
        "int drv_base;\n#ifdef MODULE\nint mod_path;\n#endif\n",
    );
    let run = run_on(&repo, &commits, 1);
    let report = remediate(&repo, &run);
    let r = remediation_for(&report, 2);
    assert_eq!(r.cause, "ifdef-module");
    assert!(r.agrees, "{r:?}");
    assert_eq!(
        r.remedy,
        Remedy::Environment {
            target: "x86_64/allmodconfig".to_string()
        },
        "allmodconfig must be verified as the remedy"
    );
    assert!(report.is_clean());
}

#[test]
fn forged_dynamic_label_is_flagged_as_disagreement() {
    let (repo, commits) = one_commit(
        "lib/t.c",
        "int base;\n#ifdef CONFIG_TINY\nint tiny_path;\n#endif\n",
    );
    let mut run = run_on(&repo, &commits, 1);
    let report = match &mut run.results[0].outcome {
        PatchOutcome::Checked(r) => r,
        other => panic!("expected checked outcome, got {other:?}"),
    };
    let file = report
        .files
        .iter_mut()
        .find(|f| f.path == "lib/t.c")
        .expect("t.c report");
    let unc = file
        .uncovered
        .iter_mut()
        .find(|u| u.token.line == 2)
        .expect("missed guard token");
    unc.reason = UncoveredReason::IfZero;

    let fix = remediate(&repo, &run);
    assert!(!fix.is_clean());
    let d = &fix.disagreements[0];
    assert_eq!(d.file, "lib/t.c");
    assert_eq!(d.line, 2);
    assert_eq!(d.static_cause, "unsettable-under-allyes");
    assert!(fix.to_json().contains("\"clean\": false"));
}

#[test]
fn report_is_deterministic_across_replays_and_workers() {
    let (repo, commits) = one_commit(
        "lib/t.c",
        "int base;\n#ifdef CONFIG_TINY\nint tiny_path;\n#endif\n",
    );
    let run1 = run_on(&repo, &commits, 1);
    let run8 = run_on(&repo, &commits, 8);
    let a = remediate(&repo, &run1).to_json();
    let b = remediate(&repo, &run1).to_json();
    let c = remediate(&repo, &run8).to_json();
    assert_eq!(a, b, "same run must replay identically");
    assert_eq!(a, c, "worker count must not leak into the fix report");
    // Warm shared caches must not change the bytes either.
    let ctx = FixContext {
        objects: Some(Arc::new(ObjectCache::new())),
        preproc: Some(Arc::new(PreprocCache::new())),
        ..FixContext::default()
    };
    let warm1 = remediate_with(&repo, &run1, &ctx).to_json();
    let warm2 = remediate_with(&repo, &run1, &ctx).to_json();
    assert_eq!(a, warm1, "cache modes must not leak into the fix report");
    assert_eq!(warm1, warm2, "cache temperature must not leak either");
}

#[test]
fn annotate_run_grafts_rendered_lines_into_file_reports() {
    let (repo, commits) = one_commit(
        "lib/t.c",
        "int base;\n#ifdef CONFIG_TINY\nint tiny_path;\n#endif\n",
    );
    let mut run = run_on(&repo, &commits, 1);
    let baseline = run.results[0].report().expect("report").to_json();
    assert!(
        !baseline.contains("remediations"),
        "fix-off reports must not mention remediations"
    );
    let fix = remediate(&repo, &run);
    annotate_run(&mut run, &fix);
    let annotated = run.results[0].report().expect("report");
    let file = annotated
        .files
        .iter()
        .find(|f| f.path == "lib/t.c")
        .expect("t.c report");
    assert!(
        file.remediations
            .iter()
            .any(|l| l.starts_with("line 2 — set ") && l.ends_with("(verified)")),
        "expected a rendered verified suggestion, got {:?}",
        file.remediations
    );
    assert!(annotated.to_json().contains("\"remediations\""));
}

#[test]
fn unchecked_commits_are_skipped_with_a_note() {
    let (repo, commits) = one_commit("lib/t.c", "int base;\nint more;\n");
    let mut run = run_on(&repo, &commits, 1);
    run.results[0].outcome = PatchOutcome::CheckoutFailed("gone".to_string());
    let fix = remediate(&repo, &run);
    assert_eq!(fix.patches, 0);
    assert_eq!(fix.skipped.len(), 1);
    assert!(fix.skipped[0].contains("gone"));
    assert!(fix.is_clean());
}
