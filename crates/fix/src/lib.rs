//! `jmake-fix`: static root-cause analysis and *verified* configuration
//! remediation for the lines JMake could not certify.
//!
//! The mutation pipeline ([`jmake_core::check`]) tells a janitor *that* a
//! changed line escaped the compiler and labels it with the paper's
//! Table IV reason ([`jmake_core::classify`]). This crate answers the two
//! follow-up questions:
//!
//! 1. **Why, provably?** For every missed line the remediator derives the
//!    line's *presence condition* — the `#if` stack (with the Kbuild
//!    `MODULE` substitution) conjoined with the file's Kbuild guard chain
//!    and the Kconfig constraints — via [`jmake_reach`], and root-causes
//!    the miss into a static taxonomy ([`StaticCause`]) *from the
//!    condition alone*. The static verdict is cross-checked against the
//!    dynamic Table IV label; a provable clash is surfaced as a
//!    [`Disagreement`], exactly like `--cross-check` discrepancies.
//!
//! 2. **What should I flip?** When the reachability analyzer holds a
//!    solver witness for the line, the remediator minimizes it over
//!    [`jmake_kconfig::KconfigModel::minimize_delta`] into the smallest
//!    set of symbol flips against `allyesconfig` (fewest flips;
//!    deterministic name-order tie-breaking) and renders it as a
//!    `CONFIG_FOO=m`-style suggestion. **Every emitted delta is
//!    verified**: the driver re-runs that single (file × arch) trial —
//!    re-mutate, `make file.i` under the synthesized config, scan for the
//!    token, `make file.o` pristine — before the suggestion may appear in
//!    a report. Deltas that fail re-verification are downgraded to
//!    [`Remedy::Unfixable`] with the failure reason; conjunctions the
//!    solver proves hopeless carry the solver's proof and (when one
//!    exists) a locally-minimal unsatisfiable core.
//!
//! The pass is a deterministic post-run replay, the same shape as
//! [`jmake_core::crosscheck`]: commits in run order, files and tokens in
//! report order, no wall-clock in the JSON. Running it does not perturb
//! the evaluation — with `--fix` off, reports are byte-identical to a
//! build without this crate; with `--fix` on, the remediation output is
//! identical across worker counts, cache modes, and disk-tier
//! temperature.

#![deny(missing_docs)]

use jmake_core::{
    arches_used, line_shapes, mutate, token_class, token_region_line, EvaluationRun, FileReport,
    LineShape, MutationKind, MutationToken, UncoveredReason,
};
use jmake_diff::{ChangedLine, ChangedLines};
use jmake_kbuild::{BuildEngine, ConfigCache, ConfigKind, ObjectCache, PreprocCache, SourceTree};
use jmake_kconfig::Tristate;
use jmake_reach::{Reach, ReachClass, ReachEnv, TreeReach, Witness};
use jmake_trace::{Stage, Tracer};
use jmake_vcs::Repo;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// The static root-cause taxonomy, derived from the presence condition
/// alone (paper Table IV, restated over proofs instead of guard shapes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaticCause {
    /// The `#if` stack is constant-false (`#if 0` and friends).
    IfZero,
    /// The condition requires the `MODULE` macro, which no built-in
    /// compilation defines (`allmodconfig` territory).
    IfdefModule,
    /// The condition requires a symbol declared nowhere in Kconfig.
    NeverDefined(String),
    /// Satisfiable, but not under `allyesconfig` — the delta-synthesis
    /// case.
    UnsettableUnderAllyes,
    /// The file lives under `arch/<a>/` for an architecture the
    /// classifying environment does not cover.
    ArchGated(String),
    /// Statically dead with a solver or Kbuild proof (dead symbol,
    /// choice conflict, never-built translation unit, …).
    DeadByProof(String),
    /// No definite static claim (ambiguous token region, analyzer
    /// bounds, or a statically allyes-reachable miss, which is
    /// `--cross-check`'s department).
    Unclassified,
}

impl StaticCause {
    /// Stable report tag.
    pub fn label(&self) -> String {
        match self {
            StaticCause::IfZero => "if-0".to_string(),
            StaticCause::IfdefModule => "ifdef-module".to_string(),
            StaticCause::NeverDefined(s) => format!("never-defined:{s}"),
            StaticCause::UnsettableUnderAllyes => "unsettable-under-allyes".to_string(),
            StaticCause::ArchGated(a) => format!("arch-gated:{a}"),
            StaticCause::DeadByProof(p) => format!("dead-by-proof:{p}"),
            StaticCause::Unclassified => "unclassified".to_string(),
        }
    }

    /// Can this static claim coexist with the dynamic Table IV label?
    ///
    /// Each definite static cause lists the dynamic rows it legitimately
    /// co-occurs with; the permissive dynamic rows (`Unknown`,
    /// `UnusedMacro`, `IfdefAndElse`) never clash because they make no
    /// claim about the guard the static side reasoned over. Anything
    /// outside the listed sets is a provable taxonomy clash and becomes a
    /// [`Disagreement`].
    pub fn compatible_with(&self, dynamic: UncoveredReason) -> bool {
        use UncoveredReason as R;
        if matches!(dynamic, R::Unknown | R::UnusedMacro | R::IfdefAndElse) {
            return true;
        }
        match self {
            StaticCause::IfZero => dynamic == R::IfZero,
            StaticCause::IfdefModule => dynamic == R::IfdefModule,
            StaticCause::NeverDefined(_) => dynamic == R::IfdefNeverSetInKernel,
            StaticCause::UnsettableUnderAllyes => matches!(
                dynamic,
                R::IfdefNotSetByAllyesconfig | R::IfndefOrElse | R::IfdefNeverSetInKernel
            ),
            // Kbuild-gate and solver proofs have no dynamic counterpart
            // row; the dynamic side reads guards only.
            StaticCause::DeadByProof(_) | StaticCause::ArchGated(_) | StaticCause::Unclassified => {
                true
            }
        }
    }
}

/// The remediation attached to one missed line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Remedy {
    /// A minimal, *verified* config delta against `allyesconfig`.
    Delta {
        /// `CONFIG_FOO=m CONFIG_BAR=n`-style rendering of the flips.
        suggestion: String,
        /// Number of symbols flipped.
        flips: usize,
    },
    /// A whole-environment switch (e.g. `allmodconfig`, another arch's
    /// `allyesconfig`), verified by re-running the trial under it.
    Environment {
        /// `arch/kind` description of the verified environment.
        target: String,
    },
    /// No verified remedy exists; the reason carries the proof or the
    /// verification failure.
    Unfixable {
        /// Why nothing could be (or needed to be) synthesized.
        reason: String,
    },
}

impl fmt::Display for Remedy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Remedy::Delta { suggestion, .. } => write!(f, "set {suggestion} (verified)"),
            Remedy::Environment { target } => write!(f, "build with {target} (verified)"),
            Remedy::Unfixable { reason } => write!(f, "unfixable: {reason}"),
        }
    }
}

/// One missed line's full remediation record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Remediation {
    /// Commit whose patch missed the line.
    pub commit: String,
    /// File the token lives in.
    pub file: String,
    /// 1-based line of the mutation token.
    pub line: u32,
    /// Architecture whose model/configuration the static side used.
    pub arch: String,
    /// Static root cause ([`StaticCause::label`]).
    pub cause: String,
    /// The dynamic Table IV label the pipeline recorded.
    pub dynamic: String,
    /// Whether the static and dynamic verdicts are compatible.
    pub agrees: bool,
    /// The verified remedy (or the reason there is none).
    pub remedy: Remedy,
}

impl Remediation {
    /// The per-file report line grafted into
    /// [`jmake_core::FileReport::remediations`].
    pub fn render(&self) -> String {
        format!("line {} — {}", self.line, self.remedy)
    }
}

/// A provable static-vs-dynamic taxonomy clash, surfaced exactly like a
/// `--cross-check` discrepancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Disagreement {
    /// Commit whose patch exposed the clash.
    pub commit: String,
    /// File the token lives in.
    pub file: String,
    /// 1-based line of the mutation token.
    pub line: u32,
    /// The static claim ([`StaticCause::label`]).
    pub static_cause: String,
    /// The dynamic Table IV label.
    pub dynamic: String,
}

/// The outcome of the remediation pass over one [`EvaluationRun`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FixReport {
    /// Commits examined (checked patches only).
    pub patches: usize,
    /// File reports examined.
    pub files: usize,
    /// Missed (uncovered) tokens examined.
    pub missed: usize,
    /// Config deltas emitted — every one verified by a driver re-run.
    pub deltas_emitted: usize,
    /// Deltas that passed verification (equals `deltas_emitted` by
    /// construction: failures are downgraded, never emitted).
    pub deltas_verified: usize,
    /// Synthesized deltas that *failed* the verification re-run and were
    /// downgraded to [`Remedy::Unfixable`].
    pub verification_failures: usize,
    /// Missed lines with no verified remedy.
    pub unfixable: usize,
    /// Simulated build time the verification re-runs charged (config
    /// solving, preprocessing, compiling). Cache modes and worker counts
    /// do not perturb it — hits charge the clock what a live run would —
    /// so it participates in the byte-identity contract.
    pub virtual_us: u64,
    /// Deterministic notes about commits/files the pass could not replay.
    pub skipped: Vec<String>,
    /// Every provable static-vs-dynamic clash, in run order.
    pub disagreements: Vec<Disagreement>,
    /// One record per missed token, in run order.
    pub remediations: Vec<Remediation>,
}

impl FixReport {
    /// True when no taxonomy clash was found and every emitted delta was
    /// verified.
    pub fn is_clean(&self) -> bool {
        self.disagreements.is_empty() && self.deltas_emitted == self.deltas_verified
    }

    /// Deterministic JSON rendering — no wall-clock; byte-identical
    /// across worker counts, cache modes, and disk-tier temperature.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"clean\": {},\n  \"patches\": {},\n  \"files\": {},\n  \"missed\": {},\n  \"deltas_emitted\": {},\n  \"deltas_verified\": {},\n  \"verification_failures\": {},\n  \"unfixable\": {},\n",
            self.is_clean(),
            self.patches,
            self.files,
            self.missed,
            self.deltas_emitted,
            self.deltas_verified,
            self.verification_failures,
            self.unfixable
        ));
        out.push_str(&format!("  \"virtual_us\": {},\n", self.virtual_us));
        out.push_str("  \"skipped\": [");
        for (i, s) in self.skipped.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(s));
        }
        out.push_str("],\n  \"disagreements\": [");
        for (i, d) in self.disagreements.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push_str(&format!(
                "{{\"commit\": {}, \"file\": {}, \"line\": {}, \"static\": {}, \"dynamic\": {}}}",
                json_string(&d.commit),
                json_string(&d.file),
                d.line,
                json_string(&d.static_cause),
                json_string(&d.dynamic)
            ));
        }
        if !self.disagreements.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"remediations\": [");
        for (i, r) in self.remediations.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let remedy = match &r.remedy {
                Remedy::Delta { suggestion, flips } => format!(
                    "\"delta\", \"suggestion\": {}, \"flips\": {flips}",
                    json_string(suggestion)
                ),
                Remedy::Environment { target } => {
                    format!("\"environment\", \"target\": {}", json_string(target))
                }
                Remedy::Unfixable { reason } => {
                    format!("\"unfixable\", \"reason\": {}", json_string(reason))
                }
            };
            out.push_str(&format!(
                "{{\"commit\": {}, \"file\": {}, \"line\": {}, \"arch\": {}, \"cause\": {}, \"dynamic\": {}, \"agrees\": {}, \"remedy\": {remedy}}}",
                json_string(&r.commit),
                json_string(&r.file),
                r.line,
                json_string(&r.arch),
                json_string(&r.cause),
                json_string(&r.dynamic),
                r.agrees
            ));
        }
        if !self.remediations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Shared infrastructure for the pass: the caches a warm daemon (or the
/// evaluation that just ran) already holds, plus the tracer that tags the
/// verification re-runs with [`Stage::Remediate`].
#[derive(Clone, Default)]
pub struct FixContext {
    /// Cross-patch configuration cache (shared with the evaluation run
    /// for warm reuse).
    pub configs: Arc<ConfigCache>,
    /// Object cache, when the run had one.
    pub objects: Option<Arc<ObjectCache>>,
    /// Preprocessor cache, when the run had one.
    pub preproc: Option<Arc<PreprocCache>>,
    /// Tracer for `remediate` spans (disabled by default).
    pub tracer: Tracer,
}

/// Replay `run` and remediate every missed line with default (cold,
/// untraced) infrastructure. See [`remediate_with`].
pub fn remediate(repo: &Repo, run: &EvaluationRun) -> FixReport {
    remediate_with(repo, run, &FixContext::default())
}

/// Replay `run` against the static analyzer, root-cause every uncovered
/// token, synthesize minimal config deltas where a witness exists, and
/// verify each one by re-running its (file × arch) trial through a
/// [`BuildEngine`] sharing `ctx`'s caches.
pub fn remediate_with(repo: &Repo, run: &EvaluationRun, ctx: &FixContext) -> FixReport {
    let mut out = FixReport::default();
    for result in &run.results {
        let commit = result.commit.to_string();
        let Some(report) = result.report() else {
            let why = result.outcome.failure().unwrap_or("not checked");
            out.skipped.push(format!("{commit}: {why}"));
            continue;
        };
        out.patches += 1;
        let tree = match repo.checkout(result.commit) {
            Ok(t) => t,
            Err(e) => {
                out.skipped.push(format!("{commit}: re-checkout failed: {e}"));
                continue;
            }
        };
        remediate_patch(&tree, &report.files, &commit, ctx, &mut out);
    }
    out
}

/// Graft the remediation lines into the run's file reports, so the
/// per-patch report (text and JSON) carries the suggestions. Only
/// called with `--fix` on — without it the reports stay byte-identical.
pub fn annotate_run(run: &mut EvaluationRun, fix: &FixReport) {
    let mut by_key: BTreeMap<(&str, &str), Vec<&Remediation>> = BTreeMap::new();
    for r in &fix.remediations {
        by_key
            .entry((r.commit.as_str(), r.file.as_str()))
            .or_default()
            .push(r);
    }
    for result in &mut run.results {
        let commit = result.commit.to_string();
        let jmake_core::PatchOutcome::Checked(report) = &mut result.outcome else {
            continue;
        };
        for file in &mut report.files {
            if let Some(rs) = by_key.get(&(commit.as_str(), file.path.as_str())) {
                file.remediations = rs.iter().map(|r| r.render()).collect();
            }
        }
    }
}

/// Per-arch replay context: a build engine for verification re-runs, the
/// reachability analyzer (kept alive for presence-condition queries), and
/// the classified files.
struct ArchCtx<'t> {
    engine: BuildEngine,
    reach: Reach<'t>,
    treach: TreeReach,
}

fn arch_ctx<'t>(
    tree: &'t SourceTree,
    arch: &str,
    paths: &[String],
    ctx: &FixContext,
) -> Result<ArchCtx<'t>, String> {
    let mut engine = BuildEngine::with_shared_cache(tree.clone(), Arc::clone(&ctx.configs));
    if let Some(o) = &ctx.objects {
        engine.set_object_cache(Arc::clone(o));
    }
    if let Some(p) = &ctx.preproc {
        engine.set_preproc_cache(Arc::clone(p));
    }
    engine.set_tracer(ctx.tracer.clone());
    let allyes = engine
        .make_config(arch, &ConfigKind::AllYes)
        .map_err(|e| e.to_string())?;
    let allmod = engine.make_config(arch, &ConfigKind::AllMod);
    let mut reach = Reach::new(tree);
    reach.add_model(arch.to_string(), allyes.model.clone());
    reach.add_env(ReachEnv {
        label: format!("{arch}-allyes"),
        arch: arch.to_string(),
        config: allyes.config.clone(),
        allyes: true,
    });
    if let Ok(am) = &allmod {
        reach.add_env(ReachEnv {
            label: format!("{arch}-allmod"),
            arch: arch.to_string(),
            config: am.config.clone(),
            allyes: false,
        });
    }
    let treach = reach.analyze_files(paths);
    Ok(ArchCtx {
        engine,
        reach,
        treach,
    })
}

/// The architecture whose model classifies this file's misses: the same
/// environment the dynamic classifier used — `x86_64` when it configured
/// there, else the first architecture it tried.
fn class_arch(file: &FileReport) -> Option<String> {
    let mut first = None;
    for desc in &file.targets_tried {
        if let Some((arch, _)) = desc.split_once('/') {
            if arch == "x86_64" {
                return Some(arch.to_string());
            }
            if first.is_none() {
                first = Some(arch.to_string());
            }
        }
    }
    first
}

fn remediate_patch(
    tree: &SourceTree,
    files: &[FileReport],
    commit: &str,
    ctx: &FixContext,
    out: &mut FixReport,
) {
    let arches = arches_used(files);
    let paths: Vec<String> = files.iter().map(|f| f.path.clone()).collect();
    let mut contexts: BTreeMap<String, ArchCtx<'_>> = BTreeMap::new();
    for arch in &arches {
        match arch_ctx(tree, arch, &paths, ctx) {
            Ok(a) => {
                contexts.insert(arch.clone(), a);
            }
            Err(e) => out.skipped.push(format!("{commit}: {arch}: {e}")),
        }
    }
    for file in files {
        out.files += 1;
        if file.uncovered.is_empty() {
            continue;
        }
        let Some(arch) = class_arch(file) else {
            for unc in &file.uncovered {
                out.missed += 1;
                push_remediation(
                    out,
                    commit,
                    file,
                    unc.token.line,
                    "-",
                    &StaticCause::Unclassified,
                    unc.reason,
                    Remedy::Unfixable {
                        reason: "no architecture was ever configured for this file".to_string(),
                    },
                );
            }
            continue;
        };
        let Some(actx) = contexts.get_mut(&arch) else {
            for unc in &file.uncovered {
                out.missed += 1;
                push_remediation(
                    out,
                    commit,
                    file,
                    unc.token.line,
                    &arch,
                    &StaticCause::Unclassified,
                    unc.reason,
                    Remedy::Unfixable {
                        reason: format!("architecture {arch} could not be replayed"),
                    },
                );
            }
            continue;
        };
        let content = tree.get(&file.path).unwrap_or("");
        let shapes = line_shapes(content);
        for unc in &file.uncovered {
            out.missed += 1;
            let (cause, plan) = static_cause(file, &unc.token, &shapes, &arch, actx);
            let remedy = execute_plan(plan, tree, file, &unc.token, &arch, actx, ctx, out);
            push_remediation(out, commit, file, unc.token.line, &arch, &cause, unc.reason, remedy);
        }
    }
    for actx in contexts.into_values() {
        out.virtual_us += actx.engine.clock.now_us();
    }
}

#[allow(clippy::too_many_arguments)]
fn push_remediation(
    out: &mut FixReport,
    commit: &str,
    file: &FileReport,
    line: u32,
    arch: &str,
    cause: &StaticCause,
    dynamic: UncoveredReason,
    remedy: Remedy,
) {
    let agrees = cause.compatible_with(dynamic);
    if !agrees {
        out.disagreements.push(Disagreement {
            commit: commit.to_string(),
            file: file.path.clone(),
            line,
            static_cause: cause.label(),
            dynamic: dynamic.to_string(),
        });
    }
    match &remedy {
        Remedy::Delta { .. } => {
            out.deltas_emitted += 1;
            out.deltas_verified += 1;
        }
        Remedy::Environment { .. } => {}
        Remedy::Unfixable { .. } => out.unfixable += 1,
    }
    out.remediations.push(Remediation {
        commit: commit.to_string(),
        file: file.path.clone(),
        line,
        arch: arch.to_string(),
        cause: cause.label(),
        dynamic: dynamic.to_string(),
        agrees,
        remedy,
    });
}

/// What the verification driver should attempt for one missed line.
enum Plan {
    /// Minimize the solver witness into a config delta, then verify it.
    Delta(BTreeMap<String, Tristate>),
    /// Verify a whole named environment (kind solved for `arch`).
    Env(String, ConfigKind, String),
    /// Nothing to verify; the reason ships as [`Remedy::Unfixable`].
    Nothing(String),
}

/// Root-cause one missed token from its presence condition, and decide
/// what (if anything) the driver should try to verify.
fn static_cause(
    file: &FileReport,
    token: &MutationToken,
    shapes: &BTreeMap<u32, LineShape>,
    arch: &str,
    actx: &ArchCtx<'_>,
) -> (StaticCause, Plan) {
    if token.kind != MutationKind::Context {
        return (
            StaticCause::Unclassified,
            Plan::Nothing(
                "changed macro surfaced in no attempted configuration; no config delta applies"
                    .to_string(),
            ),
        );
    }
    let Some(region) = token_region_line(shapes, token.line) else {
        return (
            StaticCause::Unclassified,
            Plan::Nothing("ambiguous token region (directive splice or #endif)".to_string()),
        );
    };
    // Files owned by another architecture: the classifying environment
    // never sees them; the remedy is that arch's own allyesconfig.
    if let Some(owner) = file
        .path
        .strip_prefix("arch/")
        .and_then(|rest| rest.split('/').next())
    {
        if owner != arch {
            return (
                StaticCause::ArchGated(owner.to_string()),
                Plan::Env(
                    owner.to_string(),
                    ConfigKind::AllYes,
                    format!("{owner}/allyesconfig"),
                ),
            );
        }
    }
    if actx.reach.line_condition(&file.path, region).is_none() {
        return (
            StaticCause::Unclassified,
            Plan::Nothing("unbalanced or out-of-range conditional stack".to_string()),
        );
    }
    let raw_mentions_module = jmake_reach::analyze_file(actx.reach_src(&file.path))
        .conds
        .get(region as usize - 1)
        .is_some_and(|raw| {
            let mut atoms = BTreeSet::new();
            raw.atoms(&mut atoms);
            atoms.contains("MODULE")
        });
    let class = token_class(actx.treach.files.get(&file.path), shapes, token.line);
    match class {
        None => (
            StaticCause::Unclassified,
            Plan::Nothing("no static class for the token's region".to_string()),
        ),
        Some(ReachClass::Dead { proof }) => {
            if let Some(sym) = proof.strip_prefix("undeclared symbol ") {
                let s = sym.to_string();
                (
                    StaticCause::NeverDefined(s.clone()),
                    Plan::Nothing(format!("symbol {s} is declared nowhere in Kconfig")),
                )
            } else if proof == "constant-false" {
                (
                    StaticCause::IfZero,
                    Plan::Nothing("the #if stack is constant-false".to_string()),
                )
            } else {
                (
                    StaticCause::DeadByProof(proof.clone()),
                    Plan::Nothing(format!("statically dead: {proof}")),
                )
            }
        }
        Some(ReachClass::AllyesReachable) => (
            StaticCause::Unclassified,
            Plan::Nothing(
                "statically allyes-reachable — a cross-check case, not a config problem"
                    .to_string(),
            ),
        ),
        Some(ReachClass::ConditionallyReachable { witness }) => {
            if raw_mentions_module {
                return (
                    StaticCause::IfdefModule,
                    Plan::Env(arch.to_string(), ConfigKind::AllMod, format!("{arch}/allmodconfig")),
                );
            }
            match witness {
                Some(Witness::Env(label)) => {
                    let kind = if label.ends_with("-allmod") {
                        ConfigKind::AllMod
                    } else {
                        ConfigKind::AllYes
                    };
                    (
                        StaticCause::UnsettableUnderAllyes,
                        Plan::Env(
                            arch.to_string(),
                            kind.clone(),
                            format!("{arch}/{kind}"),
                        ),
                    )
                }
                Some(Witness::Pins(pins)) => {
                    (StaticCause::UnsettableUnderAllyes, Plan::Delta(pins.clone()))
                }
                None => (
                    StaticCause::Unclassified,
                    Plan::Nothing(
                        "conditionally reachable, but no witness within analyzer bounds"
                            .to_string(),
                    ),
                ),
            }
        }
    }
}

impl ArchCtx<'_> {
    /// Raw source text of `path` from the analyzer's tree (empty when
    /// absent — the caller already validated presence).
    fn reach_src(&self, path: &str) -> &str {
        self.tree_src(path)
    }

    fn tree_src(&self, path: &str) -> &str {
        self.engine.tree().get(path).unwrap_or("")
    }
}

/// Execute a remediation plan: minimize, verify, and downgrade on any
/// verification failure.
#[allow(clippy::too_many_arguments)]
fn execute_plan(
    plan: Plan,
    tree: &SourceTree,
    file: &FileReport,
    token: &MutationToken,
    arch: &str,
    actx: &mut ArchCtx<'_>,
    ctx: &FixContext,
    out: &mut FixReport,
) -> Remedy {
    match plan {
        Plan::Nothing(reason) => Remedy::Unfixable { reason },
        Plan::Env(env_arch, kind, target) => {
            if file.is_header {
                return Remedy::Unfixable {
                    reason: format!(
                        "{target} reaches the line, but verifying a header needs an including \
                         translation unit"
                    ),
                };
            }
            match verify_trial(tree, &file.path, token, &env_arch, &kind, actx, ctx) {
                Ok(()) => Remedy::Environment { target },
                Err(why) => Remedy::Unfixable {
                    reason: format!("{target} failed verification: {why}"),
                },
            }
        }
        Plan::Delta(pins) => {
            if file.is_header {
                return Remedy::Unfixable {
                    reason: "a solver witness exists, but verifying a header needs an including \
                             translation unit"
                        .to_string(),
                };
            }
            let Some(region) = token_region_line(&line_shapes(actx.tree_src(&file.path)), token.line)
            else {
                return Remedy::Unfixable {
                    reason: "ambiguous token region".to_string(),
                };
            };
            let Some((_, model)) = actx.reach.model_for(&file.path) else {
                return Remedy::Unfixable {
                    reason: "no Kconfig model for this file".to_string(),
                };
            };
            let path = file.path.clone();
            let reach = &actx.reach;
            let minimized =
                model.minimize_delta(&pins, &|cfg| reach.line_present(&path, region, cfg));
            match minimized {
                Err(proof) => {
                    let core = model
                        .unsat_core(&pins)
                        .map(|(core, _)| {
                            let parts: Vec<String> = core
                                .iter()
                                .map(|(n, v)| format!("CONFIG_{n}={v}"))
                                .collect();
                            format!(" (unsatisfiable core: {})", parts.join(" "))
                        })
                        .unwrap_or_default();
                    Remedy::Unfixable {
                        reason: format!("no witness: {proof}{core}"),
                    }
                }
                Ok(delta) => {
                    let kind = ConfigKind::Custom {
                        name: format!("fix:{}:{}", file.path, token.line),
                        content: delta.config.render(),
                    };
                    match verify_trial(tree, &file.path, token, arch, &kind, actx, ctx) {
                        Ok(()) => Remedy::Delta {
                            suggestion: delta.suggestion(),
                            flips: delta.flips.len(),
                        },
                        Err(why) => {
                            out.verification_failures += 1;
                            Remedy::Unfixable {
                                reason: format!("delta failed verification: {why}"),
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Re-run the single (file × arch) trial under `kind`: re-mutate the one
/// changed line, preprocess the mutated tree, require the token to
/// surface, then certify by compiling the pristine file.
fn verify_trial(
    tree: &SourceTree,
    path: &str,
    token: &MutationToken,
    arch: &str,
    kind: &ConfigKind,
    actx: &mut ArchCtx<'_>,
    ctx: &FixContext,
) -> Result<(), String> {
    let mut span = ctx.tracer.span(Stage::Remediate);
    if ctx.tracer.is_enabled() {
        span = span.with_file(path).with_arch(arch).with_config(&kind.to_string());
    }
    let _span = span;
    let cfg = actx
        .engine
        .make_config(arch, kind)
        .map_err(|e| format!("config: {e}"))?;
    let content = tree.get(path).ok_or_else(|| "file missing".to_string())?;
    let changed = ChangedLines {
        positions: vec![ChangedLine::Line(token.line)],
    };
    let plan = mutate(path, content, &changed);
    let expect = MutationToken::new(MutationKind::Context, path, token.line);
    if !plan.mutations.contains(&expect) {
        return Err("mutation replay did not reproduce the token".to_string());
    }
    let mut mutated = tree.clone();
    mutated.insert(path, plan.mutated);
    let results = actx
        .engine
        .make_i(&cfg, &mutated, &[path.to_string()])
        .map_err(|e| format!("make_i: {e}"))?;
    let Some((_, ires)) = results.into_iter().next() else {
        return Err("empty make_i result".to_string());
    };
    let ifile = ires.map_err(|e| format!("preprocess: {e}"))?;
    if !MutationToken::scan(&ifile.text).contains(&expect) {
        return Err("token did not surface under the synthesized config".to_string());
    }
    actx.engine
        .make_o(&cfg, tree, path)
        .map_err(|e| format!("make_o: {e}"))?;
    Ok(())
}

/// JSON string literal with escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests;
