//! In-memory per-stage histograms built from completed spans.

use crate::{CacheOutcome, SpanRecord, Stage};
use std::collections::BTreeMap;

/// Accumulated measurements for one stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageMetrics {
    /// Every host-clock duration, in arrival order (sorted on demand for
    /// quantiles).
    host_us: Vec<u64>,
    host_total_us: u64,
    virtual_total_us: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_local: u64,
}

impl StageMetrics {
    fn record(&mut self, record: &SpanRecord) {
        self.host_us.push(record.host_us);
        self.host_total_us += record.host_us;
        self.virtual_total_us += record.virtual_us;
        match record.cache {
            Some(CacheOutcome::Hit) => self.cache_hits += 1,
            Some(CacheOutcome::Miss) => self.cache_misses += 1,
            Some(CacheOutcome::Local) => self.cache_local += 1,
            Some(CacheOutcome::Off) | None => {}
        }
    }

    /// Number of spans recorded for this stage.
    pub fn count(&self) -> u64 {
        self.host_us.len() as u64
    }

    /// Sum of host-clock durations across all spans, in microseconds.
    pub fn host_total_us(&self) -> u64 {
        self.host_total_us
    }

    /// Sum of virtual-clock charges across all spans, in microseconds.
    pub fn virtual_total_us(&self) -> u64 {
        self.virtual_total_us
    }

    /// Shared-cache hits observed on this stage's spans.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Shared-cache misses observed on this stage's spans.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Engine-local memo hits (shared cache never consulted).
    pub fn cache_local(&self) -> u64 {
        self.cache_local
    }

    /// Ceil nearest-rank quantile of the host durations (same convention as
    /// `Cdf::quantile` in jmake-kbuild; both call
    /// [`crate::quantile::ceil_nearest_rank`]). Zero when no samples.
    pub fn host_quantile_us(&self, q: f64) -> u64 {
        let mut sorted = self.host_us.clone();
        sorted.sort_unstable();
        crate::quantile::ceil_nearest_rank(&sorted, q)
    }

    /// Largest single host-clock duration, in microseconds.
    pub fn host_max_us(&self) -> u64 {
        self.host_us.iter().copied().max().unwrap_or(0)
    }
}

/// Per-stage histograms for one tracer. Cloneable snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    stages: BTreeMap<Stage, StageMetrics>,
    counters: BTreeMap<String, u64>,
}

impl Metrics {
    pub(crate) fn record(&mut self, record: &SpanRecord) {
        if let Some(stage) = record.stage {
            self.stages.entry(stage).or_default().record(record);
        }
    }

    pub(crate) fn record_counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += value;
    }

    /// All stages with at least one recorded span, in pipeline order.
    pub fn stages(&self) -> &BTreeMap<Stage, StageMetrics> {
        &self.stages
    }

    /// All named counters recorded so far, in name order.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// One counter's value (0 when never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Measurements for one stage, if any span of it was recorded.
    pub fn stage(&self, stage: Stage) -> Option<&StageMetrics> {
        self.stages.get(&stage)
    }

    /// Total host time recorded for `stage` (0 when absent).
    pub fn host_total_us(&self, stage: Stage) -> u64 {
        self.stage(stage).map_or(0, StageMetrics::host_total_us)
    }

    /// Total virtual time recorded for `stage` (0 when absent).
    pub fn virtual_total_us(&self, stage: Stage) -> u64 {
        self.stage(stage).map_or(0, StageMetrics::virtual_total_us)
    }

    /// Shared-cache hits and misses over `config_solve` spans. Engine-local
    /// memo hits are excluded so this matches `CacheStats` exactly.
    pub fn cache_hits_misses(&self) -> (u64, u64) {
        match self.stage(Stage::ConfigSolve) {
            None => (0, 0),
            Some(s) => (s.cache_hits(), s.cache_misses()),
        }
    }

    /// Shared-cache hit rate in [0, 1]; 0 when the cache was never consulted.
    pub fn cache_hit_rate(&self) -> f64 {
        let (hits, misses) = self.cache_hits_misses();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Human-readable per-stage breakdown, one row per recorded stage.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("per-stage trace metrics (host = wall clock, virtual = simulated)\n");
        out.push_str(&format!(
            "  {:<14} {:>8} {:>10} {:>10} {:>10} {:>14} {:>16}\n",
            "stage", "count", "p50 us", "p90 us", "max us", "host total us", "virt total us"
        ));
        for stage in Stage::ALL {
            let Some(s) = self.stage(stage) else { continue };
            out.push_str(&format!(
                "  {:<14} {:>8} {:>10} {:>10} {:>10} {:>14} {:>16}\n",
                stage.name(),
                s.count(),
                s.host_quantile_us(0.5),
                s.host_quantile_us(0.9),
                s.host_max_us(),
                s.host_total_us(),
                s.virtual_total_us(),
            ));
        }
        let (hits, misses) = self.cache_hits_misses();
        let local = self
            .stage(Stage::ConfigSolve)
            .map_or(0, StageMetrics::cache_local);
        out.push_str(&format!(
            "  config cache: {:.1}% hit rate ({hits} hits, {misses} misses, {local} local memo)\n",
            self.cache_hit_rate() * 100.0
        ));
        for (name, value) in &self.counters {
            out.push_str(&format!("  counter {name}: {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(stage: Stage, host_us: u64, virtual_us: u64, cache: Option<CacheOutcome>) -> SpanRecord {
        SpanRecord {
            stage: Some(stage),
            host_us,
            virtual_us,
            cache,
            ..SpanRecord::default()
        }
    }

    #[test]
    fn totals_and_quantiles_accumulate() {
        let mut m = Metrics::default();
        for (host, virt) in [(10, 100), (20, 200), (30, 300), (40, 400)] {
            m.record(&record(Stage::BuildO, host, virt, None));
        }
        let s = m.stage(Stage::BuildO).unwrap();
        assert_eq!(s.count(), 4);
        assert_eq!(s.host_total_us(), 100);
        assert_eq!(s.virtual_total_us(), 1000);
        assert_eq!(s.host_quantile_us(0.5), 20);
        assert_eq!(s.host_quantile_us(0.9), 40);
        assert_eq!(s.host_max_us(), 40);
    }

    #[test]
    fn host_quantile_matches_shared_helper() {
        // StageMetrics must agree with the shared ceil nearest-rank helper
        // (and therefore with Cdf::quantile) on every q.
        let samples = [5u64, 1, 3, 9, 9, 2, 8];
        let mut m = Metrics::default();
        for &host in &samples {
            m.record(&record(Stage::BuildI, host, 0, None));
        }
        let s = m.stage(Stage::BuildI).unwrap();
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            assert_eq!(
                s.host_quantile_us(q),
                crate::quantile::ceil_nearest_rank(&sorted, q),
                "q={q}"
            );
        }
    }

    #[test]
    fn hit_rate_excludes_local_memo() {
        let mut m = Metrics::default();
        m.record(&record(Stage::ConfigSolve, 1, 1, Some(CacheOutcome::Hit)));
        m.record(&record(Stage::ConfigSolve, 1, 1, Some(CacheOutcome::Miss)));
        m.record(&record(Stage::ConfigSolve, 1, 1, Some(CacheOutcome::Local)));
        m.record(&record(Stage::ConfigSolve, 1, 1, Some(CacheOutcome::Local)));
        assert_eq!(m.cache_hits_misses(), (1, 1));
        assert!((m.cache_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn render_lists_only_recorded_stages() {
        let mut m = Metrics::default();
        m.record(&record(Stage::Checkout, 5, 0, None));
        let text = m.render();
        assert!(text.contains("checkout"));
        assert!(!text.contains("build_o"));
        assert!(text.contains("config cache"));
    }
}
