//! JSONL serialization for [`SpanRecord`]s — one JSON object per line —
//! plus a strict parser used by `jmake-eval trace-check` to validate event
//! logs offline. Hand-rolled because the workspace is dependency-free; the
//! schema is flat (string and integer fields only) so a full JSON parser
//! would be overkill.

use crate::{CacheOutcome, SpanRecord, Stage};

/// Escape `value` for inclusion inside a JSON string literal and return
/// the escaped text. Exposed for other JSONL protocols in the workspace
/// (the `jmake-serve` request/response framing reuses it) so the encoder
/// and the [`JsonParser`] decoder cannot drift apart.
pub fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    escape_into(&mut out, value);
    out
}

/// Serialize one record as a single JSON line (no trailing newline).
/// Optional fields are omitted when absent.
pub fn to_json_line(record: &SpanRecord) -> String {
    let mut out = String::with_capacity(96);
    out.push('{');
    push_str_field(&mut out, "stage", record.stage.map(Stage::name).unwrap_or(""));
    if let Some(patch) = &record.patch {
        push_str_field(&mut out, "patch", patch);
    }
    if let Some(file) = &record.file {
        push_str_field(&mut out, "file", file);
    }
    if let Some(arch) = &record.arch {
        push_str_field(&mut out, "arch", arch);
    }
    if let Some(config) = &record.config {
        push_str_field(&mut out, "config", config);
    }
    push_num_field(&mut out, "host_us", record.host_us);
    push_num_field(&mut out, "virtual_us", record.virtual_us);
    if let Some(cache) = record.cache {
        push_str_field(&mut out, "cache", cache.name());
    }
    out.push('}');
    out
}

fn push_sep(out: &mut String) {
    if !out.ends_with('{') {
        out.push(',');
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    push_sep(out);
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
}

fn push_num_field(out: &mut String, key: &str, value: u64) {
    push_sep(out);
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn escape_into(out: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Parse one JSONL line back into a [`SpanRecord`]. Strict: unknown keys,
/// unknown stage or cache names, and malformed JSON are all errors.
pub fn parse_line(line: &str) -> Result<SpanRecord, String> {
    let mut p = JsonParser::new(line.trim());
    p.expect('{')?;
    let mut record = SpanRecord::default();
    let mut saw_stage = false;
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        match key.as_str() {
            "stage" => {
                let name = p.string()?;
                record.stage =
                    Some(Stage::from_name(&name).ok_or_else(|| format!("unknown stage {name:?}"))?);
                saw_stage = true;
            }
            "patch" => record.patch = Some(p.string()?),
            "file" => record.file = Some(p.string()?),
            "arch" => record.arch = Some(p.string()?),
            "config" => record.config = Some(p.string()?),
            "host_us" => record.host_us = p.number()?,
            "virtual_us" => record.virtual_us = p.number()?,
            "cache" => {
                let name = p.string()?;
                record.cache = Some(
                    CacheOutcome::from_name(&name)
                        .ok_or_else(|| format!("unknown cache outcome {name:?}"))?,
                );
            }
            other => return Err(format!("unknown field {other:?}")),
        }
        p.skip_ws();
        if !p.eat(',') {
            p.expect('}')?;
            break;
        }
    }
    p.skip_ws();
    if !p.at_end() {
        return Err("trailing content after object".to_owned());
    }
    if !saw_stage {
        return Err("missing required field \"stage\"".to_owned());
    }
    Ok(record)
}

/// Parse a whole event log, skipping blank lines. Errors carry the 1-based
/// line number. Counter lines are an error here — use [`parse_all`] for
/// logs that may carry them.
pub fn parse(text: &str) -> Result<Vec<SpanRecord>, String> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records.push(parse_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?);
    }
    Ok(records)
}

/// One line of an event log: a completed span, or a named counter (the
/// driver emits scheduler queue-pressure counters at end of run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceLine {
    /// A completed [`SpanRecord`].
    Span(SpanRecord),
    /// A named monotonic counter value.
    Counter {
        /// Counter name (e.g. `sched_compile_dropped`).
        name: String,
        /// Final value.
        value: u64,
    },
}

/// Serialize one counter as a single JSON line (no trailing newline).
pub fn counter_line(name: &str, value: u64) -> String {
    let mut out = String::with_capacity(48);
    out.push('{');
    push_str_field(&mut out, "counter", name);
    push_num_field(&mut out, "value", value);
    out.push('}');
    out
}

/// Parse one JSONL line that may be either a span or a counter. Strict,
/// like [`parse_line`]: a counter line admits exactly the keys `counter`
/// and `value`.
pub fn parse_any(line: &str) -> Result<TraceLine, String> {
    if !line.trim_start().starts_with("{\"counter\"") {
        return parse_line(line).map(TraceLine::Span);
    }
    let mut p = JsonParser::new(line.trim());
    p.expect('{')?;
    let mut name = None;
    let mut value = None;
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        match key.as_str() {
            "counter" => name = Some(p.string()?),
            "value" => value = Some(p.number()?),
            other => return Err(format!("unknown counter field {other:?}")),
        }
        p.skip_ws();
        if !p.eat(',') {
            p.expect('}')?;
            break;
        }
    }
    p.skip_ws();
    if !p.at_end() {
        return Err("trailing content after object".to_owned());
    }
    match (name, value) {
        (Some(name), Some(value)) => Ok(TraceLine::Counter { name, value }),
        _ => Err("counter line missing \"counter\" or \"value\"".to_owned()),
    }
}

/// Parse a whole event log that may mix spans and counters, skipping
/// blank lines. Errors carry the 1-based line number.
pub fn parse_all(text: &str) -> Result<Vec<TraceLine>, String> {
    let mut lines = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines.push(parse_any(line).map_err(|e| format!("line {}: {e}", idx + 1))?);
    }
    Ok(lines)
}

/// Minimal hand-rolled JSON scanner shared by the trace-log parser above
/// and the other JSONL protocols in the workspace (`jmake-serve` framing).
/// It exposes exactly the primitives a flat, known-key object needs:
/// [`expect`](Self::expect)/[`eat`](Self::eat) for punctuation,
/// [`string`](Self::string) and [`number`](Self::number) for scalars.
///
/// String decoding follows RFC 8259: `\u` escapes in the UTF-16 surrogate
/// range combine in pairs (a high surrogate must be followed by a `\u`-escaped
/// low surrogate), so text that stock JSON encoders emit for non-BMP
/// characters — emoji in commit subjects, say — round-trips. Lone or
/// mismatched surrogates are rejected with a descriptive error.
pub struct JsonParser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
}

impl<'a> JsonParser<'a> {
    /// Start scanning `src` from the beginning.
    pub fn new(src: &'a str) -> Self {
        JsonParser {
            chars: src.char_indices().peekable(),
            src,
        }
    }

    /// Skip ASCII whitespace.
    pub fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    /// Consume exactly `want` or fail.
    pub fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected {want:?} at byte {i}, found {c:?}")),
            None => Err(format!("expected {want:?}, found end of line")),
        }
    }

    /// Consume `want` if it is next; report whether it was.
    pub fn eat(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some((_, c)) if *c == want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    /// True when the input is exhausted.
    pub fn at_end(&mut self) -> bool {
        self.chars.peek().is_none()
    }

    /// Read the four hex digits of a `\u` escape body (the `\u` itself has
    /// already been consumed).
    fn hex4(&mut self, start: usize) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some((_, c)) = self.chars.next() else {
                return Err("truncated \\u escape".to_owned());
            };
            let digit = c
                .to_digit(16)
                .ok_or_else(|| format!("bad \\u escape at byte {start}"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    /// Decode one `\u` escape starting after its `u`, consuming the paired
    /// low-surrogate escape when `code` is a high surrogate.
    fn unicode_escape(&mut self, start: usize) -> Result<char, String> {
        let code = self.hex4(start)?;
        match code {
            // High surrogate: must be followed by an escaped low surrogate;
            // the pair combines into one supplementary-plane scalar.
            0xD800..=0xDBFF => {
                if !(self.eat('\\') && self.eat('u')) {
                    return Err(format!(
                        "lone high surrogate \\u{code:04x}: expected a \\uDC00-\\uDFFF low \
                         surrogate escape to follow"
                    ));
                }
                let lo = self.hex4(start)?;
                if !(0xDC00..=0xDFFF).contains(&lo) {
                    return Err(format!(
                        "mismatched surrogate pair \\u{code:04x}\\u{lo:04x}: second escape \
                         is not a \\uDC00-\\uDFFF low surrogate"
                    ));
                }
                let combined = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                char::from_u32(combined)
                    .ok_or_else(|| format!("invalid codepoint \\u{combined:04x}"))
            }
            0xDC00..=0xDFFF => Err(format!(
                "lone low surrogate \\u{code:04x}: low surrogates are only valid \
                 immediately after a \\uD800-\\uDBFF high surrogate escape"
            )),
            _ => char::from_u32(code).ok_or_else(|| format!("invalid codepoint \\u{code:04x}")),
        }
    }

    /// Parse a quoted JSON string (including the opening `"`).
    pub fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".to_owned()),
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, '/')) => out.push('/'),
                    Some((start, 'u')) => out.push(self.unicode_escape(start)?),
                    Some((i, c)) => return Err(format!("bad escape \\{c} at byte {i}")),
                    None => return Err("truncated escape".to_owned()),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    /// Parse a JSON `true`/`false` literal.
    pub fn boolean(&mut self) -> Result<bool, String> {
        let (word, value) = if self.eat('t') {
            ("rue", true)
        } else if self.eat('f') {
            ("alse", false)
        } else {
            return Err("expected boolean".to_owned());
        };
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    /// Parse a non-negative integer.
    pub fn number(&mut self) -> Result<u64, String> {
        let start = match self.chars.peek() {
            Some((i, c)) if c.is_ascii_digit() => *i,
            _ => return Err("expected number".to_owned()),
        };
        let mut end = start;
        while let Some((i, c)) = self.chars.peek() {
            if c.is_ascii_digit() {
                end = *i + 1;
                self.chars.next();
            } else {
                break;
            }
        }
        self.src[start..end]
            .parse::<u64>()
            .map_err(|e| format!("bad number: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_full_record() {
        let record = SpanRecord {
            stage: Some(Stage::ConfigSolve),
            patch: Some("42".to_owned()),
            file: Some("drivers/net/\"weird\".c".to_owned()),
            arch: Some("x86".to_owned()),
            config: Some("custom:CONFIG_FOO=y".to_owned()),
            host_us: 1234,
            virtual_us: 5_000_000,
            cache: Some(CacheOutcome::Hit),
        };
        let line = to_json_line(&record);
        assert_eq!(parse_line(&line), Ok(record));
    }

    #[test]
    fn round_trips_a_minimal_record() {
        let record = SpanRecord {
            stage: Some(Stage::Checkout),
            host_us: 9,
            ..SpanRecord::default()
        };
        let line = to_json_line(&record);
        assert_eq!(line, r#"{"stage":"checkout","host_us":9,"virtual_us":0}"#);
        assert_eq!(parse_line(&line), Ok(record));
    }

    #[test]
    fn rejects_unknown_stage_and_unknown_field() {
        assert!(parse_line(r#"{"stage":"warp","host_us":1,"virtual_us":0}"#)
            .unwrap_err()
            .contains("unknown stage"));
        assert!(parse_line(r#"{"stage":"check","bogus":"x","host_us":1,"virtual_us":0}"#)
            .unwrap_err()
            .contains("unknown field"));
        assert!(parse_line(r#"{"host_us":1,"virtual_us":0}"#)
            .unwrap_err()
            .contains("stage"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"stage":"check""#).is_err());
        assert!(parse_line(r#"{"stage":"check"} trailing"#).is_err());
    }

    #[test]
    fn parse_skips_blank_lines_and_reports_line_numbers() {
        let text = "\n{\"stage\":\"show\",\"host_us\":1,\"virtual_us\":0}\n\n";
        assert_eq!(parse(text).unwrap().len(), 1);
        let bad = "{\"stage\":\"show\",\"host_us\":1,\"virtual_us\":0}\nnope\n";
        assert!(parse(bad).unwrap_err().starts_with("line 2:"));
    }

    #[test]
    fn round_trips_non_bmp_text_through_encoder() {
        // Our own encoder emits non-BMP characters raw (valid JSON); the
        // parser must hand them back unchanged.
        let record = SpanRecord {
            stage: Some(Stage::Show),
            patch: Some("fix 😀 oops \u{1F600}\u{10FFFF}".to_owned()),
            file: Some("drivers/net/émoji_\u{1D11E}.c".to_owned()),
            ..SpanRecord::default()
        };
        let line = to_json_line(&record);
        assert_eq!(parse_line(&line), Ok(record));
    }

    #[test]
    fn decodes_surrogate_pair_escapes() {
        // Stock JSON encoders (serde_json with ASCII escaping, Python's
        // json.dumps, JavaScript's JSON.stringify) emit non-BMP characters
        // as UTF-16 surrogate pairs; the parser must combine them.
        let line = r#"{"stage":"show","patch":"\ud83d\ude00","host_us":1,"virtual_us":0}"#;
        let record = parse_line(line).unwrap();
        assert_eq!(record.patch.as_deref(), Some("😀"));

        // Highest scalar value U+10FFFF.
        let line = r#"{"stage":"show","patch":"\udbff\udfff","host_us":1,"virtual_us":0}"#;
        assert_eq!(
            parse_line(line).unwrap().patch.as_deref(),
            Some("\u{10FFFF}")
        );

        // Pairs mixed with surrounding text and other escapes.
        let line = r#"{"stage":"show","patch":"a\tb \ud834\udd1e c","host_us":1,"virtual_us":0}"#;
        assert_eq!(
            parse_line(line).unwrap().patch.as_deref(),
            Some("a\tb \u{1D11E} c")
        );
    }

    #[test]
    fn accepts_shorthand_escapes_other_encoders_emit() {
        let line = r#"{"stage":"show","patch":"a\bb\ff","host_us":1,"virtual_us":0}"#;
        assert_eq!(
            parse_line(line).unwrap().patch.as_deref(),
            Some("a\u{8}b\u{c}f")
        );
    }

    #[test]
    fn rejects_lone_and_mismatched_surrogates_with_clear_errors() {
        // Lone high surrogate at end of string.
        let err = parse_line(r#"{"stage":"show","patch":"\ud83d","host_us":1,"virtual_us":0}"#)
            .unwrap_err();
        assert!(err.contains("lone high surrogate \\ud83d"), "{err}");

        // High surrogate followed by a non-escape character.
        let err = parse_line(r#"{"stage":"show","patch":"\ud83dx","host_us":1,"virtual_us":0}"#)
            .unwrap_err();
        assert!(err.contains("lone high surrogate"), "{err}");

        // High surrogate followed by an escaped non-surrogate.
        let err = parse_line(
            r#"{"stage":"show","patch":"\ud83d\u0041","host_us":1,"virtual_us":0}"#,
        )
        .unwrap_err();
        assert!(err.contains("mismatched surrogate pair"), "{err}");

        // Two high surrogates in a row.
        let err =
            parse_line(r#"{"stage":"show","patch":"\ud83d\ud83d","host_us":1,"virtual_us":0}"#)
                .unwrap_err();
        assert!(err.contains("mismatched surrogate pair"), "{err}");

        // Lone low surrogate.
        let err = parse_line(r#"{"stage":"show","patch":"\ude00","host_us":1,"virtual_us":0}"#)
            .unwrap_err();
        assert!(err.contains("lone low surrogate \\ude00"), "{err}");
    }

    #[test]
    fn escape_helper_matches_encoder() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("😀"), "😀");
    }

    #[test]
    fn escapes_control_characters() {
        let record = SpanRecord {
            stage: Some(Stage::Show),
            file: Some("a\u{1}b\nc".to_owned()),
            ..SpanRecord::default()
        };
        let line = to_json_line(&record);
        assert!(line.contains("\\u0001"));
        assert!(line.contains("\\n"));
        assert_eq!(parse_line(&line).unwrap().file.as_deref(), Some("a\u{1}b\nc"));
    }
}
