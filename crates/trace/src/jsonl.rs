//! JSONL serialization for [`SpanRecord`]s — one JSON object per line —
//! plus a strict parser used by `jmake-eval trace-check` to validate event
//! logs offline. Hand-rolled because the workspace is dependency-free; the
//! schema is flat (string and integer fields only) so a full JSON parser
//! would be overkill.

use crate::{CacheOutcome, SpanRecord, Stage};

/// Serialize one record as a single JSON line (no trailing newline).
/// Optional fields are omitted when absent.
pub fn to_json_line(record: &SpanRecord) -> String {
    let mut out = String::with_capacity(96);
    out.push('{');
    push_str_field(&mut out, "stage", record.stage.map(Stage::name).unwrap_or(""));
    if let Some(patch) = &record.patch {
        push_str_field(&mut out, "patch", patch);
    }
    if let Some(file) = &record.file {
        push_str_field(&mut out, "file", file);
    }
    if let Some(arch) = &record.arch {
        push_str_field(&mut out, "arch", arch);
    }
    if let Some(config) = &record.config {
        push_str_field(&mut out, "config", config);
    }
    push_num_field(&mut out, "host_us", record.host_us);
    push_num_field(&mut out, "virtual_us", record.virtual_us);
    if let Some(cache) = record.cache {
        push_str_field(&mut out, "cache", cache.name());
    }
    out.push('}');
    out
}

fn push_sep(out: &mut String) {
    if !out.ends_with('{') {
        out.push(',');
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    push_sep(out);
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
}

fn push_num_field(out: &mut String, key: &str, value: u64) {
    push_sep(out);
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn escape_into(out: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Parse one JSONL line back into a [`SpanRecord`]. Strict: unknown keys,
/// unknown stage or cache names, and malformed JSON are all errors.
pub fn parse_line(line: &str) -> Result<SpanRecord, String> {
    let mut p = Parser {
        chars: line.trim().char_indices().peekable(),
        src: line.trim(),
    };
    p.expect('{')?;
    let mut record = SpanRecord::default();
    let mut saw_stage = false;
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        match key.as_str() {
            "stage" => {
                let name = p.string()?;
                record.stage =
                    Some(Stage::from_name(&name).ok_or_else(|| format!("unknown stage {name:?}"))?);
                saw_stage = true;
            }
            "patch" => record.patch = Some(p.string()?),
            "file" => record.file = Some(p.string()?),
            "arch" => record.arch = Some(p.string()?),
            "config" => record.config = Some(p.string()?),
            "host_us" => record.host_us = p.number()?,
            "virtual_us" => record.virtual_us = p.number()?,
            "cache" => {
                let name = p.string()?;
                record.cache = Some(
                    CacheOutcome::from_name(&name)
                        .ok_or_else(|| format!("unknown cache outcome {name:?}"))?,
                );
            }
            other => return Err(format!("unknown field {other:?}")),
        }
        p.skip_ws();
        if !p.eat(',') {
            p.expect('}')?;
            break;
        }
    }
    p.skip_ws();
    if p.chars.next().is_some() {
        return Err("trailing content after object".to_owned());
    }
    if !saw_stage {
        return Err("missing required field \"stage\"".to_owned());
    }
    Ok(record)
}

/// Parse a whole event log, skipping blank lines. Errors carry the 1-based
/// line number.
pub fn parse(text: &str) -> Result<Vec<SpanRecord>, String> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records.push(parse_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?);
    }
    Ok(records)
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected {want:?} at byte {i}, found {c:?}")),
            None => Err(format!("expected {want:?}, found end of line")),
        }
    }

    fn eat(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some((_, c)) if *c == want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".to_owned()),
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, '/')) => out.push('/'),
                    Some((start, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some((_, c)) = self.chars.next() else {
                                return Err("truncated \\u escape".to_owned());
                            };
                            let digit = c
                                .to_digit(16)
                                .ok_or_else(|| format!("bad \\u escape at byte {start}"))?;
                            code = code * 16 + digit;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid codepoint \\u{code:04x}"))?,
                        );
                    }
                    Some((i, c)) => return Err(format!("bad escape \\{c} at byte {i}")),
                    None => return Err("truncated escape".to_owned()),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = match self.chars.peek() {
            Some((i, c)) if c.is_ascii_digit() => *i,
            _ => return Err("expected number".to_owned()),
        };
        let mut end = start;
        while let Some((i, c)) = self.chars.peek() {
            if c.is_ascii_digit() {
                end = *i + 1;
                self.chars.next();
            } else {
                break;
            }
        }
        self.src[start..end]
            .parse::<u64>()
            .map_err(|e| format!("bad number: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_full_record() {
        let record = SpanRecord {
            stage: Some(Stage::ConfigSolve),
            patch: Some("42".to_owned()),
            file: Some("drivers/net/\"weird\".c".to_owned()),
            arch: Some("x86".to_owned()),
            config: Some("custom:CONFIG_FOO=y".to_owned()),
            host_us: 1234,
            virtual_us: 5_000_000,
            cache: Some(CacheOutcome::Hit),
        };
        let line = to_json_line(&record);
        assert_eq!(parse_line(&line), Ok(record));
    }

    #[test]
    fn round_trips_a_minimal_record() {
        let record = SpanRecord {
            stage: Some(Stage::Checkout),
            host_us: 9,
            ..SpanRecord::default()
        };
        let line = to_json_line(&record);
        assert_eq!(line, r#"{"stage":"checkout","host_us":9,"virtual_us":0}"#);
        assert_eq!(parse_line(&line), Ok(record));
    }

    #[test]
    fn rejects_unknown_stage_and_unknown_field() {
        assert!(parse_line(r#"{"stage":"warp","host_us":1,"virtual_us":0}"#)
            .unwrap_err()
            .contains("unknown stage"));
        assert!(parse_line(r#"{"stage":"check","bogus":"x","host_us":1,"virtual_us":0}"#)
            .unwrap_err()
            .contains("unknown field"));
        assert!(parse_line(r#"{"host_us":1,"virtual_us":0}"#)
            .unwrap_err()
            .contains("stage"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"stage":"check""#).is_err());
        assert!(parse_line(r#"{"stage":"check"} trailing"#).is_err());
    }

    #[test]
    fn parse_skips_blank_lines_and_reports_line_numbers() {
        let text = "\n{\"stage\":\"show\",\"host_us\":1,\"virtual_us\":0}\n\n";
        assert_eq!(parse(text).unwrap().len(), 1);
        let bad = "{\"stage\":\"show\",\"host_us\":1,\"virtual_us\":0}\nnope\n";
        assert!(parse(bad).unwrap_err().starts_with("line 2:"));
    }

    #[test]
    fn escapes_control_characters() {
        let record = SpanRecord {
            stage: Some(Stage::Show),
            file: Some("a\u{1}b\nc".to_owned()),
            ..SpanRecord::default()
        };
        let line = to_json_line(&record);
        assert!(line.contains("\\u0001"));
        assert!(line.contains("\\n"));
        assert_eq!(parse_line(&line).unwrap().file.as_deref(), Some("a\u{1}b\nc"));
    }
}
