//! Structured per-stage tracing and metrics for the JMake pipeline.
//!
//! A [`Tracer`] is a cheap-to-clone handle threaded through the driver, the
//! per-patch checker, and the build engine. When disabled (the default) every
//! operation is a no-op on an `Option::None` — no allocation, no clock read,
//! no lock — so a disabled tracer cannot perturb reports or the Fig. 4a
//! distributions. When enabled, each pipeline stage opens a [`Span`] that
//! records on drop (balanced even across panics) into two sinks at once:
//!
//! * a JSONL event log (one [`SpanRecord`] per line, schema in DESIGN.md §6);
//! * in-memory per-stage histograms surfaced as [`metrics::Metrics`].
//!
//! Two clocks appear on every span. `host_us` is real elapsed time measured
//! with `std::time::Instant`; `virtual_us` is the simulated kernel-build cost
//! charged to the deterministic virtual clock. Host time varies run to run,
//! virtual time must not.
//!
//! # Example
//!
//! ```
//! use jmake_trace::{CacheOutcome, Stage, Tracer, jsonl};
//!
//! let tracer = Tracer::in_memory();
//! {
//!     let mut span = tracer.span(Stage::ConfigSolve).with_arch("x86_64");
//!     span.set_virtual_us(2_400_000);
//!     span.set_cache(CacheOutcome::Miss);
//! } // recorded here, on drop
//!
//! let lines = tracer.jsonl_lines();
//! let record = jsonl::parse_line(&lines[0]).unwrap();
//! assert_eq!(record.stage, Some(Stage::ConfigSolve));
//! assert_eq!(record.virtual_us, 2_400_000);
//! assert!(tracer.balance().is_balanced());
//! ```

#![deny(missing_docs)]

pub mod jsonl;
pub mod metrics;
pub mod quantile;

use metrics::Metrics;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One pipeline stage. The wire names (see [`Stage::name`]) are the canonical
/// set documented in DESIGN.md §6; `jmake-eval trace-check` rejects any JSONL
/// line whose stage is not one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Materialize the commit's tree from the synthetic repository.
    Checkout,
    /// Produce the unified diff for the commit (`git show` analogue).
    Show,
    /// The whole per-patch check (umbrella over the stages below).
    Check,
    /// Preprocess + analyze + plan mutations for one changed file.
    MutationPlan,
    /// Solve (or fetch from cache) one kernel configuration.
    ConfigSolve,
    /// Generate `.i` preprocessed output for a batch of files.
    BuildI,
    /// Compile `.o` objects for one file.
    BuildO,
    /// Classify scan results into per-file coverage verdicts.
    Classify,
    /// Root-cause missed lines and verify synthesized config deltas
    /// (`jmake-fix`; only emitted when remediation is requested).
    Remediate,
    /// Greedy randconfig-portfolio selection over the reach analyzer's
    /// presence conditions (`covsel::select_portfolio`; only emitted when
    /// `--portfolio` is requested).
    Portfolio,
    /// A failed attempt was retried after exponential backoff; `virtual_us`
    /// carries the backoff charged to the virtual clock.
    Retry,
    /// A hung attempt was cancelled by the per-unit timeout; `virtual_us`
    /// carries the timeout budget the attempt consumed.
    Timeout,
    /// A cache shard served a corrupted entry and was taken out of service.
    Quarantine,
}

impl Stage {
    /// Every stage: the pipeline stages in order, then the recovery stages
    /// (`retry`, `timeout`, `quarantine`) emitted only under fault injection.
    pub const ALL: [Stage; 13] = [
        Stage::Checkout,
        Stage::Show,
        Stage::Check,
        Stage::MutationPlan,
        Stage::ConfigSolve,
        Stage::BuildI,
        Stage::BuildO,
        Stage::Classify,
        Stage::Remediate,
        Stage::Portfolio,
        Stage::Retry,
        Stage::Timeout,
        Stage::Quarantine,
    ];

    /// The canonical wire name used in JSONL and the metrics table.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Checkout => "checkout",
            Stage::Show => "show",
            Stage::Check => "check",
            Stage::MutationPlan => "mutation_plan",
            Stage::ConfigSolve => "config_solve",
            Stage::BuildI => "build_i",
            Stage::BuildO => "build_o",
            Stage::Classify => "classify",
            Stage::Remediate => "remediate",
            Stage::Portfolio => "portfolio",
            Stage::Retry => "retry",
            Stage::Timeout => "timeout",
            Stage::Quarantine => "quarantine",
        }
    }

    /// Inverse of [`Stage::name`].
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|s| s.name() == name)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a `config_solve` span was served by the configuration caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheOutcome {
    /// No shared cache attached to the engine; the solve ran locally.
    Off,
    /// Served by the engine's own per-patch memo; the shared cache was
    /// never consulted, so this counts in neither hits nor misses.
    Local,
    /// Shared-cache hit.
    Hit,
    /// Shared-cache miss — a fresh solve that was then published.
    Miss,
}

impl CacheOutcome {
    /// Wire name used in JSONL.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Off => "off",
            CacheOutcome::Local => "local",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }

    /// Inverse of [`CacheOutcome::name`].
    pub fn from_name(name: &str) -> Option<CacheOutcome> {
        [
            CacheOutcome::Off,
            CacheOutcome::Local,
            CacheOutcome::Hit,
            CacheOutcome::Miss,
        ]
        .into_iter()
        .find(|c| c.name() == name)
    }
}

/// One completed span, as written to the JSONL log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanRecord {
    /// The pipeline stage this span measured (always present on real spans;
    /// `None` only in hand-built defaults).
    pub stage: Option<Stage>,
    /// Patch (commit) identifier, if the span ran under a per-patch tracer.
    pub patch: Option<String>,
    /// Source file the stage operated on, when it is file-scoped.
    pub file: Option<String>,
    /// Architecture, for build-side stages.
    pub arch: Option<String>,
    /// Configuration kind key (`allyes`, `allmod`, `def`, `custom:…`).
    pub config: Option<String>,
    /// Real elapsed time in microseconds.
    pub host_us: u64,
    /// Simulated kernel-build cost charged to the virtual clock.
    pub virtual_us: u64,
    /// Cache outcome, only on `config_solve` spans.
    pub cache: Option<CacheOutcome>,
}

enum Sink {
    Memory(Vec<String>),
    File(BufWriter<File>),
}

struct Inner {
    sink: Mutex<Sink>,
    metrics: Mutex<Metrics>,
    opened: AtomicU64,
    closed: AtomicU64,
}

/// Open/closed span counters, for asserting that tracing is balanced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanBalance {
    /// Spans opened via [`Tracer::span`].
    pub opened: u64,
    /// Spans recorded (dropped) so far.
    pub closed: u64,
}

impl SpanBalance {
    /// True when every opened span has been recorded exactly once.
    pub fn is_balanced(&self) -> bool {
        self.opened == self.closed
    }
}

/// Handle for emitting spans. Clone freely; all clones share one sink.
///
/// The `patch` label (set by [`Tracer::for_patch_with`]) is carried by the
/// handle itself so every span opened through a per-patch clone is tagged
/// without the call sites having to know which patch they serve.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
    patch: Option<Arc<str>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.is_some())
            .field("patch", &self.patch)
            .finish()
    }
}

impl Tracer {
    /// The no-op tracer. Every span is free and records nothing.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Tracer that keeps JSONL lines in memory (for tests and `--metrics`
    /// without an event-log path).
    pub fn in_memory() -> Tracer {
        Tracer::with_sink(Sink::Memory(Vec::new()))
    }

    /// Tracer that streams JSONL to `path` (truncating any existing file).
    /// Missing parent directories are created, so `--trace target/x/t.jsonl`
    /// works on a fresh checkout.
    pub fn to_file(path: &Path) -> io::Result<Tracer> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(Tracer::with_sink(Sink::File(BufWriter::new(file))))
    }

    fn with_sink(sink: Sink) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                sink: Mutex::new(sink),
                metrics: Mutex::new(Metrics::default()),
                opened: AtomicU64::new(0),
                closed: AtomicU64::new(0),
            })),
            patch: None,
        }
    }

    /// True when spans are being recorded somewhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Clone of this tracer whose spans carry a patch label. The label
    /// closure is only evaluated when tracing is enabled, so disabled runs
    /// pay nothing for it.
    pub fn for_patch_with(&self, label: impl FnOnce() -> String) -> Tracer {
        match &self.inner {
            None => Tracer::default(),
            Some(inner) => Tracer {
                inner: Some(Arc::clone(inner)),
                patch: Some(Arc::from(label())),
            },
        }
    }

    /// Open a span for `stage`. Records on drop; attach detail with the
    /// `with_*` builders and `set_*` mutators before then.
    pub fn span(&self, stage: Stage) -> Span {
        match &self.inner {
            None => Span::noop(stage),
            Some(inner) => {
                inner.opened.fetch_add(1, Ordering::Relaxed);
                Span {
                    inner: Some(Arc::clone(inner)),
                    record: SpanRecord {
                        stage: Some(stage),
                        patch: self.patch.as_deref().map(str::to_owned),
                        ..SpanRecord::default()
                    },
                    start: Some(Instant::now()),
                    host_override_us: None,
                }
            }
        }
    }

    /// Record a named counter: added into the metrics snapshot and
    /// written to the sink as its own JSONL line (`{"counter":…,
    /// "value":…}`). No-op when disabled. Counters carry host-side
    /// bookkeeping (scheduler queue pressure, drop counts) that has no
    /// span to live on.
    pub fn counter(&self, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        {
            let mut metrics = inner.metrics.lock().expect("metrics poisoned");
            metrics.record_counter(name, value);
        }
        let line = jsonl::counter_line(name, value);
        match &mut *inner.sink.lock().expect("sink poisoned") {
            Sink::Memory(lines) => lines.push(line),
            Sink::File(writer) => {
                let _ = writeln!(writer, "{line}");
            }
        }
    }

    /// Snapshot of the per-stage histograms. Empty when disabled.
    pub fn metrics(&self) -> Metrics {
        match &self.inner {
            None => Metrics::default(),
            Some(inner) => inner.metrics.lock().expect("metrics poisoned").clone(),
        }
    }

    /// Span open/close counters.
    pub fn balance(&self) -> SpanBalance {
        match &self.inner {
            None => SpanBalance::default(),
            Some(inner) => SpanBalance {
                opened: inner.opened.load(Ordering::SeqCst),
                closed: inner.closed.load(Ordering::SeqCst),
            },
        }
    }

    /// The JSONL lines collected so far (in-memory sink only; a file sink
    /// returns an empty vec — read the file instead).
    pub fn jsonl_lines(&self) -> Vec<String> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => match &*inner.sink.lock().expect("sink poisoned") {
                Sink::Memory(lines) => lines.clone(),
                Sink::File(_) => Vec::new(),
            },
        }
    }

    /// Flush a file sink to disk. No-op for memory or disabled tracers.
    pub fn flush(&self) -> io::Result<()> {
        if let Some(inner) = &self.inner {
            if let Sink::File(writer) = &mut *inner.sink.lock().expect("sink poisoned") {
                writer.flush()?;
            }
        }
        Ok(())
    }
}

/// Guard for one in-flight stage. Records exactly once, on drop — including
/// during a panic unwind, which keeps the open/close counters balanced.
pub struct Span {
    inner: Option<Arc<Inner>>,
    record: SpanRecord,
    start: Option<Instant>,
    host_override_us: Option<u64>,
}

impl Span {
    fn noop(stage: Stage) -> Span {
        Span {
            inner: None,
            record: SpanRecord {
                stage: Some(stage),
                ..SpanRecord::default()
            },
            start: None,
            host_override_us: None,
        }
    }

    /// Tag the span with the source file it operates on.
    #[must_use]
    pub fn with_file(mut self, file: &str) -> Span {
        if self.inner.is_some() {
            self.record.file = Some(file.to_owned());
        }
        self
    }

    /// Tag the span with a target architecture.
    #[must_use]
    pub fn with_arch(mut self, arch: &str) -> Span {
        if self.inner.is_some() {
            self.record.arch = Some(arch.to_owned());
        }
        self
    }

    /// Tag the span with a configuration-kind key.
    #[must_use]
    pub fn with_config(mut self, config: &str) -> Span {
        if self.inner.is_some() {
            self.record.config = Some(config.to_owned());
        }
        self
    }

    /// Set the virtual-clock charge attributed to this span.
    pub fn set_virtual_us(&mut self, us: u64) {
        if self.inner.is_some() {
            self.record.virtual_us = us;
        }
    }

    /// Set the cache outcome (meaningful on `config_solve` spans).
    pub fn set_cache(&mut self, outcome: CacheOutcome) {
        if self.inner.is_some() {
            self.record.cache = Some(outcome);
        }
    }

    /// Close the span with an externally measured host duration instead of
    /// the span's own clock. The driver uses this so the exact same
    /// measurement feeds both `DriverStats` and the trace, making the two
    /// reconcile to the microsecond.
    pub fn finish_with_host_us(mut self, us: u64) {
        self.host_override_us = Some(us);
        // Drop records it.
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        self.record.host_us = match self.host_override_us {
            Some(us) => us,
            None => self
                .start
                .map(|s| s.elapsed().as_micros() as u64)
                .unwrap_or(0),
        };
        let record = std::mem::take(&mut self.record);
        {
            let mut metrics = inner.metrics.lock().expect("metrics poisoned");
            metrics.record(&record);
        }
        {
            let line = jsonl::to_json_line(&record);
            let mut sink = inner.sink.lock().expect("sink poisoned");
            match &mut *sink {
                Sink::Memory(lines) => lines.push(line),
                Sink::File(writer) => {
                    // Best effort: a full disk must not panic the pipeline.
                    let _ = writeln!(writer, "{line}");
                }
            }
        }
        inner.closed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        {
            let mut span = tracer.span(Stage::Check).with_file("a.c");
            span.set_virtual_us(123);
        }
        tracer.span(Stage::Checkout).finish_with_host_us(7);
        assert!(!tracer.is_enabled());
        assert_eq!(tracer.balance(), SpanBalance::default());
        assert!(tracer.metrics().stages().is_empty());
        assert!(tracer.jsonl_lines().is_empty());
    }

    #[test]
    fn spans_record_on_drop_and_stay_balanced() {
        let tracer = Tracer::in_memory();
        {
            let mut span = tracer
                .span(Stage::ConfigSolve)
                .with_arch("x86")
                .with_config("allyes");
            span.set_virtual_us(500);
            span.set_cache(CacheOutcome::Miss);
        }
        tracer.span(Stage::Checkout).finish_with_host_us(42);
        let balance = tracer.balance();
        assert!(balance.is_balanced());
        assert_eq!(balance.closed, 2);
        let lines = tracer.jsonl_lines();
        assert_eq!(lines.len(), 2);
        let first = jsonl::parse_line(&lines[0]).expect("valid jsonl");
        assert_eq!(first.stage, Some(Stage::ConfigSolve));
        assert_eq!(first.virtual_us, 500);
        assert_eq!(first.cache, Some(CacheOutcome::Miss));
        let second = jsonl::parse_line(&lines[1]).expect("valid jsonl");
        assert_eq!(second.stage, Some(Stage::Checkout));
        assert_eq!(second.host_us, 42);
    }

    #[test]
    fn span_records_even_when_dropped_during_panic() {
        let tracer = Tracer::in_memory();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = tracer.span(Stage::Check);
            panic!("boom");
        }));
        assert!(result.is_err());
        assert!(tracer.balance().is_balanced());
        assert_eq!(tracer.jsonl_lines().len(), 1);
    }

    #[test]
    fn for_patch_labels_every_span_from_the_clone() {
        let tracer = Tracer::in_memory();
        let patch = tracer.for_patch_with(|| "1234".to_owned());
        drop(patch.span(Stage::Show));
        let record = jsonl::parse_line(&tracer.jsonl_lines()[0]).unwrap();
        assert_eq!(record.patch.as_deref(), Some("1234"));
    }

    #[test]
    fn stage_names_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
        }
        assert_eq!(Stage::from_name("nonsense"), None);
    }
}
