//! The workspace's single ceil nearest-rank quantile implementation.
//!
//! Both `Cdf::quantile` (jmake-kbuild) and `StageMetrics::host_quantile_us`
//! (this crate) report quantiles under the same convention: the smallest
//! sample `v` such that at least a `q` fraction of samples are ≤ `v`, which
//! guarantees `fraction_at(quantile(q)) >= q` for every `q`. That contract
//! was fixed once (PR 2) after a round-based nearest rank undershot it;
//! keeping exactly one implementation here means the fix cannot drift
//! between copies.

/// Ceil nearest-rank quantile of `sorted` (ascending). `q` is clamped to
/// `[0, 1]`. Returns 0 when `sorted` is empty.
pub fn ceil_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_documented_convention() {
        let sorted = [10, 20, 30, 40];
        assert_eq!(ceil_nearest_rank(&sorted, 0.0), 10);
        assert_eq!(ceil_nearest_rank(&sorted, 0.25), 10);
        assert_eq!(ceil_nearest_rank(&sorted, 0.26), 20);
        assert_eq!(ceil_nearest_rank(&sorted, 0.5), 20);
        assert_eq!(ceil_nearest_rank(&sorted, 0.6), 30);
        assert_eq!(ceil_nearest_rank(&sorted, 1.0), 40);
    }

    #[test]
    fn clamps_q_and_handles_empty() {
        assert_eq!(ceil_nearest_rank(&[], 0.5), 0);
        assert_eq!(ceil_nearest_rank(&[7], -3.0), 7);
        assert_eq!(ceil_nearest_rank(&[7], 42.0), 7);
    }

    #[test]
    fn fraction_at_inverse_holds() {
        // fraction_at(quantile(q)) >= q — the PR-2 contract, asserted here
        // directly against the shared helper.
        for samples in [
            vec![10u64, 20, 30, 40],
            vec![7],
            vec![1, 1, 1, 2],
            vec![5, 1, 3, 9, 9, 2, 8],
            (0..100).map(|i| i * i).collect(),
        ] {
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for i in 0..=100 {
                let q = i as f64 / 100.0;
                let v = ceil_nearest_rank(&sorted, q);
                let frac =
                    sorted.partition_point(|&s| s <= v) as f64 / sorted.len() as f64;
                assert!(frac >= q, "fraction_at(quantile({q})) = {frac} over {sorted:?}");
            }
        }
    }
}
