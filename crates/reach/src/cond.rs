//! Symbolic preprocessor conditions and their three-valued evaluation.
//!
//! A presence condition is built from `Defined(NAME)` atoms — the only
//! question the kernel's configuration machinery can answer statically is
//! whether a macro is defined, and the `CONFIG_*` macro environment is a
//! pure function of the solved [`Config`] (`CONFIG_X` ⇔ `X=y`,
//! `CONFIG_X_MODULE` ⇔ `X=m`, see `Config::cpp_defines`). Everything the
//! parser cannot reduce to those atoms (arithmetic, comparisons, non-config
//! macros) becomes [`CondExpr::Unknown`], and evaluation is Kleene
//! three-valued so an `Unknown` leaf can still be absorbed by a decided
//! `&&`/`||` sibling.

use jmake_kconfig::{Config, Tristate};
use std::collections::BTreeSet;

/// Three-valued truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Definitely holds.
    True,
    /// Definitely does not hold.
    False,
    /// Cannot be decided statically.
    Unknown,
}

impl Truth {
    /// Kleene conjunction.
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    /// Lift a two-valued bool.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }
}

/// Kleene negation.
impl std::ops::Not for Truth {
    type Output = Truth;

    fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }
}

/// A symbolic conditional-compilation expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CondExpr {
    /// Constant truth (`#if 1`, a discharged include guard).
    True,
    /// Constant falsehood (`#if 0`).
    False,
    /// Statically undecidable (arithmetic, unexpanded macros, …).
    Unknown,
    /// `defined(NAME)`.
    Defined(String),
    /// Logical negation.
    Not(Box<CondExpr>),
    /// Logical conjunction.
    And(Box<CondExpr>, Box<CondExpr>),
    /// Logical disjunction.
    Or(Box<CondExpr>, Box<CondExpr>),
}

impl CondExpr {
    /// `defined(name)` atom.
    pub fn defined(name: impl Into<String>) -> CondExpr {
        CondExpr::Defined(name.into())
    }

    /// Negation with constant folding.
    pub fn negate(self) -> CondExpr {
        match self {
            CondExpr::True => CondExpr::False,
            CondExpr::False => CondExpr::True,
            CondExpr::Not(inner) => *inner,
            other => CondExpr::Not(Box::new(other)),
        }
    }

    /// Conjunction with constant folding.
    pub fn and(self, other: CondExpr) -> CondExpr {
        match (self, other) {
            (CondExpr::False, _) | (_, CondExpr::False) => CondExpr::False,
            (CondExpr::True, o) => o,
            (s, CondExpr::True) => s,
            (s, o) => CondExpr::And(Box::new(s), Box::new(o)),
        }
    }

    /// Disjunction with constant folding.
    pub fn or(self, other: CondExpr) -> CondExpr {
        match (self, other) {
            (CondExpr::True, _) | (_, CondExpr::True) => CondExpr::True,
            (CondExpr::False, o) => o,
            (s, CondExpr::False) => s,
            (s, o) => CondExpr::Or(Box::new(s), Box::new(o)),
        }
    }

    /// Evaluate under a solved configuration, mirroring the macro
    /// environment `preprocess_file` builds: `__KERNEL__` is always
    /// defined, `CONFIG_X` is defined exactly when `X=y`,
    /// `CONFIG_X_MODULE` exactly when `X=m`; any other name (including a
    /// bare `MODULE` that file-level analysis could not tie to a gating
    /// variable) is [`Truth::Unknown`].
    pub fn eval(&self, config: &Config) -> Truth {
        match self {
            CondExpr::True => Truth::True,
            CondExpr::False => Truth::False,
            CondExpr::Unknown => Truth::Unknown,
            CondExpr::Defined(name) => defined_under(config, name),
            CondExpr::Not(e) => !e.eval(config),
            CondExpr::And(a, b) => a.eval(config).and(b.eval(config)),
            CondExpr::Or(a, b) => a.eval(config).or(b.eval(config)),
        }
    }

    /// Evaluate under an explicit atom assignment (`name → defined?`);
    /// atoms outside the map evaluate through the usual constants
    /// (`__KERNEL__` true) or to [`Truth::Unknown`].
    pub fn eval_assignment(&self, assign: &std::collections::BTreeMap<String, bool>) -> Truth {
        match self {
            CondExpr::True => Truth::True,
            CondExpr::False => Truth::False,
            CondExpr::Unknown => Truth::Unknown,
            CondExpr::Defined(name) => match assign.get(name) {
                Some(b) => Truth::from_bool(*b),
                None if name == "__KERNEL__" => Truth::True,
                None => Truth::Unknown,
            },
            CondExpr::Not(e) => !e.eval_assignment(assign),
            CondExpr::And(a, b) => a.eval_assignment(assign).and(b.eval_assignment(assign)),
            CondExpr::Or(a, b) => a.eval_assignment(assign).or(b.eval_assignment(assign)),
        }
    }

    /// Collect the `Defined` atom names that actually need deciding
    /// (everything but the constant `__KERNEL__`).
    pub fn atoms(&self, out: &mut BTreeSet<String>) {
        match self {
            CondExpr::Defined(name) if name != "__KERNEL__" => {
                out.insert(name.clone());
            }
            CondExpr::Not(e) => e.atoms(out),
            CondExpr::And(a, b) | CondExpr::Or(a, b) => {
                a.atoms(out);
                b.atoms(out);
            }
            _ => {}
        }
    }

    /// True when an [`CondExpr::Unknown`] leaf occurs anywhere.
    pub fn has_unknown(&self) -> bool {
        match self {
            CondExpr::Unknown => true,
            CondExpr::Not(e) => e.has_unknown(),
            CondExpr::And(a, b) | CondExpr::Or(a, b) => a.has_unknown() || b.has_unknown(),
            _ => false,
        }
    }

    /// Replace every `Defined(from)` atom with `to`.
    pub fn substitute(&self, from: &str, to: &CondExpr) -> CondExpr {
        match self {
            CondExpr::Defined(name) if name == from => to.clone(),
            CondExpr::Not(e) => CondExpr::Not(Box::new(e.substitute(from, to))),
            CondExpr::And(a, b) => {
                CondExpr::And(Box::new(a.substitute(from, to)), Box::new(b.substitute(from, to)))
            }
            CondExpr::Or(a, b) => {
                CondExpr::Or(Box::new(a.substitute(from, to)), Box::new(b.substitute(from, to)))
            }
            other => other.clone(),
        }
    }
}

impl std::fmt::Display for CondExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CondExpr::True => write!(f, "1"),
            CondExpr::False => write!(f, "0"),
            CondExpr::Unknown => write!(f, "?"),
            CondExpr::Defined(n) => write!(f, "defined({n})"),
            CondExpr::Not(e) => write!(f, "!{e}"),
            CondExpr::And(a, b) => write!(f, "({a} && {b})"),
            CondExpr::Or(a, b) => write!(f, "({a} || {b})"),
        }
    }
}

/// Is the object macro `name` defined under `config`'s environment?
fn defined_under(config: &Config, name: &str) -> Truth {
    if name == "__KERNEL__" {
        return Truth::True;
    }
    if let Some(rest) = name.strip_prefix("CONFIG_") {
        if config.get(rest) == Tristate::Y {
            return Truth::True;
        }
        if let Some(base) = rest.strip_suffix("_MODULE") {
            if config.get(base) == Tristate::M {
                return Truth::True;
            }
        }
        return Truth::False;
    }
    // Non-config macro: may be defined by file-local `#define`s we do not
    // track.
    Truth::Unknown
}

/// Parse the controlling expression of `#<name> <rest>` into a
/// [`CondExpr`]; returns `None` for directives that do not open or
/// continue a conditional branch with an expression (`else`, `endif`,
/// `define`, …).
pub fn parse_directive(name: &str, rest: &str) -> Option<CondExpr> {
    match name {
        "ifdef" => Some(match first_ident(rest) {
            Some(id) => CondExpr::defined(id),
            None => CondExpr::Unknown,
        }),
        "ifndef" => Some(match first_ident(rest) {
            Some(id) => CondExpr::defined(id).negate(),
            None => CondExpr::Unknown,
        }),
        "if" | "elif" => Some(parse_if_expr(rest)),
        _ => None,
    }
}

fn first_ident(rest: &str) -> Option<String> {
    let t = rest.trim_start();
    let id: String = t
        .chars()
        .take_while(|c| *c == '_' || c.is_ascii_alphanumeric())
        .collect();
    if id.is_empty() || id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(id)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Not,
    AndAnd,
    OrOr,
    LParen,
    RParen,
    /// Anything else (comparison operators, arithmetic, commas…): the
    /// expression leaves the decidable fragment.
    Other,
}

fn tokenize(expr: &str) -> Vec<Tok> {
    let mut out = Vec::new();
    let chars: Vec<char> = expr.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Other);
                    i += 2;
                } else {
                    out.push(Tok::Not);
                    i += 1;
                }
            }
            '&' if chars.get(i + 1) == Some(&'&') => {
                out.push(Tok::AndAnd);
                i += 2;
            }
            '|' if chars.get(i + 1) == Some(&'|') => {
                out.push(Tok::OrOr);
                i += 2;
            }
            c if c == '_' || c.is_ascii_alphabetic() => {
                let mut id = String::new();
                while i < chars.len() && (chars[i] == '_' || chars[i].is_ascii_alphanumeric()) {
                    id.push(chars[i]);
                    i += 1;
                }
                out.push(Tok::Ident(id));
            }
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while i < chars.len() && chars[i].is_ascii_alphanumeric() {
                    n.push(chars[i]);
                    i += 1;
                }
                // `0x10`, `1UL` and friends parse by prefix digits only;
                // failures fall back to Unknown via Other.
                let digits: String = n.chars().take_while(|c| c.is_ascii_digit()).collect();
                match digits.parse::<i64>() {
                    Ok(v) if digits.len() == n.len() || n.to_ascii_lowercase().ends_with(['l', 'u'])
                        || n.to_ascii_lowercase().starts_with("0x") =>
                    {
                        // Hex re-parse for 0x forms.
                        if let Some(hex) = n.strip_prefix("0x").or_else(|| n.strip_prefix("0X")) {
                            match i64::from_str_radix(hex.trim_end_matches(['u', 'U', 'l', 'L']), 16)
                            {
                                Ok(h) => out.push(Tok::Int(h)),
                                Err(_) => out.push(Tok::Other),
                            }
                        } else {
                            out.push(Tok::Int(v));
                        }
                    }
                    _ => out.push(Tok::Other),
                }
            }
            _ => {
                out.push(Tok::Other);
                i += 1;
            }
        }
    }
    out
}

/// Parse an `#if`/`#elif` expression. Any construct outside the decidable
/// fragment (`defined`, `IS_ENABLED`, `!`, `&&`, `||`, parentheses,
/// integer literals, bare `CONFIG_*` identifiers) makes the whole
/// expression [`CondExpr::Unknown`] — conservative in both directions.
pub fn parse_if_expr(expr: &str) -> CondExpr {
    let toks = tokenize(expr);
    if toks.contains(&Tok::Other) {
        return CondExpr::Unknown;
    }
    let mut p = Parser { toks: &toks, pos: 0 };
    match p.parse_or() {
        Some(e) if p.pos == p.toks.len() => e,
        _ => CondExpr::Unknown,
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok) -> Option<()> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn parse_or(&mut self) -> Option<CondExpr> {
        let mut e = self.parse_and()?;
        while self.peek() == Some(&Tok::OrOr) {
            self.pos += 1;
            e = e.or(self.parse_and()?);
        }
        Some(e)
    }

    fn parse_and(&mut self) -> Option<CondExpr> {
        let mut e = self.parse_unary()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.pos += 1;
            e = e.and(self.parse_unary()?);
        }
        Some(e)
    }

    fn parse_unary(&mut self) -> Option<CondExpr> {
        if self.peek() == Some(&Tok::Not) {
            self.pos += 1;
            return Some(self.parse_unary()?.negate());
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Option<CondExpr> {
        match self.bump()? {
            Tok::LParen => {
                let e = self.parse_or()?;
                self.expect(&Tok::RParen)?;
                Some(e)
            }
            Tok::Int(v) => Some(if *v != 0 { CondExpr::True } else { CondExpr::False }),
            Tok::Ident(id) if id == "defined" => {
                // `defined(NAME)` or `defined NAME`.
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    let name = match self.bump()? {
                        Tok::Ident(n) => n.clone(),
                        _ => return None,
                    };
                    self.expect(&Tok::RParen)?;
                    Some(CondExpr::defined(name))
                } else {
                    match self.bump()? {
                        Tok::Ident(n) => Some(CondExpr::defined(n.clone())),
                        _ => None,
                    }
                }
            }
            Tok::Ident(id) if id == "IS_ENABLED" => {
                // `IS_ENABLED(CONFIG_X)` expands (via the Kbuild function
                // macro) to `(CONFIG_X)` — 1 exactly when the option is
                // built in, i.e. when the macro is defined.
                self.expect(&Tok::LParen)?;
                let name = match self.bump()? {
                    Tok::Ident(n) => n.clone(),
                    _ => return None,
                };
                self.expect(&Tok::RParen)?;
                Some(CondExpr::defined(name))
            }
            Tok::Ident(id) if id.starts_with("CONFIG_") => {
                // A bare CONFIG macro in `#if`: defined-as-1 or undefined
                // (hence 0), so truth coincides with definedness.
                Some(CondExpr::defined(id.clone()))
            }
            Tok::Ident(_) => {
                // Any other object macro could expand to anything.
                Some(CondExpr::Unknown)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmake_kconfig::Config;

    fn cfg(pairs: &[(&str, Tristate)]) -> Config {
        let mut c = Config::default();
        for (k, v) in pairs {
            c.set(*k, *v);
        }
        c
    }

    #[test]
    fn ifdef_and_ifndef() {
        assert_eq!(
            parse_directive("ifdef", "CONFIG_NET"),
            Some(CondExpr::defined("CONFIG_NET"))
        );
        assert_eq!(
            parse_directive("ifndef", "CONFIG_NET"),
            Some(CondExpr::defined("CONFIG_NET").negate())
        );
        assert_eq!(parse_directive("define", "X 1"), None);
    }

    #[test]
    fn if_expression_fragment() {
        let e = parse_if_expr("defined(CONFIG_A) && !defined(CONFIG_B)");
        let c = cfg(&[("A", Tristate::Y)]);
        assert_eq!(e.eval(&c), Truth::True);
        let c2 = cfg(&[("A", Tristate::Y), ("B", Tristate::Y)]);
        assert_eq!(e.eval(&c2), Truth::False);
    }

    #[test]
    fn if_zero_and_one() {
        assert_eq!(parse_if_expr("0"), CondExpr::False);
        assert_eq!(parse_if_expr("1"), CondExpr::True);
        assert_eq!(parse_if_expr("0x0"), CondExpr::False);
    }

    #[test]
    fn is_enabled_maps_to_defined() {
        let e = parse_if_expr("IS_ENABLED(CONFIG_NET)");
        assert_eq!(e, CondExpr::defined("CONFIG_NET"));
    }

    #[test]
    fn module_macro_definedness() {
        let c = cfg(&[("E1000", Tristate::M)]);
        assert_eq!(CondExpr::defined("CONFIG_E1000").eval(&c), Truth::False);
        assert_eq!(CondExpr::defined("CONFIG_E1000_MODULE").eval(&c), Truth::True);
        assert_eq!(CondExpr::defined("__KERNEL__").eval(&c), Truth::True);
        assert_eq!(CondExpr::defined("MODULE").eval(&c), Truth::Unknown);
    }

    #[test]
    fn arithmetic_is_unknown() {
        assert_eq!(parse_if_expr("PAGE_SIZE > 4096"), CondExpr::Unknown);
        assert_eq!(parse_if_expr("defined(CONFIG_A) && (X + 1)"), CondExpr::Unknown);
    }

    #[test]
    fn non_config_ident_is_unknown_but_absorbable() {
        // `0 && FOO` is decided even though FOO is unknown.
        let e = parse_if_expr("0 && FOO");
        assert_eq!(e, CondExpr::False);
        let e = parse_if_expr("1 || FOO");
        assert_eq!(e, CondExpr::True);
    }

    #[test]
    fn kleene_absorption_at_eval() {
        let e = parse_if_expr("FOO && !defined(CONFIG_A)");
        let c = cfg(&[("A", Tristate::Y)]);
        assert_eq!(e.eval(&c), Truth::False, "decided right arm absorbs unknown");
        let c2 = cfg(&[]);
        assert_eq!(e.eval(&c2), Truth::Unknown);
    }

    #[test]
    fn assignment_evaluation() {
        let e = parse_if_expr("defined(CONFIG_A) || defined(CONFIG_B)");
        let mut atoms = BTreeSet::new();
        e.atoms(&mut atoms);
        assert_eq!(atoms.len(), 2);
        let assign: std::collections::BTreeMap<String, bool> =
            [("CONFIG_A".to_string(), false), ("CONFIG_B".to_string(), true)]
                .into_iter()
                .collect();
        assert_eq!(e.eval_assignment(&assign), Truth::True);
    }

    #[test]
    fn substitution_rewrites_module() {
        let e = parse_if_expr("defined(MODULE) && defined(CONFIG_A)");
        let sub = e.substitute("MODULE", &CondExpr::defined("CONFIG_E1000_MODULE"));
        let c = cfg(&[("E1000", Tristate::M), ("A", Tristate::Y)]);
        assert_eq!(sub.eval(&c), Truth::True);
    }
}
