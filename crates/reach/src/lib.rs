//! `jmake-reach`: variability-aware reachability for a Kbuild tree.
//!
//! The mutation pipeline (paper §III) answers "was this changed line ever
//! seen by the compiler?" *dynamically*, by running configurations. This
//! crate answers the same question *statically*, without a single build:
//! for every line of every `.c`/`.h` file it derives a **presence
//! condition** — the conjunction of
//!
//! 1. the Kbuild guard chain reaching the file (`obj-$(CONFIG_X) += …`
//!    along the Makefile descent path, via [`jmake_kbuild::ObjGraph`]
//!    semantics), and
//! 2. the stack of nested `#if`/`#ifdef`/`#elif`/`#else` conditions
//!    around the line ([`file::analyze_file`]),
//!
//! and then decides satisfiability of that condition against the
//! [`KconfigModel`] using the conjunction solver
//! ([`KconfigModel::solve_conjunction`]). Every line is classified
//!
//! - [`ReachClass::AllyesReachable`] — present under an `allyesconfig`
//!   environment (JMake's first try);
//! - [`ReachClass::ConditionallyReachable`] — present under some other
//!   environment or a solver witness, or undecidable (conservative);
//! - [`ReachClass::Dead`] — provably never seen by any compiler
//!   invocation, with a proof tag.
//!
//! # Soundness contract
//!
//! `Dead` is the load-bearing verdict: the cross-check
//! (`jmake-eval --cross-check`) fails CI if a statically-dead line is ever
//! covered dynamically. The classifier therefore only emits `Dead` when
//! the whole decision was exact: every atom of the condition is a
//! `CONFIG_*` macro, the Kbuild chain is simple enough to pin, and every
//! satisfying atom assignment carries a *hard* unsatisfiability proof
//! ([`DeadnessProof::Undeclared`], [`DeadnessProof::DeadSymbol`],
//! [`DeadnessProof::ChoiceConflict`]) or is internally contradictory.
//! Anything fuzzy — unknown macros, arithmetic `#if`s, unlisted files,
//! headers nobody includes, solver exhaustion — degrades to
//! `ConditionallyReachable { witness: None }`, never to `Dead`.
//!
//! # Example
//!
//! ```
//! use jmake_kbuild::{BuildEngine, ConfigKind, SourceTree};
//! use jmake_reach::{Reach, ReachEnv};
//!
//! let mut tree = SourceTree::new();
//! tree.insert("Kconfig", "config DRV\n\tbool \"drv\"\n");
//! tree.insert("arch/x86_64/Kconfig", "config X86_64\n\tdef_bool y\n");
//! tree.insert("Makefile", "obj-y += drivers/\n");
//! tree.insert("drivers/Makefile", "obj-$(CONFIG_DRV) += drv.o\n");
//! tree.insert(
//!     "drivers/drv.c",
//!     "#ifdef CONFIG_NEVER\nint dead;\n#endif\nint live;\n",
//! );
//!
//! // Solve allyesconfig once; its model doubles as the solver's input.
//! let mut engine = BuildEngine::new(tree.clone());
//! let allyes = engine.make_config("x86_64", &ConfigKind::AllYes).unwrap();
//!
//! let mut reach = Reach::new(&tree);
//! reach.add_model("x86_64", allyes.model.clone());
//! reach.add_env(ReachEnv {
//!     label: "x86_64-allyes".to_string(),
//!     arch: "x86_64".to_string(),
//!     config: allyes.config.clone(),
//!     allyes: true,
//! });
//! let report = reach.analyze();
//! let drv = &report.files["drivers/drv.c"];
//! // CONFIG_NEVER is declared nowhere: line 2 is provably dead.
//! assert!(drv.class(2).unwrap().is_dead());
//! assert_eq!(drv.class(4).unwrap().label(), "allyes");
//! ```

#![deny(missing_docs)]
pub mod cond;
pub mod file;

pub use cond::{CondExpr, Truth};
pub use file::{analyze_file, FileAnalysis, IncludeRef};

use jmake_kbuild::tree::{dir_of, file_name, SourceTree};
use jmake_kbuild::{Cond, Makefile, ObjGraph};
use jmake_kconfig::{Config, ConjunctionVerdict, DeadnessProof, KconfigModel, Tristate};
use std::collections::{BTreeMap, BTreeSet};

/// Cap on enumerated condition atoms: 2^8 assignments per condition.
const MAX_ATOMS: usize = 8;
/// Cap on Kbuild chain variables folded into the `MODULE` substitution.
const MAX_MODULE_CHAIN: usize = 3;

/// A concrete configuration that realizes a line, attached to
/// [`ReachClass::ConditionallyReachable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Witness {
    /// One of the analyzer's named environments reaches the line.
    Env(String),
    /// A solver witness: pin these symbols to these values and complete
    /// the configuration with [`KconfigModel::solve_conjunction`].
    Pins(BTreeMap<String, Tristate>),
}

/// Static verdict for one physical source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReachClass {
    /// Present under an allyes environment: a mutation here must be
    /// detected by the very first configuration JMake tries.
    AllyesReachable,
    /// Present under some configuration (`witness`), or not provably
    /// anything (`witness: None` — the conservative default).
    ConditionallyReachable {
        /// How to reach the line, when the analyzer knows.
        witness: Option<Witness>,
    },
    /// No configuration ever lets the compiler see this line.
    Dead {
        /// Human-readable proof tag (`constant-false`,
        /// `undeclared symbol X`, …).
        proof: String,
    },
}

impl ReachClass {
    /// True for [`ReachClass::Dead`].
    pub fn is_dead(&self) -> bool {
        matches!(self, ReachClass::Dead { .. })
    }

    /// Stable short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ReachClass::AllyesReachable => "allyes",
            ReachClass::ConditionallyReachable { .. } => "conditional",
            ReachClass::Dead { .. } => "dead",
        }
    }
}

/// A named, solved configuration the analyzer checks lines against.
#[derive(Debug, Clone)]
pub struct ReachEnv {
    /// Report label, e.g. `x86_64-allyes`.
    pub label: String,
    /// Architecture the configuration belongs to (selects the include
    /// search path `arch/<arch>/include`).
    pub arch: String,
    /// The solved configuration.
    pub config: Config,
    /// Whether this is an allyes-class environment (phase A).
    pub allyes: bool,
}

/// Per-file classification result.
#[derive(Debug, Clone)]
pub struct FileReach {
    /// Tree-relative path.
    pub path: String,
    /// One class per physical line (index = line − 1).
    pub classes: Vec<ReachClass>,
}

impl FileReach {
    /// Class of 1-based physical `line`.
    pub fn class(&self, line: u32) -> Option<&ReachClass> {
        self.classes.get(line as usize - 1)
    }

    /// (allyes, conditional, dead) line counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for cls in &self.classes {
            match cls {
                ReachClass::AllyesReachable => c.0 += 1,
                ReachClass::ConditionallyReachable { .. } => c.1 += 1,
                ReachClass::Dead { .. } => c.2 += 1,
            }
        }
        c
    }
}

/// Whole-tree classification.
#[derive(Debug, Clone, Default)]
pub struct TreeReach {
    /// Path → per-line classes, in path order.
    pub files: BTreeMap<String, FileReach>,
    /// Labels of the environments the analysis ran against.
    pub env_labels: Vec<String>,
}

impl TreeReach {
    /// Tree-wide (allyes, conditional, dead) line counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for f in self.files.values() {
            let c = f.counts();
            t.0 += c.0;
            t.1 += c.1;
            t.2 += c.2;
        }
        t
    }

    /// Deterministic JSON summary: per-file counts plus every dead line
    /// with its proof. Byte-identical across runs on the same input.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"envs\": [");
        for (i, l) in self.env_labels.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(l));
        }
        out.push_str("],\n  \"files\": {\n");
        let mut first = true;
        for (path, fr) in &self.files {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let (a, c, d) = fr.counts();
            out.push_str(&format!(
                "    {}: {{\"allyes\": {a}, \"conditional\": {c}, \"dead\": {d}, \"dead_lines\": [",
                json_string(path)
            ));
            let mut firstd = true;
            for (idx, cls) in fr.classes.iter().enumerate() {
                if let ReachClass::Dead { proof } = cls {
                    if !firstd {
                        out.push_str(", ");
                    }
                    firstd = false;
                    out.push_str(&format!(
                        "{{\"line\": {}, \"proof\": {}}}",
                        idx + 1,
                        json_string(proof)
                    ));
                }
            }
            out.push_str("]}");
        }
        let (a, c, d) = self.counts();
        out.push_str(&format!(
            "\n  }},\n  \"total\": {{\"allyes\": {a}, \"conditional\": {c}, \"dead\": {d}}}\n}}\n"
        ));
        out
    }
}

/// JSON string literal with escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The whole-tree reachability analyzer.
pub struct Reach<'t> {
    tree: &'t SourceTree,
    graph: ObjGraph<'t>,
    /// (arch, model); index 0 is the primary model used for files outside
    /// `arch/`.
    models: Vec<(String, KconfigModel)>,
    envs: Vec<ReachEnv>,
}

impl<'t> Reach<'t> {
    /// Analyzer over `tree` with no models or environments yet.
    pub fn new(tree: &'t SourceTree) -> Self {
        Reach {
            tree,
            graph: ObjGraph::new(tree),
            models: Vec::new(),
            envs: Vec::new(),
        }
    }

    /// Register the Kconfig model for `arch`. The first registration is
    /// the primary model (used for non-`arch/` files).
    pub fn add_model(&mut self, arch: impl Into<String>, model: KconfigModel) {
        self.models.push((arch.into(), model));
    }

    /// Register a solved environment to check lines against.
    pub fn add_env(&mut self, env: ReachEnv) {
        self.envs.push(env);
    }

    /// Classify every line of every `.c`/`.h` file.
    pub fn analyze(&self) -> TreeReach {
        self.analyze_paths(None)
    }

    /// Classify only the listed files (paths not ending in `.c`/`.h` or
    /// absent from the tree are silently skipped). The include-closure and
    /// Kbuild reasoning still consider the whole tree, so the verdicts are
    /// identical to the corresponding entries of [`Reach::analyze`] — this
    /// only skips the per-line classification cost of unrequested files.
    pub fn analyze_files(&self, only: &[String]) -> TreeReach {
        let set: BTreeSet<String> = only.iter().cloned().collect();
        self.analyze_paths(Some(&set))
    }

    /// The `#if`-stack presence condition of 1-based `line` in `path`,
    /// with the `MODULE` macro substituted by its Kbuild-derived symbolic
    /// truth (for simple-chain `.c` files). `None` when the file is
    /// missing, the line is out of range, or its conditional stack is
    /// unbalanced — the same cases the classifier treats conservatively.
    ///
    /// This is the remediator's entry point: the condition's atoms are
    /// what a config delta must satisfy for the compiler to see the line.
    pub fn line_condition(&self, path: &str, line: u32) -> Option<CondExpr> {
        let src = self.tree.get(path)?;
        let fa = analyze_file(src);
        if !fa.balanced {
            return None;
        }
        let raw = fa.conds.get(line.checked_sub(1)? as usize)?;
        let is_c = path.ends_with(".c");
        let module_expr = if is_c {
            self.module_expr(&self.chain_of(path))
        } else {
            None
        };
        Some(match &module_expr {
            Some(m) => raw.substitute("MODULE", m),
            None => raw.clone(),
        })
    }

    /// End-to-end presence of `line` in `path` under a candidate
    /// configuration: the `#if` stack must evaluate to definitely-true
    /// and, for a `.c` file, the Kbuild guard chain must open the
    /// translation unit. Headers only check the condition (whether some
    /// compiled unit includes them is the build engine's job — the
    /// remediation driver verifies that by actually re-running the trial).
    pub fn line_present(&self, path: &str, line: u32, cfg: &Config) -> bool {
        let Some(cond) = self.line_condition(path, line) else {
            return false;
        };
        let gate_ok = !path.ends_with(".c") || self.graph.gating_value(path, cfg).enabled();
        gate_ok && cond.eval(cfg) == Truth::True
    }

    /// The Kconfig model governing `path` (the arch-specific model for
    /// files under `arch/<a>/`, else the primary model), with its arch
    /// name. `None` when no model is registered.
    pub fn model_for(&self, path: &str) -> Option<(&str, &KconfigModel)> {
        let i = self.model_idx_for(path)?;
        let (arch, model) = &self.models[i];
        Some((arch.as_str(), model))
    }

    fn analyze_paths(&self, only: Option<&BTreeSet<String>>) -> TreeReach {
        let sources: Vec<String> = self
            .tree
            .iter()
            .map(|(p, _)| p.to_string())
            .filter(|p| p.ends_with(".c") || p.ends_with(".h"))
            .collect();
        let fas: BTreeMap<String, FileAnalysis> = sources
            .iter()
            .map(|p| (p.clone(), analyze_file(self.tree.get(p).unwrap_or(""))))
            .collect();
        // Per environment, the set of files pulled in by `#include` from
        // some compiled translation unit (transitively, along includes
        // whose conditions hold).
        let included: Vec<BTreeSet<String>> = self
            .envs
            .iter()
            .map(|env| self.must_included(env, &sources, &fas))
            .collect();
        // Over-approximation of "some configuration pulls this file in by
        // `#include`": every include directive in the tree whose condition
        // is not constant-false, resolved under every registered arch,
        // regardless of whether the includer itself is reachable. A Dead
        // proof that rests on the Kbuild gate barring a translation unit
        // is only sound when no `#include` can open the file text behind
        // the gate's back — and that question ranges over all
        // configurations, not just the environments in `included` (an
        // include guarded by `#ifndef CONFIG_X` is invisible to allyes
        // environments yet very much alive when X is off).
        let maybe_included: BTreeSet<String> = {
            let arches: BTreeSet<&str> = self
                .envs
                .iter()
                .map(|e| e.arch.as_str())
                .chain(self.models.iter().map(|(a, _)| a.as_str()))
                .collect();
            let mut out = BTreeSet::new();
            for (path, fa) in &fas {
                for inc in &fa.includes {
                    if inc.cond == CondExpr::False {
                        continue;
                    }
                    for arch in &arches {
                        if let Some(r) =
                            self.resolve_include(path, &inc.path, inc.quoted, arch)
                        {
                            out.insert(r);
                        }
                    }
                }
            }
            out
        };

        let mut solver_memo: BTreeMap<(usize, BTreeMap<String, Tristate>), ConjunctionVerdict> =
            BTreeMap::new();
        let mut files = BTreeMap::new();
        for path in &sources {
            if only.is_some_and(|set| !set.contains(path)) {
                continue;
            }
            let fa = &fas[path];
            let fr =
                self.classify_file(path, fa, &included, &maybe_included, &mut solver_memo);
            files.insert(path.clone(), fr);
        }
        TreeReach {
            files,
            env_labels: self.envs.iter().map(|e| e.label.clone()).collect(),
        }
    }

    /// Files transitively `#include`d (conditions holding under `env`)
    /// from any translation unit the env compiles.
    fn must_included(
        &self,
        env: &ReachEnv,
        sources: &[String],
        fas: &BTreeMap<String, FileAnalysis>,
    ) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<String> = sources
            .iter()
            .filter(|p| p.ends_with(".c"))
            .filter(|p| self.graph.gating_value(p, &env.config).enabled())
            .cloned()
            .collect();
        while let Some(p) = stack.pop() {
            let Some(fa) = fas.get(&p) else { continue };
            for inc in &fa.includes {
                if inc.cond.eval(&env.config) != Truth::True {
                    continue;
                }
                if let Some(r) = self.resolve_include(&p, &inc.path, inc.quoted, &env.arch) {
                    if seen.insert(r.clone()) {
                        stack.push(r);
                    }
                }
            }
        }
        seen
    }

    /// Mirror of the build engine's include resolution: quoted includes
    /// try the including directory first, then the search paths
    /// (`include`, `arch/<arch>/include`), then the bare path.
    fn resolve_include(
        &self,
        includer: &str,
        path: &str,
        quoted: bool,
        arch: &str,
    ) -> Option<String> {
        let mut candidates = Vec::new();
        if quoted {
            let dir = dir_of(includer);
            if dir.is_empty() {
                candidates.push(path.to_string());
            } else {
                candidates.push(format!("{dir}/{path}"));
            }
        }
        candidates.push(format!("include/{path}"));
        candidates.push(format!("arch/{arch}/include/{path}"));
        candidates.push(path.to_string());
        candidates
            .into_iter()
            .map(|c| normalize(&c))
            .find(|c| self.tree.contains(c))
    }

    /// Model index for `path`: the arch-specific model for files under
    /// `arch/<a>/`, otherwise the primary model.
    fn model_idx_for(&self, path: &str) -> Option<usize> {
        if let Some(rest) = path.strip_prefix("arch/") {
            if let Some(a) = rest.split('/').next() {
                if let Some(i) = self.models.iter().position(|(arch, _)| arch == a) {
                    return Some(i);
                }
            }
        }
        if self.models.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn classify_file(
        &self,
        path: &str,
        fa: &FileAnalysis,
        included: &[BTreeSet<String>],
        maybe_included: &BTreeSet<String>,
        solver_memo: &mut BTreeMap<(usize, BTreeMap<String, Tristate>), ConjunctionVerdict>,
    ) -> FileReach {
        let conservative = || FileReach {
            path: path.to_string(),
            classes: vec![
                ReachClass::ConditionallyReachable { witness: None };
                fa.conds.len()
            ],
        };
        if !fa.balanced {
            return conservative();
        }
        let is_c = path.ends_with(".c");
        let chain = if is_c { self.chain_of(path) } else { Chain::Complex };
        if is_c && matches!(chain, Chain::Never) {
            // The Makefile chain contains an unconditional dead guard
            // (`obj-n`/never-descended directory): the build system never
            // opens this translation unit. A line could still be reached
            // through `#include` of the .c file under *some* configuration
            // — not necessarily one of the registered environments — so
            // the whole-file proof stands only when no include directive
            // anywhere can resolve to this path.
            if !maybe_included.contains(path) {
                return FileReach {
                    path: path.to_string(),
                    classes: vec![
                        ReachClass::Dead {
                            proof: "never-built".to_string()
                        };
                        fa.conds.len()
                    ],
                };
            }
        }
        let module_expr = if is_c { self.module_expr(&chain) } else { None };

        let mut memo: BTreeMap<CondExpr, ReachClass> = BTreeMap::new();
        let mut classes = Vec::with_capacity(fa.conds.len());
        for raw in &fa.conds {
            let cond = match &module_expr {
                Some(m) => raw.substitute("MODULE", m),
                None => raw.clone(),
            };
            if let Some(c) = memo.get(&cond) {
                classes.push(c.clone());
                continue;
            }
            let class = self.classify_cond(
                path,
                is_c,
                &cond,
                &chain,
                included,
                maybe_included.contains(path),
                solver_memo,
            );
            memo.insert(cond, class.clone());
            classes.push(class);
        }
        FileReach {
            path: path.to_string(),
            classes,
        }
    }

    /// Is the line guarded by `cond` in `path` present under `env`? For a
    /// `.c` file the translation unit must be compiled (or the file
    /// itself included from one); headers must be included.
    fn present_under(
        &self,
        path: &str,
        is_c: bool,
        cond: &CondExpr,
        env_idx: usize,
        included: &[BTreeSet<String>],
    ) -> bool {
        let env = &self.envs[env_idx];
        let file_open = if is_c {
            self.graph.gating_value(path, &env.config).enabled()
                || included[env_idx].contains(path)
        } else {
            included[env_idx].contains(path)
        };
        file_open && cond.eval(&env.config) == Truth::True
    }

    #[allow(clippy::too_many_arguments)]
    fn classify_cond(
        &self,
        path: &str,
        is_c: bool,
        cond: &CondExpr,
        chain: &Chain,
        included: &[BTreeSet<String>],
        bypassable: bool,
        solver_memo: &mut BTreeMap<(usize, BTreeMap<String, Tristate>), ConjunctionVerdict>,
    ) -> ReachClass {
        if *cond == CondExpr::False {
            return ReachClass::Dead {
                proof: "constant-false".to_string(),
            };
        }
        // Phase A: present under an allyes environment.
        for (i, env) in self.envs.iter().enumerate() {
            if env.allyes && self.present_under(path, is_c, cond, i, included) {
                return ReachClass::AllyesReachable;
            }
        }
        // Phase B: present under any other environment.
        for (i, env) in self.envs.iter().enumerate() {
            if !env.allyes && self.present_under(path, is_c, cond, i, included) {
                return ReachClass::ConditionallyReachable {
                    witness: Some(Witness::Env(env.label.clone())),
                };
            }
        }
        // Phase C: enumerate atom assignments and ask the conjunction
        // solver for a witness — only exact for simple `.c` chains.
        if !is_c {
            return ReachClass::ConditionallyReachable { witness: None };
        }
        self.classify_by_solver(path, cond, chain, bypassable, solver_memo)
    }

    fn classify_by_solver(
        &self,
        path: &str,
        cond: &CondExpr,
        chain: &Chain,
        bypassable: bool,
        solver_memo: &mut BTreeMap<(usize, BTreeMap<String, Tristate>), ConjunctionVerdict>,
    ) -> ReachClass {
        let conservative = ReachClass::ConditionallyReachable { witness: None };
        if cond.has_unknown() {
            return conservative;
        }
        let mut atoms = BTreeSet::new();
        cond.atoms(&mut atoms);
        if atoms.iter().any(|a| !a.starts_with("CONFIG_")) || atoms.len() > MAX_ATOMS {
            return conservative;
        }
        let Some(model_idx) = self.model_idx_for(path) else {
            return conservative;
        };
        // Gate pins are only posed for simple chains that no `#include`
        // can bypass; if another translation unit may open the file text
        // directly, the gate need not hold for the line to be compiled.
        // For complex/unlisted/bypassable shapes the solver sees the
        // condition atoms alone, so a hard proof there is about the
        // condition itself and stays sound regardless of what the gate
        // would have added. (The witness end-to-end check below still
        // demands the gate, so dropping the pins only ever degrades a
        // verdict to the conservative class, never inflates it.)
        let chain_vars: &[String] = match chain {
            Chain::Simple(v) if !bypassable => v,
            _ => &[],
        };

        let atom_list: Vec<&String> = atoms.iter().collect();
        let model = &self.models[model_idx].1;
        let mut viable = 0usize;
        let mut hard = 0usize;
        let mut first_proof: Option<String> = None;
        for mask in 0u32..(1u32 << atom_list.len()) {
            let assign: BTreeMap<String, bool> = atom_list
                .iter()
                .enumerate()
                .map(|(i, a)| ((*a).clone(), mask & (1 << i) != 0))
                .collect();
            if cond.eval_assignment(&assign) != Truth::True {
                continue;
            }
            viable += 1;
            match self.try_assignment(
                path, cond, &assign, chain_vars, model_idx, model, solver_memo,
            ) {
                Attempt::Witness(pins) => {
                    return ReachClass::ConditionallyReachable {
                        witness: Some(Witness::Pins(pins)),
                    };
                }
                Attempt::Hard(proof) => {
                    hard += 1;
                    first_proof.get_or_insert(proof);
                }
                Attempt::Soft => {}
            }
        }
        if viable == 0 {
            return ReachClass::Dead {
                proof: "unsatisfiable-conditional-stack".to_string(),
            };
        }
        if hard == viable {
            return ReachClass::Dead {
                proof: first_proof.unwrap_or_else(|| "unsatisfiable".to_string()),
            };
        }
        conservative
    }

    #[allow(clippy::too_many_arguments)]
    fn try_assignment(
        &self,
        path: &str,
        cond: &CondExpr,
        assign: &BTreeMap<String, bool>,
        chain_vars: &[String],
        model_idx: usize,
        model: &KconfigModel,
        solver_memo: &mut BTreeMap<(usize, BTreeMap<String, Tristate>), ConjunctionVerdict>,
    ) -> Attempt {
        // Allowed-value sets per symbol, as bitmasks over {N, M, Y}.
        const N: u8 = 1;
        const M: u8 = 2;
        const Y: u8 = 4;
        let mut allowed: BTreeMap<String, u8> = BTreeMap::new();
        let constrain = |sym: String, set: u8, allowed: &mut BTreeMap<String, u8>| -> bool {
            let slot = allowed.entry(sym).or_insert(N | M | Y);
            *slot &= set;
            *slot != 0
        };
        for (atom, val) in assign {
            let rest = atom.strip_prefix("CONFIG_").unwrap_or(atom);
            // `CONFIG_FOO_MODULE` usually means "FOO built as a module",
            // unless the model really declares a symbol named FOO_MODULE.
            let module_form = rest
                .strip_suffix("_MODULE")
                .filter(|base| !model.is_declared(rest) && !base.is_empty());
            let ok = match (module_form, val) {
                (Some(base), true) => constrain(base.to_string(), M, &mut allowed),
                (Some(base), false) => constrain(base.to_string(), N | Y, &mut allowed),
                (None, true) => constrain(rest.to_string(), Y, &mut allowed),
                (None, false) => constrain(rest.to_string(), N | M, &mut allowed),
            };
            if !ok {
                return Attempt::Hard(format!("contradictory constraints on {rest}"));
            }
        }
        // The translation unit must be compiled: every chain variable ≥ m.
        for var in chain_vars {
            if !constrain(var.clone(), M | Y, &mut allowed) {
                return Attempt::Hard(format!("gate conflict on {var}"));
            }
        }
        // Turn allowed-sets into exact pins. {M,Y} symbols get two
        // candidate fills (all-Y, then all-M).
        let mut base: BTreeMap<String, Tristate> = BTreeMap::new();
        let mut flexible: Vec<String> = Vec::new();
        for (sym, set) in &allowed {
            match *set {
                x if x == Y => {
                    base.insert(sym.clone(), Tristate::Y);
                }
                x if x == M => {
                    base.insert(sym.clone(), Tristate::M);
                }
                x if x == N => {
                    base.insert(sym.clone(), Tristate::N);
                }
                x if x == N | M => {
                    // "not y": pinning n is a sound strengthening for the
                    // witness search (a miss degrades to conservative,
                    // never to a false Dead — hard proofs fire only on
                    // enabled pins).
                    base.insert(sym.clone(), Tristate::N);
                }
                x if x == M | Y => flexible.push(sym.clone()),
                // {N,Y} or unconstrained: leave unpinned.
                _ => {}
            }
        }
        let mut candidates: Vec<BTreeMap<String, Tristate>> = Vec::new();
        if flexible.is_empty() {
            candidates.push(base);
        } else {
            for fill in [Tristate::Y, Tristate::M] {
                let mut pins = base.clone();
                for sym in &flexible {
                    pins.insert(sym.clone(), fill);
                }
                candidates.push(pins);
            }
        }

        let mut hard = 0usize;
        let mut first_proof: Option<String> = None;
        let total = candidates.len();
        for pins in candidates {
            let verdict = solver_memo
                .entry((model_idx, pins.clone()))
                .or_insert_with(|| model.solve_conjunction(&pins))
                .clone();
            match verdict {
                ConjunctionVerdict::Witness(cfg) => {
                    // Concrete end-to-end verification before trusting it.
                    if cond.eval(&cfg) == Truth::True
                        && self.graph.gating_value(path, &cfg).enabled()
                    {
                        return Attempt::Witness(pins);
                    }
                }
                ConjunctionVerdict::Dead(DeadnessProof::Exhausted) => {}
                ConjunctionVerdict::Dead(proof) => {
                    hard += 1;
                    first_proof.get_or_insert(proof.to_string());
                }
            }
        }
        if hard == total {
            Attempt::Hard(first_proof.unwrap_or_else(|| "unsatisfiable".to_string()))
        } else {
            Attempt::Soft
        }
    }

    /// The Kbuild guard chain for a `.c` file, reduced to its simple form
    /// when every level is a single `Always`/`Config` guard.
    fn chain_of(&self, c_path: &str) -> Chain {
        let dir = dir_of(c_path);
        let Some(mk) = Makefile::of_dir(self.tree, dir) else {
            return Chain::Unlisted;
        };
        let object = object_of(c_path);
        let own = mk.conds_for_object(&object);
        if own.is_empty() {
            return Chain::Unlisted;
        }
        let mut vars: Vec<String> = Vec::new();
        if !absorb_level(&own, &mut vars) {
            return match single_never(&own) {
                true => Chain::Never,
                false => Chain::Complex,
            };
        }
        let mut current = dir;
        while !current.is_empty() {
            let parent = dir_of(current);
            let name = file_name(current);
            match Makefile::of_dir(self.tree, parent) {
                Some(pmk) => {
                    let conds = pmk.conds_for_subdir(name);
                    if conds.is_empty() {
                        if !is_structural(parent) {
                            return Chain::Never;
                        }
                    } else if !absorb_level(&conds, &mut vars) {
                        return match single_never(&conds) {
                            true => Chain::Never,
                            false => Chain::Complex,
                        };
                    }
                }
                None => {
                    if !is_structural(parent) {
                        return Chain::Never;
                    }
                }
            }
            current = parent;
        }
        vars.sort();
        vars.dedup();
        Chain::Simple(vars)
    }

    /// The symbolic truth of the `MODULE` macro for a file with the given
    /// chain: the build engine defines `MODULE` exactly when the gating
    /// value is `m`, i.e. all chain guards are enabled and not all are
    /// built-in.
    fn module_expr(&self, chain: &Chain) -> Option<CondExpr> {
        match chain {
            Chain::Simple(vars) if vars.is_empty() => Some(CondExpr::False),
            Chain::Simple(vars) if vars.len() <= MAX_MODULE_CHAIN => {
                let enabled = vars.iter().fold(CondExpr::True, |acc, v| {
                    acc.and(
                        CondExpr::defined(format!("CONFIG_{v}"))
                            .or(CondExpr::defined(format!("CONFIG_{v}_MODULE"))),
                    )
                });
                let all_builtin = vars.iter().fold(CondExpr::True, |acc, v| {
                    acc.and(CondExpr::defined(format!("CONFIG_{v}")))
                });
                Some(enabled.and(all_builtin.negate()))
            }
            _ => None,
        }
    }
}

enum Attempt {
    Witness(BTreeMap<String, Tristate>),
    Hard(String),
    Soft,
}

/// The Kbuild chain shape for one `.c` file.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Chain {
    /// Contains an unconditional dead guard (`obj-n`, undescended dir):
    /// the build never opens the file.
    Never,
    /// Every level is one `Always` or `Config(var)` guard; these are the
    /// variables along the chain.
    Simple(Vec<String>),
    /// Multiple alternative guards or `Module` lists somewhere — gate
    /// pins would be unsound, stay conservative.
    Complex,
    /// Not listed in any Makefile (no object entry).
    Unlisted,
}

/// One makefile level with a single simple guard folds into `vars`.
fn absorb_level(conds: &[&Cond], vars: &mut Vec<String>) -> bool {
    if conds.len() != 1 {
        return false;
    }
    match conds[0] {
        Cond::Always => true,
        Cond::Config(v) => {
            vars.push(v.clone());
            true
        }
        _ => false,
    }
}

fn single_never(conds: &[&Cond]) -> bool {
    conds.len() == 1 && matches!(conds[0], Cond::Never)
}

/// The `.o` corresponding to a `.c` file (mirror of
/// `jmake_kbuild::objgraph`).
fn object_of(c_path: &str) -> String {
    let name = file_name(c_path);
    match name.strip_suffix(".c") {
        Some(stem) => format!("{stem}.o"),
        None => name.to_string(),
    }
}

/// Directories whose descent Kbuild hardwires (mirror of
/// `jmake_kbuild::objgraph`).
fn is_structural(dir: &str) -> bool {
    dir.is_empty() || dir == "arch" || (dir.starts_with("arch/") && dir.matches('/').count() == 1)
}

/// Collapse `.` and `..` path segments.
fn normalize(path: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            s => parts.push(s),
        }
    }
    parts.join("/")
}

#[cfg(test)]
mod proptests;

#[cfg(test)]
mod tests {
    use super::*;
    use jmake_kconfig::KconfigModel;

    fn model(src: &str) -> KconfigModel {
        let mut m = KconfigModel::new();
        m.parse_str("Kconfig", src).unwrap();
        m
    }

    fn reach_over(tree: &SourceTree, m: KconfigModel) -> TreeReach {
        let mut r = Reach::new(tree);
        let allyes = m.allyesconfig();
        let allmod = m.allmodconfig();
        r.add_model("x86_64", m);
        r.add_env(ReachEnv {
            label: "x86_64-allyes".into(),
            arch: "x86_64".into(),
            config: allyes,
            allyes: true,
        });
        r.add_env(ReachEnv {
            label: "x86_64-allmod".into(),
            arch: "x86_64".into(),
            config: allmod,
            allyes: false,
        });
        r.analyze()
    }

    fn demo_tree() -> SourceTree {
        let mut t = SourceTree::new();
        t.insert("Makefile", "obj-y += kernel/ drivers/\n");
        t.insert("kernel/Makefile", "obj-y += main.o\n");
        t.insert(
            "kernel/main.c",
            "#include <linux/foo.h>\n\
             int always;\n\
             #ifdef CONFIG_NET\n\
             int net_only;\n\
             #endif\n\
             #ifdef CONFIG_MISSING\n\
             int never;\n\
             #endif\n\
             #if 0\n\
             int dead_code;\n\
             #endif\n\
             #ifndef CONFIG_NET\n\
             int no_net;\n\
             #endif\n",
        );
        t.insert("drivers/Makefile", "obj-$(CONFIG_E1000) += e1000.o\n");
        t.insert(
            "drivers/e1000.c",
            "int probe;\n\
             #ifdef MODULE\n\
             int module_only;\n\
             #endif\n",
        );
        t.insert(
            "include/linux/foo.h",
            "#ifndef LINUX_FOO_H\n\
             #define LINUX_FOO_H\n\
             int foo_decl;\n\
             #ifdef CONFIG_NET\n\
             int foo_net;\n\
             #endif\n\
             #endif\n",
        );
        t
    }

    fn demo_model() -> KconfigModel {
        model(
            "config NET\n\tbool \"net\"\n\
             config E1000\n\ttristate \"e1000\"\n\tdepends on NET\n",
        )
    }

    #[test]
    fn plain_lines_are_allyes_reachable() {
        let t = demo_tree();
        let tr = reach_over(&t, demo_model());
        let main = &tr.files["kernel/main.c"];
        assert_eq!(main.class(2), Some(&ReachClass::AllyesReachable));
        assert_eq!(main.class(4), Some(&ReachClass::AllyesReachable), "NET=y under allyes");
    }

    #[test]
    fn line_condition_exposes_the_if_stack() {
        let t = demo_tree();
        let m = demo_model();
        let allyes = m.allyesconfig();
        let mut r = Reach::new(&t);
        r.add_model("x86_64", m);
        // Unconditional line: trivially true condition.
        let c2 = r.line_condition("kernel/main.c", 2).unwrap();
        assert_eq!(c2.eval(&allyes), Truth::True);
        // `#ifdef CONFIG_NET` body: true exactly when NET is builtin.
        let c4 = r.line_condition("kernel/main.c", 4).unwrap();
        assert_eq!(c4.eval(&allyes), Truth::True);
        let mut off = allyes;
        off.set("NET", Tristate::N);
        assert_eq!(c4.eval(&off), Truth::False);
        // Out-of-range lines and line 0 yield nothing.
        assert!(r.line_condition("kernel/main.c", 0).is_none());
        assert!(r.line_condition("kernel/main.c", 999).is_none());
        assert!(r.line_condition("no/such/file.c", 1).is_none());
    }

    #[test]
    fn line_condition_substitutes_module_from_the_chain() {
        let t = demo_tree();
        let m = demo_model();
        let allyes = m.allyesconfig();
        let allmod = m.allmodconfig();
        let mut r = Reach::new(&t);
        r.add_model("x86_64", m);
        // `#ifdef MODULE` in an obj-$(CONFIG_E1000) file: true exactly
        // when E1000 is built as a module.
        let c = r.line_condition("drivers/e1000.c", 3).unwrap();
        assert_eq!(c.eval(&allyes), Truth::False, "builtin build defines no MODULE");
        assert_eq!(c.eval(&allmod), Truth::True, "E1000=m build defines MODULE");
    }

    #[test]
    fn line_present_demands_gate_and_condition() {
        let t = demo_tree();
        let m = demo_model();
        let allyes = m.allyesconfig();
        let allmod = m.allmodconfig();
        let mut r = Reach::new(&t);
        r.add_model("x86_64", m);
        assert!(r.line_present("drivers/e1000.c", 1, &allyes));
        assert!(!r.line_present("drivers/e1000.c", 3, &allyes));
        assert!(r.line_present("drivers/e1000.c", 3, &allmod));
        // Gate closed: E1000 off keeps even unconditional lines out.
        let mut off = allyes;
        off.set("E1000", Tristate::N);
        assert!(!r.line_present("drivers/e1000.c", 1, &off));
        // Headers only check the condition.
        assert!(r.line_present("include/linux/foo.h", 3, &off));
    }

    #[test]
    fn model_for_picks_arch_models() {
        let t = demo_tree();
        let mut r = Reach::new(&t);
        r.add_model("x86_64", demo_model());
        r.add_model("arm", KconfigModel::new());
        let (arch, m) = r.model_for("kernel/main.c").unwrap();
        assert_eq!(arch, "x86_64");
        assert!(m.is_declared("NET"));
        let (arch, _) = r.model_for("arch/arm/setup.c").unwrap();
        assert_eq!(arch, "arm");
    }

    #[test]
    fn undeclared_config_guard_is_dead() {
        let t = demo_tree();
        let tr = reach_over(&t, demo_model());
        let main = &tr.files["kernel/main.c"];
        match main.class(7) {
            Some(ReachClass::Dead { proof }) => {
                assert!(proof.contains("undeclared"), "got proof {proof}")
            }
            other => panic!("expected Dead, got {other:?}"),
        }
    }

    #[test]
    fn if_zero_is_dead_constant() {
        let t = demo_tree();
        let tr = reach_over(&t, demo_model());
        let main = &tr.files["kernel/main.c"];
        assert_eq!(
            main.class(10),
            Some(&ReachClass::Dead {
                proof: "constant-false".to_string()
            })
        );
    }

    #[test]
    fn negated_guard_gets_pin_witness() {
        let t = demo_tree();
        let tr = reach_over(&t, demo_model());
        let main = &tr.files["kernel/main.c"];
        match main.class(13) {
            Some(ReachClass::ConditionallyReachable {
                witness: Some(Witness::Pins(pins)),
            }) => {
                assert_eq!(pins.get("NET"), Some(&Tristate::N));
            }
            other => panic!("expected pin witness, got {other:?}"),
        }
    }

    #[test]
    fn module_guard_reachable_via_allmod() {
        let t = demo_tree();
        let tr = reach_over(&t, demo_model());
        let e1000 = &tr.files["drivers/e1000.c"];
        assert_eq!(e1000.class(1), Some(&ReachClass::AllyesReachable));
        match e1000.class(3) {
            Some(ReachClass::ConditionallyReachable { witness: Some(w) }) => match w {
                Witness::Env(l) => assert_eq!(l, "x86_64-allmod"),
                Witness::Pins(p) => assert_eq!(p.get("E1000"), Some(&Tristate::M)),
            },
            other => panic!("expected conditional, got {other:?}"),
        }
    }

    #[test]
    fn header_lines_follow_inclusion_and_guard() {
        let t = demo_tree();
        let tr = reach_over(&t, demo_model());
        let foo = &tr.files["include/linux/foo.h"];
        // Guard discharged: declaration is allyes-reachable via main.c.
        assert_eq!(foo.class(3), Some(&ReachClass::AllyesReachable));
        assert_eq!(foo.class(5), Some(&ReachClass::AllyesReachable));
    }

    #[test]
    fn unincluded_header_is_conservative() {
        let mut t = demo_tree();
        t.insert("include/linux/orphan.h", "int orphan;\n");
        let tr = reach_over(&t, demo_model());
        let orphan = &tr.files["include/linux/orphan.h"];
        assert_eq!(
            orphan.class(1),
            Some(&ReachClass::ConditionallyReachable { witness: None })
        );
    }

    #[test]
    fn undeclared_gate_makes_whole_file_dead() {
        let mut t = demo_tree();
        t.insert(
            "drivers/Makefile",
            "obj-$(CONFIG_E1000) += e1000.o\nobj-$(CONFIG_LEGACY_IO) += legacy.o\n",
        );
        t.insert("drivers/legacy.c", "int legacy_io;\n");
        let tr = reach_over(&t, demo_model());
        let legacy = &tr.files["drivers/legacy.c"];
        match legacy.class(1) {
            Some(ReachClass::Dead { proof }) => {
                assert!(proof.contains("LEGACY_IO"), "got proof {proof}")
            }
            other => panic!("expected Dead, got {other:?}"),
        }
    }

    #[test]
    fn obj_n_file_is_never_built() {
        let mut t = demo_tree();
        t.insert("kernel/Makefile", "obj-y += main.o\nobj-n += stale.o\n");
        t.insert("kernel/stale.c", "int stale;\n");
        let tr = reach_over(&t, demo_model());
        let stale = &tr.files["kernel/stale.c"];
        assert_eq!(
            stale.class(1),
            Some(&ReachClass::Dead {
                proof: "never-built".to_string()
            })
        );
    }

    #[test]
    fn unlisted_file_stays_conservative() {
        let mut t = demo_tree();
        t.insert("kernel/ghost.c", "int ghost;\n");
        let tr = reach_over(&t, demo_model());
        let ghost = &tr.files["kernel/ghost.c"];
        assert_eq!(
            ghost.class(1),
            Some(&ReachClass::ConditionallyReachable { witness: None })
        );
    }

    #[test]
    fn unknown_macro_guard_stays_conservative() {
        let mut t = demo_tree();
        t.insert(
            "kernel/main.c",
            "#if WEIRD_MACRO > 3\nint weird;\n#endif\n",
        );
        let tr = reach_over(&t, demo_model());
        let main = &tr.files["kernel/main.c"];
        assert_eq!(
            main.class(2),
            Some(&ReachClass::ConditionallyReachable { witness: None })
        );
    }

    #[test]
    fn json_summary_is_deterministic_and_counts_add_up() {
        let t = demo_tree();
        let m = demo_model();
        let a = reach_over(&t, m.clone());
        let b = reach_over(&t, m);
        assert_eq!(a.to_json(), b.to_json());
        let (ay, cond, dead) = a.counts();
        let total: usize = a.files.values().map(|f| f.classes.len()).sum();
        assert_eq!(ay + cond + dead, total);
        assert!(a.to_json().contains("\"total\""));
    }

    #[test]
    fn analyze_files_matches_full_analysis() {
        let t = demo_tree();
        let m = demo_model();
        let full = reach_over(&t, m.clone());
        let mut r = Reach::new(&t);
        let allyes = m.allyesconfig();
        let allmod = m.allmodconfig();
        r.add_model("x86_64", m);
        r.add_env(ReachEnv {
            label: "x86_64-allyes".into(),
            arch: "x86_64".into(),
            config: allyes,
            allyes: true,
        });
        r.add_env(ReachEnv {
            label: "x86_64-allmod".into(),
            arch: "x86_64".into(),
            config: allmod,
            allyes: false,
        });
        let only = vec![
            "kernel/main.c".to_string(),
            "include/linux/foo.h".to_string(),
            "not/in/tree.c".to_string(),
        ];
        let partial = r.analyze_files(&only);
        assert_eq!(partial.files.len(), 2, "missing paths are skipped");
        for (path, fr) in &partial.files {
            assert_eq!(
                fr.classes, full.files[path].classes,
                "restricted analysis diverged for {path}"
            );
        }
    }

    #[test]
    fn dead_ifdef_block_is_classified_dead_with_witnessed_neighbors() {
        // The acceptance-criterion shape: a planted dead block among live
        // conditional code.
        let mut t = SourceTree::new();
        t.insert("Makefile", "obj-y += lib/\n");
        t.insert("lib/Makefile", "obj-$(CONFIG_CRC) += crc.o\n");
        t.insert(
            "lib/crc.c",
            "int crc_base;\n\
             #ifdef CONFIG_DEAD_OPTION\n\
             int planted_dead;\n\
             #endif\n",
        );
        let m = model("config CRC\n\tbool \"crc\"\n");
        let tr = reach_over(&t, m);
        let crc = &tr.files["lib/crc.c"];
        assert_eq!(crc.class(1), Some(&ReachClass::AllyesReachable));
        match crc.class(3) {
            Some(ReachClass::Dead { proof }) => {
                assert!(proof.contains("DEAD_OPTION"), "got proof {proof}")
            }
            other => panic!("expected Dead, got {other:?}"),
        }
    }
}
