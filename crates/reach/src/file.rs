//! Per-file presence conditions: a symbolic walk over the conditional
//! structure of one source file.
//!
//! The walk mirrors `jmake_cpp::cond::CondStack` — same logical-line
//! stream (`logical_lines`, phases 2 and 3), same `#if`/`#ifdef`/
//! `#elif`/`#else`/`#endif` branch bookkeeping — but instead of deciding
//! each branch against one concrete macro table it keeps the conditions
//! symbolic: every physical line gets the conjunction of the branch
//! conditions that must hold for the preprocessor to emit (or even
//! tokenize the body of) that line.
//!
//! Directive lines themselves (`#if`, `#elif`, `#else`, `#endif`) are
//! attributed to the *enclosing* region: the preprocessor reads them
//! whenever their parent stack is active, regardless of which branch
//! wins. That matches what the compiler "sees" and is the property the
//! cross-check needs.

use crate::cond::{parse_directive, parse_if_expr, CondExpr};
use jmake_cpp::lines::{logical_lines, LogicalLine};

/// An `#include` occurrence with the condition under which it fires.
#[derive(Debug, Clone)]
pub struct IncludeRef {
    /// Path text between the delimiters.
    pub path: String,
    /// `"..."` (true) vs `<...>` (false).
    pub quoted: bool,
    /// Presence condition of the directive line.
    pub cond: CondExpr,
}

/// The symbolic analysis of one file.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// Presence condition per physical line (index = line − 1).
    pub conds: Vec<CondExpr>,
    /// All `#include` directives with their conditions.
    pub includes: Vec<IncludeRef>,
    /// False when `#endif`s don't pair up with openers — callers must
    /// fall back to a conservative classification for the whole file.
    pub balanced: bool,
    /// Detected include-guard macro, if the file has the classic
    /// `#ifndef G` / `#define G` / … / `#endif` shape. The guard frame is
    /// already discharged to `True` in `conds`.
    pub guard: Option<String>,
}

/// One open conditional region during the walk.
struct Frame {
    /// Condition for the branch currently open: its own test conjoined
    /// with the negation of every earlier branch in the chain.
    cond: CondExpr,
    /// Conjunction of negations of all branch tests so far — the premise
    /// an `#elif`/`#else` inherits.
    not_taken: CondExpr,
}

/// Analyze `src`, producing per-line presence conditions.
pub fn analyze_file(src: &str) -> FileAnalysis {
    let lls = logical_lines(src);
    let guard = detect_include_guard(&lls);
    let total = src.lines().count().max(
        lls.last().map(|l| l.last_line as usize).unwrap_or(0),
    );
    let mut conds = vec![CondExpr::True; total];
    let mut includes = Vec::new();
    let mut balanced = true;

    let mut stack: Vec<Frame> = Vec::new();
    let stack_cond = |stack: &[Frame], depth: usize| -> CondExpr {
        stack[..depth]
            .iter()
            .fold(CondExpr::True, |acc, f| acc.and(f.cond.clone()))
    };

    for (idx, ll) in lls.iter().enumerate() {
        let mut line_cond = stack_cond(&stack, stack.len());
        if let Some((name, rest)) = ll.directive() {
            match name {
                "if" | "ifdef" | "ifndef" => {
                    // The opener is read whenever the *outer* region is
                    // active — which is the current full stack.
                    let mut test = parse_directive(name, rest).unwrap_or(CondExpr::Unknown);
                    if guard.as_deref().is_some_and(|g| is_guard_opener(&lls, idx, g)) {
                        test = CondExpr::True;
                    }
                    stack.push(Frame {
                        not_taken: test.clone().negate(),
                        cond: test,
                    });
                }
                "elif" => match stack.pop() {
                    Some(frame) => {
                        line_cond = stack_cond(&stack, stack.len());
                        let test = parse_if_expr(rest);
                        stack.push(Frame {
                            cond: frame.not_taken.clone().and(test.clone()),
                            not_taken: frame.not_taken.and(test.negate()),
                        });
                    }
                    None => balanced = false,
                },
                "else" => match stack.pop() {
                    Some(frame) => {
                        line_cond = stack_cond(&stack, stack.len());
                        stack.push(Frame {
                            cond: frame.not_taken.clone(),
                            not_taken: frame.not_taken.and(CondExpr::False),
                        });
                    }
                    None => balanced = false,
                },
                "endif" => {
                    if stack.pop().is_none() {
                        balanced = false;
                    }
                    line_cond = stack_cond(&stack, stack.len());
                }
                "include" => {
                    if let Some(inc) = parse_include(rest) {
                        includes.push(IncludeRef {
                            path: inc.0,
                            quoted: inc.1,
                            cond: line_cond.clone(),
                        });
                    }
                }
                _ => {}
            }
        }
        for phys in ll.first_line..=ll.last_line {
            let i = phys as usize - 1;
            if i < conds.len() {
                conds[i] = line_cond.clone();
            }
        }
    }
    if !stack.is_empty() {
        balanced = false;
    }

    FileAnalysis {
        conds,
        includes,
        balanced,
        guard,
    }
}

/// `#include "p"` / `#include <p>` → (path, quoted).
fn parse_include(rest: &str) -> Option<(String, bool)> {
    let t = rest.trim();
    if let Some(r) = t.strip_prefix('"') {
        let end = r.find('"')?;
        return Some((r[..end].to_string(), true));
    }
    if let Some(r) = t.strip_prefix('<') {
        let end = r.find('>')?;
        return Some((r[..end].to_string(), false));
    }
    None
}

/// Is logical line `idx` the opener of the detected include guard? The
/// guard's `#ifndef` is the first non-blank logical line.
fn is_guard_opener(lls: &[LogicalLine], idx: usize, guard: &str) -> bool {
    let first = lls.iter().position(|l| !l.is_blank());
    first == Some(idx)
        && lls[idx]
            .directive()
            .is_some_and(|(n, r)| n == "ifndef" && r.split_whitespace().next() == Some(guard))
}

/// Detect the classic include-guard shape: the first non-blank logical
/// line is `#ifndef G`, the second is `#define G`, and the matching
/// `#endif` is the last non-blank logical line. Inside one translation
/// unit's first inclusion the guard test is vacuously true, so the frame
/// can be discharged.
fn detect_include_guard(lls: &[LogicalLine]) -> Option<String> {
    let mut nonblank = lls.iter().enumerate().filter(|(_, l)| !l.is_blank());
    let (open_idx, first) = nonblank.next()?;
    let (_, second) = nonblank.next()?;
    let (n1, r1) = first.directive()?;
    if n1 != "ifndef" {
        return None;
    }
    let guard = r1.split_whitespace().next()?.to_string();
    let (n2, r2) = second.directive()?;
    if n2 != "define" || r2.split_whitespace().next() != Some(guard.as_str()) {
        return None;
    }
    // Find where the guard frame closes and make sure nothing non-blank
    // follows.
    let mut depth = 0usize;
    for (idx, ll) in lls.iter().enumerate() {
        if idx < open_idx {
            continue;
        }
        if let Some((name, _)) = ll.directive() {
            match name {
                "if" | "ifdef" | "ifndef" => depth += 1,
                "endif" => {
                    depth = depth.checked_sub(1)?;
                    if depth == 0 {
                        return if lls[idx + 1..].iter().all(|l| l.is_blank()) {
                            Some(guard)
                        } else {
                            None
                        };
                    }
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Truth;
    use jmake_kconfig::{Config, Tristate};

    fn cfg(pairs: &[(&str, Tristate)]) -> Config {
        let mut c = Config::default();
        for (k, v) in pairs {
            c.set(*k, *v);
        }
        c
    }

    #[test]
    fn unconditional_lines_are_true() {
        let fa = analyze_file("int x;\nint y;\n");
        assert!(fa.balanced);
        assert_eq!(fa.conds, vec![CondExpr::True, CondExpr::True]);
    }

    #[test]
    fn ifdef_body_gets_defined_cond() {
        let src = "#ifdef CONFIG_NET\nint net;\n#endif\nint always;\n";
        let fa = analyze_file(src);
        let on = cfg(&[("NET", Tristate::Y)]);
        let off = cfg(&[]);
        // Line 1 (#ifdef) and line 3 (#endif) belong to the outer region.
        assert_eq!(fa.conds[0], CondExpr::True);
        assert_eq!(fa.conds[2], CondExpr::True);
        assert_eq!(fa.conds[1].eval(&on), Truth::True);
        assert_eq!(fa.conds[1].eval(&off), Truth::False);
        assert_eq!(fa.conds[3], CondExpr::True);
    }

    #[test]
    fn elif_chain_branches_exclude_earlier_tests() {
        let src = "#if defined(CONFIG_A)\na\n#elif defined(CONFIG_B)\nb\n#else\nc\n#endif\n";
        let fa = analyze_file(src);
        let a = cfg(&[("A", Tristate::Y), ("B", Tristate::Y)]);
        // A set: branch a holds, b excluded even though B is set.
        assert_eq!(fa.conds[1].eval(&a), Truth::True);
        assert_eq!(fa.conds[3].eval(&a), Truth::False);
        assert_eq!(fa.conds[5].eval(&a), Truth::False);
        let b = cfg(&[("B", Tristate::Y)]);
        assert_eq!(fa.conds[1].eval(&b), Truth::False);
        assert_eq!(fa.conds[3].eval(&b), Truth::True);
        assert_eq!(fa.conds[5].eval(&b), Truth::False);
        let none = cfg(&[]);
        assert_eq!(fa.conds[5].eval(&none), Truth::True);
        // The #elif and #else directive lines are read in all three cases.
        for c in [&a, &b, &none] {
            assert_eq!(fa.conds[2].eval(c), Truth::True);
            assert_eq!(fa.conds[4].eval(c), Truth::True);
        }
    }

    #[test]
    fn nested_conditions_conjoin() {
        let src = "#ifdef CONFIG_A\n#ifdef CONFIG_B\nboth\n#endif\n#endif\n";
        let fa = analyze_file(src);
        let both = cfg(&[("A", Tristate::Y), ("B", Tristate::Y)]);
        let only_a = cfg(&[("A", Tristate::Y)]);
        assert_eq!(fa.conds[2].eval(&both), Truth::True);
        assert_eq!(fa.conds[2].eval(&only_a), Truth::False);
        // The inner #ifdef line is under the outer condition only.
        assert_eq!(fa.conds[1].eval(&only_a), Truth::True);
        assert_eq!(fa.conds[1].eval(&cfg(&[])), Truth::False);
    }

    #[test]
    fn include_guard_is_discharged() {
        let src = "#ifndef MY_H\n#define MY_H\nint decl;\n#endif\n";
        let fa = analyze_file(src);
        assert_eq!(fa.guard.as_deref(), Some("MY_H"));
        assert_eq!(fa.conds[2], CondExpr::True);
    }

    #[test]
    fn guard_shape_with_trailing_code_is_not_a_guard() {
        let src = "#ifndef MY_H\n#define MY_H\nint decl;\n#endif\nint after;\n";
        let fa = analyze_file(src);
        assert_eq!(fa.guard, None);
    }

    #[test]
    fn if_zero_block_is_false() {
        let src = "#if 0\ndead\n#endif\n";
        let fa = analyze_file(src);
        assert_eq!(fa.conds[1], CondExpr::False);
    }

    #[test]
    fn includes_carry_conditions() {
        let src = "#include <linux/kernel.h>\n#ifdef CONFIG_X\n#include \"x.h\"\n#endif\n";
        let fa = analyze_file(src);
        assert_eq!(fa.includes.len(), 2);
        assert_eq!(fa.includes[0].path, "linux/kernel.h");
        assert!(!fa.includes[0].quoted);
        assert_eq!(fa.includes[0].cond, CondExpr::True);
        assert_eq!(fa.includes[1].path, "x.h");
        assert!(fa.includes[1].quoted);
        assert_eq!(
            fa.includes[1].cond.eval(&cfg(&[("X", Tristate::Y)])),
            Truth::True
        );
    }

    #[test]
    fn unbalanced_endif_flags_file() {
        let fa = analyze_file("#endif\nint x;\n");
        assert!(!fa.balanced);
        let fa2 = analyze_file("#ifdef CONFIG_A\nint x;\n");
        assert!(!fa2.balanced);
    }

    #[test]
    fn spliced_condition_covers_all_physical_lines() {
        let src = "#if defined(CONFIG_A) && \\\n    defined(CONFIG_B)\nbody\n#endif\n";
        let fa = analyze_file(src);
        // Both physical lines of the spliced #if are outer-region lines.
        assert_eq!(fa.conds[0], CondExpr::True);
        assert_eq!(fa.conds[1], CondExpr::True);
        let both = cfg(&[("A", Tristate::Y), ("B", Tristate::Y)]);
        assert_eq!(fa.conds[2].eval(&both), Truth::True);
        assert_eq!(fa.conds[2].eval(&cfg(&[("A", Tristate::Y)])), Truth::False);
    }
}
