//! Property tests: the symbolic presence conditions of [`crate::file`]
//! agree, line for line, with what the real preprocessor emits under a
//! concrete configuration.
//!
//! This is the static/dynamic agreement property the cross-check relies
//! on, shrunk to its essence: generate a random nest of conditionals over
//! a small symbol pool, pick a random tristate assignment, and require
//! that a marker line survives `jmake_cpp::Preprocessor` exactly when its
//! presence condition evaluates to [`Truth::True`] under that
//! configuration.

use crate::cond::Truth;
use crate::file::analyze_file;
use jmake_cpp::{MapResolver, Preprocessor};
use jmake_kconfig::{Config, Tristate};
use proptest::prelude::*;

const SYMS: [&str; 4] = ["ALPHA", "BETA", "GAMMA", "DELTA"];

/// One generated line of the conditional nest, before balancing.
#[derive(Debug, Clone)]
enum Item {
    Marker,
    OpenIfdef(usize),
    OpenIfndef(usize),
    OpenIfExpr(usize, usize, bool),
    OpenIfModule(usize),
    Elif(usize),
    Else,
    Endif,
}

fn item() -> impl Strategy<Value = Item> {
    // The vendored prop_oneof! is unweighted; duplicate arms supply the
    // bias toward markers and region closers.
    prop_oneof![
        Just(Item::Marker),
        Just(Item::Marker),
        Just(Item::Marker),
        (0..SYMS.len()).prop_map(Item::OpenIfdef),
        (0..SYMS.len()).prop_map(Item::OpenIfdef),
        (0..SYMS.len()).prop_map(Item::OpenIfndef),
        (0..SYMS.len(), 0..SYMS.len(), prop::bool::ANY)
            .prop_map(|(a, b, conj)| Item::OpenIfExpr(a, b, conj)),
        (0..SYMS.len()).prop_map(Item::OpenIfModule),
        (0..SYMS.len()).prop_map(Item::Elif),
        Just(Item::Else),
        Just(Item::Endif),
        Just(Item::Endif),
    ]
}

/// Render a balanced source: invalid `#elif`/`#else`/`#endif` are dropped,
/// unclosed frames are closed at the end, markers get unique names.
fn render(items: Vec<Item>) -> String {
    let mut out: Vec<String> = Vec::new();
    // Per open frame: has an #else been emitted?
    let mut stack: Vec<bool> = Vec::new();
    let mut marker = 0usize;
    let push_marker = |out: &mut Vec<String>, marker: &mut usize| {
        out.push(format!("int mk{}q;", *marker));
        *marker += 1;
    };
    for item in items {
        match item {
            Item::Marker => push_marker(&mut out, &mut marker),
            Item::OpenIfdef(i) => {
                out.push(format!("#ifdef CONFIG_{}", SYMS[i]));
                stack.push(false);
            }
            Item::OpenIfndef(i) => {
                out.push(format!("#ifndef CONFIG_{}", SYMS[i]));
                stack.push(false);
            }
            Item::OpenIfExpr(a, b, conj) => {
                let op = if conj { "&&" } else { "||" };
                out.push(format!(
                    "#if defined(CONFIG_{}) {op} !defined(CONFIG_{}_MODULE)",
                    SYMS[a], SYMS[b]
                ));
                stack.push(false);
            }
            Item::OpenIfModule(i) => {
                // Bare CONFIG macro in an #if: defined-as-1 or absent.
                out.push(format!("#if CONFIG_{}", SYMS[i]));
                stack.push(false);
            }
            Item::Elif(i) => {
                if stack.last() == Some(&false) {
                    out.push(format!("#elif defined(CONFIG_{})", SYMS[i]));
                }
            }
            Item::Else => {
                if let Some(seen) = stack.last_mut() {
                    if !*seen {
                        *seen = true;
                        out.push("#else".to_string());
                    }
                }
            }
            Item::Endif => {
                if stack.pop().is_some() {
                    out.push("#endif".to_string());
                }
            }
        }
        // Keep every region non-empty-ish so shrinking stays interesting.
    }
    while stack.pop().is_some() {
        out.push("#endif".to_string());
    }
    push_marker(&mut out, &mut marker);
    out.join("\n") + "\n"
}

fn source() -> impl Strategy<Value = String> {
    prop::collection::vec(item(), 0..40).prop_map(render)
}

fn config() -> impl Strategy<Value = Config> {
    prop::collection::vec(0u8..3, SYMS.len()..SYMS.len() + 1).prop_map(|vals| {
        let mut c = Config::default();
        for (sym, v) in SYMS.iter().zip(vals) {
            let t = match v {
                0 => Tristate::N,
                1 => Tristate::M,
                _ => Tristate::Y,
            };
            c.set(*sym, t);
        }
        c
    })
}

proptest! {
    /// Static presence condition ⇔ dynamic preprocessor emission, for
    /// every marker line, under every sampled configuration.
    #[test]
    fn presence_conditions_match_preprocessor(src in source(), cfg in config()) {
        let fa = analyze_file(&src);
        prop_assert!(fa.balanced, "generator must emit balanced nests:\n{src}");

        let mut pp = Preprocessor::new(MapResolver::new());
        for (name, body) in cfg.cpp_defines() {
            pp.define_object(&name, &body);
        }
        let out = pp.preprocess("t.c", &src);
        prop_assert!(out.errors.is_empty(), "clean source preprocessed with errors: {:?}", out.errors);

        for (idx, line) in src.lines().enumerate() {
            let Some(name) = marker_name(line) else { continue };
            let emitted = out
                .text
                .lines()
                .any(|l| l.split(|c: char| !c.is_ascii_alphanumeric()).any(|w| w == name));
            let truth = fa.conds[idx].eval(&cfg);
            prop_assert!(
                truth != Truth::Unknown,
                "pure CONFIG nest must be decidable at line {} of:\n{src}",
                idx + 1
            );
            prop_assert_eq!(
                emitted,
                truth == Truth::True,
                "line {} ({}) static={:?} dynamic={} under {:?}\n{}",
                idx + 1, line, truth, emitted, cfg, src
            );
        }
    }

    /// Directive lines always carry their *enclosing* region's condition:
    /// whenever the enclosing region is active the preprocessor reads the
    /// directive, so a directive's condition must be implied by its
    /// parent's. Weak form checked here: the first and last lines of a
    /// balanced nest (top-level) are always `True`-conditioned.
    #[test]
    fn top_level_lines_are_unconditional(src in source()) {
        let fa = analyze_file(&src);
        prop_assert!(fa.balanced);
        let n = src.lines().count();
        // The trailing marker is always top-level by construction.
        prop_assert_eq!(&fa.conds[n - 1], &crate::cond::CondExpr::True);
    }
}

/// `int mk<N>q;` → `mk<N>q`.
fn marker_name(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("int mk")?;
    let end = rest.find(';')?;
    let name = &line[4..4 + 2 + end];
    Some(name)
}
