use jmake_kbuild::SourceTree;
use jmake_kconfig::KconfigModel;
use jmake_reach::{Reach, ReachEnv};

fn model(src: &str) -> KconfigModel {
    let mut m = KconfigModel::new();
    m.parse_str("Kconfig", src).unwrap();
    m
}

fn reach_over(tree: &SourceTree, m: KconfigModel) -> jmake_reach::TreeReach {
    let mut r = Reach::new(tree);
    let allyes = m.allyesconfig();
    let allmod = m.allmodconfig();
    r.add_model("x86_64", m);
    r.add_env(ReachEnv { label: "ay".into(), arch: "x86_64".into(), config: allyes, allyes: true });
    r.add_env(ReachEnv { label: "am".into(), arch: "x86_64".into(), config: allmod, allyes: false });
    r.analyze()
}

#[test]
fn obj_n_file_included_under_negated_config_is_not_dead() {
    let mut t = SourceTree::new();
    t.insert("Makefile", "obj-y += kernel/\n");
    t.insert("kernel/Makefile", "obj-y += main.o\nobj-n += stale.o\n");
    t.insert(
        "kernel/main.c",
        "int always;\n#ifndef CONFIG_NET\n#include \"stale.c\"\n#endif\n",
    );
    t.insert("kernel/stale.c", "int stale_code;\n");
    let m = model("config NET\n\tbool \"net\"\n");
    let tr = reach_over(&t, m);
    let stale = &tr.files["kernel/stale.c"];
    println!("stale.c line 1 class: {:?}", stale.class(1));
    assert!(!stale.class(1).unwrap().is_dead(), "false Dead: {:?}", stale.class(1));
}

#[test]
fn gated_c_file_included_elsewhere_negated_guard_not_dead() {
    let mut t = SourceTree::new();
    t.insert("Makefile", "obj-y += lib/\n");
    t.insert("lib/Makefile", "obj-y += bar.o\nobj-$(CONFIG_FOO) += foo.o\n");
    t.insert("lib/bar.c", "#include \"foo.c\"\nint bar;\n");
    t.insert(
        "lib/foo.c",
        "int foo;\n#if !defined(CONFIG_FOO) && !defined(CONFIG_FOO_MODULE)\nint fallback;\n#endif\n",
    );
    let m = model("config FOO\n\tbool \"foo\"\n");
    let tr = reach_over(&t, m);
    let foo = &tr.files["lib/foo.c"];
    println!("foo.c line 3 class: {:?}", foo.class(3));
    assert!(!foo.class(3).unwrap().is_dead(), "false Dead: {:?}", foo.class(3));
}
