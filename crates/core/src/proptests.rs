//! Property tests for the mutation engine, token machinery and precheck.

use crate::mutation::{mutate, mutate_naive};
use crate::precheck::precheck;
use crate::token::MutationToken;
use jmake_cpp::{MapResolver, Preprocessor};
use jmake_diff::{diff_to_patch, ChangedLine, ChangedLines, DiffOptions};
use proptest::prelude::*;

/// Generator for C-shaped sources: declarations, macros (with and without
/// continuations), conditionals, comments.
fn c_source() -> impl Strategy<Value = String> {
    let line = prop_oneof![
        "[a-z]{1,6}".prop_map(|v| format!("int {v};")),
        "[a-z]{1,6}".prop_map(|v| format!("\treturn {v} + 1;")),
        "[A-Z]{1,5}".prop_map(|n| format!("#define {n}(x) ((x) + 1)")),
        // A multi-line macro is one generation unit, so a continuation
        // backslash can never splice an unrelated following line.
        "[A-Z]{1,5}".prop_map(|n| format!("#define {n} \\\n\t(1 + \\\n\t 2)")),
        "[A-Z]{1,5}".prop_map(|n| format!("#ifdef CONFIG_{n}")),
        Just("#else".to_string()),
        Just("#endif".to_string()),
        Just("/* a block comment */".to_string()),
        Just("// line comment".to_string()),
        Just("/* open".to_string()),
        Just("   still comment */".to_string()),
    ];
    prop::collection::vec(line, 1..40).prop_map(|ls| {
        // Balance conditionals; drop trailing continuations.
        let mut out = Vec::new();
        let mut depth = 0;
        for l in ls {
            if l.starts_with("#ifdef") {
                depth += 1;
            } else if l == "#endif" {
                if depth == 0 {
                    continue;
                }
                depth -= 1;
            } else if l == "#else" && depth == 0 {
                continue;
            }
            out.push(l);
        }
        for _ in 0..depth {
            out.push("#endif".to_string());
        }
        out.join("\n") + "\n"
    })
}

/// Generator for conditional-heavy sources, deliberately including
/// unbalanced directives, `#elif` chains, commented guards and changed
/// `#endif` markers — the shapes `precheck` has to survive. Kept separate
/// from [`c_source`] so hardening it never weakens the mutation properties.
fn conditional_soup() -> impl Strategy<Value = String> {
    let line = prop_oneof![
        "[a-z]{1,6}".prop_map(|v| format!("int {v};")),
        "[A-Z]{1,4}".prop_map(|n| format!("#ifdef CONFIG_{n}")),
        "[A-Z]{1,4}".prop_map(|n| format!("#ifndef CONFIG_{n}")),
        Just("#if 0".to_string()),
        Just("#if 0 /* disabled */".to_string()),
        Just("#if (0)".to_string()),
        "[A-Z]{1,4}".prop_map(|n| format!("#elif defined(CONFIG_{n})")),
        Just("#else".to_string()),
        Just("#endif".to_string()),
        "[A-Z]{1,4}".prop_map(|n| format!("#endif /* CONFIG_{n} */")),
        Just("/* comment */".to_string()),
    ];
    prop::collection::vec(line, 1..30).prop_map(|ls| ls.join("\n") + "\n")
}

fn changed_subset(max_line: usize) -> impl Strategy<Value = ChangedLines> {
    prop::collection::btree_set(1..=max_line.max(1) as u32, 0..8)
        .prop_map(|s| s.into_iter().map(ChangedLine::Line).collect())
}

proptest! {
    /// The mutated file still preprocesses without new diagnostics, and
    /// every token that survives scanning belongs to the plan.
    #[test]
    fn mutated_source_is_preprocessable(src in c_source(), seed in 0u32..1000) {
        let lines = src.lines().count();
        let changed: ChangedLines = (0..4)
            .map(|i| ChangedLine::Line(((seed as usize + i * 7) % lines + 1) as u32))
            .collect();
        let plan = mutate("p.c", &src, &changed);
        let pp = Preprocessor::new(MapResolver::new());
        let before = pp.preprocess("p.c", &src);
        let after = pp.preprocess("p.c", &plan.mutated);
        prop_assert_eq!(
            before.errors.len(),
            after.errors.len(),
            "mutation introduced diagnostics:\n{}",
            plan.mutated
        );
        let found = MutationToken::scan(&after.text);
        for tok in &found {
            prop_assert!(plan.mutations.contains(tok), "phantom token {tok}");
        }
    }

    /// Token counts: minimized placement never exceeds the naive one, and
    /// both never exceed the number of changed lines (+1 for EOF).
    #[test]
    fn minimized_plan_is_no_larger_than_naive(src in c_source()) {
        let lines = src.lines().count();
        let changed: ChangedLines = (1..=lines as u32).map(ChangedLine::Line).collect();
        let minimized = mutate("p.c", &src, &changed);
        let naive = mutate_naive("p.c", &src, &changed);
        // The naive variant skips directive lines entirely, while the
        // minimized placement certifies the section a changed conditional
        // opens — so the bound allows one extra token per conditional.
        let conditionals = src
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                t.starts_with("#if") || t.starts_with("#else") || t.starts_with("#elif")
            })
            .count();
        prop_assert!(
            minimized.mutations.len() <= naive.mutations.len() + conditionals + 2,
            "minimized {} vs naive {} (+{conditionals} conditionals)",
            minimized.mutations.len(),
            naive.mutations.len()
        );
        prop_assert!(minimized.mutations.len() <= lines + 1);
    }

    /// Tokens are unique and render/scan round-trips.
    #[test]
    fn tokens_are_unique_and_scannable(src in c_source(), changed in changed_subset(40)) {
        let plan = mutate("a/b.c", &src, &changed);
        let mut seen = std::collections::BTreeSet::new();
        for tok in &plan.mutations {
            prop_assert!(seen.insert(tok.clone()), "duplicate token {tok}");
            let back = MutationToken::scan(&tok.render());
            prop_assert_eq!(back.len(), 1);
            prop_assert_eq!(&back[0], tok);
        }
    }

    /// Comment-only changed lines never produce mutations, and are all
    /// accounted for in the plan.
    #[test]
    fn comment_lines_are_skipped_not_lost(changed in changed_subset(5)) {
        let src = "/* one\n two\n three */\n// four\n/* five */\n";
        let plan = mutate("c.c", src, &changed);
        prop_assert!(plan.mutations.is_empty(), "{:?}", plan.mutations);
        prop_assert_eq!(plan.comment_lines.len(), changed.len());
    }

    /// Mutation is idempotent in the sense that an empty change set leaves
    /// the file untouched.
    #[test]
    fn empty_change_set_is_identity(src in c_source()) {
        let plan = mutate("p.c", &src, &ChangedLines::default());
        prop_assert!(plan.is_trivial());
        prop_assert_eq!(plan.mutated, src);
    }

    /// Precheck never panics — not on unbalanced conditionals, commented
    /// guards, or changed `#endif` lines — and never reports a line
    /// outside the post-patch file.
    #[test]
    fn precheck_never_panics_or_reports_foreign_lines(
        old in conditional_soup(),
        new in conditional_soup(),
    ) {
        let patch = diff_to_patch("soup.c", &old, &new, &DiffOptions::default());
        let new_len = new.lines().count() as u32;
        for fp in &patch.files {
            let warnings = precheck(fp, &new);
            for w in &warnings {
                prop_assert!(!w.lines.is_empty(), "empty warning {w}");
                for l in &w.lines {
                    prop_assert!(
                        (1..=new_len).contains(l),
                        "line {l} outside 1..={new_len}: {w}"
                    );
                }
                let mut sorted = w.lines.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(&sorted, &w.lines, "lines not sorted+deduped");
            }
        }
    }
}
