//! Static-vs-dynamic cross-checking: does the reachability analyzer
//! (`jmake-reach`) agree with what the mutation pipeline actually
//! observed?
//!
//! The two sides answer the same question with independent machinery:
//!
//! - *dynamic*: a changed line is **covered** when its mutation token
//!   surfaced in some configuration's `.i` and the pristine `.o`
//!   compiled ([`crate::check`]);
//! - *static*: a line is [`ReachClass::Dead`] when no configuration can
//!   ever let the compiler see it, and
//!   [`ReachClass::AllyesReachable`] when `allyesconfig` must see it
//!   ([`jmake_reach`]).
//!
//! Agreement is a strong end-to-end property, so disagreement is always
//! a bug somewhere — in the analyzer, the solver, the build engine, or
//! the mutation pipeline. [`cross_check`] replays an [`EvaluationRun`]
//! and reports every disagreement:
//!
//! 1. **dead-but-covered** — the analyzer proved the line unreachable,
//!    yet a mutation on it was certified. The static proof is unsound.
//! 2. **allyes-but-missed** — the analyzer proved `allyesconfig` sees
//!    the line, the file's own gate is enabled under that very config,
//!    the pipeline tried that allyesconfig and hit no operational
//!    errors — yet the token never surfaced. The dynamic side lost a
//!    mutation.
//!
//! Both rules are deliberately one-sided: every fuzzy case (conditional
//! verdicts, files with build errors, headers that are only reached
//! through other translation units, tokens parked on conditional
//! directive lines whose insertion point belongs to a different region)
//! is counted but never flagged. A clean report therefore means "no
//! provable disagreement", which is exactly the property CI can gate
//! on; see `jmake-eval --cross-check`.
//!
//! The report is deterministic: commits are visited in run order, files
//! and tokens in report order, and the JSON rendering contains no
//! wall-clock — byte-identical across worker counts and cache modes.

use crate::driver::EvaluationRun;
use crate::report::{FileReport, FileStatus};
use crate::token::MutationKind;
use jmake_cpp::lines::logical_lines;
use jmake_kbuild::{BuildEngine, ConfigCache, ConfigKind, ObjGraph, SourceTree};
use jmake_kconfig::Config;
use jmake_reach::{Reach, ReachClass, ReachEnv, TreeReach};
use jmake_vcs::Repo;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Which way the two sides disagreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscrepancyKind {
    /// Statically proved dead, dynamically certified covered.
    DeadButCovered,
    /// Statically allyes-reachable with the gate enabled, allyesconfig
    /// tried cleanly, yet the token never surfaced.
    AllyesButMissed,
}

impl DiscrepancyKind {
    /// Stable report tag.
    pub fn label(self) -> &'static str {
        match self {
            DiscrepancyKind::DeadButCovered => "dead-but-covered",
            DiscrepancyKind::AllyesButMissed => "allyes-but-missed",
        }
    }
}

/// One static/dynamic disagreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Discrepancy {
    /// Commit whose patch exposed the disagreement.
    pub commit: String,
    /// File the token lives in.
    pub file: String,
    /// 1-based line of the mutation token.
    pub line: u32,
    /// Direction of the disagreement.
    pub kind: DiscrepancyKind,
    /// Architecture whose model/configuration the static side used.
    pub arch: String,
    /// The static verdict (proof tag or class label).
    pub static_detail: String,
    /// The dynamic observation (certifying target or uncovered reason).
    pub dynamic_detail: String,
}

/// The outcome of replaying a run against the static analyzer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrossCheckReport {
    /// Commits examined (checked patches only).
    pub patches: usize,
    /// File reports examined.
    pub files: usize,
    /// Mutation tokens examined (covered + uncovered).
    pub tokens: usize,
    /// Uncovered tokens the analyzer also proved dead — the strongest
    /// form of agreement.
    pub dead_agreed: usize,
    /// Tokens certified via an allyesconfig target that the analyzer
    /// also classes allyes-reachable.
    pub allyes_agreed: usize,
    /// Deterministic notes about commits/architectures the cross-check
    /// could not replay (checkout failures, missing cross-compilers).
    /// Skips are reported, never silently dropped.
    pub skipped: Vec<String>,
    /// Every provable disagreement, in run order.
    pub discrepancies: Vec<Discrepancy>,
}

impl CrossCheckReport {
    /// True when static and dynamic sides never provably disagreed.
    pub fn is_clean(&self) -> bool {
        self.discrepancies.is_empty()
    }

    /// Deterministic JSON rendering — no wall-clock, no hashing order;
    /// byte-identical for identical runs regardless of worker count or
    /// cache mode.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"clean\": {},\n  \"patches\": {},\n  \"files\": {},\n  \"tokens\": {},\n  \"dead_agreed\": {},\n  \"allyes_agreed\": {},\n",
            self.is_clean(),
            self.patches,
            self.files,
            self.tokens,
            self.dead_agreed,
            self.allyes_agreed
        ));
        out.push_str("  \"skipped\": [");
        for (i, s) in self.skipped.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(s));
        }
        out.push_str("],\n  \"discrepancies\": [");
        for (i, d) in self.discrepancies.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push_str(&format!(
                "{{\"commit\": {}, \"file\": {}, \"line\": {}, \"kind\": {}, \"arch\": {}, \"static\": {}, \"dynamic\": {}}}",
                json_string(&d.commit),
                json_string(&d.file),
                d.line,
                json_string(d.kind.label()),
                json_string(&d.arch),
                json_string(&d.static_detail),
                json_string(&d.dynamic_detail)
            ));
        }
        if !self.discrepancies.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Replay `run` against the static analyzer and report disagreements.
///
/// Each checked commit's tree is re-checked-out from `repo`; for every
/// architecture the dynamic side used (certifying targets plus any
/// attempted allyesconfig), an `allyes`/`allmod` environment pair is
/// solved — through a shared [`ConfigCache`], so the work is paid once
/// per distinct Kconfig fingerprint, not once per commit — and the
/// patch's files are classified with [`Reach::analyze_files`].
pub fn cross_check(repo: &Repo, run: &EvaluationRun) -> CrossCheckReport {
    let mut out = CrossCheckReport::default();
    let cache = Arc::new(ConfigCache::new());
    for result in &run.results {
        let commit = result.commit.to_string();
        let Some(report) = result.report() else {
            let why = result.outcome.failure().unwrap_or("not checked");
            out.skipped.push(format!("{commit}: {why}"));
            continue;
        };
        out.patches += 1;
        let tree = match repo.checkout(result.commit) {
            Ok(t) => t,
            Err(e) => {
                out.skipped.push(format!("{commit}: re-checkout failed: {e}"));
                continue;
            }
        };
        let arches = arches_used(&report.files);
        let statics = solve_arches(&tree, &arches, &report.files, &cache, &commit, &mut out);
        let graph = ObjGraph::new(&tree);
        for file in &report.files {
            out.files += 1;
            out.tokens += file.covered.len() + file.uncovered.len();
            let shapes = line_shapes(tree.get(&file.path).unwrap_or(""));
            check_file(file, &commit, &statics, &graph, &shapes, &mut out);
        }
    }
    out
}

/// Per-arch static context: the classified files plus the solved
/// allyesconfig (for the Kbuild gate test of rule 2).
struct ArchStatic {
    reach: TreeReach,
    allyes: Config,
}

/// Architectures the dynamic side exercised: every certifying target's
/// arch plus every arch whose allyesconfig was at least attempted.
pub fn arches_used(files: &[FileReport]) -> BTreeSet<String> {
    let mut arches = BTreeSet::new();
    for f in files {
        for (_, desc) in &f.covered {
            if let Some((arch, _)) = desc.split_once('/') {
                arches.insert(arch.to_string());
            }
        }
        for desc in &f.targets_tried {
            if let Some(arch) = desc.strip_suffix("/allyesconfig") {
                arches.insert(arch.to_string());
            }
        }
    }
    arches
}

/// Solve allyes/allmod for each arch and classify the patch's files.
/// Architectures that cannot be solved (missing cross-compiler in a
/// stripped-down registry, say) are recorded in `skipped` and simply
/// absent from the map — rules needing them stay silent.
fn solve_arches(
    tree: &SourceTree,
    arches: &BTreeSet<String>,
    files: &[FileReport],
    cache: &Arc<ConfigCache>,
    commit: &str,
    out: &mut CrossCheckReport,
) -> BTreeMap<String, ArchStatic> {
    let paths: Vec<String> = files.iter().map(|f| f.path.clone()).collect();
    let mut statics = BTreeMap::new();
    for arch in arches {
        let mut engine = BuildEngine::with_shared_cache(tree.clone(), Arc::clone(cache));
        let allyes = match engine.make_config(arch, &ConfigKind::AllYes) {
            Ok(c) => c,
            Err(e) => {
                out.skipped.push(format!("{commit}: {arch}: {e}"));
                continue;
            }
        };
        let allmod = match engine.make_config(arch, &ConfigKind::AllMod) {
            Ok(c) => c,
            Err(e) => {
                out.skipped.push(format!("{commit}: {arch}: {e}"));
                continue;
            }
        };
        let mut reach = Reach::new(tree);
        reach.add_model(arch.clone(), allyes.model.clone());
        reach.add_env(ReachEnv {
            label: format!("{arch}-allyes"),
            arch: arch.clone(),
            config: allyes.config.clone(),
            allyes: true,
        });
        reach.add_env(ReachEnv {
            label: format!("{arch}-allmod"),
            arch: arch.clone(),
            config: allmod.config.clone(),
            allyes: false,
        });
        statics.insert(
            arch.clone(),
            ArchStatic {
                reach: reach.analyze_files(&paths),
                allyes: allyes.config.clone(),
            },
        );
    }
    statics
}

/// Apply both rules to one file report.
fn check_file(
    file: &FileReport,
    commit: &str,
    statics: &BTreeMap<String, ArchStatic>,
    graph: &ObjGraph<'_>,
    shapes: &BTreeMap<u32, LineShape>,
    out: &mut CrossCheckReport,
) {
    // Rule 1: a certified token on a statically-dead line.
    for (tok, desc) in &file.covered {
        let Some((arch, _)) = desc.split_once('/') else {
            continue;
        };
        let Some(st) = statics.get(arch) else { continue };
        let Some(class) = token_class(st.reach.files.get(&file.path), shapes, tok.line) else {
            continue;
        };
        match class {
            ReachClass::Dead { proof } => out.discrepancies.push(Discrepancy {
                commit: commit.to_string(),
                file: file.path.clone(),
                line: tok.line,
                kind: DiscrepancyKind::DeadButCovered,
                arch: arch.to_string(),
                static_detail: proof.clone(),
                dynamic_detail: format!("covered via {desc}"),
            }),
            ReachClass::AllyesReachable if desc.ends_with("/allyesconfig") => {
                out.allyes_agreed += 1;
            }
            _ => {}
        }
    }

    // Rule 2: an allyes-reachable token that allyesconfig missed.
    if file.is_header
        || matches!(
            file.status,
            FileStatus::Bootstrap | FileStatus::CommentOnly | FileStatus::NoViableTarget
        )
        || !file.errors.is_empty()
    {
        // Headers are only reached through other translation units and
        // files with operational errors never got a fair dynamic shot —
        // both fuzzy, neither flaggable.
        return;
    }
    for unc in &file.uncovered {
        let tok = &unc.token;
        if tok.kind != MutationKind::Context {
            continue;
        }
        let mut dead_seen = false;
        for desc in &file.targets_tried {
            let Some(arch) = desc.strip_suffix("/allyesconfig") else {
                continue;
            };
            let Some(st) = statics.get(arch) else { continue };
            let Some(class) = token_class(st.reach.files.get(&file.path), shapes, tok.line)
            else {
                continue;
            };
            match class {
                ReachClass::AllyesReachable
                    if graph.gating_value(&file.path, &st.allyes).enabled() =>
                {
                    out.discrepancies.push(Discrepancy {
                        commit: commit.to_string(),
                        file: file.path.clone(),
                        line: tok.line,
                        kind: DiscrepancyKind::AllyesButMissed,
                        arch: arch.to_string(),
                        static_detail: "allyes-reachable".to_string(),
                        dynamic_detail: format!("uncovered: {}", unc.reason),
                    });
                    break;
                }
                ReachClass::Dead { .. } => dead_seen = true,
                _ => {}
            }
        }
        if dead_seen {
            out.dead_agreed += 1;
        }
    }
}

/// What a physical line is, for token-region attribution. Lines absent
/// from the map are plain (token and analyzer agree on the region).
///
/// Public because the remediation pass (`jmake-fix`) attributes tokens
/// to regions with exactly the same rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineShape {
    /// `#if`/`#ifdef`/`#ifndef`/`#elif`/`#else`: the mutation engine
    /// places the token *after* the directive, inside the branch it
    /// opens. `end` is the last physical line of the (possibly spliced)
    /// logical directive; `multi` flags splices.
    Opens { end: u32, multi: bool },
    /// `#endif`: a token keyed here sits in the region the directive
    /// closes, which no pristine line unambiguously carries.
    Closer,
    /// `#if`/`#ifdef`/`#ifndef` specifically — safe as the *neighbor*
    /// of a branch token, because the analyzer attributes an opener to
    /// its enclosing region, which is exactly the branch the token
    /// certifies. (`#elif`/`#else`/`#endif` neighbors are attributed
    /// one region out and are not safe.)
    OpensFresh { end: u32, multi: bool },
}

/// Map physical lines to their [`LineShape`].
pub fn line_shapes(src: &str) -> BTreeMap<u32, LineShape> {
    let mut shapes = BTreeMap::new();
    for ll in logical_lines(src) {
        let Some((name, _)) = ll.directive() else {
            continue;
        };
        let multi = ll.first_line != ll.last_line;
        let shape = match name {
            "if" | "ifdef" | "ifndef" => LineShape::OpensFresh {
                end: ll.last_line,
                multi,
            },
            "elif" | "else" => LineShape::Opens {
                end: ll.last_line,
                multi,
            },
            "endif" => LineShape::Closer,
            _ => continue,
        };
        for phys in ll.first_line..=ll.last_line {
            shapes.insert(phys, shape);
        }
    }
    shapes
}

/// The static class of the *region a mutation token actually sits in*.
///
/// A `Context` token recorded at line `L` physically lands:
///
/// - on a fresh line just before `L` when `L` is a plain line — same
///   region as `L`, so `class(L)` is the answer;
/// - just *after* the directive when `L` is a conditional opener or
///   branch switch ([`mutation`](crate::mutation) certifies the branch
///   the directive opens) — the region of the first line inside the
///   branch. That class is only read off the pristine file when the
///   next line is a plain line or a fresh opener (both attributed to
///   exactly that region by the analyzer); spliced directives,
///   `#endif`s, and `#elif`/`#else` neighbors are ambiguous and yield
///   `None` (the token is counted but exempt from both rules).
///
/// `Define` tokens live on their `#define`/continuation line and take
/// the plain-line path.
pub fn token_class<'a>(
    fr: Option<&'a jmake_reach::FileReach>,
    shapes: &BTreeMap<u32, LineShape>,
    line: u32,
) -> Option<&'a ReachClass> {
    fr?.class(token_region_line(shapes, line)?)
}

/// The pristine-file line whose region a token recorded at `line`
/// actually certifies, per the attribution rules of [`token_class`].
/// `None` for ambiguous sites (`#endif` keys, spliced directives,
/// `#elif`/`#else` neighbors).
pub fn token_region_line(shapes: &BTreeMap<u32, LineShape>, line: u32) -> Option<u32> {
    match shapes.get(&line) {
        None => Some(line),
        Some(LineShape::Closer) => None,
        Some(LineShape::Opens { multi: true, .. })
        | Some(LineShape::OpensFresh { multi: true, .. }) => None,
        Some(LineShape::Opens { end, .. }) | Some(LineShape::OpensFresh { end, .. }) => {
            let candidate = end + 1;
            match shapes.get(&candidate) {
                None | Some(LineShape::OpensFresh { multi: false, .. }) => Some(candidate),
                _ => None,
            }
        }
    }
}

/// JSON string literal with escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_evaluation, DriverOptions};
    use jmake_vcs::Repo;

    /// A tiny repo: one commit planting a dead `#ifdef` block next to a
    /// live edit, on a tree whose Kconfig declares a dead symbol.
    fn planted_repo() -> (Repo, Vec<jmake_vcs::CommitId>) {
        let mut tree = SourceTree::new();
        tree.insert(
            "Kconfig",
            "config CRC\n\tbool \"crc\"\n\tdefault y\n\
             config DEAD_OPTION\n\tbool \"dead\"\n\tdepends on MISSING_EVERYWHERE\n",
        );
        tree.insert("arch/x86_64/Kconfig", "config X86_64\n\tdef_bool y\n");
        tree.insert("Makefile", "obj-y += lib/\n");
        tree.insert("lib/Makefile", "obj-$(CONFIG_CRC) += crc.o\n");
        tree.insert("lib/crc.c", "int crc_base;\nint crc_step;\n");

        let mut repo = Repo::new();
        let base = repo.commit(&[], "seed", "seed", &tree);
        let mut t2 = tree.clone();
        t2.insert(
            "lib/crc.c",
            "int crc_base;\nint crc_step2;\n\
             #ifdef CONFIG_DEAD_OPTION\nint planted_dead;\n#endif\n",
        );
        let c1 = repo.commit(&[base], "janitor", "plant dead block", &t2);
        (repo, vec![c1])
    }

    fn run_on(repo: &Repo, commits: &[jmake_vcs::CommitId]) -> EvaluationRun {
        let opts = DriverOptions {
            workers: 1,
            ..DriverOptions::default()
        };
        run_evaluation(repo, commits, &opts)
    }

    #[test]
    fn planted_dead_block_agrees_and_report_is_clean() {
        let (repo, commits) = planted_repo();
        let run = run_on(&repo, &commits);
        assert_eq!(run.stats.checked, 1);
        let report = cross_check(&repo, &run);
        assert!(
            report.is_clean(),
            "expected clean cross-check, got {:?}",
            report.discrepancies
        );
        assert_eq!(report.patches, 1);
        assert!(report.tokens >= 2, "live edit + dead block tokens");
        assert!(
            report.dead_agreed >= 1,
            "the planted dead line must be dead statically AND uncovered dynamically: {report:?}"
        );
        assert!(report.allyes_agreed >= 1, "the live edit agrees: {report:?}");
    }

    #[test]
    fn report_json_is_deterministic() {
        let (repo, commits) = planted_repo();
        let run = run_on(&repo, &commits);
        let a = cross_check(&repo, &run).to_json();
        let b = cross_check(&repo, &run).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"clean\": true"));
        assert!(a.contains("\"dead_agreed\""));
    }

    #[test]
    fn fabricated_dead_but_covered_is_flagged() {
        // Forge a run claiming the planted dead line was certified: the
        // cross-check must cry foul.
        let (repo, commits) = planted_repo();
        let mut run = run_on(&repo, &commits);
        let report = match &mut run.results[0].outcome {
            crate::driver::PatchOutcome::Checked(r) => r,
            other => panic!("expected checked outcome, got {other:?}"),
        };
        let file = report
            .files
            .iter_mut()
            .find(|f| f.path == "lib/crc.c")
            .expect("crc.c report");
        // The dead-block token is recorded on the `#ifdef` line (3); the
        // mutation engine physically placed it inside the branch.
        let dead_tok = file
            .uncovered
            .iter()
            .map(|u| u.token.clone())
            .find(|t| t.line == 3)
            .expect("planted dead block token");
        file.uncovered.retain(|u| u.token.line != 3);
        file.covered
            .push((dead_tok, "x86_64/allyesconfig".to_string()));

        let cc = cross_check(&repo, &run);
        assert!(!cc.is_clean());
        let d = &cc.discrepancies[0];
        assert_eq!(d.kind, DiscrepancyKind::DeadButCovered);
        assert_eq!(d.file, "lib/crc.c");
        assert_eq!(d.line, 3);
        assert_eq!(d.arch, "x86_64");
        assert!(cc.to_json().contains("dead-but-covered"));
    }

    #[test]
    fn fabricated_allyes_but_missed_is_flagged() {
        // Forge the opposite direction: claim the live edit's token was
        // never covered despite a clean allyesconfig attempt.
        let (repo, commits) = planted_repo();
        let mut run = run_on(&repo, &commits);
        let report = match &mut run.results[0].outcome {
            crate::driver::PatchOutcome::Checked(r) => r,
            other => panic!("expected checked outcome, got {other:?}"),
        };
        let file = report
            .files
            .iter_mut()
            .find(|f| f.path == "lib/crc.c")
            .expect("crc.c report");
        let (live_tok, _) = file
            .covered
            .iter()
            .find(|(t, _)| t.line == 2)
            .cloned()
            .expect("live edit token");
        file.covered.retain(|(t, _)| t.line != 2);
        file.uncovered.push(crate::report::UncoveredMutation {
            token: live_tok,
            reason: crate::classify::UncoveredReason::Unknown,
        });
        file.status = FileStatus::PartiallyCovered;

        let cc = cross_check(&repo, &run);
        assert!(cc
            .discrepancies
            .iter()
            .any(|d| d.kind == DiscrepancyKind::AllyesButMissed && d.line == 2));
    }

    #[test]
    fn unchecked_commits_are_skipped_with_a_note() {
        let (repo, commits) = planted_repo();
        let mut run = run_on(&repo, &commits);
        run.results[0].outcome =
            crate::driver::PatchOutcome::CheckoutFailed("gone".to_string());
        let cc = cross_check(&repo, &run);
        assert_eq!(cc.patches, 0);
        assert_eq!(cc.skipped.len(), 1);
        assert!(cc.skipped[0].contains("gone"));
        assert!(cc.is_clean());
    }

    #[test]
    fn line_shapes_classify_directives() {
        let shapes =
            line_shapes("int a;\n#if defined(X) && \\\n    defined(Y)\nint b;\n#else\nint c;\n#endif\n");
        assert!(!shapes.contains_key(&1), "plain line");
        assert_eq!(
            shapes.get(&2),
            Some(&LineShape::OpensFresh { end: 3, multi: true }),
            "spliced opener marks both physical lines"
        );
        assert_eq!(shapes.get(&3), shapes.get(&2));
        assert!(!shapes.contains_key(&4));
        assert_eq!(shapes.get(&5), Some(&LineShape::Opens { end: 5, multi: false }));
        assert_eq!(shapes.get(&7), Some(&LineShape::Closer));
    }

    #[test]
    fn token_class_maps_opener_tokens_into_the_branch() {
        use jmake_reach::FileReach;
        let src = "int a;\n#ifdef CONFIG_X\nint b;\n#endif\nint c;\n";
        let shapes = line_shapes(src);
        let fr = FileReach {
            path: "f.c".to_string(),
            classes: vec![
                ReachClass::AllyesReachable,                           // 1
                ReachClass::AllyesReachable,                           // 2 (#ifdef → enclosing)
                ReachClass::Dead { proof: "p".to_string() },           // 3 (branch)
                ReachClass::AllyesReachable,                           // 4 (#endif → enclosing)
                ReachClass::AllyesReachable,                           // 5
            ],
        };
        // A token on the #ifdef line certifies the branch: line 3's class.
        assert!(token_class(Some(&fr), &shapes, 2).is_some_and(ReachClass::is_dead));
        // Plain lines map to themselves.
        assert_eq!(token_class(Some(&fr), &shapes, 1), Some(&ReachClass::AllyesReachable));
        // #endif tokens are ambiguous.
        assert_eq!(token_class(Some(&fr), &shapes, 4), None);
        // Missing file report → no verdict.
        assert_eq!(token_class(None, &shapes, 1), None);
    }
}
