//! JMake: dependable compilation checking for kernel janitors.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Lawall & Muller, *JMake: Dependable Compilation for Kernel Janitors*,
//! DSN 2017): a mutation-based tool that certifies, for every line changed
//! by a patch, that the line was actually *subjected to the compiler* by
//! some configuration — and that reports which lines escaped, and why,
//! when certification fails.
//!
//! The approach (paper §III):
//!
//! 1. **Mutate** the changed lines with unique invalid-character tokens
//!    ([`mutation`], [`token`]) — comments skipped, one token per changed
//!    macro, one per conditional-compilation section otherwise;
//! 2. **Select** candidate architectures and configurations from the
//!    file's location and its Makefile's configuration variables
//!    ([`archsel`]);
//! 3. **Preprocess** the mutated files (`make file.i`, grouped up to 50
//!    per invocation) and scan for the tokens; **compile** the pristine
//!    file (`make file.o`) to certify each configuration that surfaced
//!    new tokens ([`check`]);
//! 4. For headers, find and compile candidate `.c` files ranked by
//!    include/hint evidence (paper §III.E);
//! 5. **Classify** any token that never surfaced into the paper's
//!    Table IV categories ([`classify`]).
//!
//! [`driver`] runs the whole pipeline over a commit range in parallel and
//! [`stats`] folds the reports into the paper's tables and figures.
//!
//! # Example
//!
//! ```
//! use jmake_core::{JMake, MutationToken};
//! use jmake_kbuild::{BuildEngine, SourceTree};
//! use jmake_diff::{diff_to_patch, DiffOptions};
//!
//! // A one-file kernel with one driver.
//! let mut tree = SourceTree::new();
//! tree.insert("Kconfig", "config DRV\n\tbool \"drv\"\n");
//! tree.insert("arch/x86_64/Kconfig", "config X86_64\n\tdef_bool y\n");
//! tree.insert("Makefile", "obj-y += drivers/\n");
//! tree.insert("drivers/Makefile", "obj-$(CONFIG_DRV) += drv.o\n");
//! let old = "int drv_init(void)\n{\nreturn 0;\n}\n";
//! let new = "int drv_init(void)\n{\nreturn 1;\n}\n";
//! tree.insert("drivers/drv.c", new);
//!
//! let patch = diff_to_patch("drivers/drv.c", old, new, &DiffOptions::default());
//! let mut engine = BuildEngine::new(tree);
//! let report = JMake::new().check_patch(&mut engine, &patch, "a janitor");
//! assert!(report.is_success());
//! ```

pub mod archsel;
pub mod check;
pub mod classify;
pub mod covsel;
pub mod crosscheck;
pub mod driver;
pub mod mutation;
pub mod precheck;
pub mod report;
pub mod stats;
pub mod token;

pub use archsel::{ArchSelector, Target};
pub use check::{JMake, Options, WarmProbe};
pub use classify::UncoveredReason;
pub use covsel::{
    branch_wants, generate_cover_targets, select_portfolio, Portfolio, PortfolioMember, Want,
};
pub use crosscheck::{
    arches_used, cross_check, line_shapes, token_class, token_region_line, CrossCheckReport,
    Discrepancy, DiscrepancyKind, LineShape,
};
pub use driver::{
    run_evaluation, DriverOptions, DriverStats, EvaluationRun, PatchOutcome, PatchResult,
    SchedulerStats, StageQueueStats,
};
pub use mutation::{mutate, mutate_naive, MutationPlan};
pub use precheck::{precheck, PrecheckKind, PrecheckWarning};
pub use report::{FileReport, FileStatus, PatchKind, PatchReport, UncoveredMutation};
pub use stats::{Histogram, SliceStats};
pub use token::{MutationKind, MutationToken, MUTATION_GLYPH};

#[cfg(test)]
mod pipeline_tests;

#[cfg(test)]
mod proptests;
