//! Coverage-maximizing configuration generation — the paper's proposed
//! complement (§VI/§VII).
//!
//! > "JMake could be complemented with more sophisticated configuration
//! > generation techniques [Vampyr, Troll] to obtain better results in
//! > such cases [#ifndef, #else branches]."
//!
//! Given the conditional structure of a file and a baseline configuration
//! (allyesconfig), this module greedily synthesizes additional
//! configurations that flip specific variables *off* so that `#ifndef X`
//! and `#else` branches become live. Each generated configuration is the
//! allyesconfig assignment with a set of compatible flips applied, fed
//! back through the dependency solver.

use crate::archsel::Target;
use jmake_cpp::lines::logical_lines;
use jmake_kbuild::ConfigKind;
use jmake_kconfig::{Config, Expr, KconfigModel};
use std::collections::BTreeSet;

/// A variable the file's conditionals want in a specific state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Want {
    /// Variable name without the `CONFIG_` prefix.
    pub var: String,
    /// Desired state: `false` = off (the `#ifndef`/`#else` side).
    pub on: bool,
}

/// Extract the variable polarities a file's conditional branches need.
///
/// Only decidable forms are collected: `#ifdef CONFIG_X` /
/// `#ifndef CONFIG_X` / `#if defined(CONFIG_X)` and their `#else` sides.
/// Guards on `MODULE`, `#if 0`, and complex expressions are skipped —
/// they are handled by allmodconfig and classification instead.
pub fn branch_wants(content: &str) -> Vec<Want> {
    let mut out: BTreeSet<Want> = BTreeSet::new();
    let mut stack: Vec<Option<(String, bool)>> = Vec::new(); // (var, on-state of if-side)
    for ll in logical_lines(content) {
        let Some((name, rest)) = ll.directive() else {
            continue;
        };
        match name {
            "ifdef" | "ifndef" => {
                let var = rest.split_whitespace().next().unwrap_or("");
                let tracked = var.strip_prefix("CONFIG_").map(|v| {
                    let on = name == "ifdef";
                    (v.to_string(), on)
                });
                if let Some((v, on)) = &tracked {
                    out.insert(Want {
                        var: v.clone(),
                        on: *on,
                    });
                }
                stack.push(tracked);
            }
            "if" => {
                let e = rest.trim();
                let var = e
                    .strip_prefix("defined")
                    .map(|r| {
                        r.trim()
                            .trim_start_matches('(')
                            .trim_end_matches(')')
                            .trim()
                    })
                    .and_then(|v| v.strip_prefix("CONFIG_"))
                    // Complex expressions (&&, ||, comparisons) are not
                    // single-variable branches; skip them.
                    .filter(|v| {
                        !v.is_empty() && v.chars().all(|c| c == '_' || c.is_ascii_alphanumeric())
                    });
                let tracked = var.map(|v| (v.to_string(), true));
                if let Some((v, _)) = &tracked {
                    out.insert(Want {
                        var: v.clone(),
                        on: true,
                    });
                }
                stack.push(tracked);
            }
            "else" | "elif" => {
                if let Some(Some((var, on))) = stack.last() {
                    out.insert(Want {
                        var: var.clone(),
                        on: !on,
                    });
                }
            }
            "endif" => {
                stack.pop();
            }
            _ => {}
        }
    }
    out.into_iter().collect()
}

/// Greedily build up to `limit` configurations over `baseline`
/// (allyesconfig) that realize the *off* wants the baseline misses.
///
/// Compatible flips are batched into one configuration; conflicting wants
/// (one branch needs X on, another needs X off) are split across
/// configurations — the reason one configuration can never cover both
/// sides of an `#ifdef`/`#else` pair.
pub fn generate_cover_targets(
    arch: &str,
    baseline: &Config,
    wants: &[Want],
    model: Option<&KconfigModel>,
    limit: usize,
) -> Vec<Target> {
    // Wants the baseline already satisfies are free; collect the rest.
    let missing: Vec<&Want> = wants
        .iter()
        .filter(|w| baseline.is_builtin(&w.var) != w.on)
        .collect();
    if missing.is_empty() {
        return Vec::new();
    }
    // Off-wants become flips directly. On-wants of variables allyesconfig
    // could not set are chased through the Kconfig model: if the symbol's
    // dependencies contain negated variables (`depends on !FULL`), flip
    // those off and request the symbol — the Troll-style move.
    let mut flips: BTreeSet<String> = BTreeSet::new();
    let mut forced_on: BTreeSet<String> = BTreeSet::new();
    for w in &missing {
        if !w.on {
            flips.insert(w.var.clone());
            continue;
        }
        let Some(model) = model else {
            continue;
        };
        let Some(sym) = model.symbol(&w.var) else {
            continue; // undeclared: nothing can enable it
        };
        if let Some(deps) = &sym.depends {
            let blockers = negated_symbols(deps);
            if !blockers.is_empty() {
                flips.extend(blockers);
                forced_on.insert(w.var.clone());
            }
        }
    }
    if flips.is_empty() && forced_on.is_empty() {
        return Vec::new();
    }
    let mut targets = Vec::new();
    // One configuration per batch of ≤8 flips (smaller batches isolate
    // interacting variables), capped at `limit`. Forced-on symbols ride
    // along in every batch (they are harmless when their blockers are in
    // a different batch).
    let flip_vec: Vec<String> = flips.into_iter().collect();
    for (i, chunk) in flip_vec.chunks(8).enumerate() {
        if targets.len() >= limit {
            break;
        }
        let mut content = String::new();
        for (name, value) in baseline.enabled_symbols() {
            if chunk.iter().any(|c| c == name) {
                continue; // flipped off
            }
            content.push_str(&format!("CONFIG_{name}={value}\n"));
        }
        for name in &forced_on {
            if !chunk.iter().any(|c| c == name) {
                content.push_str(&format!("CONFIG_{name}=y\n"));
            }
        }
        for name in chunk {
            content.push_str(&format!("# CONFIG_{name} is not set\n"));
        }
        targets.push(Target::new(
            arch,
            ConfigKind::Custom {
                name: format!("cover-{i}"),
                content,
            },
        ));
    }
    targets
}

/// Variables that appear under a negation in a dependency expression.
fn negated_symbols(e: &Expr) -> BTreeSet<String> {
    fn walk(e: &Expr, negated: bool, out: &mut BTreeSet<String>) {
        match e {
            Expr::Const(_) => {}
            Expr::Sym(n) => {
                if negated {
                    out.insert(n.clone());
                }
            }
            Expr::Not(inner) => walk(inner, !negated, out),
            Expr::And(a, b) | Expr::Or(a, b) => {
                walk(a, negated, out);
                walk(b, negated, out);
            }
        }
    }
    let mut out = BTreeSet::new();
    walk(e, false, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmake_kconfig::Tristate;

    #[test]
    fn wants_extracted_with_polarity() {
        let src =
            "#ifdef CONFIG_A\nint a;\n#else\nint b;\n#endif\n#ifndef CONFIG_C\nint c;\n#endif\n";
        let wants = branch_wants(src);
        assert!(wants.contains(&Want {
            var: "A".into(),
            on: true
        }));
        assert!(wants.contains(&Want {
            var: "A".into(),
            on: false
        }));
        assert!(wants.contains(&Want {
            var: "C".into(),
            on: false
        }));
    }

    #[test]
    fn non_config_guards_ignored() {
        let src = "#ifdef MODULE\nint m;\n#endif\n#if 0\nint z;\n#endif\n#if defined(CONFIG_X) && defined(CONFIG_Y)\nint xy;\n#endif\n";
        let wants = branch_wants(src);
        assert!(wants.is_empty(), "{wants:?}");
    }

    #[test]
    fn defined_form_extracted() {
        let wants = branch_wants("#if defined(CONFIG_PM)\nint p;\n#endif\n");
        assert_eq!(
            wants,
            vec![Want {
                var: "PM".into(),
                on: true
            }]
        );
    }

    #[test]
    fn generator_flips_off_wants_only() {
        let mut baseline = Config::default();
        baseline.set("A", Tristate::Y);
        baseline.set("B", Tristate::Y);
        let wants = vec![
            Want {
                var: "A".into(),
                on: false,
            }, // needs a flip
            Want {
                var: "B".into(),
                on: true,
            }, // already satisfied
            Want {
                var: "Z".into(),
                on: true,
            }, // unsatisfiable (allyes already failed)
        ];
        let targets = generate_cover_targets("x86_64", &baseline, &wants, None, 4);
        assert_eq!(targets.len(), 1);
        match &targets[0].kind {
            ConfigKind::Custom { name, content } => {
                assert_eq!(name, "cover-0");
                assert!(content.contains("# CONFIG_A is not set"));
                assert!(content.contains("CONFIG_B=y"));
                assert!(!content.contains("CONFIG_A=y"));
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn satisfied_baseline_needs_no_targets() {
        let mut baseline = Config::default();
        baseline.set("A", Tristate::Y);
        let wants = vec![Want {
            var: "A".into(),
            on: true,
        }];
        assert!(generate_cover_targets("arm", &baseline, &wants, None, 4).is_empty());
    }

    #[test]
    fn limit_is_respected() {
        let baseline = {
            let mut c = Config::default();
            for i in 0..40 {
                c.set(format!("V{i}"), Tristate::Y);
            }
            c
        };
        let wants: Vec<Want> = (0..40)
            .map(|i| Want {
                var: format!("V{i}"),
                on: false,
            })
            .collect();
        let targets = generate_cover_targets("x86_64", &baseline, &wants, None, 2);
        assert_eq!(targets.len(), 2);
    }
}
