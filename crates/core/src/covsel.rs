//! Coverage-maximizing configuration generation — the paper's proposed
//! complement (§VI/§VII).
//!
//! > "JMake could be complemented with more sophisticated configuration
//! > generation techniques [Vampyr, Troll] to obtain better results in
//! > such cases [#ifndef, #else branches]."
//!
//! Given the conditional structure of a file and a baseline configuration
//! (allyesconfig), this module greedily synthesizes additional
//! configurations that flip specific variables *off* so that `#ifndef X`
//! and `#else` branches become live. Each generated configuration is the
//! allyesconfig assignment with a set of compatible flips applied, fed
//! back through the dependency solver.

use crate::archsel::Target;
use jmake_cpp::lines::logical_lines;
use jmake_kbuild::{BuildEngine, ConfigKind, SourceTree};
use jmake_kconfig::{Config, Expr, KconfigModel};
use jmake_reach::{Reach, ReachClass, ReachEnv};
use std::collections::BTreeSet;

/// A variable the file's conditionals want in a specific state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Want {
    /// Variable name without the `CONFIG_` prefix.
    pub var: String,
    /// Desired state: `false` = off (the `#ifndef`/`#else` side).
    pub on: bool,
}

/// Extract the variable polarities a file's conditional branches need.
///
/// Only decidable forms are collected: `#ifdef CONFIG_X` /
/// `#ifndef CONFIG_X` / `#if defined(CONFIG_X)` and their `#else` sides.
/// Guards on `MODULE`, `#if 0`, and complex expressions are skipped —
/// they are handled by allmodconfig and classification instead.
pub fn branch_wants(content: &str) -> Vec<Want> {
    let mut out: BTreeSet<Want> = BTreeSet::new();
    let mut stack: Vec<Option<(String, bool)>> = Vec::new(); // (var, on-state of if-side)
    for ll in logical_lines(content) {
        let Some((name, rest)) = ll.directive() else {
            continue;
        };
        match name {
            "ifdef" | "ifndef" => {
                let var = rest.split_whitespace().next().unwrap_or("");
                let tracked = var.strip_prefix("CONFIG_").map(|v| {
                    let on = name == "ifdef";
                    (v.to_string(), on)
                });
                if let Some((v, on)) = &tracked {
                    out.insert(Want {
                        var: v.clone(),
                        on: *on,
                    });
                }
                stack.push(tracked);
            }
            "if" => {
                let e = rest.trim();
                let var = e
                    .strip_prefix("defined")
                    .map(|r| {
                        r.trim()
                            .trim_start_matches('(')
                            .trim_end_matches(')')
                            .trim()
                    })
                    .and_then(|v| v.strip_prefix("CONFIG_"))
                    // Complex expressions (&&, ||, comparisons) are not
                    // single-variable branches; skip them.
                    .filter(|v| {
                        !v.is_empty() && v.chars().all(|c| c == '_' || c.is_ascii_alphanumeric())
                    });
                let tracked = var.map(|v| (v.to_string(), true));
                if let Some((v, _)) = &tracked {
                    out.insert(Want {
                        var: v.clone(),
                        on: true,
                    });
                }
                stack.push(tracked);
            }
            "else" | "elif" => {
                if let Some(Some((var, on))) = stack.last() {
                    out.insert(Want {
                        var: var.clone(),
                        on: !on,
                    });
                }
            }
            "endif" => {
                stack.pop();
            }
            _ => {}
        }
    }
    out.into_iter().collect()
}

/// Greedily build up to `limit` configurations over `baseline`
/// (allyesconfig) that realize the *off* wants the baseline misses.
///
/// Compatible flips are batched into one configuration; conflicting wants
/// (one branch needs X on, another needs X off) are split across
/// configurations — the reason one configuration can never cover both
/// sides of an `#ifdef`/`#else` pair.
pub fn generate_cover_targets(
    arch: &str,
    baseline: &Config,
    wants: &[Want],
    model: Option<&KconfigModel>,
    limit: usize,
) -> Vec<Target> {
    // Wants the baseline already satisfies are free; collect the rest.
    let missing: Vec<&Want> = wants
        .iter()
        .filter(|w| baseline.is_builtin(&w.var) != w.on)
        .collect();
    if missing.is_empty() {
        return Vec::new();
    }
    // Off-wants become flips directly. On-wants of variables allyesconfig
    // could not set are chased through the Kconfig model: if the symbol's
    // dependencies contain negated variables (`depends on !FULL`), flip
    // those off and request the symbol — the Troll-style move.
    let mut flips: BTreeSet<String> = BTreeSet::new();
    let mut forced_on: BTreeSet<String> = BTreeSet::new();
    for w in &missing {
        if !w.on {
            flips.insert(w.var.clone());
            continue;
        }
        let Some(model) = model else {
            continue;
        };
        let Some(sym) = model.symbol(&w.var) else {
            continue; // undeclared: nothing can enable it
        };
        if let Some(deps) = &sym.depends {
            let blockers = negated_symbols(deps);
            if !blockers.is_empty() {
                flips.extend(blockers);
                forced_on.insert(w.var.clone());
            }
        }
    }
    if flips.is_empty() && forced_on.is_empty() {
        return Vec::new();
    }
    let mut targets = Vec::new();
    // One configuration per batch of ≤8 flips (smaller batches isolate
    // interacting variables), capped at `limit`. Forced-on symbols ride
    // along in every batch (they are harmless when their blockers are in
    // a different batch).
    let flip_vec: Vec<String> = flips.into_iter().collect();
    for (i, chunk) in flip_vec.chunks(8).enumerate() {
        if targets.len() >= limit {
            break;
        }
        let mut content = String::new();
        for (name, value) in baseline.enabled_symbols() {
            if chunk.iter().any(|c| c == name) {
                continue; // flipped off
            }
            content.push_str(&format!("CONFIG_{name}={value}\n"));
        }
        for name in &forced_on {
            if !chunk.iter().any(|c| c == name) {
                content.push_str(&format!("CONFIG_{name}=y\n"));
            }
        }
        for name in chunk {
            content.push_str(&format!("# CONFIG_{name} is not set\n"));
        }
        targets.push(Target::new(
            arch,
            ConfigKind::Custom {
                name: format!("cover-{i}"),
                content,
            },
        ));
    }
    targets
}

/// One member of a selected configuration portfolio (DESIGN.md §15).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioMember {
    /// The configuration every trial fans out to.
    pub kind: ConfigKind,
    /// Virtual-clock cost (µs) of creating the configuration, measured by
    /// solving it on a scratch engine — the denominator of the greedy
    /// lines-per-virtual-dollar objective.
    pub cost_virtual_us: u64,
    /// Lines newly covered when this member joins the portfolio: the
    /// allyes-reachable count for member 0, newly-present conditional
    /// lines for every randconfig member.
    pub new_lines: usize,
}

/// Result of greedy coverage-vs-budget selection over seeded randconfig
/// candidates ([`select_portfolio`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Portfolio {
    /// Architecture the portfolio was selected for (the primary model).
    pub arch: String,
    /// Requested portfolio size K (selection may stop earlier when no
    /// candidate adds coverage).
    pub requested: usize,
    /// Base sampling seed; candidate i uses `rand_seed + i`.
    pub rand_seed: u64,
    /// Number of distinct randconfig candidates sampled and scored.
    pub pool: usize,
    /// Selected members in greedy order; member 0 is always allyesconfig
    /// (the K=1 baseline).
    pub members: Vec<PortfolioMember>,
    /// Lines classified allyes-reachable — covered by member 0.
    pub allyes_lines: usize,
    /// Lines only present under some non-allyes configuration.
    pub conditional_lines: usize,
    /// Conditional lines covered by the selected randconfig members.
    pub covered_conditional_lines: usize,
    /// Lines statically proven dead — no configuration ever reaches them.
    pub dead_lines: usize,
    /// Conditional lines no sampled candidate reaches. Honest attribution:
    /// not provably dead, just beyond this seed pool (headers nobody
    /// includes, undecidable conditions, unsampled corners).
    pub unfixable_lines: usize,
}

impl Portfolio {
    /// The selected randconfig seeds, in greedy order.
    pub fn seeds(&self) -> Vec<u64> {
        self.members
            .iter()
            .filter_map(|m| match m.kind {
                ConfigKind::Rand { seed } => Some(seed),
                _ => None,
            })
            .collect()
    }

    /// Sum of member configuration-creation costs (µs, virtual clock).
    pub fn total_cost_virtual_us(&self) -> u64 {
        self.members.iter().map(|m| m.cost_virtual_us).sum()
    }

    /// Lines covered by the whole portfolio (allyes + selected members).
    pub fn covered_lines(&self) -> usize {
        self.allyes_lines + self.covered_conditional_lines
    }

    /// All classified lines: allyes + conditional + dead.
    pub fn total_lines(&self) -> usize {
        self.allyes_lines + self.conditional_lines + self.dead_lines
    }
}

/// Greedily select a portfolio of `k` configurations maximizing
/// newly-reachable lines per virtual-clock dollar (ROADMAP item 3).
///
/// Member 0 is always allyesconfig — the K=1 baseline the paper
/// evaluates. The remaining `k − 1` slots are filled from a pool of
/// seeded randconfig candidates (`rand_seed + i`, deterministic per
/// [`KconfigModel::randconfig`]): each round picks the candidate whose
/// count of *newly*-present conditional lines per configuration-creation
/// cost is maximal, comparing gains by cross-multiplication (no floats)
/// and breaking exact ties toward the smaller seed. Selection stops early
/// once no candidate adds coverage.
///
/// "Present" is the reach analyzer's end-to-end notion
/// ([`Reach::line_present`]): the `#if` stack must evaluate to
/// definitely-true and, for `.c` files, the Kbuild guard chain must open
/// the translation unit. Lines no configuration can reach are attributed
/// honestly: statically-proven-dead lines count as `dead_lines`,
/// conditional lines beyond the sampled pool as `unfixable_lines`.
///
/// Everything here is a pure function of `(tree, arch, k, rand_seed)` —
/// the scratch engine's virtual clock never touches the evaluation run's
/// clock, so selection does not perturb report identity.
///
/// # Errors
///
/// Any configuration-solve failure (missing `arch/<arch>/Kconfig`,
/// unknown arch) is returned as a rendered message.
pub fn select_portfolio(
    tree: &SourceTree,
    arch: &str,
    k: usize,
    rand_seed: u64,
) -> Result<Portfolio, String> {
    if k == 0 {
        return Err("portfolio size must be at least 1".to_string());
    }
    let mut engine = BuildEngine::new(tree.clone());
    let t0 = engine.clock.now_us();
    let allyes = engine
        .make_config(arch, &ConfigKind::AllYes)
        .map_err(|e| format!("{arch}: {e}"))?;
    let allyes_cost = engine.clock.now_us() - t0;

    let mut reach = Reach::new(tree);
    reach.add_model(arch, allyes.model.clone());
    reach.add_env(ReachEnv {
        label: format!("{arch}-allyes"),
        arch: arch.to_string(),
        config: allyes.config.clone(),
        allyes: true,
    });
    let classified = reach.analyze();

    // Partition the line universe. Conditional lines are the optimization
    // target; allyes lines belong to member 0 by construction and dead
    // lines to nobody.
    let mut allyes_lines = 0usize;
    let mut dead_lines = 0usize;
    let mut cond_lines: Vec<(&str, u32)> = Vec::new();
    for (path, file) in &classified.files {
        for (i, class) in file.classes.iter().enumerate() {
            match class {
                ReachClass::AllyesReachable => allyes_lines += 1,
                ReachClass::Dead { .. } => dead_lines += 1,
                ReachClass::ConditionallyReachable { .. } => {
                    cond_lines.push((path.as_str(), i as u32 + 1));
                }
            }
        }
    }

    // Sample the candidate pool: distinct seeds, distinct solved configs
    // (two seeds reaching the same fixed point are one candidate — the
    // smaller seed wins the name). Pool size scales with K so deeper
    // portfolios see more corners, independent of which K get selected.
    let pool_n = (4 * k).clamp(16, 64);
    struct Candidate {
        seed: u64,
        cost: u64,
        present: Vec<bool>,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut seen_configs: BTreeSet<String> = BTreeSet::new();
    seen_configs.insert(allyes.config.render());
    for i in 0..pool_n as u64 {
        let seed = rand_seed.wrapping_add(i);
        let kind = ConfigKind::Rand { seed };
        let t0 = engine.clock.now_us();
        let built = engine
            .make_config(arch, &kind)
            .map_err(|e| format!("{arch}: {e}"))?;
        let cost = engine.clock.now_us() - t0;
        if !seen_configs.insert(built.config.render()) {
            continue;
        }
        let present = cond_lines
            .iter()
            .map(|(path, line)| reach.line_present(path, *line, &built.config))
            .collect();
        candidates.push(Candidate {
            seed,
            cost,
            present,
        });
    }

    let mut members = vec![PortfolioMember {
        kind: ConfigKind::AllYes,
        cost_virtual_us: allyes_cost,
        new_lines: allyes_lines,
    }];
    let mut covered = vec![false; cond_lines.len()];
    let mut used: BTreeSet<u64> = BTreeSet::new();
    for _ in 1..k {
        // Pick argmax of gain/cost by cross-multiplication; exact ties go
        // to the smaller seed (candidates iterate in ascending seed order,
        // so strict improvement is required to displace the incumbent).
        let mut best: Option<(usize, usize)> = None; // (candidate idx, gain)
        for (ci, cand) in candidates.iter().enumerate() {
            if used.contains(&cand.seed) {
                continue;
            }
            let gain = cand
                .present
                .iter()
                .zip(&covered)
                .filter(|(p, c)| **p && !**c)
                .count();
            if gain == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bi, bg)) => {
                    (gain as u128) * u128::from(candidates[bi].cost.max(1))
                        > (bg as u128) * u128::from(cand.cost.max(1))
                }
            };
            if better {
                best = Some((ci, gain));
            }
        }
        let Some((ci, gain)) = best else {
            break; // no candidate adds coverage — stop early
        };
        let cand = &candidates[ci];
        used.insert(cand.seed);
        for (slot, p) in covered.iter_mut().zip(&cand.present) {
            *slot |= *p;
        }
        members.push(PortfolioMember {
            kind: ConfigKind::Rand { seed: cand.seed },
            cost_virtual_us: cand.cost,
            new_lines: gain,
        });
    }

    let covered_conditional_lines = covered.iter().filter(|c| **c).count();
    let unfixable_lines = (0..cond_lines.len())
        .filter(|&i| !candidates.iter().any(|c| c.present[i]))
        .count();
    Ok(Portfolio {
        arch: arch.to_string(),
        requested: k,
        rand_seed,
        pool: candidates.len(),
        members,
        allyes_lines,
        conditional_lines: cond_lines.len(),
        covered_conditional_lines,
        dead_lines,
        unfixable_lines,
    })
}

/// Variables that appear under a negation in a dependency expression.
fn negated_symbols(e: &Expr) -> BTreeSet<String> {
    fn walk(e: &Expr, negated: bool, out: &mut BTreeSet<String>) {
        match e {
            Expr::Const(_) => {}
            Expr::Sym(n) => {
                if negated {
                    out.insert(n.clone());
                }
            }
            Expr::Not(inner) => walk(inner, !negated, out),
            Expr::And(a, b) | Expr::Or(a, b) => {
                walk(a, negated, out);
                walk(b, negated, out);
            }
        }
    }
    let mut out = BTreeSet::new();
    walk(e, false, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmake_kconfig::Tristate;

    #[test]
    fn wants_extracted_with_polarity() {
        let src =
            "#ifdef CONFIG_A\nint a;\n#else\nint b;\n#endif\n#ifndef CONFIG_C\nint c;\n#endif\n";
        let wants = branch_wants(src);
        assert!(wants.contains(&Want {
            var: "A".into(),
            on: true
        }));
        assert!(wants.contains(&Want {
            var: "A".into(),
            on: false
        }));
        assert!(wants.contains(&Want {
            var: "C".into(),
            on: false
        }));
    }

    #[test]
    fn non_config_guards_ignored() {
        let src = "#ifdef MODULE\nint m;\n#endif\n#if 0\nint z;\n#endif\n#if defined(CONFIG_X) && defined(CONFIG_Y)\nint xy;\n#endif\n";
        let wants = branch_wants(src);
        assert!(wants.is_empty(), "{wants:?}");
    }

    #[test]
    fn defined_form_extracted() {
        let wants = branch_wants("#if defined(CONFIG_PM)\nint p;\n#endif\n");
        assert_eq!(
            wants,
            vec![Want {
                var: "PM".into(),
                on: true
            }]
        );
    }

    #[test]
    fn generator_flips_off_wants_only() {
        let mut baseline = Config::default();
        baseline.set("A", Tristate::Y);
        baseline.set("B", Tristate::Y);
        let wants = vec![
            Want {
                var: "A".into(),
                on: false,
            }, // needs a flip
            Want {
                var: "B".into(),
                on: true,
            }, // already satisfied
            Want {
                var: "Z".into(),
                on: true,
            }, // unsatisfiable (allyes already failed)
        ];
        let targets = generate_cover_targets("x86_64", &baseline, &wants, None, 4);
        assert_eq!(targets.len(), 1);
        match &targets[0].kind {
            ConfigKind::Custom { name, content } => {
                assert_eq!(name, "cover-0");
                assert!(content.contains("# CONFIG_A is not set"));
                assert!(content.contains("CONFIG_B=y"));
                assert!(!content.contains("CONFIG_A=y"));
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn satisfied_baseline_needs_no_targets() {
        let mut baseline = Config::default();
        baseline.set("A", Tristate::Y);
        let wants = vec![Want {
            var: "A".into(),
            on: true,
        }];
        assert!(generate_cover_targets("arm", &baseline, &wants, None, 4).is_empty());
    }

    /// A tree where one line sits behind `#ifndef CONFIG_FULL` — invisible
    /// to allyesconfig, reachable by any randconfig that samples FULL off —
    /// plus one provably dead line and one unconditional line.
    fn portfolio_tree() -> SourceTree {
        let mut tree = SourceTree::new();
        tree.insert(
            "Kconfig",
            "config FULL\n\tbool \"full\"\n\nconfig DRV\n\tbool \"drv\"\n",
        );
        tree.insert("arch/x86_64/Kconfig", "config X86_64\n\tdef_bool y\n");
        tree.insert("Makefile", "obj-y += drivers/\n");
        tree.insert("drivers/Makefile", "obj-$(CONFIG_DRV) += drv.o\n");
        tree.insert(
            "drivers/drv.c",
            "#ifndef CONFIG_FULL\nint lean_only;\n#endif\n#ifdef CONFIG_NEVER\nint dead;\n#endif\nint live;\n",
        );
        tree
    }

    #[test]
    fn portfolio_member_zero_is_allyes_and_k1_is_the_baseline() {
        let p = select_portfolio(&portfolio_tree(), "x86_64", 1, 7).unwrap();
        assert_eq!(p.members.len(), 1);
        assert_eq!(p.members[0].kind, ConfigKind::AllYes);
        assert_eq!(p.members[0].new_lines, p.allyes_lines);
        assert_eq!(p.covered_conditional_lines, 0);
        assert!(p.dead_lines >= 1, "CONFIG_NEVER line should be dead");
    }

    #[test]
    fn portfolio_covers_the_ifndef_line_allyes_misses() {
        let p = select_portfolio(&portfolio_tree(), "x86_64", 8, 7).unwrap();
        assert!(
            p.covered_conditional_lines >= 1,
            "some sampled config must set FULL=n: {p:?}"
        );
        assert!(p.members.len() >= 2);
        assert!(matches!(p.members[1].kind, ConfigKind::Rand { .. }));
        assert!(p.members[1].new_lines >= 1);
        assert!(p.members[1].cost_virtual_us > 0);
        // Greedy stops once nothing new is coverable; a single #ifndef
        // branch needs exactly one extra config.
        assert_eq!(p.members.len(), 2);
    }

    #[test]
    fn portfolio_selection_is_deterministic() {
        let tree = portfolio_tree();
        let a = select_portfolio(&tree, "x86_64", 4, 319).unwrap();
        let b = select_portfolio(&tree, "x86_64", 4, 319).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn portfolio_rejects_k_zero_and_unknown_arch() {
        let tree = portfolio_tree();
        assert!(select_portfolio(&tree, "x86_64", 0, 1).is_err());
        assert!(select_portfolio(&tree, "no_such_arch", 2, 1).is_err());
    }

    #[test]
    fn limit_is_respected() {
        let baseline = {
            let mut c = Config::default();
            for i in 0..40 {
                c.set(format!("V{i}"), Tristate::Y);
            }
            c
        };
        let wants: Vec<Want> = (0..40)
            .map(|i| Want {
                var: format!("V{i}"),
                on: false,
            })
            .collect();
        let targets = generate_cover_targets("x86_64", &baseline, &wants, None, 2);
        assert_eq!(targets.len(), 2);
    }
}
