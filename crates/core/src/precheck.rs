//! Pre-compilation warnings (paper §VII).
//!
//! > "JMake could simply detect the issue and ask for user assistance,
//! > which could save running time by avoiding the exploration of
//! > unpromising cases."
//!
//! Two patterns are decidable from the patch text alone, before any
//! configuration is created:
//!
//! - changes under **both** an `#ifdef` branch and its `#else` — no single
//!   configuration can ever certify both sides (the paper: "JMake never
//!   succeeds for a file containing a change that comprises changes under
//!   both an ifdef and the corresponding else");
//! - changes under `#ifndef` — `allyesconfig` drives variables to *yes*,
//!   so these branches usually lose.
//!
//! [`precheck`] reports them so an interactive user can decide whether to
//! spend compilations at all.

use jmake_cpp::lines::logical_lines;
use jmake_diff::{changed_lines, ChangedLine, FilePatch};
use std::fmt;

/// One early warning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecheckWarning {
    /// File concerned.
    pub path: String,
    /// Kind of unpromising pattern.
    pub kind: PrecheckKind,
    /// 1-based lines (post-patch) involved.
    pub lines: Vec<u32>,
}

/// The decidable-from-text patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecheckKind {
    /// The patch changes both branches of one conditional group.
    BothBranches,
    /// Changed lines sit under `#ifndef`.
    UnderIfndef,
    /// Changed lines sit under `#if 0`.
    UnderIfZero,
}

impl fmt::Display for PrecheckWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            PrecheckKind::BothBranches => {
                "changes on both sides of one #ifdef/#else: no single configuration can cover both"
            }
            PrecheckKind::UnderIfndef => {
                "changes under #ifndef: allyesconfig sets variables to yes, this branch will likely stay dark"
            }
            PrecheckKind::UnderIfZero => "changes under #if 0: this code is never compiled",
        };
        write!(f, "{}: lines {:?}: {}", self.path, self.lines, what)
    }
}

/// Scan one file patch (with the post-patch `content`) for unpromising
/// patterns, with no compilation at all.
pub fn precheck(patch: &FilePatch, content: &str) -> Vec<PrecheckWarning> {
    let new_len = content.lines().count() as u32;
    let changed = changed_lines(patch, new_len);
    let changed_lines: Vec<u32> = changed
        .positions
        .iter()
        .filter_map(|p| match p {
            ChangedLine::Line(l) => Some(*l),
            ChangedLine::Eof => None,
        })
        .collect();
    if changed_lines.is_empty() {
        return Vec::new();
    }

    // Walk the conditional structure once, recording for each changed
    // line the innermost group id, branch index, and guard kind.
    #[derive(Clone)]
    struct Frame {
        group: u32,
        /// 0 for the `#if` arm, 1 for the first `#elif`/`#else`, 2 for the
        /// next, … Branches of one group are mutually exclusive, so changes
        /// in two *distinct* branch indices — not merely "if side vs else
        /// side" — are what no single configuration can cover.
        branch: u32,
        ifndef: bool,
        if_zero: bool,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut next_group = 0u32;
    // (line, group, branch, ifndef, if_zero)
    let mut located: Vec<(u32, u32, u32, bool, bool)> = Vec::new();
    let mut line_idx = 0usize;
    for ll in logical_lines(content) {
        let directive = ll.directive();
        let mut attribute = true;
        if let Some((name, rest)) = directive {
            match name {
                "if" | "ifdef" | "ifndef" => {
                    stack.push(Frame {
                        group: next_group,
                        branch: 0,
                        ifndef: name == "ifndef",
                        if_zero: name == "if" && is_literal_zero(rest),
                    });
                    next_group += 1;
                }
                "elif" | "else" => {
                    if let Some(top) = stack.last_mut() {
                        top.branch += 1;
                    }
                }
                "endif" => {
                    // A changed `#endif` is processed by the preprocessor
                    // whatever branch is live; attributing it to a branch
                    // (or, after an eager pop, to the *enclosing* frame)
                    // fabricates branch changes. Attribute it to nothing,
                    // and pop only after this logical line's attribution.
                    attribute = false;
                }
                _ => {}
            }
        }
        // Attribute every physical line of this logical line.
        while line_idx < changed_lines.len() {
            let l = changed_lines[line_idx];
            if l < ll.first_line {
                line_idx += 1;
                continue;
            }
            if l > ll.last_line {
                break;
            }
            if attribute {
                if let Some(top) = stack.last() {
                    located.push((l, top.group, top.branch, top.ifndef, top.if_zero));
                }
            }
            line_idx += 1;
        }
        if matches!(directive, Some(("endif", _))) {
            stack.pop();
        }
    }

    let mut warnings = Vec::new();
    // Both-branches: a group with changed lines in two or more distinct
    // (mutually exclusive) branches. This covers #if/#else, #if/#elif,
    // and two different #elif arms alike.
    let mut by_group: std::collections::BTreeMap<u32, Vec<(u32, u32)>> =
        std::collections::BTreeMap::new();
    for (l, g, branch, ..) in &located {
        by_group.entry(*g).or_default().push((*branch, *l));
    }
    for group_lines in by_group.values() {
        let branches: std::collections::BTreeSet<u32> =
            group_lines.iter().map(|(b, _)| *b).collect();
        if branches.len() >= 2 {
            let mut lines: Vec<u32> = group_lines.iter().map(|(_, l)| *l).collect();
            lines.sort_unstable();
            lines.dedup();
            warnings.push(PrecheckWarning {
                path: patch.path().to_string(),
                kind: PrecheckKind::BothBranches,
                lines,
            });
        }
    }
    // Ifndef / if-0 warnings (skip later branches of an ifndef — those
    // are the positively-guarded arms).
    let ifndef_lines: Vec<u32> = located
        .iter()
        .filter(|(_, _, branch, ifndef, _)| *ifndef && *branch == 0)
        .map(|(l, ..)| *l)
        .collect();
    if !ifndef_lines.is_empty() {
        warnings.push(PrecheckWarning {
            path: patch.path().to_string(),
            kind: PrecheckKind::UnderIfndef,
            lines: ifndef_lines,
        });
    }
    let zero_lines: Vec<u32> = located
        .iter()
        .filter(|(_, _, branch, _, if_zero)| *if_zero && *branch == 0)
        .map(|(l, ..)| *l)
        .collect();
    if !zero_lines.is_empty() {
        warnings.push(PrecheckWarning {
            path: patch.path().to_string(),
            kind: PrecheckKind::UnderIfZero,
            lines: zero_lines,
        });
    }
    warnings
}

/// Is the `#if` condition a literal constant zero? `logical_lines`
/// already strips comments, but be robust to residue like
/// `0 /* disabled */` or a parenthesized `(0)` either way.
fn is_literal_zero(rest: &str) -> bool {
    let mut s = rest.trim();
    if let Some(i) = s.find("/*") {
        s = s[..i].trim_end();
    }
    if let Some(i) = s.find("//") {
        s = s[..i].trim_end();
    }
    let s = s
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .map(str::trim)
        .unwrap_or(s);
    s == "0"
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmake_diff::{diff_to_patch, DiffOptions};

    fn patch_for(old: &str, new: &str) -> (FilePatch, String) {
        let p = diff_to_patch("f.c", old, new, &DiffOptions::default());
        (
            p.files.into_iter().next().expect("non-empty diff"),
            new.to_string(),
        )
    }

    #[test]
    fn both_branches_warned() {
        let old = "#ifdef A\nint a;\n#else\nint b;\n#endif\n";
        let new = "#ifdef A\nint a2;\n#else\nint b2;\n#endif\n";
        let (fp, content) = patch_for(old, new);
        let w = precheck(&fp, &content);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, PrecheckKind::BothBranches);
        assert_eq!(w[0].lines, vec![2, 4]);
        assert!(w[0].to_string().contains("both sides"));
    }

    #[test]
    fn single_side_change_not_warned() {
        let old = "#ifdef A\nint a;\n#else\nint b;\n#endif\n";
        let new = "#ifdef A\nint a2;\n#else\nint b;\n#endif\n";
        let (fp, content) = patch_for(old, new);
        assert!(precheck(&fp, &content).is_empty());
    }

    #[test]
    fn ifndef_warned_but_not_its_else() {
        let old = "#ifndef G\nint fallback;\n#else\nint normal;\n#endif\n";
        let new = "#ifndef G\nint fallback2;\n#else\nint normal;\n#endif\n";
        let (fp, content) = patch_for(old, new);
        let w = precheck(&fp, &content);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, PrecheckKind::UnderIfndef);

        // Changing only the else of an ifndef: no warning.
        let new2 = "#ifndef G\nint fallback;\n#else\nint normal2;\n#endif\n";
        let (fp2, content2) = patch_for(old, new2);
        assert!(precheck(&fp2, &content2).is_empty());
    }

    #[test]
    fn if_zero_warned() {
        let old = "#if 0\nint x;\n#endif\nint y;\n";
        let new = "#if 0\nint x2;\n#endif\nint y;\n";
        let (fp, content) = patch_for(old, new);
        let w = precheck(&fp, &content);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, PrecheckKind::UnderIfZero);
    }

    #[test]
    fn changes_outside_conditionals_are_silent() {
        let old = "int a;\nint b;\n";
        let new = "int a;\nint b2;\n";
        let (fp, content) = patch_for(old, new);
        assert!(precheck(&fp, &content).is_empty());
    }

    #[test]
    fn nested_groups_tracked_independently() {
        let old = "#ifdef A\n#ifdef B\nint ab;\n#endif\nint a;\n#else\nint c;\n#endif\n";
        // Change inner-if line and outer-else line: the outer group has
        // both sides changed (inner change is on the outer if-side).
        let new = "#ifdef A\n#ifdef B\nint ab2;\n#endif\nint a;\n#else\nint c2;\n#endif\n";
        let (fp, content) = patch_for(old, new);
        let w = precheck(&fp, &content);
        // The inner change attributes to group(B), the else change to
        // group(A): no single group has both sides, so only… actually the
        // inner change's innermost frame is B(if-side). Outer group A has
        // only the else change. No both-branches warning fires.
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn elif_counts_as_else_side() {
        let old = "#ifdef A\nint a;\n#elif defined(B)\nint b;\n#endif\n";
        let new = "#ifdef A\nint a2;\n#elif defined(B)\nint b2;\n#endif\n";
        let (fp, content) = patch_for(old, new);
        let w = precheck(&fp, &content);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, PrecheckKind::BothBranches);
    }

    #[test]
    fn if_zero_with_trailing_comment_warned() {
        let old = "#if 0 /* dead since 2.4 */\nint x;\n#endif\nint y;\n";
        let new = "#if 0 /* dead since 2.4 */\nint x2;\n#endif\nint y;\n";
        let (fp, content) = patch_for(old, new);
        let w = precheck(&fp, &content);
        assert_eq!(w.len(), 1, "{w:?}");
        assert_eq!(w[0].kind, PrecheckKind::UnderIfZero);

        // Also via the helper directly: parens and // comments.
        assert!(is_literal_zero("0"));
        assert!(is_literal_zero("0 /* why */"));
        assert!(is_literal_zero("0 // why"));
        assert!(is_literal_zero("(0)"));
        assert!(!is_literal_zero("1"));
        assert!(!is_literal_zero("0x0 + 0"));
        assert!(!is_literal_zero("CONFIG_FOO"));
    }

    #[test]
    fn changes_under_two_elif_arms_warn_both_branches() {
        // Two *different* #elif arms are mutually exclusive: no single
        // configuration covers both. The old else-side collapse saw both
        // changes as "else side" and stayed silent.
        let old = "#if defined(A)\nint a;\n#elif defined(B)\nint b;\n#elif defined(C)\nint c;\n#endif\n";
        let new = "#if defined(A)\nint a;\n#elif defined(B)\nint b2;\n#elif defined(C)\nint c2;\n#endif\n";
        let (fp, content) = patch_for(old, new);
        let w = precheck(&fp, &content);
        assert_eq!(w.len(), 1, "{w:?}");
        assert_eq!(w[0].kind, PrecheckKind::BothBranches);
        assert_eq!(w[0].lines, vec![4, 6]);
    }

    #[test]
    fn changed_endif_not_attributed_to_enclosing_group() {
        // Only cosmetic markers change: the inner `#endif` gains a comment,
        // and one line of the *outer else* changes. The old code popped the
        // inner frame before attribution, crediting the `#endif` line to
        // the outer group's else branch — and together with the real
        // else-side change that never produced a bogus warning, but pairing
        // it with an if-side change did. Reproduce that shape: change the
        // outer if-side line and the inner #endif (inside the outer else).
        let old = "#ifdef OUTER\nint o;\n#else\n#ifdef A\nint a;\n#endif\nint c;\n#endif\n";
        let new = "#ifdef OUTER\nint o2;\n#else\n#ifdef A\nint a;\n#endif /* A */\nint c;\n#endif\n";
        let (fp, content) = patch_for(old, new);
        let w = precheck(&fp, &content);
        assert!(
            w.is_empty(),
            "a changed #endif must not count as a branch change: {w:?}"
        );
    }
}
