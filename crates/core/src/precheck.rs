//! Pre-compilation warnings (paper §VII).
//!
//! > "JMake could simply detect the issue and ask for user assistance,
//! > which could save running time by avoiding the exploration of
//! > unpromising cases."
//!
//! Two patterns are decidable from the patch text alone, before any
//! configuration is created:
//!
//! - changes under **both** an `#ifdef` branch and its `#else` — no single
//!   configuration can ever certify both sides (the paper: "JMake never
//!   succeeds for a file containing a change that comprises changes under
//!   both an ifdef and the corresponding else");
//! - changes under `#ifndef` — `allyesconfig` drives variables to *yes*,
//!   so these branches usually lose.
//!
//! [`precheck`] reports them so an interactive user can decide whether to
//! spend compilations at all.

use jmake_cpp::lines::logical_lines;
use jmake_diff::{changed_lines, ChangedLine, FilePatch};
use std::fmt;

/// One early warning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecheckWarning {
    /// File concerned.
    pub path: String,
    /// Kind of unpromising pattern.
    pub kind: PrecheckKind,
    /// 1-based lines (post-patch) involved.
    pub lines: Vec<u32>,
}

/// The decidable-from-text patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecheckKind {
    /// The patch changes both branches of one conditional group.
    BothBranches,
    /// Changed lines sit under `#ifndef`.
    UnderIfndef,
    /// Changed lines sit under `#if 0`.
    UnderIfZero,
}

impl fmt::Display for PrecheckWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            PrecheckKind::BothBranches => {
                "changes on both sides of one #ifdef/#else: no single configuration can cover both"
            }
            PrecheckKind::UnderIfndef => {
                "changes under #ifndef: allyesconfig sets variables to yes, this branch will likely stay dark"
            }
            PrecheckKind::UnderIfZero => "changes under #if 0: this code is never compiled",
        };
        write!(f, "{}: lines {:?}: {}", self.path, self.lines, what)
    }
}

/// Scan one file patch (with the post-patch `content`) for unpromising
/// patterns, with no compilation at all.
pub fn precheck(patch: &FilePatch, content: &str) -> Vec<PrecheckWarning> {
    let new_len = content.lines().count() as u32;
    let changed = changed_lines(patch, new_len);
    let changed_lines: Vec<u32> = changed
        .positions
        .iter()
        .filter_map(|p| match p {
            ChangedLine::Line(l) => Some(*l),
            ChangedLine::Eof => None,
        })
        .collect();
    if changed_lines.is_empty() {
        return Vec::new();
    }

    // Walk the conditional structure once, recording for each changed
    // line the innermost group id, branch side, and guard kind.
    #[derive(Clone)]
    struct Frame {
        group: u32,
        else_side: bool,
        ifndef: bool,
        if_zero: bool,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut next_group = 0u32;
    // (line, group, else_side, ifndef, if_zero)
    let mut located: Vec<(u32, u32, bool, bool, bool)> = Vec::new();
    let mut line_idx = 0usize;
    for ll in logical_lines(content) {
        if let Some((name, rest)) = ll.directive() {
            match name {
                "if" | "ifdef" | "ifndef" => {
                    stack.push(Frame {
                        group: next_group,
                        else_side: false,
                        ifndef: name == "ifndef",
                        if_zero: name == "if" && rest.trim() == "0",
                    });
                    next_group += 1;
                }
                "elif" | "else" => {
                    if let Some(top) = stack.last_mut() {
                        top.else_side = true;
                    }
                }
                "endif" => {
                    stack.pop();
                }
                _ => {}
            }
        }
        // Attribute every physical line of this logical line.
        while line_idx < changed_lines.len() {
            let l = changed_lines[line_idx];
            if l < ll.first_line {
                line_idx += 1;
                continue;
            }
            if l > ll.last_line {
                break;
            }
            if let Some(top) = stack.last() {
                located.push((l, top.group, top.else_side, top.ifndef, top.if_zero));
            }
            line_idx += 1;
        }
    }

    let mut warnings = Vec::new();
    // Both-branches: a group with changed lines on both sides.
    let groups: std::collections::BTreeSet<u32> = located.iter().map(|(_, g, ..)| *g).collect();
    for g in groups {
        let mut if_lines = Vec::new();
        let mut else_lines = Vec::new();
        for (l, lg, else_side, ..) in &located {
            if lg == &g {
                if *else_side {
                    else_lines.push(*l);
                } else {
                    if_lines.push(*l);
                }
            }
        }
        if !if_lines.is_empty() && !else_lines.is_empty() {
            let mut lines = if_lines;
            lines.extend(else_lines);
            lines.sort_unstable();
            warnings.push(PrecheckWarning {
                path: patch.path().to_string(),
                kind: PrecheckKind::BothBranches,
                lines,
            });
        }
    }
    // Ifndef / if-0 warnings (skip the else-side of an ifndef — that side
    // is the positively-guarded branch).
    let ifndef_lines: Vec<u32> = located
        .iter()
        .filter(|(_, _, else_side, ifndef, _)| *ifndef && !*else_side)
        .map(|(l, ..)| *l)
        .collect();
    if !ifndef_lines.is_empty() {
        warnings.push(PrecheckWarning {
            path: patch.path().to_string(),
            kind: PrecheckKind::UnderIfndef,
            lines: ifndef_lines,
        });
    }
    let zero_lines: Vec<u32> = located
        .iter()
        .filter(|(_, _, else_side, _, if_zero)| *if_zero && !*else_side)
        .map(|(l, ..)| *l)
        .collect();
    if !zero_lines.is_empty() {
        warnings.push(PrecheckWarning {
            path: patch.path().to_string(),
            kind: PrecheckKind::UnderIfZero,
            lines: zero_lines,
        });
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmake_diff::{diff_to_patch, DiffOptions};

    fn patch_for(old: &str, new: &str) -> (FilePatch, String) {
        let p = diff_to_patch("f.c", old, new, &DiffOptions::default());
        (
            p.files.into_iter().next().expect("non-empty diff"),
            new.to_string(),
        )
    }

    #[test]
    fn both_branches_warned() {
        let old = "#ifdef A\nint a;\n#else\nint b;\n#endif\n";
        let new = "#ifdef A\nint a2;\n#else\nint b2;\n#endif\n";
        let (fp, content) = patch_for(old, new);
        let w = precheck(&fp, &content);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, PrecheckKind::BothBranches);
        assert_eq!(w[0].lines, vec![2, 4]);
        assert!(w[0].to_string().contains("both sides"));
    }

    #[test]
    fn single_side_change_not_warned() {
        let old = "#ifdef A\nint a;\n#else\nint b;\n#endif\n";
        let new = "#ifdef A\nint a2;\n#else\nint b;\n#endif\n";
        let (fp, content) = patch_for(old, new);
        assert!(precheck(&fp, &content).is_empty());
    }

    #[test]
    fn ifndef_warned_but_not_its_else() {
        let old = "#ifndef G\nint fallback;\n#else\nint normal;\n#endif\n";
        let new = "#ifndef G\nint fallback2;\n#else\nint normal;\n#endif\n";
        let (fp, content) = patch_for(old, new);
        let w = precheck(&fp, &content);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, PrecheckKind::UnderIfndef);

        // Changing only the else of an ifndef: no warning.
        let new2 = "#ifndef G\nint fallback;\n#else\nint normal2;\n#endif\n";
        let (fp2, content2) = patch_for(old, new2);
        assert!(precheck(&fp2, &content2).is_empty());
    }

    #[test]
    fn if_zero_warned() {
        let old = "#if 0\nint x;\n#endif\nint y;\n";
        let new = "#if 0\nint x2;\n#endif\nint y;\n";
        let (fp, content) = patch_for(old, new);
        let w = precheck(&fp, &content);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, PrecheckKind::UnderIfZero);
    }

    #[test]
    fn changes_outside_conditionals_are_silent() {
        let old = "int a;\nint b;\n";
        let new = "int a;\nint b2;\n";
        let (fp, content) = patch_for(old, new);
        assert!(precheck(&fp, &content).is_empty());
    }

    #[test]
    fn nested_groups_tracked_independently() {
        let old = "#ifdef A\n#ifdef B\nint ab;\n#endif\nint a;\n#else\nint c;\n#endif\n";
        // Change inner-if line and outer-else line: the outer group has
        // both sides changed (inner change is on the outer if-side).
        let new = "#ifdef A\n#ifdef B\nint ab2;\n#endif\nint a;\n#else\nint c2;\n#endif\n";
        let (fp, content) = patch_for(old, new);
        let w = precheck(&fp, &content);
        // The inner change attributes to group(B), the else change to
        // group(A): no single group has both sides, so only… actually the
        // inner change's innermost frame is B(if-side). Outer group A has
        // only the else change. No both-branches warning fires.
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn elif_counts_as_else_side() {
        let old = "#ifdef A\nint a;\n#elif defined(B)\nint b;\n#endif\n";
        let new = "#ifdef A\nint a2;\n#elif defined(B)\nint b2;\n#endif\n";
        let (fp, content) = patch_for(old, new);
        let w = precheck(&fp, &content);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, PrecheckKind::BothBranches);
    }
}
