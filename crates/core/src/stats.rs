//! Aggregation of evaluation results into the paper's tables and figures.

use crate::classify::UncoveredReason;
use crate::driver::PatchResult;
use crate::report::{FileStatus, PatchKind};
use std::collections::{BTreeMap, BTreeSet};

/// Counters over one slice of patches (all patches, or the janitor
/// subset).
#[derive(Debug, Clone, Default)]
pub struct SliceStats {
    /// Patches considered.
    pub patches: usize,
    /// Patches where every changed line was certified (paper: 85% / 88%).
    pub patch_success: usize,
    /// Patches fully certified using allyesconfig targets only (84%→85%
    /// comparison in §V.B).
    pub patch_success_allyes_only: usize,
    /// Table III buckets.
    pub kind_counts: BTreeMap<&'static str, usize>,
    /// `.c` file instances.
    pub c_instances: usize,
    /// `.c` instances fully certified at the first error-free compilation
    /// (paper: 88%).
    pub c_full_on_first_success: usize,
    /// `.c` instances that compiled somewhere yet left lines uncertified
    /// at that point — the insidious case (paper: 3%).
    pub c_compiled_but_initially_uncovered: usize,
    /// …of which later architectures certified everything (paper: 54).
    pub c_rescued_by_more_configs: usize,
    /// Non-`arch/` `.c` instances certified without any host (x86_64)
    /// contribution (paper: 365 / 38).
    pub c_nonarch_needing_other_arch: usize,
    /// Instances (any kind) with ≥1 certified token, and how many of those
    /// were (partly) certified via host allyesconfig (paper: 96% / 95%).
    pub instances_with_coverage: usize,
    pub instances_touching_host: usize,
    /// Mutation-count distribution for `.c` / `.h` instances.
    pub c_mutations: Histogram,
    pub h_mutations: Histogram,
    /// `.h` file instances.
    pub h_instances: usize,
    /// Headers fully certified while compiling the patch's own `.c` files
    /// (paper: 66% / 76%).
    pub h_covered_by_patch_c: usize,
    /// Headers needing candidate compilations and ultimately certified
    /// (paper: 16% rescued).
    pub h_rescued_by_candidates: usize,
    /// Headers with lines never certified (paper: 2%).
    pub h_never_covered: usize,
    /// Max candidate compilations used for any header.
    pub h_max_candidate_compiles: usize,
    /// Patches touching bootstrap files (paper §V.D: 2%).
    pub bootstrap_patches: usize,
    /// Table IV: reason → affected file instances.
    pub uncovered_reasons: BTreeMap<String, usize>,
    /// Per-patch virtual times (µs) — Figure 5 (all) / Figure 6 (janitor).
    pub patch_times_us: Vec<u64>,
}

/// A tiny histogram of per-instance mutation counts.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    /// count → instances.
    pub buckets: BTreeMap<usize, usize>,
}

impl Histogram {
    /// Record one instance with `count` mutations.
    pub fn add(&mut self, count: usize) {
        *self.buckets.entry(count).or_insert(0) += 1;
    }

    /// Total instances recorded.
    pub fn total(&self) -> usize {
        self.buckets.values().sum()
    }

    /// Fraction of instances with count ≤ `n`.
    pub fn fraction_le(&self, n: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let le: usize = self
            .buckets
            .iter()
            .filter(|(c, _)| **c <= n)
            .map(|(_, v)| v)
            .sum();
        le as f64 / total as f64
    }

    /// Largest count seen.
    pub fn max(&self) -> usize {
        self.buckets.keys().next_back().copied().unwrap_or(0)
    }
}

impl SliceStats {
    /// Aggregate the results whose author passes `include`.
    pub fn collect(results: &[PatchResult], include: &dyn Fn(&str) -> bool) -> SliceStats {
        let mut s = SliceStats::default();
        for r in results {
            // Driver-level failures (checkout/show/panic) carry no report
            // and aggregate nowhere; DriverStats accounts for them.
            let Some(report) = r.report() else {
                continue;
            };
            if !include(&report.author) {
                continue;
            }
            if report.files.is_empty() {
                continue;
            }
            s.patches += 1;
            s.patch_times_us.push(report.elapsed_us);
            let kind = match report.kind() {
                PatchKind::COnly => ".c files only",
                PatchKind::HOnly => ".h files only",
                PatchKind::Both => "both .c and .h files",
                PatchKind::Neither => "neither",
            };
            *s.kind_counts.entry(kind).or_insert(0) += 1;
            if report.is_success() {
                s.patch_success += 1;
            }
            if report
                .files
                .iter()
                .all(|f| f.status == FileStatus::CommentOnly || f.full_with_allyes_only)
            {
                s.patch_success_allyes_only += 1;
            }
            if report.touches_bootstrap() {
                s.bootstrap_patches += 1;
            }
            let mut reasons_this_patch: BTreeSet<UncoveredReason> = BTreeSet::new();
            for f in &report.files {
                if f.status == FileStatus::CommentOnly || f.status == FileStatus::Bootstrap {
                    continue;
                }
                if !f.covered.is_empty() {
                    s.instances_with_coverage += 1;
                    if f.covered.iter().any(|(_, d)| d.starts_with("x86_64/")) {
                        s.instances_touching_host += 1;
                    }
                }
                if f.is_header {
                    s.h_instances += 1;
                    s.h_mutations.add(f.mutation_count);
                    if f.header_covered_by_patch_c {
                        s.h_covered_by_patch_c += 1;
                    } else if f.status == FileStatus::FullyCovered {
                        s.h_rescued_by_candidates += 1;
                    }
                    if !f.uncovered.is_empty() {
                        s.h_never_covered += 1;
                    }
                    s.h_max_candidate_compiles =
                        s.h_max_candidate_compiles.max(f.header_candidates_used);
                } else {
                    s.c_instances += 1;
                    s.c_mutations.add(f.mutation_count);
                    if f.full_on_first_success {
                        s.c_full_on_first_success += 1;
                    } else if f.compiled_somewhere {
                        s.c_compiled_but_initially_uncovered += 1;
                        if f.status == FileStatus::FullyCovered {
                            s.c_rescued_by_more_configs += 1;
                        }
                    }
                    let nonarch = !f.path.starts_with("arch/");
                    if nonarch
                        && f.status == FileStatus::FullyCovered
                        && !f.covered.iter().any(|(_, d)| d.starts_with("x86_64/"))
                    {
                        s.c_nonarch_needing_other_arch += 1;
                    }
                }
                for u in &f.uncovered {
                    reasons_this_patch.insert(u.reason);
                }
                // Table IV counts *affected file instances* per reason.
                let file_reasons: BTreeSet<UncoveredReason> =
                    f.uncovered.iter().map(|u| u.reason).collect();
                for reason in file_reasons {
                    *s.uncovered_reasons.entry(reason.to_string()).or_insert(0) += 1;
                }
            }
        }
        s
    }

    /// Patch success rate.
    pub fn success_rate(&self) -> f64 {
        if self.patches == 0 {
            0.0
        } else {
            self.patch_success as f64 / self.patches as f64
        }
    }

    /// Render the Table III analogue for this slice.
    pub fn render_kinds(&self) -> String {
        let mut out = String::new();
        for key in [".c files only", ".h files only", "both .c and .h files"] {
            let n = self.kind_counts.get(key).copied().unwrap_or(0);
            let pct = if self.patches == 0 {
                0.0
            } else {
                100.0 * n as f64 / self.patches as f64
            };
            out.push_str(&format!("{key:<24} {n:>7} ({pct:>4.0}%)\n"));
        }
        out
    }

    /// Render the Table IV analogue.
    pub fn render_reasons(&self) -> String {
        let mut out = String::new();
        for (reason, n) in &self.uncovered_reasons {
            out.push_str(&format!("{reason:<58} {n:>6}\n"));
        }
        if self.uncovered_reasons.is_empty() {
            out.push_str("(no uncovered file instances)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::PatchResult;
    use crate::report::{FileReport, FileStatus, PatchReport};
    use crate::token::{MutationKind, MutationToken};

    fn file(path: &str, status: &FileStatus, via: &str) -> FileReport {
        let is_header = path.ends_with(".h");
        FileReport {
            path: path.into(),
            is_header,
            status: status.clone(),
            mutation_count: 1,
            covered: if *status == FileStatus::FullyCovered {
                vec![(
                    MutationToken::new(MutationKind::Context, path, 1),
                    via.into(),
                )]
            } else {
                vec![]
            },
            uncovered: if matches!(status, FileStatus::Uncovered | FileStatus::PartiallyCovered) {
                vec![crate::report::UncoveredMutation {
                    token: MutationToken::new(MutationKind::Context, path, 2),
                    reason: crate::classify::UncoveredReason::IfZero,
                }]
            } else {
                vec![]
            },
            targets_tried: vec![via.into()],
            o_attempts: 1,
            compiled_somewhere: true,
            full_on_first_success: *status == FileStatus::FullyCovered,
            full_with_host_allyes: via == "x86_64/allyesconfig"
                && *status == FileStatus::FullyCovered,
            full_with_allyes_only: via.ends_with("/allyesconfig")
                && *status == FileStatus::FullyCovered,
            header_candidates_used: 0,
            header_covered_by_patch_c: is_header && *status == FileStatus::FullyCovered,
            errors: vec![],
            degraded_trials: vec![],
            remediations: vec![],
        }
    }

    fn result(author: &str, files: Vec<FileReport>, elapsed: u64) -> PatchResult {
        PatchResult {
            commit: jmake_vcs::Repo::new().commit(
                &[],
                author,
                "m",
                &jmake_kbuild::SourceTree::new(),
            ),
            outcome: crate::driver::PatchOutcome::Checked(PatchReport {
                author: author.into(),
                files,
                elapsed_us: elapsed,
                config_creations: 1,
                i_invocations: 1,
                o_invocations: 1,
            }),
        }
    }

    #[test]
    fn collect_aggregates_slices_and_kinds() {
        let results = vec![
            result(
                "alice",
                vec![file("a.c", &FileStatus::FullyCovered, "x86_64/allyesconfig")],
                10,
            ),
            result(
                "bob",
                vec![
                    file("b.c", &FileStatus::FullyCovered, "arm/allyesconfig"),
                    file("b.h", &FileStatus::FullyCovered, "arm/allyesconfig"),
                ],
                20,
            ),
            result(
                "alice",
                vec![file("c.c", &FileStatus::Uncovered, "x86_64/allyesconfig")],
                30,
            ),
        ];
        let all = SliceStats::collect(&results, &|_| true);
        assert_eq!(all.patches, 3);
        assert_eq!(all.patch_success, 2);
        assert_eq!(all.c_instances, 3);
        assert_eq!(all.h_instances, 1);
        assert_eq!(all.kind_counts.get(".c files only"), Some(&2));
        assert_eq!(all.kind_counts.get("both .c and .h files"), Some(&1));
        assert_eq!(all.uncovered_reasons.len(), 1);
        assert_eq!(all.patch_times_us, vec![10, 20, 30]);

        let alice_only = SliceStats::collect(&results, &|a| a == "alice");
        assert_eq!(alice_only.patches, 2);
        assert!((alice_only.success_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn host_benefit_counting() {
        let results = vec![result(
            "a",
            vec![
                file("x.c", &FileStatus::FullyCovered, "x86_64/allyesconfig"),
                file("y.c", &FileStatus::FullyCovered, "arm/allyesconfig"),
            ],
            1,
        )];
        let s = SliceStats::collect(&results, &|_| true);
        assert_eq!(s.instances_with_coverage, 2);
        assert_eq!(s.instances_touching_host, 1);
        // y.c is non-arch and certified without the host.
        assert_eq!(s.c_nonarch_needing_other_arch, 1);
    }

    #[test]
    fn comment_only_files_do_not_count_as_instances() {
        let mut f = file("z.c", &FileStatus::FullyCovered, "x86_64/allyesconfig");
        f.status = FileStatus::CommentOnly;
        f.covered.clear();
        let results = vec![result("a", vec![f], 1)];
        let s = SliceStats::collect(&results, &|_| true);
        assert_eq!(s.c_instances, 0);
        assert_eq!(s.patch_success, 1);
    }

    #[test]
    fn histogram_fractions() {
        let mut h = Histogram::default();
        for c in [1, 1, 1, 2, 3, 7] {
            h.add(c);
        }
        assert_eq!(h.total(), 6);
        assert!((h.fraction_le(1) - 0.5).abs() < 1e-12);
        assert!((h.fraction_le(3) - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::default();
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction_le(3), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn empty_slice_renders() {
        let s = SliceStats::default();
        assert_eq!(s.success_rate(), 0.0);
        assert!(s.render_reasons().contains("no uncovered"));
        assert!(s.render_kinds().contains(".c files only"));
    }
}
