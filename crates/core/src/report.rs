//! Per-file and per-patch reports.

use crate::classify::UncoveredReason;
use crate::token::MutationToken;
use std::fmt;

/// Terminal status of one file instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileStatus {
    /// Every changed line sat in comments; nothing to certify.
    CommentOnly,
    /// Every mutation surfaced in the `.i` of a configuration whose `.o`
    /// compiled — the certificate JMake exists to produce.
    FullyCovered,
    /// Some mutations were certified, others never surfaced.
    PartiallyCovered,
    /// No mutation was ever certified.
    Uncovered,
    /// The file participates in the build system's own setup compilation;
    /// JMake cannot mutate it (paper §V.D).
    Bootstrap,
    /// No (architecture, configuration) candidate could even be created
    /// (unsupported architecture, missing Kconfig, no Makefile).
    NoViableTarget,
}

impl fmt::Display for FileStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FileStatus::CommentOnly => "comment-only change",
            FileStatus::FullyCovered => "all changed lines subjected to the compiler",
            FileStatus::PartiallyCovered => "SOME CHANGED LINES NOT SUBJECTED TO THE COMPILER",
            FileStatus::Uncovered => "NO CHANGED LINE SUBJECTED TO THE COMPILER",
            FileStatus::Bootstrap => "build-system bootstrap file; cannot be checked",
            FileStatus::NoViableTarget => "no usable architecture/configuration",
        };
        f.write_str(s)
    }
}

/// An uncovered mutation with its diagnosed reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UncoveredMutation {
    /// The token that never surfaced.
    pub token: MutationToken,
    /// Why (Table IV category).
    pub reason: UncoveredReason,
}

/// The report for one file instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileReport {
    /// Path within the tree.
    pub path: String,
    /// True for `.h` files (processed by the §III.E pipeline).
    pub is_header: bool,
    /// Terminal status.
    pub status: FileStatus,
    /// Number of mutations inserted (paper §V.B reports this
    /// distribution).
    pub mutation_count: usize,
    /// Tokens certified, with the target that certified each.
    pub covered: Vec<(MutationToken, String)>,
    /// Tokens never certified, with reasons.
    pub uncovered: Vec<UncoveredMutation>,
    /// Targets attempted, in order.
    pub targets_tried: Vec<String>,
    /// `.o` compilations attempted for this file (or, for headers, for its
    /// candidate `.c` files).
    pub o_attempts: usize,
    /// Whether some `.o` compiled without error for this file.
    pub compiled_somewhere: bool,
    /// All tokens certified at the first error-free compilation (the
    /// paper's 88% headline for `.c` instances).
    pub full_on_first_success: bool,
    /// Fully covered using only host (x86_64) allyesconfig.
    pub full_with_host_allyes: bool,
    /// Fully covered using only allyesconfig targets (any architecture).
    pub full_with_allyes_only: bool,
    /// For headers: how many candidate `.c` compilations were used.
    pub header_candidates_used: usize,
    /// For headers: every token was already certified while processing the
    /// patch's own `.c` files (paper: 66% / 76%).
    pub header_covered_by_patch_c: bool,
    /// Operational errors seen while trying (missing cross-compilers …).
    pub errors: Vec<String>,
    /// Trials that gave up after exhausting the fault-injection retry
    /// budget. Always empty without `--faults`, and rendered/serialized
    /// only when non-empty, so fault-free reports are byte-identical.
    pub degraded_trials: Vec<String>,
    /// Remediation lines from the `jmake-fix` pass: one rendered
    /// suggestion (or `unfixable` verdict) per uncovered mutation.
    /// Always empty without `--fix`, and rendered/serialized only when
    /// non-empty, so fix-off reports are byte-identical.
    pub remediations: Vec<String>,
}

impl FileReport {
    /// A file counts as *successful* when nothing remains unchecked.
    pub fn is_success(&self) -> bool {
        matches!(
            self.status,
            FileStatus::CommentOnly | FileStatus::FullyCovered
        )
    }
}

impl fmt::Display for FileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}", self.path, self.status)?;
        if !self.covered.is_empty() {
            writeln!(f, "  certified ({}):", self.covered.len())?;
            for (tok, target) in &self.covered {
                writeln!(f, "    line {:>5} via {}", tok.line, target)?;
            }
        }
        for u in &self.uncovered {
            writeln!(f, "  NOT COMPILED: line {:>5} — {}", u.token.line, u.reason)?;
        }
        for r in &self.remediations {
            writeln!(f, "  FIX: {r}")?;
        }
        if !self.errors.is_empty() {
            for e in &self.errors {
                writeln!(f, "  note: {e}")?;
            }
        }
        for d in &self.degraded_trials {
            writeln!(f, "  DEGRADED: {d}")?;
        }
        Ok(())
    }
}

/// Patch-kind split for Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatchKind {
    /// Only `.c` files touched.
    COnly,
    /// Only `.h` files touched.
    HOnly,
    /// Both.
    Both,
    /// Neither (nothing relevant to JMake).
    Neither,
}

/// The report for one whole patch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchReport {
    /// Author of the patch (for the janitor slicing).
    pub author: String,
    /// Per-file reports.
    pub files: Vec<FileReport>,
    /// Virtual time consumed checking this patch, in microseconds.
    pub elapsed_us: u64,
    /// Configurations created.
    pub config_creations: usize,
    /// `make …i` invocations issued.
    pub i_invocations: usize,
    /// `make ….o` invocations issued.
    pub o_invocations: usize,
}

impl PatchReport {
    /// Which Table III bucket the patch falls into.
    pub fn kind(&self) -> PatchKind {
        let has_c = self.files.iter().any(|f| !f.is_header);
        let has_h = self.files.iter().any(|f| f.is_header);
        match (has_c, has_h) {
            (true, true) => PatchKind::Both,
            (true, false) => PatchKind::COnly,
            (false, true) => PatchKind::HOnly,
            (false, false) => PatchKind::Neither,
        }
    }

    /// The paper's headline predicate: every changed line of every file
    /// was subjected to at least one successful compiler invocation.
    pub fn is_success(&self) -> bool {
        !self.files.is_empty() && self.files.iter().all(FileReport::is_success)
    }

    /// Whether the patch touches a bootstrap file (§V.D).
    pub fn touches_bootstrap(&self) -> bool {
        self.files.iter().any(|f| f.status == FileStatus::Bootstrap)
    }
}

impl fmt::Display for PatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "patch by {}: {} file(s), {:.1}s simulated, {} config(s), {} .i invocation(s), {} .o invocation(s)",
            self.author,
            self.files.len(),
            self.elapsed_us as f64 / 1e6,
            self.config_creations,
            self.i_invocations,
            self.o_invocations,
        )?;
        for file in &self.files {
            write!(f, "{file}")?;
        }
        writeln!(
            f,
            "verdict: {}",
            if self.is_success() {
                "OK — every changed line was subjected to the compiler"
            } else {
                "ATTENTION — changed lines escaped the compiler (see above)"
            }
        )
    }
}

impl PatchReport {
    /// Serialize as JSON for machine consumption (CI hooks around
    /// `jmake-check --json`). Hand-rolled — the report structure is flat
    /// enough that a serialization framework would outweigh it.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        json_kv(&mut out, "author", &self.author);
        out.push_str(&format!(
            "\"success\":{},\"elapsed_us\":{},\"config_creations\":{},\"i_invocations\":{},\"o_invocations\":{},\"files\":[",
            self.is_success(),
            self.elapsed_us,
            self.config_creations,
            self.i_invocations,
            self.o_invocations
        ));
        for (i, f) in self.files.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_kv(&mut out, "path", &f.path);
            out.push_str(&format!(
                "\"is_header\":{},\"status\":{},\"mutations\":{},\"covered\":[",
                f.is_header,
                json_string(&f.status.to_string()),
                f.mutation_count
            ));
            for (j, (tok, target)) in f.covered.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"line\":{},\"via\":{}}}",
                    tok.line,
                    json_string(target)
                ));
            }
            out.push_str("],\"uncovered\":[");
            for (j, u) in f.uncovered.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"line\":{},\"reason\":{}}}",
                    u.token.line,
                    json_string(&u.reason.to_string())
                ));
            }
            out.push_str("],\"errors\":[");
            for (j, e) in f.errors.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(e));
            }
            out.push(']');
            // Key present only when the fix pass emitted something, so
            // fix-off JSON is byte-identical to pre-remediation output.
            if !f.remediations.is_empty() {
                out.push_str(",\"remediations\":[");
                for (j, r) in f.remediations.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string(r));
                }
                out.push(']');
            }
            // Key present only when a trial actually degraded, so
            // fault-free JSON is byte-identical to builds without the
            // fault layer.
            if !f.degraded_trials.is_empty() {
                out.push_str(",\"degraded\":[");
                for (j, d) in f.degraded_trials.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string(d));
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn json_kv(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!("\"{key}\":{},", json_string(value)));
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::MutationKind;

    fn file(path: &str, header: bool, status: FileStatus) -> FileReport {
        FileReport {
            path: path.into(),
            is_header: header,
            status,
            mutation_count: 1,
            covered: vec![(
                MutationToken::new(MutationKind::Context, path, 3),
                "x86_64/allyesconfig".into(),
            )],
            uncovered: vec![],
            targets_tried: vec!["x86_64/allyesconfig".into()],
            o_attempts: 1,
            compiled_somewhere: true,
            full_on_first_success: true,
            full_with_host_allyes: true,
            full_with_allyes_only: true,
            header_candidates_used: 0,
            header_covered_by_patch_c: false,
            errors: vec![],
            degraded_trials: vec![],
            remediations: vec![],
        }
    }

    #[test]
    fn patch_kind_buckets() {
        let mk = |files: Vec<FileReport>| PatchReport {
            author: "a".into(),
            files,
            elapsed_us: 0,
            config_creations: 0,
            i_invocations: 0,
            o_invocations: 0,
        };
        assert_eq!(
            mk(vec![file("a.c", false, FileStatus::FullyCovered)]).kind(),
            PatchKind::COnly
        );
        assert_eq!(
            mk(vec![file("a.h", true, FileStatus::FullyCovered)]).kind(),
            PatchKind::HOnly
        );
        assert_eq!(
            mk(vec![
                file("a.c", false, FileStatus::FullyCovered),
                file("a.h", true, FileStatus::FullyCovered)
            ])
            .kind(),
            PatchKind::Both
        );
        assert_eq!(mk(vec![]).kind(), PatchKind::Neither);
    }

    #[test]
    fn success_requires_every_file() {
        let good = file("a.c", false, FileStatus::FullyCovered);
        let bad = file("b.c", false, FileStatus::PartiallyCovered);
        let report = PatchReport {
            author: "a".into(),
            files: vec![good.clone(), bad],
            elapsed_us: 0,
            config_creations: 0,
            i_invocations: 0,
            o_invocations: 0,
        };
        assert!(!report.is_success());
        let report_ok = PatchReport {
            files: vec![good, file("c.c", false, FileStatus::CommentOnly)],
            ..report
        };
        assert!(report_ok.is_success());
    }

    #[test]
    fn json_serialization_is_well_formed() {
        let mut f = file("a.c", false, FileStatus::PartiallyCovered);
        f.uncovered.push(UncoveredMutation {
            token: MutationToken::new(MutationKind::Context, "a.c", 9),
            reason: crate::classify::UncoveredReason::IfZero,
        });
        f.errors
            .push("quote \" and backslash \\ and\nnewline".into());
        let report = PatchReport {
            author: "a \"quoted\" author".into(),
            files: vec![f],
            elapsed_us: 1234,
            config_creations: 1,
            i_invocations: 2,
            o_invocations: 3,
        };
        let json = report.to_json();
        // Structural sanity without a JSON parser dependency: balanced
        // braces/brackets outside strings and the key fields present.
        let mut depth = 0i32;
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0, "{json}");
        assert!(!in_str);
        assert!(json.contains("\"success\":false"));
        assert!(json.contains("\"line\":9"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\n"));
    }

    #[test]
    fn remediations_render_only_when_present() {
        let plain = file("a.c", false, FileStatus::PartiallyCovered);
        let mk = |files: Vec<FileReport>| PatchReport {
            author: "a".into(),
            files,
            elapsed_us: 0,
            config_creations: 0,
            i_invocations: 0,
            o_invocations: 0,
        };
        let off = mk(vec![plain.clone()]);
        assert!(!off.to_json().contains("remediations"));
        assert!(!off.to_string().contains("FIX:"));
        let mut fixed = plain;
        fixed
            .remediations
            .push("line 9 — set CONFIG_FULL=n (verified)".into());
        let on = mk(vec![fixed]);
        assert!(on.to_json().contains("\"remediations\":[\"line 9"));
        assert!(on.to_string().contains("  FIX: line 9 — set CONFIG_FULL=n (verified)"));
    }

    #[test]
    fn display_flags_uncovered_lines() {
        let mut f = file("a.c", false, FileStatus::PartiallyCovered);
        f.uncovered.push(UncoveredMutation {
            token: MutationToken::new(MutationKind::Context, "a.c", 9),
            reason: crate::classify::UncoveredReason::IfdefModule,
        });
        let text = f.to_string();
        assert!(text.contains("NOT COMPILED"));
        assert!(text.contains("#ifdef MODULE"));
    }
}
