//! Parallel evaluation driver (paper §V.A).
//!
//! The paper processed 11,057 patches with 25 worker processes, each on
//! its own kernel clone in a tmpfs. Here each worker checks out the
//! commit's snapshot into memory, builds a [`BuildEngine`], runs JMake,
//! and hands back the report plus the engine's virtual-clock samples.
//!
//! Three properties the original driver lacked, now guaranteed:
//!
//! - **No patch vanishes.** Every input commit produces exactly one
//!   [`PatchResult`]; checkout errors, `git show` errors, and per-patch
//!   panics become explicit [`PatchOutcome`] variants instead of being
//!   silently skipped, and `run_evaluation` asserts the count matches.
//! - **A panic does not abort the run.** Each patch is checked under
//!   `catch_unwind`; the panic message is captured in
//!   [`PatchOutcome::Panicked`] and the remaining patches still run.
//! - **Configuration solving is shared.** With
//!   [`DriverOptions::shared_cache`] (the default), all workers share a
//!   content-addressed [`ConfigCache`], so identical Kconfig/defconfig
//!   sources are solved once per run instead of once per patch. Cache
//!   hits still charge the virtual clock the full creation cost, so the
//!   simulated timings (Figure 4a) are identical either way — only host
//!   wall-clock drops. [`DriverStats`] reports the hit rate and
//!   per-stage wall-clock.
//!
//! Two further host-side accelerations (DESIGN.md §7), both preserving
//! the same bit-identity contract:
//!
//! - **Preprocess/compile results are shared.** With
//!   [`DriverOptions::object_cache`] (the default), workers share a
//!   content-addressed [`ObjectCache`] keyed on file content, include
//!   closure, macro environment, architecture, and build kind. `make .i`
//!   and `make .o` outcomes — including *failures* (negative caching) —
//!   are memoized across patches; hits replay the stored result and
//!   charge the virtual clock exactly what a live run would.
//! - **Idle workers warm caches for busy ones.** With
//!   [`DriverOptions::work_stealing`] (the default), a worker that runs
//!   out of patches steals speculative per-(file × arch × config) units
//!   describing the probes in-flight patches are about to issue, and
//!   executes them host-side only: no virtual clock, no tracer, no
//!   authoritative cache counters. The per-patch pipeline itself stays
//!   sequential, so reports, samples, and stats are unchanged.

use crate::check::{JMake, Options, WarmProbe};
use crate::report::PatchReport;
use jmake_diff::Patch;
use jmake_faults::{FaultKind, FaultSite, FaultStatsSnapshot, Faults};
use jmake_kbuild::{
    warm_object_entry, BuildEngine, CacheStats, ConfigCache, ConfigKey, ContentHash, ObjKind,
    ObjectCache, ObjectCacheStats, Samples, SourceTree,
};
use jmake_trace::{Stage, Tracer};
use jmake_vcs::{CommitId, Repo};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Options for an evaluation run.
#[derive(Debug, Clone)]
pub struct DriverOptions {
    /// Worker threads (the paper used 25 processes).
    pub workers: usize,
    /// JMake pipeline options.
    pub jmake: Options,
    /// Share solved configurations across patches and workers. Affects
    /// host wall-clock only; reports and virtual timings are identical
    /// with or without it.
    pub shared_cache: bool,
    /// Share memoized preprocess/compile outcomes across patches and
    /// workers (the content-addressed [`ObjectCache`]). Host wall-clock
    /// only; reports and virtual timings are identical with or without.
    pub object_cache: bool,
    /// Split patches into speculative (file × arch × config) warm units
    /// that idle workers steal, so one heavy patch no longer leaves the
    /// rest of the pool idle. Requires both caches; automatically off at
    /// one worker. Host wall-clock only.
    pub work_stealing: bool,
    /// Reuse an existing object cache instead of starting cold — lets
    /// benchmarks measure warm runs and long-lived tools keep their cache
    /// across `run_evaluation` calls. Ignored when `object_cache` is off.
    pub object_cache_handle: Option<Arc<ObjectCache>>,
    /// Reuse an existing configuration cache instead of starting cold —
    /// the companion of `object_cache_handle` for the solved-config
    /// store (`--cache-dir` pre-loads both from disk). Ignored when
    /// `shared_cache` is off.
    pub config_cache_handle: Option<Arc<ConfigCache>>,
    /// Span emitter for per-stage tracing. Disabled by default — a
    /// disabled tracer is a no-op and leaves reports and the Figure 4
    /// distributions bit-identical.
    pub tracer: Tracer,
    /// Deterministic fault-injection plan (`--faults`). Disabled by
    /// default; the driver salts it per commit, so whether a given
    /// operation faults depends only on the seed and the commit — never
    /// on worker count, scheduling, or cache mode.
    pub faults: Faults,
}

impl Default for DriverOptions {
    fn default() -> Self {
        DriverOptions {
            workers: 4,
            jmake: Options::default(),
            shared_cache: true,
            object_cache: true,
            work_stealing: true,
            object_cache_handle: None,
            config_cache_handle: None,
            tracer: Tracer::disabled(),
            faults: Faults::disabled(),
        }
    }
}

/// What happened to one commit. Every commit handed to
/// [`run_evaluation`] ends in exactly one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum PatchOutcome {
    /// JMake ran; here is its report.
    Checked(PatchReport),
    /// The commit's snapshot could not be checked out.
    CheckoutFailed(String),
    /// The commit's patch could not be produced (`git show`).
    ShowFailed(String),
    /// Checking this patch panicked; the message is preserved and the
    /// run continued.
    Panicked(String),
    /// Injected faults exhausted a host-side stage's retry budget; the
    /// commit still gets an explicit outcome instead of vanishing. Only
    /// ever produced under `--faults`.
    Degraded {
        /// The stage that gave up (`checkout` or `show`).
        stage: &'static str,
        /// Why (attempt count and fault site).
        reason: String,
    },
}

impl PatchOutcome {
    /// The report, when the patch was actually checked.
    pub fn report(&self) -> Option<&PatchReport> {
        match self {
            PatchOutcome::Checked(report) => Some(report),
            _ => None,
        }
    }

    /// True when the patch was checked (successfully or not — this is
    /// about the driver completing, not the paper's coverage verdict).
    pub fn is_checked(&self) -> bool {
        matches!(self, PatchOutcome::Checked(_))
    }

    /// The failure message for any non-checked outcome.
    pub fn failure(&self) -> Option<&str> {
        match self {
            PatchOutcome::Checked(_) => None,
            PatchOutcome::CheckoutFailed(m)
            | PatchOutcome::ShowFailed(m)
            | PatchOutcome::Panicked(m) => Some(m),
            PatchOutcome::Degraded { reason, .. } => Some(reason),
        }
    }
}

/// One processed patch.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchResult {
    /// The commit checked.
    pub commit: CommitId,
    /// What became of it.
    pub outcome: PatchOutcome,
}

impl PatchResult {
    /// The report, when the patch was actually checked.
    pub fn report(&self) -> Option<&PatchReport> {
        self.outcome.report()
    }
}

/// Host-side accounting for one run: outcome counts, shared-cache
/// effectiveness, and real (not virtual) per-stage wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DriverStats {
    /// Commits handed to the driver.
    pub patches: usize,
    /// Outcomes that are [`PatchOutcome::Checked`].
    pub checked: usize,
    /// Outcomes that are [`PatchOutcome::CheckoutFailed`].
    pub checkout_failures: usize,
    /// Outcomes that are [`PatchOutcome::ShowFailed`].
    pub show_failures: usize,
    /// Outcomes that are [`PatchOutcome::Panicked`].
    pub panics: usize,
    /// Outcomes that are [`PatchOutcome::Degraded`] (retry budget
    /// exhausted under injected faults).
    pub degraded: usize,
    /// Fault-injection and recovery counters (all zero without
    /// `--faults`).
    pub faults: FaultStatsSnapshot,
    /// Shared configuration-cache counters (zero when sharing is off).
    pub cache: CacheStats,
    /// Shared object-cache counters (zero when the object cache is off).
    /// Hits/misses count only the authoritative engines' lookups;
    /// speculative warm probes peek without counting.
    pub object: ObjectCacheStats,
    /// Wall-clock spent in `checkout`, summed across workers (µs).
    pub checkout_wall_us: u64,
    /// Wall-clock spent producing patches (`show`), summed (µs).
    pub show_wall_us: u64,
    /// Wall-clock spent inside JMake checking, summed (µs).
    pub check_wall_us: u64,
    /// End-to-end wall-clock of the whole run (µs, not summed).
    pub total_wall_us: u64,
}

impl DriverStats {
    /// Patches processed per wall-clock second.
    pub fn patches_per_sec(&self) -> f64 {
        if self.total_wall_us == 0 {
            0.0
        } else {
            self.patches as f64 / (self.total_wall_us as f64 / 1e6)
        }
    }

    /// Human-readable rendering for `jmake-eval --stats`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("driver statistics (host wall-clock, not simulated time)\n");
        out.push_str(&format!(
            "  patches         {:>8}  (checked {}, checkout-failed {}, show-failed {}, panicked {})\n",
            self.patches, self.checked, self.checkout_failures, self.show_failures, self.panics
        ));
        out.push_str(&format!(
            "  config cache    {:>8.1}% hit rate  ({} hits, {} misses, {} entries)\n",
            self.cache.hit_rate() * 100.0,
            self.cache.hits,
            self.cache.misses,
            self.cache.entries
        ));
        out.push_str(&format!(
            "  object cache    {:>8.1}% hit rate  ({} hits of which {} negative, {} misses, {} entries)\n",
            self.object.hit_rate() * 100.0,
            self.object.hits,
            self.object.negative_hits,
            self.object.misses,
            self.object.entries
        ));
        out.push_str(&format!(
            "  stage wall      checkout {:.1} ms, show {:.1} ms, check {:.1} ms (summed over workers)\n",
            self.checkout_wall_us as f64 / 1e3,
            self.show_wall_us as f64 / 1e3,
            self.check_wall_us as f64 / 1e3
        ));
        out.push_str(&format!(
            "  throughput      {:.1} patches/s over {:.1} ms total\n",
            self.patches_per_sec(),
            self.total_wall_us as f64 / 1e3
        ));
        // Fault lines only appear when the harness actually ran, so
        // fault-free `--stats` output is unchanged.
        if self.degraded > 0 || self.faults.injected_total() > 0 {
            out.push_str(&format!("  degraded        {:>8}\n", self.degraded));
            out.push_str(&format!("  faults          {}\n", self.faults));
        }
        out
    }
}

/// The whole run: per-patch results plus merged timing samples.
#[derive(Debug, Clone, Default)]
pub struct EvaluationRun {
    /// One result per input commit, in commit order.
    pub results: Vec<PatchResult>,
    /// Merged per-invocation virtual-clock samples (Figure 4 inputs).
    pub samples: Samples,
    /// Host-side run accounting.
    pub stats: DriverStats,
}

impl EvaluationRun {
    /// Per-patch total virtual times in microseconds (Figure 5/6 input),
    /// for the patches that were actually checked.
    pub fn patch_times_us(&self) -> Vec<u64> {
        self.results
            .iter()
            .filter_map(|r| r.report().map(|report| report.elapsed_us))
            .collect()
    }

    /// The results that failed to produce a report, with their messages.
    pub fn failures(&self) -> impl Iterator<Item = (&PatchResult, &str)> {
        self.results
            .iter()
            .filter_map(|r| r.outcome.failure().map(|m| (r, m)))
    }
}

/// Per-worker output: completed slots plus stage wall-clock accumulators.
#[derive(Default)]
struct WorkerOutput {
    items: Vec<(usize, PatchResult, Samples)>,
    checkout_us: u64,
    show_us: u64,
    check_us: u64,
}

/// Everything a speculative warm unit needs to know about its patch.
/// `done` flips when the authoritative check finishes (or dies), turning
/// every outstanding unit of this patch into a no-op.
struct PatchCtx {
    base: Arc<SourceTree>,
    patch: Patch,
    fingerprint: u64,
    done: AtomicBool,
}

/// Marks the patch context done on drop — including when the
/// authoritative check panics past its guard.
struct DoneOnDrop(Arc<PatchCtx>);

impl Drop for DoneOnDrop {
    fn drop(&mut self) {
        self.0.done.store(true, Ordering::Release);
    }
}

/// One schedulable warm unit.
enum Unit {
    /// Expand a patch into per-(file × arch × config) probes. Planning is
    /// itself stealable work: the owner only enqueues this marker, so the
    /// mutation/selector replay runs on an idle worker, not on the
    /// patch's critical path.
    Plan(Arc<PatchCtx>),
    /// Run one probe against the shared caches.
    Probe {
        ctx: Arc<PatchCtx>,
        tree: Arc<SourceTree>,
        probe: WarmProbe,
    },
}

/// One worker's unit queue. The owner pushes at the back; both the owner
/// and thieves take from the front (oldest first — the order the
/// authoritative check will want the entries).
#[derive(Default)]
struct WorkerDeque {
    queue: Mutex<VecDeque<Unit>>,
}

impl WorkerDeque {
    fn push(&self, unit: Unit) {
        self.queue
            .lock()
            .expect("worker deque poisoned")
            .push_back(unit);
    }

    fn steal(&self) -> Option<Unit> {
        self.queue
            .lock()
            .expect("worker deque poisoned")
            .pop_front()
    }
}

/// Shared scheduler state for the speculative warm units.
struct Scheduler {
    deques: Vec<WorkerDeque>,
    /// Patches not yet completed; workers exit when it reaches zero.
    remaining: AtomicUsize,
    config_cache: Arc<ConfigCache>,
    object_cache: Arc<ObjectCache>,
}

impl Scheduler {
    /// Take a unit: own queue first, then round-robin from the others.
    fn take_unit(&self, worker: usize) -> Option<Unit> {
        let n = self.deques.len();
        (0..n).find_map(|i| self.deques[(worker + i) % n].steal())
    }

    /// Execute one warm unit. Purely host-side: no virtual clock, no
    /// tracer, no cache hit/miss counters — only `peek` and `insert`.
    fn execute_unit(&self, unit: Unit, jmake: &JMake, worker: usize) {
        match unit {
            Unit::Plan(ctx) => {
                if ctx.done.load(Ordering::Acquire) {
                    return;
                }
                let (mutated, probes) = jmake.plan_warm_probes(&ctx.base, &ctx.patch);
                let mutated = Arc::new(mutated);
                for probe in probes {
                    let tree = match probe.op {
                        ObjKind::I => Arc::clone(&mutated),
                        ObjKind::O => Arc::clone(&ctx.base),
                    };
                    self.deques[worker].push(Unit::Probe {
                        ctx: Arc::clone(&ctx),
                        tree,
                        probe,
                    });
                }
            }
            Unit::Probe { ctx, tree, probe } => {
                if ctx.done.load(Ordering::Acquire) {
                    return;
                }
                let key = ConfigKey::new(&probe.arch, &probe.kind);
                // Only configurations the authoritative run has already
                // solved are worth probing — and peeking keeps the
                // config-cache counters untouched.
                let Some(cfg) = self.config_cache.peek(
                    ctx.fingerprint,
                    &key,
                    probe.kind.content_fingerprint(),
                ) else {
                    return;
                };
                warm_object_entry(&self.object_cache, &cfg, &tree, &probe.file, probe.op);
            }
        }
    }
}

/// Extract a readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Run `work` for one patch, converting a panic into
/// [`PatchOutcome::Panicked`] so one bad patch cannot end the run.
fn guard_patch<F>(work: F) -> (PatchOutcome, Samples)
where
    F: FnOnce() -> (PatchOutcome, Samples),
{
    match catch_unwind(AssertUnwindSafe(work)) {
        Ok(done) => done,
        Err(payload) => (
            PatchOutcome::Panicked(panic_message(payload.as_ref())),
            Samples::default(),
        ),
    }
}

/// Everything a worker shares across the commits it checks: the
/// cross-patch caches, the scheduler slot it may publish warm work to,
/// and the span emitter.
struct CheckCtx<'a> {
    cache: Option<&'a Arc<ConfigCache>>,
    object: Option<&'a Arc<ObjectCache>>,
    warm: Option<(&'a Scheduler, usize)>,
    tracer: &'a Tracer,
    faults: &'a Faults,
}

/// Consult the fault plan before a host-side stage (checkout/show) runs.
///
/// Host stages live outside the virtual clock, so recovery here is pure
/// control flow: a transient fault fails the attempt, a hang consumes
/// the (virtual) timeout budget, and a latency spike is a no-op — there
/// is no clock to charge it to. Retries and timeouts are still visible
/// as trace spans and [`FaultStatsSnapshot`] counters. Returns the
/// degradation reason when the retry budget is exhausted.
fn host_fault_gate(faults: &Faults, site: FaultSite, tracer: &Tracer) -> Result<(), String> {
    if !faults.is_enabled() {
        return Ok(());
    }
    let policy = faults.policy();
    let stats = faults.stats();
    let mut attempt = 0u32;
    loop {
        match faults.decide(site, "", attempt) {
            None | Some(FaultKind::Latency) => return Ok(()),
            Some(FaultKind::Corrupt) => unreachable!("corruption only fires on cache lookups"),
            Some(kind @ (FaultKind::Transient | FaultKind::Hang)) => {
                if kind == FaultKind::Hang {
                    if let Some(stats) = &stats {
                        stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    }
                    let mut span = tracer.span(Stage::Timeout);
                    span.set_virtual_us(policy.timeout_us);
                }
                attempt += 1;
                if attempt >= policy.max_attempts {
                    if let Some(stats) = &stats {
                        stats.exhausted.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(format!(
                        "{site} gave up after {attempt} attempts under injected faults"
                    ));
                }
                if let Some(stats) = &stats {
                    stats.retries.fetch_add(1, Ordering::Relaxed);
                }
                let mut span = tracer.span(Stage::Retry);
                span.set_virtual_us(policy.backoff_us(attempt - 1));
            }
        }
    }
}

/// Check one commit end to end; timings land in `out`'s accumulators.
///
/// Each stage's wall-clock is measured exactly once and the same value
/// feeds both the [`DriverStats`] accumulator and the stage's trace span
/// (via `finish_with_host_us`), so the metrics table reconciles with the
/// driver statistics to the microsecond.
fn check_commit(
    repo: &Repo,
    commit: CommitId,
    jmake: &JMake,
    ctx: &CheckCtx<'_>,
    out: &mut WorkerOutput,
) -> (PatchOutcome, Samples) {
    let tracer = ctx.tracer.for_patch_with(|| commit.to_string());

    // Salt the fault plan with the commit identity so each operation's
    // fate travels with the commit: the same seed faults the same
    // commits regardless of worker count, scheduling, or cache mode.
    let faults = if ctx.faults.is_enabled() {
        ctx.faults.with_salt(ContentHash::of(&commit.to_string()).hi())
    } else {
        Faults::disabled()
    };

    if let Err(reason) = host_fault_gate(&faults, FaultSite::Checkout, &tracer) {
        return (
            PatchOutcome::Degraded { stage: "checkout", reason },
            Samples::default(),
        );
    }
    let span = tracer.span(Stage::Checkout);
    let started = Instant::now();
    let tree = repo.checkout(commit);
    let elapsed_us = started.elapsed().as_micros() as u64;
    out.checkout_us += elapsed_us;
    span.finish_with_host_us(elapsed_us);
    let tree = match tree {
        Ok(tree) => tree,
        Err(e) => {
            return (PatchOutcome::CheckoutFailed(e.to_string()), Samples::default());
        }
    };

    if let Err(reason) = host_fault_gate(&faults, FaultSite::Show, &tracer) {
        return (
            PatchOutcome::Degraded { stage: "show", reason },
            Samples::default(),
        );
    }
    let span = tracer.span(Stage::Show);
    let started = Instant::now();
    let shown = repo.show_with(
        commit,
        &jmake_diff::DiffOptions {
            ignore_whitespace: true,
            ..jmake_diff::DiffOptions::default()
        },
    );
    let elapsed_us = started.elapsed().as_micros() as u64;
    out.show_us += elapsed_us;
    span.finish_with_host_us(elapsed_us);
    let patch = match shown {
        Ok(patch) => patch,
        Err(e) => return (PatchOutcome::ShowFailed(e.to_string()), Samples::default()),
    };

    // Publish this patch as stealable warm work before the authoritative
    // check begins; the guard flips `done` when the check ends (or
    // panics), turning any still-queued unit into a no-op.
    let _warm_guard = ctx.warm.map(|(sched, worker)| {
        let ctx = Arc::new(PatchCtx {
            base: Arc::new(tree.clone()),
            patch: patch.clone(),
            fingerprint: ConfigCache::fingerprint_tree(&tree),
            done: AtomicBool::new(false),
        });
        sched.deques[worker].push(Unit::Plan(Arc::clone(&ctx)));
        DoneOnDrop(ctx)
    });

    let mut span = tracer.span(Stage::Check);
    let started = Instant::now();
    let author = repo
        .get(commit)
        .map(|c| c.author.clone())
        .unwrap_or_default();
    let mut engine = match ctx.cache {
        Some(cache) => BuildEngine::with_shared_cache(tree, Arc::clone(cache)),
        None => BuildEngine::new(tree),
    };
    if let Some(object) = ctx.object {
        engine.set_object_cache(Arc::clone(object));
    }
    engine.set_tracer(tracer.clone());
    engine.set_faults(faults);
    let report = jmake.check_patch(&mut engine, &patch, &author);
    let elapsed_us = started.elapsed().as_micros() as u64;
    out.check_us += elapsed_us;
    span.set_virtual_us(report.elapsed_us);
    span.finish_with_host_us(elapsed_us);
    (PatchOutcome::Checked(report), engine.clock.samples)
}

/// Run JMake over `commits` of `repo` with `opts.workers` threads.
///
/// Returns exactly one [`PatchResult`] per input commit, in input order
/// — failures included. A panic while checking one patch is recorded in
/// its result; the other patches still run.
pub fn run_evaluation(repo: &Repo, commits: &[CommitId], opts: &DriverOptions) -> EvaluationRun {
    let run_started = Instant::now();
    let cache = opts.shared_cache.then(|| {
        opts.config_cache_handle
            .clone()
            .unwrap_or_else(|| Arc::new(ConfigCache::new()))
    });
    let object = opts.object_cache.then(|| {
        opts.object_cache_handle
            .clone()
            .unwrap_or_else(|| Arc::new(ObjectCache::new()))
    });
    let next = AtomicUsize::new(0);
    let workers = opts.workers.max(1).min(commits.len().max(1));

    // Work stealing only pays off when idle workers exist and both shared
    // caches are on (probes feed the object cache and peek solved
    // configurations out of the config cache).
    let scheduler = match (&cache, &object) {
        (Some(cache), Some(object)) if opts.work_stealing && workers > 1 => Some(Scheduler {
            deques: (0..workers).map(|_| WorkerDeque::default()).collect(),
            remaining: AtomicUsize::new(commits.len()),
            config_cache: Arc::clone(cache),
            object_cache: Arc::clone(object),
        }),
        _ => None,
    };

    let outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let cache = cache.as_ref();
                let object = object.as_ref();
                let scheduler = scheduler.as_ref();
                let next = &next;
                scope.spawn(move || {
                    let jmake = JMake::with_options(opts.jmake.clone());
                    let mut out = WorkerOutput::default();
                    let ctx = CheckCtx {
                        cache,
                        object,
                        warm: scheduler.map(|s| (s, w)),
                        tracer: &opts.tracer,
                        faults: &opts.faults,
                    };
                    loop {
                        // Authoritative patches always beat speculative
                        // warm units.
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx < commits.len() {
                            let commit = commits[idx];
                            let (outcome, samples) = guard_patch(AssertUnwindSafe(|| {
                                check_commit(repo, commit, &jmake, &ctx, &mut out)
                            }));
                            out.items.push((idx, PatchResult { commit, outcome }, samples));
                            if let Some(sched) = scheduler {
                                sched.remaining.fetch_sub(1, Ordering::AcqRel);
                            }
                            continue;
                        }
                        // No patch left to start: help warm caches for the
                        // patches still running, then exit.
                        let Some(sched) = scheduler else { break };
                        if sched.remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        match sched.take_unit(w) {
                            Some(unit) => {
                                // A speculative unit must never kill a
                                // worker; its panic is simply dropped.
                                let _ = catch_unwind(AssertUnwindSafe(|| {
                                    sched.execute_unit(unit, &jmake, w)
                                }));
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            // A worker dying outside the per-patch guard loses only its
            // buffered items; the structural fill below still yields one
            // outcome per commit.
            .filter_map(|h| h.join().ok())
            .collect()
    });

    let mut stats = DriverStats {
        patches: commits.len(),
        ..DriverStats::default()
    };
    let mut slots: Vec<Option<(PatchResult, Samples)>> = vec![None; commits.len()];
    for out in outputs {
        stats.checkout_wall_us += out.checkout_us;
        stats.show_wall_us += out.show_us;
        stats.check_wall_us += out.check_us;
        for (idx, result, samples) in out.items {
            slots[idx] = Some((result, samples));
        }
    }

    let mut run = EvaluationRun::default();
    for (idx, slot) in slots.into_iter().enumerate() {
        let (result, samples) = slot.unwrap_or_else(|| {
            (
                PatchResult {
                    commit: commits[idx],
                    outcome: PatchOutcome::Panicked(
                        "worker thread died before reporting this patch".to_string(),
                    ),
                },
                Samples::default(),
            )
        });
        match &result.outcome {
            PatchOutcome::Checked(_) => stats.checked += 1,
            PatchOutcome::CheckoutFailed(_) => stats.checkout_failures += 1,
            PatchOutcome::ShowFailed(_) => stats.show_failures += 1,
            PatchOutcome::Panicked(_) => stats.panics += 1,
            PatchOutcome::Degraded { .. } => stats.degraded += 1,
        }
        run.samples.merge(&samples);
        run.results.push(result);
    }

    if let Some(cache) = &cache {
        stats.cache = cache.stats();
    }
    if let Some(object) = &object {
        stats.object = object.stats();
    }
    stats.faults = opts.faults.stats_snapshot();
    stats.total_wall_us = run_started.elapsed().as_micros() as u64;
    run.stats = stats;
    assert_eq!(
        run.results.len(),
        commits.len(),
        "every input commit must produce exactly one outcome"
    );
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_converts_panics_into_outcomes() {
        let (outcome, samples) = guard_patch(|| panic!("mutation table overflow"));
        assert_eq!(
            outcome,
            PatchOutcome::Panicked("mutation table overflow".to_string())
        );
        assert_eq!(samples, Samples::default());

        // String payloads (e.g. from `expect` / formatted panics) must
        // survive the downcast too, not only `&'static str`.
        let (outcome, _) = guard_patch(|| {
            std::panic::panic_any("formatted: patch 7".to_string());
        });
        match outcome {
            PatchOutcome::Panicked(msg) => assert!(msg.contains("patch 7"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn outcome_accessors() {
        let failed = PatchOutcome::CheckoutFailed("no such commit".to_string());
        assert!(!failed.is_checked());
        assert!(failed.report().is_none());
        assert_eq!(failed.failure(), Some("no such commit"));
    }

    #[test]
    fn stats_render_and_rate() {
        let stats = DriverStats {
            patches: 10,
            checked: 8,
            checkout_failures: 1,
            panics: 1,
            total_wall_us: 2_000_000,
            ..DriverStats::default()
        };
        assert!((stats.patches_per_sec() - 5.0).abs() < 1e-9);
        let text = stats.render();
        assert!(text.contains("checked 8"));
        assert!(text.contains("panicked 1"));
        assert_eq!(DriverStats::default().patches_per_sec(), 0.0);
    }
}
