//! Parallel evaluation driver (paper §V.A).
//!
//! The paper processed 11,057 patches with 25 worker processes, each on
//! its own kernel clone in a tmpfs. Here each worker checks out the
//! commit's snapshot into memory, builds a [`BuildEngine`], runs JMake,
//! and hands back the report plus the engine's virtual-clock samples.
//!
//! Three properties the original driver lacked, now guaranteed:
//!
//! - **No patch vanishes.** Every input commit produces exactly one
//!   [`PatchResult`]; checkout errors, `git show` errors, and per-patch
//!   panics become explicit [`PatchOutcome`] variants instead of being
//!   silently skipped, and `run_evaluation` asserts the count matches.
//! - **A panic does not abort the run.** Each patch is checked under
//!   `catch_unwind`; the panic message is captured in
//!   [`PatchOutcome::Panicked`] and the remaining patches still run.
//! - **Configuration solving is shared.** With
//!   [`DriverOptions::shared_cache`] (the default), all workers share a
//!   content-addressed [`ConfigCache`], so identical Kconfig/defconfig
//!   sources are solved once per run instead of once per patch. Cache
//!   hits still charge the virtual clock the full creation cost, so the
//!   simulated timings (Figure 4a) are identical either way — only host
//!   wall-clock drops. [`DriverStats`] reports the hit rate and
//!   per-stage wall-clock.
//!
//! Two further host-side accelerations (DESIGN.md §7), both preserving
//! the same bit-identity contract:
//!
//! - **Preprocess/compile results are shared.** With
//!   [`DriverOptions::object_cache`] (the default), workers share a
//!   content-addressed [`ObjectCache`] keyed on file content, include
//!   closure, macro environment, architecture, and build kind. `make .i`
//!   and `make .o` outcomes — including *failures* (negative caching) —
//!   are memoized across patches; hits replay the stored result and
//!   charge the virtual clock exactly what a live run would.
//! - **Preprocessed headers are shared.** With
//!   [`DriverOptions::preproc_cache`] (the default), workers share a
//!   content-addressed [`PreprocCache`] of recorded header-inclusion
//!   effects keyed on include-closure, macro-environment, and
//!   pragma-once fingerprints. Re-including an identical header replays
//!   the recording instead of re-expanding it; the virtual clock is
//!   charged per `make` invocation above this layer, so timings are
//!   unchanged.
//! - **Idle workers warm caches for busy ones.** With
//!   [`DriverOptions::work_stealing`] (the default), speculative work is
//!   expressed as typed packets — `Plan`, `Preprocess`, `Compile`,
//!   `Classify` — flowing through per-stage bounded injector queues plus
//!   per-worker locality deques. A worker out of authoritative patches
//!   drains its own deque first, then the stage injectors in pipeline
//!   order, and only then steals from peers (injector-first stealing).
//!   Packets run host-side only: no virtual clock, no tracer, no
//!   authoritative cache counters — the per-patch pipeline stays
//!   sequential, so reports, samples, and stats are unchanged. Queue
//!   pressure is visible as [`SchedulerStats`] and `sched_*` trace
//!   counters.

use crate::check::{JMake, Options, WarmProbe};
use crate::report::PatchReport;
use jmake_diff::Patch;
use jmake_faults::{FaultKind, FaultSite, FaultStatsSnapshot, Faults};
use jmake_kbuild::{
    warm_object_entry, BuildConfig, BuildEngine, CacheStats, ConfigCache, ConfigKey, ContentHash,
    ObjKind, ObjectCache, ObjectCacheStats, PreprocCache, PreprocCacheStats, Samples, SourceTree,
};
use jmake_trace::{Stage, Tracer};
use jmake_vcs::{CommitId, Repo};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Options for an evaluation run.
#[derive(Debug, Clone)]
pub struct DriverOptions {
    /// Worker threads (the paper used 25 processes).
    pub workers: usize,
    /// JMake pipeline options.
    pub jmake: Options,
    /// Share solved configurations across patches and workers. Affects
    /// host wall-clock only; reports and virtual timings are identical
    /// with or without it.
    pub shared_cache: bool,
    /// Share memoized preprocess/compile outcomes across patches and
    /// workers (the content-addressed [`ObjectCache`]). Host wall-clock
    /// only; reports and virtual timings are identical with or without.
    pub object_cache: bool,
    /// Share recorded header-inclusion effects across patches and
    /// workers (the content-addressed [`PreprocCache`]). Host wall-clock
    /// only; reports and virtual timings are identical with or without.
    pub preproc_cache: bool,
    /// Split patches into speculative typed work packets (plan,
    /// preprocess, compile, classify) that idle workers execute, so one
    /// heavy patch no longer leaves the rest of the pool idle. Requires
    /// both the config and object caches; automatically off at one
    /// worker. Host wall-clock only.
    pub work_stealing: bool,
    /// Reuse an existing object cache instead of starting cold — lets
    /// benchmarks measure warm runs and long-lived tools keep their cache
    /// across `run_evaluation` calls. Ignored when `object_cache` is off.
    pub object_cache_handle: Option<Arc<ObjectCache>>,
    /// Reuse an existing configuration cache instead of starting cold —
    /// the companion of `object_cache_handle` for the solved-config
    /// store (`--cache-dir` pre-loads both from disk). Ignored when
    /// `shared_cache` is off.
    pub config_cache_handle: Option<Arc<ConfigCache>>,
    /// Reuse an existing preprocess cache instead of starting cold — the
    /// companion of `object_cache_handle` for recorded header-inclusion
    /// effects. Ignored when `preproc_cache` is off.
    pub preproc_cache_handle: Option<Arc<PreprocCache>>,
    /// Span emitter for per-stage tracing. Disabled by default — a
    /// disabled tracer is a no-op and leaves reports and the Figure 4
    /// distributions bit-identical.
    pub tracer: Tracer,
    /// Deterministic fault-injection plan (`--faults`). Disabled by
    /// default; the driver salts it per commit, so whether a given
    /// operation faults depends only on the seed and the commit — never
    /// on worker count, scheduling, or cache mode.
    pub faults: Faults,
}

impl Default for DriverOptions {
    fn default() -> Self {
        DriverOptions {
            workers: 4,
            jmake: Options::default(),
            shared_cache: true,
            object_cache: true,
            preproc_cache: true,
            work_stealing: true,
            object_cache_handle: None,
            config_cache_handle: None,
            preproc_cache_handle: None,
            tracer: Tracer::disabled(),
            faults: Faults::disabled(),
        }
    }
}

/// What happened to one commit. Every commit handed to
/// [`run_evaluation`] ends in exactly one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum PatchOutcome {
    /// JMake ran; here is its report.
    Checked(PatchReport),
    /// The commit's snapshot could not be checked out.
    CheckoutFailed(String),
    /// The commit's patch could not be produced (`git show`).
    ShowFailed(String),
    /// Checking this patch panicked; the message is preserved and the
    /// run continued.
    Panicked(String),
    /// Injected faults exhausted a host-side stage's retry budget; the
    /// commit still gets an explicit outcome instead of vanishing. Only
    /// ever produced under `--faults`.
    Degraded {
        /// The stage that gave up (`checkout` or `show`).
        stage: &'static str,
        /// Why (attempt count and fault site).
        reason: String,
    },
}

impl PatchOutcome {
    /// The report, when the patch was actually checked.
    pub fn report(&self) -> Option<&PatchReport> {
        match self {
            PatchOutcome::Checked(report) => Some(report),
            _ => None,
        }
    }

    /// True when the patch was checked (successfully or not — this is
    /// about the driver completing, not the paper's coverage verdict).
    pub fn is_checked(&self) -> bool {
        matches!(self, PatchOutcome::Checked(_))
    }

    /// The failure message for any non-checked outcome.
    pub fn failure(&self) -> Option<&str> {
        match self {
            PatchOutcome::Checked(_) => None,
            PatchOutcome::CheckoutFailed(m)
            | PatchOutcome::ShowFailed(m)
            | PatchOutcome::Panicked(m) => Some(m),
            PatchOutcome::Degraded { reason, .. } => Some(reason),
        }
    }
}

/// One processed patch.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchResult {
    /// The commit checked.
    pub commit: CommitId,
    /// What became of it.
    pub outcome: PatchOutcome,
}

impl PatchResult {
    /// The report, when the patch was actually checked.
    pub fn report(&self) -> Option<&PatchReport> {
        self.outcome.report()
    }
}

/// Host-side accounting for one run: outcome counts, shared-cache
/// effectiveness, and real (not virtual) per-stage wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DriverStats {
    /// Commits handed to the driver.
    pub patches: usize,
    /// Outcomes that are [`PatchOutcome::Checked`].
    pub checked: usize,
    /// Outcomes that are [`PatchOutcome::CheckoutFailed`].
    pub checkout_failures: usize,
    /// Outcomes that are [`PatchOutcome::ShowFailed`].
    pub show_failures: usize,
    /// Outcomes that are [`PatchOutcome::Panicked`].
    pub panics: usize,
    /// Outcomes that are [`PatchOutcome::Degraded`] (retry budget
    /// exhausted under injected faults).
    pub degraded: usize,
    /// Fault-injection and recovery counters (all zero without
    /// `--faults`).
    pub faults: FaultStatsSnapshot,
    /// Shared configuration-cache counters (zero when sharing is off).
    pub cache: CacheStats,
    /// Shared object-cache counters (zero when the object cache is off).
    /// Hits/misses count only the authoritative engines' lookups;
    /// speculative warm probes peek without counting.
    pub object: ObjectCacheStats,
    /// Shared preprocess-cache counters (zero when the cache is off).
    pub preproc: PreprocCacheStats,
    /// Typed warm-packet scheduler counters (all zero when work stealing
    /// is off or the run had a single worker).
    pub scheduler: SchedulerStats,
    /// Wall-clock spent in `checkout`, summed across workers (µs).
    pub checkout_wall_us: u64,
    /// Wall-clock spent producing patches (`show`), summed (µs).
    pub show_wall_us: u64,
    /// Wall-clock spent inside JMake checking, summed (µs).
    pub check_wall_us: u64,
    /// End-to-end wall-clock of the whole run (µs, not summed).
    pub total_wall_us: u64,
}

impl DriverStats {
    /// Patches processed per wall-clock second.
    pub fn patches_per_sec(&self) -> f64 {
        if self.total_wall_us == 0 {
            0.0
        } else {
            self.patches as f64 / (self.total_wall_us as f64 / 1e6)
        }
    }

    /// Human-readable rendering for `jmake-eval --stats`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("driver statistics (host wall-clock, not simulated time)\n");
        out.push_str(&format!(
            "  patches         {:>8}  (checked {}, checkout-failed {}, show-failed {}, panicked {})\n",
            self.patches, self.checked, self.checkout_failures, self.show_failures, self.panics
        ));
        out.push_str(&format!(
            "  config cache    {:>8.1}% hit rate  ({} hits, {} misses, {} entries)\n",
            self.cache.hit_rate() * 100.0,
            self.cache.hits,
            self.cache.misses,
            self.cache.entries
        ));
        out.push_str(&format!(
            "  object cache    {:>8.1}% hit rate  ({} hits of which {} negative, {} misses, {} entries)\n",
            self.object.hit_rate() * 100.0,
            self.object.hits,
            self.object.negative_hits,
            self.object.misses,
            self.object.entries
        ));
        out.push_str(&format!(
            "  preproc cache   {:>8.1}% hit rate  ({} hits, {} misses, {} entries, closure memo {}/{})\n",
            self.preproc.hit_rate() * 100.0,
            self.preproc.hits,
            self.preproc.misses,
            self.preproc.entries,
            self.preproc.closure_hits,
            self.preproc.closure_hits + self.preproc.closure_misses
        ));
        if self.scheduler.enqueued_total() > 0 {
            let s = &self.scheduler;
            out.push_str(&format!(
                "  warm packets    plan {}/{}, preprocess {}/{}, compile {}/{}, classify {}/{}  (executed/enqueued, {} dropped, peak depth {})\n",
                s.plan.executed,
                s.plan.enqueued,
                s.preprocess.executed,
                s.preprocess.enqueued,
                s.compile.executed,
                s.compile.enqueued,
                s.classify.executed,
                s.classify.enqueued,
                s.dropped_total(),
                s.peak_depth()
            ));
        }
        out.push_str(&format!(
            "  stage wall      checkout {:.1} ms, show {:.1} ms, check {:.1} ms (summed over workers)\n",
            self.checkout_wall_us as f64 / 1e3,
            self.show_wall_us as f64 / 1e3,
            self.check_wall_us as f64 / 1e3
        ));
        out.push_str(&format!(
            "  throughput      {:.1} patches/s over {:.1} ms total\n",
            self.patches_per_sec(),
            self.total_wall_us as f64 / 1e3
        ));
        // Fault lines only appear when the harness actually ran, so
        // fault-free `--stats` output is unchanged.
        if self.degraded > 0 || self.faults.injected_total() > 0 {
            out.push_str(&format!("  degraded        {:>8}\n", self.degraded));
            out.push_str(&format!("  faults          {}\n", self.faults));
        }
        out
    }
}

/// The whole run: per-patch results plus merged timing samples.
#[derive(Debug, Clone, Default)]
pub struct EvaluationRun {
    /// One result per input commit, in commit order.
    pub results: Vec<PatchResult>,
    /// Merged per-invocation virtual-clock samples (Figure 4 inputs).
    pub samples: Samples,
    /// Host-side run accounting.
    pub stats: DriverStats,
}

impl EvaluationRun {
    /// Per-patch total virtual times in microseconds (Figure 5/6 input),
    /// for the patches that were actually checked.
    pub fn patch_times_us(&self) -> Vec<u64> {
        self.results
            .iter()
            .filter_map(|r| r.report().map(|report| report.elapsed_us))
            .collect()
    }

    /// The results that failed to produce a report, with their messages.
    pub fn failures(&self) -> impl Iterator<Item = (&PatchResult, &str)> {
        self.results
            .iter()
            .filter_map(|r| r.outcome.failure().map(|m| (r, m)))
    }
}

/// Per-worker output: completed slots plus stage wall-clock accumulators.
#[derive(Default)]
struct WorkerOutput {
    items: Vec<(usize, PatchResult, Samples)>,
    checkout_us: u64,
    show_us: u64,
    check_us: u64,
}

/// Everything a speculative warm unit needs to know about its patch.
/// `done` flips when the authoritative check finishes (or dies), turning
/// every outstanding unit of this patch into a no-op.
struct PatchCtx {
    base: Arc<SourceTree>,
    patch: Patch,
    fingerprint: u64,
    done: AtomicBool,
}

/// Marks the patch context done on drop — including when the
/// authoritative check panics past its guard.
struct DoneOnDrop(Arc<PatchCtx>);

impl Drop for DoneOnDrop {
    fn drop(&mut self) {
        self.0.done.store(true, Ordering::Release);
    }
}

/// One typed, schedulable warm packet. Each variant names the pipeline
/// stage it performs, so the scheduler can give every stage its own
/// bounded queue and drain them in pipeline order.
enum Packet {
    /// Expand a patch into per-(file × arch × config) probes. Planning is
    /// itself stealable work: the owner only enqueues this marker, so the
    /// mutation/selector replay runs on an idle worker, not on the
    /// patch's critical path.
    Plan(Arc<PatchCtx>),
    /// Warm one `.i` entry: preprocess the mutated tree under one
    /// (arch × config) and memoize the outcome in the object cache.
    Preprocess {
        ctx: Arc<PatchCtx>,
        tree: Arc<SourceTree>,
        probe: WarmProbe,
    },
    /// Warm one `.o` entry: compile the pristine tree under one
    /// (arch × config) and memoize the outcome in the object cache.
    Compile {
        ctx: Arc<PatchCtx>,
        tree: Arc<SourceTree>,
        probe: WarmProbe,
    },
    /// Warm the classifier's inputs: force the O(symbols²) dead-symbol
    /// lint of a configuration a compile probe just ran under, so the
    /// authoritative classify stage finds it precomputed.
    Classify {
        ctx: Arc<PatchCtx>,
        cfg: Arc<BuildConfig>,
    },
}

/// The scheduler stages, in drain (pipeline) order: planning first —
/// it is what generates the downstream packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageKind {
    Plan = 0,
    Preprocess = 1,
    Compile = 2,
    Classify = 3,
}

impl StageKind {
    const COUNT: usize = 4;

    /// Bound for the stage's injector queue. Speculative packets are
    /// droppable by construction (the authoritative check recomputes
    /// anything missing), so overflow sheds load instead of growing
    /// without bound: at most one plan per in-flight patch, fan-out
    /// probes capped well above any real patch's probe count.
    fn cap(self) -> usize {
        match self {
            StageKind::Plan => 1024,
            StageKind::Preprocess | StageKind::Compile => 4096,
            StageKind::Classify => 1024,
        }
    }
}

impl Packet {
    fn stage(&self) -> StageKind {
        match self {
            Packet::Plan(_) => StageKind::Plan,
            Packet::Preprocess { .. } => StageKind::Preprocess,
            Packet::Compile { .. } => StageKind::Compile,
            Packet::Classify { .. } => StageKind::Classify,
        }
    }
}

/// Counters for one scheduler stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageQueueStats {
    /// Packets accepted into a queue (injector or locality deque).
    pub enqueued: u64,
    /// Packets taken and run by a worker (no-op runs included).
    pub executed: u64,
    /// Packets rejected because the bounded queue was full.
    pub dropped: u64,
    /// Largest injector depth observed.
    pub peak_depth: u64,
}

/// Per-stage counters of the typed warm-packet scheduler, surfaced in
/// [`DriverStats`] and (as `sched_*` counters) in the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// `Plan` packets: patch → probe expansion.
    pub plan: StageQueueStats,
    /// `Preprocess` packets: `.i` warm probes.
    pub preprocess: StageQueueStats,
    /// `Compile` packets: `.o` warm probes.
    pub compile: StageQueueStats,
    /// `Classify` packets: dead-symbol lint warming.
    pub classify: StageQueueStats,
}

impl SchedulerStats {
    /// The stages with their wire names, in pipeline order.
    pub fn stages(&self) -> [(&'static str, StageQueueStats); 4] {
        [
            ("plan", self.plan),
            ("preprocess", self.preprocess),
            ("compile", self.compile),
            ("classify", self.classify),
        ]
    }

    /// Packets accepted across all stages.
    pub fn enqueued_total(&self) -> u64 {
        self.stages().iter().map(|(_, s)| s.enqueued).sum()
    }

    /// Packets executed across all stages.
    pub fn executed_total(&self) -> u64 {
        self.stages().iter().map(|(_, s)| s.executed).sum()
    }

    /// Packets shed across all stages.
    pub fn dropped_total(&self) -> u64 {
        self.stages().iter().map(|(_, s)| s.dropped).sum()
    }

    /// Deepest any stage injector ever got.
    pub fn peak_depth(&self) -> u64 {
        self.stages()
            .iter()
            .map(|(_, s)| s.peak_depth)
            .max()
            .unwrap_or(0)
    }
}

#[derive(Default)]
struct StageCounters {
    enqueued: AtomicU64,
    executed: AtomicU64,
    dropped: AtomicU64,
    max_depth: AtomicU64,
}

impl StageCounters {
    fn snapshot(&self) -> StageQueueStats {
        StageQueueStats {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            peak_depth: self.max_depth.load(Ordering::Relaxed),
        }
    }
}

/// One FIFO of packets. Producers push at the back; everyone takes from
/// the front (oldest first — the order the authoritative checks will
/// want the entries).
#[derive(Default)]
struct PacketQueue {
    queue: Mutex<VecDeque<Packet>>,
}

impl PacketQueue {
    /// Push unless the queue already holds `cap` packets; on success
    /// returns the new depth, on overflow hands the packet back.
    fn push_bounded(&self, packet: Packet, cap: usize) -> Result<usize, Packet> {
        let mut queue = self.queue.lock().expect("packet queue poisoned");
        if queue.len() >= cap {
            return Err(packet);
        }
        queue.push_back(packet);
        Ok(queue.len())
    }

    fn pop_front(&self) -> Option<Packet> {
        self.queue
            .lock()
            .expect("packet queue poisoned")
            .pop_front()
    }
}

/// How many probe packets a planning worker keeps in its own deque
/// before spilling the rest to the stage injectors for others to take.
const LOCAL_CAP: usize = 32;

/// Shared scheduler state for the speculative warm packets: one bounded
/// injector per stage, one locality deque per worker.
struct Scheduler {
    injectors: [PacketQueue; StageKind::COUNT],
    locals: Vec<PacketQueue>,
    counters: [StageCounters; StageKind::COUNT],
    /// Patches not yet completed; workers exit when it reaches zero.
    remaining: AtomicUsize,
    config_cache: Arc<ConfigCache>,
    object_cache: Arc<ObjectCache>,
    preproc: Option<Arc<PreprocCache>>,
}

impl Scheduler {
    fn new(
        workers: usize,
        patches: usize,
        config_cache: Arc<ConfigCache>,
        object_cache: Arc<ObjectCache>,
        preproc: Option<Arc<PreprocCache>>,
    ) -> Scheduler {
        Scheduler {
            injectors: Default::default(),
            locals: (0..workers).map(|_| PacketQueue::default()).collect(),
            counters: Default::default(),
            remaining: AtomicUsize::new(patches),
            config_cache,
            object_cache,
            preproc,
        }
    }

    /// Route a packet to a queue. With `local`, the producer keeps up to
    /// [`LOCAL_CAP`] packets in its own deque (the caches it just warmed
    /// are hottest there) and spills the rest to the stage injector;
    /// without, the packet goes straight to the injector. A full
    /// injector sheds the packet — it is speculative by construction.
    fn publish(&self, local: Option<usize>, packet: Packet) {
        let stage = packet.stage();
        let counters = &self.counters[stage as usize];
        let packet = match local {
            Some(worker) => match self.locals[worker].push_bounded(packet, LOCAL_CAP) {
                Ok(_) => {
                    counters.enqueued.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(packet) => packet,
            },
            None => packet,
        };
        match self.injectors[stage as usize].push_bounded(packet, stage.cap()) {
            Ok(depth) => {
                counters.enqueued.fetch_add(1, Ordering::Relaxed);
                counters.max_depth.fetch_max(depth as u64, Ordering::Relaxed);
            }
            Err(_) => {
                counters.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Take a packet: own locality deque first, then the stage injectors
    /// in pipeline order, then — injector-first stealing — raid the
    /// other workers' deques round-robin.
    fn take_packet(&self, worker: usize) -> Option<Packet> {
        if let Some(packet) = self.locals[worker].pop_front() {
            return Some(packet);
        }
        if let Some(packet) = self.injectors.iter().find_map(PacketQueue::pop_front) {
            return Some(packet);
        }
        let n = self.locals.len();
        (1..n).find_map(|i| self.locals[(worker + i) % n].pop_front())
    }

    /// Execute one warm packet. Purely host-side: no virtual clock, no
    /// tracer, no cache hit/miss counters — only `peek` and `insert`.
    fn execute_packet(&self, packet: Packet, jmake: &JMake, worker: usize) {
        self.counters[packet.stage() as usize]
            .executed
            .fetch_add(1, Ordering::Relaxed);
        match packet {
            Packet::Plan(ctx) => {
                if ctx.done.load(Ordering::Acquire) {
                    return;
                }
                let (mutated, probes) = jmake.plan_warm_probes(&ctx.base, &ctx.patch);
                let mutated = Arc::new(mutated);
                for probe in probes {
                    let packet = match probe.op {
                        ObjKind::I => Packet::Preprocess {
                            ctx: Arc::clone(&ctx),
                            tree: Arc::clone(&mutated),
                            probe,
                        },
                        ObjKind::O => Packet::Compile {
                            ctx: Arc::clone(&ctx),
                            tree: Arc::clone(&ctx.base),
                            probe,
                        },
                    };
                    self.publish(Some(worker), packet);
                }
            }
            Packet::Preprocess { ctx, tree, probe } => {
                self.run_probe(&ctx, &tree, &probe);
            }
            Packet::Compile { ctx, tree, probe } => {
                // A compiled configuration is one the classifier will
                // consult; queue its dead-symbol lint unless some clone
                // already paid for it.
                if let Some(cfg) = self.run_probe(&ctx, &tree, &probe) {
                    if !cfg.dead_symbols_ready() {
                        self.publish(None, Packet::Classify { ctx, cfg });
                    }
                }
            }
            Packet::Classify { ctx, cfg } => {
                if ctx.done.load(Ordering::Acquire) {
                    return;
                }
                cfg.dead_symbols();
            }
        }
    }

    /// Warm one object-cache entry; returns the configuration it ran
    /// under when the probe was viable.
    fn run_probe(
        &self,
        ctx: &PatchCtx,
        tree: &SourceTree,
        probe: &WarmProbe,
    ) -> Option<Arc<BuildConfig>> {
        if ctx.done.load(Ordering::Acquire) {
            return None;
        }
        let key = ConfigKey::new(&probe.arch, &probe.kind);
        // Only configurations the authoritative run has already solved
        // are worth probing — and peeking keeps the config-cache
        // counters untouched.
        let cfg =
            self.config_cache
                .peek(ctx.fingerprint, &key, probe.kind.content_fingerprint())?;
        warm_object_entry(
            &self.object_cache,
            &cfg,
            tree,
            &probe.file,
            probe.op,
            self.preproc.as_ref(),
        );
        Some(cfg)
    }

    /// Snapshot of the per-stage counters.
    fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            plan: self.counters[StageKind::Plan as usize].snapshot(),
            preprocess: self.counters[StageKind::Preprocess as usize].snapshot(),
            compile: self.counters[StageKind::Compile as usize].snapshot(),
            classify: self.counters[StageKind::Classify as usize].snapshot(),
        }
    }
}

/// Extract a readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Run `work` for one patch, converting a panic into
/// [`PatchOutcome::Panicked`] so one bad patch cannot end the run.
fn guard_patch<F>(work: F) -> (PatchOutcome, Samples)
where
    F: FnOnce() -> (PatchOutcome, Samples),
{
    match catch_unwind(AssertUnwindSafe(work)) {
        Ok(done) => done,
        Err(payload) => (
            PatchOutcome::Panicked(panic_message(payload.as_ref())),
            Samples::default(),
        ),
    }
}

/// Everything a worker shares across the commits it checks: the
/// cross-patch caches, the scheduler slot it may publish warm work to,
/// and the span emitter.
struct CheckCtx<'a> {
    cache: Option<&'a Arc<ConfigCache>>,
    object: Option<&'a Arc<ObjectCache>>,
    preproc: Option<&'a Arc<PreprocCache>>,
    warm: Option<(&'a Scheduler, usize)>,
    tracer: &'a Tracer,
    faults: &'a Faults,
}

/// Consult the fault plan before a host-side stage (checkout/show) runs.
///
/// Host stages live outside the virtual clock, so recovery here is pure
/// control flow: a transient fault fails the attempt, a hang consumes
/// the (virtual) timeout budget, and a latency spike is a no-op — there
/// is no clock to charge it to. Retries and timeouts are still visible
/// as trace spans and [`FaultStatsSnapshot`] counters. Returns the
/// degradation reason when the retry budget is exhausted.
fn host_fault_gate(faults: &Faults, site: FaultSite, tracer: &Tracer) -> Result<(), String> {
    if !faults.is_enabled() {
        return Ok(());
    }
    let policy = faults.policy();
    let stats = faults.stats();
    let mut attempt = 0u32;
    loop {
        match faults.decide(site, "", attempt) {
            None | Some(FaultKind::Latency) => return Ok(()),
            Some(FaultKind::Corrupt) => unreachable!("corruption only fires on cache lookups"),
            Some(kind @ (FaultKind::Transient | FaultKind::Hang)) => {
                if kind == FaultKind::Hang {
                    if let Some(stats) = &stats {
                        stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    }
                    let mut span = tracer.span(Stage::Timeout);
                    span.set_virtual_us(policy.timeout_us);
                }
                attempt += 1;
                if attempt >= policy.max_attempts {
                    if let Some(stats) = &stats {
                        stats.exhausted.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(format!(
                        "{site} gave up after {attempt} attempts under injected faults"
                    ));
                }
                if let Some(stats) = &stats {
                    stats.retries.fetch_add(1, Ordering::Relaxed);
                }
                let mut span = tracer.span(Stage::Retry);
                span.set_virtual_us(policy.backoff_us(attempt - 1));
            }
        }
    }
}

/// Check one commit end to end; timings land in `out`'s accumulators.
///
/// Each stage's wall-clock is measured exactly once and the same value
/// feeds both the [`DriverStats`] accumulator and the stage's trace span
/// (via `finish_with_host_us`), so the metrics table reconciles with the
/// driver statistics to the microsecond.
fn check_commit(
    repo: &Repo,
    commit: CommitId,
    jmake: &JMake,
    ctx: &CheckCtx<'_>,
    out: &mut WorkerOutput,
) -> (PatchOutcome, Samples) {
    let tracer = ctx.tracer.for_patch_with(|| commit.to_string());

    // Salt the fault plan with the commit identity so each operation's
    // fate travels with the commit: the same seed faults the same
    // commits regardless of worker count, scheduling, or cache mode.
    let faults = if ctx.faults.is_enabled() {
        ctx.faults.with_salt(ContentHash::of(&commit.to_string()).hi())
    } else {
        Faults::disabled()
    };

    if let Err(reason) = host_fault_gate(&faults, FaultSite::Checkout, &tracer) {
        return (
            PatchOutcome::Degraded { stage: "checkout", reason },
            Samples::default(),
        );
    }
    let span = tracer.span(Stage::Checkout);
    let started = Instant::now();
    let tree = repo.checkout(commit);
    let elapsed_us = started.elapsed().as_micros() as u64;
    out.checkout_us += elapsed_us;
    span.finish_with_host_us(elapsed_us);
    let tree = match tree {
        Ok(tree) => tree,
        Err(e) => {
            return (PatchOutcome::CheckoutFailed(e.to_string()), Samples::default());
        }
    };

    if let Err(reason) = host_fault_gate(&faults, FaultSite::Show, &tracer) {
        return (
            PatchOutcome::Degraded { stage: "show", reason },
            Samples::default(),
        );
    }
    let span = tracer.span(Stage::Show);
    let started = Instant::now();
    let shown = repo.show_with(
        commit,
        &jmake_diff::DiffOptions {
            ignore_whitespace: true,
            ..jmake_diff::DiffOptions::default()
        },
    );
    let elapsed_us = started.elapsed().as_micros() as u64;
    out.show_us += elapsed_us;
    span.finish_with_host_us(elapsed_us);
    let patch = match shown {
        Ok(patch) => patch,
        Err(e) => return (PatchOutcome::ShowFailed(e.to_string()), Samples::default()),
    };

    // Publish this patch as stealable warm work before the authoritative
    // check begins; the guard flips `done` when the check ends (or
    // panics), turning any still-queued unit into a no-op.
    let _warm_guard = ctx.warm.map(|(sched, _worker)| {
        let ctx = Arc::new(PatchCtx {
            base: Arc::new(tree.clone()),
            patch: patch.clone(),
            fingerprint: ConfigCache::fingerprint_tree(&tree),
            done: AtomicBool::new(false),
        });
        sched.publish(None, Packet::Plan(Arc::clone(&ctx)));
        DoneOnDrop(ctx)
    });

    let mut span = tracer.span(Stage::Check);
    let started = Instant::now();
    let author = repo
        .get(commit)
        .map(|c| c.author.clone())
        .unwrap_or_default();
    let mut engine = match ctx.cache {
        Some(cache) => BuildEngine::with_shared_cache(tree, Arc::clone(cache)),
        None => BuildEngine::new(tree),
    };
    if let Some(object) = ctx.object {
        engine.set_object_cache(Arc::clone(object));
    }
    if let Some(preproc) = ctx.preproc {
        engine.set_preproc_cache(Arc::clone(preproc));
    }
    engine.set_tracer(tracer);
    engine.set_faults(faults);
    let report = jmake.check_patch(&mut engine, &patch, &author);
    let elapsed_us = started.elapsed().as_micros() as u64;
    out.check_us += elapsed_us;
    span.set_virtual_us(report.elapsed_us);
    span.finish_with_host_us(elapsed_us);
    (PatchOutcome::Checked(report), engine.clock.samples)
}

/// Run JMake over `commits` of `repo` with `opts.workers` threads.
///
/// Returns exactly one [`PatchResult`] per input commit, in input order
/// — failures included. A panic while checking one patch is recorded in
/// its result; the other patches still run.
pub fn run_evaluation(repo: &Repo, commits: &[CommitId], opts: &DriverOptions) -> EvaluationRun {
    let run_started = Instant::now();
    let cache = opts.shared_cache.then(|| {
        opts.config_cache_handle
            .clone()
            .unwrap_or_else(|| Arc::new(ConfigCache::new()))
    });
    let object = opts.object_cache.then(|| {
        opts.object_cache_handle
            .clone()
            .unwrap_or_else(|| Arc::new(ObjectCache::new()))
    });
    let preproc = opts.preproc_cache.then(|| {
        opts.preproc_cache_handle
            .clone()
            .unwrap_or_else(|| Arc::new(PreprocCache::new()))
    });
    let next = AtomicUsize::new(0);
    let workers = opts.workers.max(1).min(commits.len().max(1));

    // Work stealing only pays off when idle workers exist and both shared
    // caches are on (probes feed the object cache and peek solved
    // configurations out of the config cache).
    let scheduler = match (&cache, &object) {
        (Some(cache), Some(object)) if opts.work_stealing && workers > 1 => Some(Scheduler::new(
            workers,
            commits.len(),
            Arc::clone(cache),
            Arc::clone(object),
            preproc.clone(),
        )),
        _ => None,
    };

    let outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let cache = cache.as_ref();
                let object = object.as_ref();
                let preproc = preproc.as_ref();
                let scheduler = scheduler.as_ref();
                let next = &next;
                scope.spawn(move || {
                    let jmake = JMake::with_options(opts.jmake.clone());
                    let mut out = WorkerOutput::default();
                    let ctx = CheckCtx {
                        cache,
                        object,
                        preproc,
                        warm: scheduler.map(|s| (s, w)),
                        tracer: &opts.tracer,
                        faults: &opts.faults,
                    };
                    loop {
                        // Authoritative patches always beat speculative
                        // warm units.
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx < commits.len() {
                            let commit = commits[idx];
                            let (outcome, samples) = guard_patch(AssertUnwindSafe(|| {
                                check_commit(repo, commit, &jmake, &ctx, &mut out)
                            }));
                            out.items.push((idx, PatchResult { commit, outcome }, samples));
                            if let Some(sched) = scheduler {
                                sched.remaining.fetch_sub(1, Ordering::AcqRel);
                            }
                            continue;
                        }
                        // No patch left to start: help warm caches for the
                        // patches still running, then exit.
                        let Some(sched) = scheduler else { break };
                        if sched.remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        match sched.take_packet(w) {
                            Some(packet) => {
                                // A speculative packet must never kill a
                                // worker; its panic is simply dropped.
                                let _ = catch_unwind(AssertUnwindSafe(|| {
                                    sched.execute_packet(packet, &jmake, w)
                                }));
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            // A worker dying outside the per-patch guard loses only its
            // buffered items; the structural fill below still yields one
            // outcome per commit.
            .filter_map(|h| h.join().ok())
            .collect()
    });

    let mut stats = DriverStats {
        patches: commits.len(),
        ..DriverStats::default()
    };
    let mut slots: Vec<Option<(PatchResult, Samples)>> = vec![None; commits.len()];
    for out in outputs {
        stats.checkout_wall_us += out.checkout_us;
        stats.show_wall_us += out.show_us;
        stats.check_wall_us += out.check_us;
        for (idx, result, samples) in out.items {
            slots[idx] = Some((result, samples));
        }
    }

    let mut run = EvaluationRun::default();
    for (idx, slot) in slots.into_iter().enumerate() {
        let (result, samples) = slot.unwrap_or_else(|| {
            (
                PatchResult {
                    commit: commits[idx],
                    outcome: PatchOutcome::Panicked(
                        "worker thread died before reporting this patch".to_string(),
                    ),
                },
                Samples::default(),
            )
        });
        match &result.outcome {
            PatchOutcome::Checked(_) => stats.checked += 1,
            PatchOutcome::CheckoutFailed(_) => stats.checkout_failures += 1,
            PatchOutcome::ShowFailed(_) => stats.show_failures += 1,
            PatchOutcome::Panicked(_) => stats.panics += 1,
            PatchOutcome::Degraded { .. } => stats.degraded += 1,
        }
        run.samples.merge(&samples);
        run.results.push(result);
    }

    if let Some(cache) = &cache {
        stats.cache = cache.stats();
    }
    if let Some(object) = &object {
        stats.object = object.stats();
    }
    if let Some(preproc) = &preproc {
        stats.preproc = preproc.stats();
    }
    if let Some(sched) = &scheduler {
        stats.scheduler = sched.stats();
        // Queue pressure lands in the trace too, so `--metrics` and
        // offline trace tooling see it without a stats side channel.
        for (name, stage) in stats.scheduler.stages() {
            opts.tracer.counter(&format!("sched_{name}_enqueued"), stage.enqueued);
            opts.tracer.counter(&format!("sched_{name}_executed"), stage.executed);
            opts.tracer.counter(&format!("sched_{name}_dropped"), stage.dropped);
            opts.tracer.counter(&format!("sched_{name}_peak_depth"), stage.peak_depth);
        }
    }
    stats.faults = opts.faults.stats_snapshot();
    stats.total_wall_us = run_started.elapsed().as_micros() as u64;
    run.stats = stats;
    assert_eq!(
        run.results.len(),
        commits.len(),
        "every input commit must produce exactly one outcome"
    );
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_converts_panics_into_outcomes() {
        let (outcome, samples) = guard_patch(|| panic!("mutation table overflow"));
        assert_eq!(
            outcome,
            PatchOutcome::Panicked("mutation table overflow".to_string())
        );
        assert_eq!(samples, Samples::default());

        // String payloads (e.g. from `expect` / formatted panics) must
        // survive the downcast too, not only `&'static str`.
        let (outcome, _) = guard_patch(|| {
            std::panic::panic_any("formatted: patch 7".to_string());
        });
        match outcome {
            PatchOutcome::Panicked(msg) => assert!(msg.contains("patch 7"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn outcome_accessors() {
        let failed = PatchOutcome::CheckoutFailed("no such commit".to_string());
        assert!(!failed.is_checked());
        assert!(failed.report().is_none());
        assert_eq!(failed.failure(), Some("no such commit"));
    }

    #[test]
    fn stats_render_and_rate() {
        let stats = DriverStats {
            patches: 10,
            checked: 8,
            checkout_failures: 1,
            panics: 1,
            total_wall_us: 2_000_000,
            ..DriverStats::default()
        };
        assert!((stats.patches_per_sec() - 5.0).abs() < 1e-9);
        let text = stats.render();
        assert!(text.contains("checked 8"));
        assert!(text.contains("panicked 1"));
        assert_eq!(DriverStats::default().patches_per_sec(), 0.0);
    }
}
