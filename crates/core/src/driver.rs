//! Parallel evaluation driver (paper §V.A).
//!
//! The paper processed 11,057 patches with 25 worker processes, each on
//! its own kernel clone in a tmpfs. Here each worker checks out the
//! commit's snapshot into memory, builds a [`BuildEngine`], runs JMake,
//! and hands back the report plus the engine's virtual-clock samples.
//!
//! Three properties the original driver lacked, now guaranteed:
//!
//! - **No patch vanishes.** Every input commit produces exactly one
//!   [`PatchResult`]; checkout errors, `git show` errors, and per-patch
//!   panics become explicit [`PatchOutcome`] variants instead of being
//!   silently skipped, and `run_evaluation` asserts the count matches.
//! - **A panic does not abort the run.** Each patch is checked under
//!   `catch_unwind`; the panic message is captured in
//!   [`PatchOutcome::Panicked`] and the remaining patches still run.
//! - **Configuration solving is shared.** With
//!   [`DriverOptions::shared_cache`] (the default), all workers share a
//!   content-addressed [`ConfigCache`], so identical Kconfig/defconfig
//!   sources are solved once per run instead of once per patch. Cache
//!   hits still charge the virtual clock the full creation cost, so the
//!   simulated timings (Figure 4a) are identical either way — only host
//!   wall-clock drops. [`DriverStats`] reports the hit rate and
//!   per-stage wall-clock.

use crate::check::{JMake, Options};
use crate::report::PatchReport;
use jmake_kbuild::{BuildEngine, CacheStats, ConfigCache, Samples};
use jmake_trace::{Stage, Tracer};
use jmake_vcs::{CommitId, Repo};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Options for an evaluation run.
#[derive(Debug, Clone)]
pub struct DriverOptions {
    /// Worker threads (the paper used 25 processes).
    pub workers: usize,
    /// JMake pipeline options.
    pub jmake: Options,
    /// Share solved configurations across patches and workers. Affects
    /// host wall-clock only; reports and virtual timings are identical
    /// with or without it.
    pub shared_cache: bool,
    /// Span emitter for per-stage tracing. Disabled by default — a
    /// disabled tracer is a no-op and leaves reports and the Figure 4
    /// distributions bit-identical.
    pub tracer: Tracer,
}

impl Default for DriverOptions {
    fn default() -> Self {
        DriverOptions {
            workers: 4,
            jmake: Options::default(),
            shared_cache: true,
            tracer: Tracer::disabled(),
        }
    }
}

/// What happened to one commit. Every commit handed to
/// [`run_evaluation`] ends in exactly one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum PatchOutcome {
    /// JMake ran; here is its report.
    Checked(PatchReport),
    /// The commit's snapshot could not be checked out.
    CheckoutFailed(String),
    /// The commit's patch could not be produced (`git show`).
    ShowFailed(String),
    /// Checking this patch panicked; the message is preserved and the
    /// run continued.
    Panicked(String),
}

impl PatchOutcome {
    /// The report, when the patch was actually checked.
    pub fn report(&self) -> Option<&PatchReport> {
        match self {
            PatchOutcome::Checked(report) => Some(report),
            _ => None,
        }
    }

    /// True when the patch was checked (successfully or not — this is
    /// about the driver completing, not the paper's coverage verdict).
    pub fn is_checked(&self) -> bool {
        matches!(self, PatchOutcome::Checked(_))
    }

    /// The failure message for any non-checked outcome.
    pub fn failure(&self) -> Option<&str> {
        match self {
            PatchOutcome::Checked(_) => None,
            PatchOutcome::CheckoutFailed(m)
            | PatchOutcome::ShowFailed(m)
            | PatchOutcome::Panicked(m) => Some(m),
        }
    }
}

/// One processed patch.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchResult {
    /// The commit checked.
    pub commit: CommitId,
    /// What became of it.
    pub outcome: PatchOutcome,
}

impl PatchResult {
    /// The report, when the patch was actually checked.
    pub fn report(&self) -> Option<&PatchReport> {
        self.outcome.report()
    }
}

/// Host-side accounting for one run: outcome counts, shared-cache
/// effectiveness, and real (not virtual) per-stage wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DriverStats {
    /// Commits handed to the driver.
    pub patches: usize,
    /// Outcomes that are [`PatchOutcome::Checked`].
    pub checked: usize,
    /// Outcomes that are [`PatchOutcome::CheckoutFailed`].
    pub checkout_failures: usize,
    /// Outcomes that are [`PatchOutcome::ShowFailed`].
    pub show_failures: usize,
    /// Outcomes that are [`PatchOutcome::Panicked`].
    pub panics: usize,
    /// Shared configuration-cache counters (zero when sharing is off).
    pub cache: CacheStats,
    /// Wall-clock spent in `checkout`, summed across workers (µs).
    pub checkout_wall_us: u64,
    /// Wall-clock spent producing patches (`show`), summed (µs).
    pub show_wall_us: u64,
    /// Wall-clock spent inside JMake checking, summed (µs).
    pub check_wall_us: u64,
    /// End-to-end wall-clock of the whole run (µs, not summed).
    pub total_wall_us: u64,
}

impl DriverStats {
    /// Patches processed per wall-clock second.
    pub fn patches_per_sec(&self) -> f64 {
        if self.total_wall_us == 0 {
            0.0
        } else {
            self.patches as f64 / (self.total_wall_us as f64 / 1e6)
        }
    }

    /// Human-readable rendering for `jmake-eval --stats`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("driver statistics (host wall-clock, not simulated time)\n");
        out.push_str(&format!(
            "  patches         {:>8}  (checked {}, checkout-failed {}, show-failed {}, panicked {})\n",
            self.patches, self.checked, self.checkout_failures, self.show_failures, self.panics
        ));
        out.push_str(&format!(
            "  config cache    {:>8.1}% hit rate  ({} hits, {} misses, {} entries)\n",
            self.cache.hit_rate() * 100.0,
            self.cache.hits,
            self.cache.misses,
            self.cache.entries
        ));
        out.push_str(&format!(
            "  stage wall      checkout {:.1} ms, show {:.1} ms, check {:.1} ms (summed over workers)\n",
            self.checkout_wall_us as f64 / 1e3,
            self.show_wall_us as f64 / 1e3,
            self.check_wall_us as f64 / 1e3
        ));
        out.push_str(&format!(
            "  throughput      {:.1} patches/s over {:.1} ms total\n",
            self.patches_per_sec(),
            self.total_wall_us as f64 / 1e3
        ));
        out
    }
}

/// The whole run: per-patch results plus merged timing samples.
#[derive(Debug, Clone, Default)]
pub struct EvaluationRun {
    /// One result per input commit, in commit order.
    pub results: Vec<PatchResult>,
    /// Merged per-invocation virtual-clock samples (Figure 4 inputs).
    pub samples: Samples,
    /// Host-side run accounting.
    pub stats: DriverStats,
}

impl EvaluationRun {
    /// Per-patch total virtual times in microseconds (Figure 5/6 input),
    /// for the patches that were actually checked.
    pub fn patch_times_us(&self) -> Vec<u64> {
        self.results
            .iter()
            .filter_map(|r| r.report().map(|report| report.elapsed_us))
            .collect()
    }

    /// The results that failed to produce a report, with their messages.
    pub fn failures(&self) -> impl Iterator<Item = (&PatchResult, &str)> {
        self.results
            .iter()
            .filter_map(|r| r.outcome.failure().map(|m| (r, m)))
    }
}

/// Per-worker output: completed slots plus stage wall-clock accumulators.
#[derive(Default)]
struct WorkerOutput {
    items: Vec<(usize, PatchResult, Samples)>,
    checkout_us: u64,
    show_us: u64,
    check_us: u64,
}

/// Extract a readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Run `work` for one patch, converting a panic into
/// [`PatchOutcome::Panicked`] so one bad patch cannot end the run.
fn guard_patch<F>(work: F) -> (PatchOutcome, Samples)
where
    F: FnOnce() -> (PatchOutcome, Samples),
{
    match catch_unwind(AssertUnwindSafe(work)) {
        Ok(done) => done,
        Err(payload) => (
            PatchOutcome::Panicked(panic_message(payload.as_ref())),
            Samples::default(),
        ),
    }
}

/// Check one commit end to end; timings land in `out`'s accumulators.
///
/// Each stage's wall-clock is measured exactly once and the same value
/// feeds both the [`DriverStats`] accumulator and the stage's trace span
/// (via `finish_with_host_us`), so the metrics table reconciles with the
/// driver statistics to the microsecond.
fn check_commit(
    repo: &Repo,
    commit: CommitId,
    jmake: &JMake,
    cache: Option<&Arc<ConfigCache>>,
    tracer: &Tracer,
    out: &mut WorkerOutput,
) -> (PatchOutcome, Samples) {
    let tracer = tracer.for_patch_with(|| commit.to_string());

    let span = tracer.span(Stage::Checkout);
    let started = Instant::now();
    let tree = repo.checkout(commit);
    let elapsed_us = started.elapsed().as_micros() as u64;
    out.checkout_us += elapsed_us;
    span.finish_with_host_us(elapsed_us);
    let tree = match tree {
        Ok(tree) => tree,
        Err(e) => {
            return (PatchOutcome::CheckoutFailed(e.to_string()), Samples::default());
        }
    };

    let span = tracer.span(Stage::Show);
    let started = Instant::now();
    let shown = repo.show_with(
        commit,
        &jmake_diff::DiffOptions {
            ignore_whitespace: true,
            ..jmake_diff::DiffOptions::default()
        },
    );
    let elapsed_us = started.elapsed().as_micros() as u64;
    out.show_us += elapsed_us;
    span.finish_with_host_us(elapsed_us);
    let patch = match shown {
        Ok(patch) => patch,
        Err(e) => return (PatchOutcome::ShowFailed(e.to_string()), Samples::default()),
    };

    let mut span = tracer.span(Stage::Check);
    let started = Instant::now();
    let author = repo
        .get(commit)
        .map(|c| c.author.clone())
        .unwrap_or_default();
    let mut engine = match cache {
        Some(cache) => BuildEngine::with_shared_cache(tree, Arc::clone(cache)),
        None => BuildEngine::new(tree),
    };
    engine.set_tracer(tracer.clone());
    let report = jmake.check_patch(&mut engine, &patch, &author);
    let elapsed_us = started.elapsed().as_micros() as u64;
    out.check_us += elapsed_us;
    span.set_virtual_us(report.elapsed_us);
    span.finish_with_host_us(elapsed_us);
    (PatchOutcome::Checked(report), engine.clock.samples)
}

/// Run JMake over `commits` of `repo` with `opts.workers` threads.
///
/// Returns exactly one [`PatchResult`] per input commit, in input order
/// — failures included. A panic while checking one patch is recorded in
/// its result; the other patches still run.
pub fn run_evaluation(repo: &Repo, commits: &[CommitId], opts: &DriverOptions) -> EvaluationRun {
    let run_started = Instant::now();
    let cache = opts.shared_cache.then(|| Arc::new(ConfigCache::new()));
    let next = AtomicUsize::new(0);
    let workers = opts.workers.max(1).min(commits.len().max(1));

    let outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cache = cache.as_ref();
                let next = &next;
                scope.spawn(move || {
                    let jmake = JMake::with_options(opts.jmake.clone());
                    let mut out = WorkerOutput::default();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= commits.len() {
                            break;
                        }
                        let commit = commits[idx];
                        let (outcome, samples) = guard_patch(AssertUnwindSafe(|| {
                            check_commit(repo, commit, &jmake, cache, &opts.tracer, &mut out)
                        }));
                        out.items.push((idx, PatchResult { commit, outcome }, samples));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            // A worker dying outside the per-patch guard loses only its
            // buffered items; the structural fill below still yields one
            // outcome per commit.
            .filter_map(|h| h.join().ok())
            .collect()
    });

    let mut stats = DriverStats {
        patches: commits.len(),
        ..DriverStats::default()
    };
    let mut slots: Vec<Option<(PatchResult, Samples)>> = vec![None; commits.len()];
    for out in outputs {
        stats.checkout_wall_us += out.checkout_us;
        stats.show_wall_us += out.show_us;
        stats.check_wall_us += out.check_us;
        for (idx, result, samples) in out.items {
            slots[idx] = Some((result, samples));
        }
    }

    let mut run = EvaluationRun::default();
    for (idx, slot) in slots.into_iter().enumerate() {
        let (result, samples) = slot.unwrap_or_else(|| {
            (
                PatchResult {
                    commit: commits[idx],
                    outcome: PatchOutcome::Panicked(
                        "worker thread died before reporting this patch".to_string(),
                    ),
                },
                Samples::default(),
            )
        });
        match &result.outcome {
            PatchOutcome::Checked(_) => stats.checked += 1,
            PatchOutcome::CheckoutFailed(_) => stats.checkout_failures += 1,
            PatchOutcome::ShowFailed(_) => stats.show_failures += 1,
            PatchOutcome::Panicked(_) => stats.panics += 1,
        }
        run.samples.merge(&samples);
        run.results.push(result);
    }

    if let Some(cache) = &cache {
        stats.cache = cache.stats();
    }
    stats.total_wall_us = run_started.elapsed().as_micros() as u64;
    run.stats = stats;
    assert_eq!(
        run.results.len(),
        commits.len(),
        "every input commit must produce exactly one outcome"
    );
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_converts_panics_into_outcomes() {
        let (outcome, samples) = guard_patch(|| panic!("mutation table overflow"));
        assert_eq!(
            outcome,
            PatchOutcome::Panicked("mutation table overflow".to_string())
        );
        assert_eq!(samples, Samples::default());

        // String payloads (e.g. from `expect` / formatted panics) must
        // survive the downcast too, not only `&'static str`.
        let (outcome, _) = guard_patch(|| {
            std::panic::panic_any("formatted: patch 7".to_string());
        });
        match outcome {
            PatchOutcome::Panicked(msg) => assert!(msg.contains("patch 7"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn outcome_accessors() {
        let failed = PatchOutcome::CheckoutFailed("no such commit".to_string());
        assert!(!failed.is_checked());
        assert!(failed.report().is_none());
        assert_eq!(failed.failure(), Some("no such commit"));
    }

    #[test]
    fn stats_render_and_rate() {
        let stats = DriverStats {
            patches: 10,
            checked: 8,
            checkout_failures: 1,
            panics: 1,
            total_wall_us: 2_000_000,
            ..DriverStats::default()
        };
        assert!((stats.patches_per_sec() - 5.0).abs() < 1e-9);
        let text = stats.render();
        assert!(text.contains("checked 8"));
        assert!(text.contains("panicked 1"));
        assert_eq!(DriverStats::default().patches_per_sec(), 0.0);
    }
}
