//! Parallel evaluation driver (paper §V.A).
//!
//! The paper processed 11,057 patches with 25 worker processes, each on
//! its own kernel clone in a tmpfs. Here each worker checks out the
//! commit's snapshot into memory, builds a fresh [`BuildEngine`] (so
//! configurations are recreated per patch, as the paper's per-patch
//! cleanup implies), runs JMake, and hands back the report plus the
//! engine's virtual-clock samples.

use crate::check::{JMake, Options};
use crate::report::PatchReport;
use jmake_kbuild::{BuildEngine, Samples};
use jmake_vcs::{CommitId, Repo};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Options for an evaluation run.
#[derive(Debug, Clone)]
pub struct DriverOptions {
    /// Worker threads (the paper used 25 processes).
    pub workers: usize,
    /// JMake pipeline options.
    pub jmake: Options,
}

impl Default for DriverOptions {
    fn default() -> Self {
        DriverOptions {
            workers: 4,
            jmake: Options::default(),
        }
    }
}

/// One processed patch.
#[derive(Debug, Clone)]
pub struct PatchResult {
    /// The commit checked.
    pub commit: CommitId,
    /// The JMake report.
    pub report: PatchReport,
}

/// The whole run: per-patch results plus merged timing samples.
#[derive(Debug, Clone, Default)]
pub struct EvaluationRun {
    /// Reports, in commit order.
    pub results: Vec<PatchResult>,
    /// Merged per-invocation virtual-clock samples (Figure 4 inputs).
    pub samples: Samples,
}

impl EvaluationRun {
    /// Per-patch total virtual times in microseconds (Figure 5/6 input).
    pub fn patch_times_us(&self) -> Vec<u64> {
        self.results.iter().map(|r| r.report.elapsed_us).collect()
    }
}

/// Run JMake over `commits` of `repo` with `opts.workers` threads.
pub fn run_evaluation(repo: &Repo, commits: &[CommitId], opts: &DriverOptions) -> EvaluationRun {
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, PatchResult, Samples)>> =
        Mutex::new(Vec::with_capacity(commits.len()));
    let workers = opts.workers.max(1).min(commits.len().max(1));

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let jmake = JMake::with_options(opts.jmake.clone());
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= commits.len() {
                        break;
                    }
                    let commit = commits[idx];
                    let Ok(tree) = repo.checkout(commit) else {
                        continue;
                    };
                    let Ok(patch) = repo.show_with(
                        commit,
                        &jmake_diff::DiffOptions {
                            ignore_whitespace: true,
                            ..jmake_diff::DiffOptions::default()
                        },
                    ) else {
                        continue;
                    };
                    let author = repo
                        .get(commit)
                        .map(|c| c.author.clone())
                        .unwrap_or_default();
                    let mut engine = BuildEngine::new(tree);
                    let report = jmake.check_patch(&mut engine, &patch, &author);
                    collected.lock().expect("no poisoned workers").push((
                        idx,
                        PatchResult { commit, report },
                        engine.clock.samples,
                    ));
                }
            });
        }
    })
    .expect("worker panicked");

    let mut items = collected.into_inner().expect("scope joined");
    items.sort_by_key(|(idx, _, _)| *idx);
    let mut run = EvaluationRun::default();
    for (_, result, samples) in items {
        run.samples.merge(&samples);
        run.results.push(result);
    }
    run
}
