//! The JMake pipeline: mutate → preprocess → scan → compile
//! (paper §III.D for `.c` files, §III.E for `.h` files).

use crate::archsel::{ArchSelector, Target};
use crate::classify::{classify, detect_both_branches};
use crate::mutation::{mutate, MutationPlan};
use crate::report::{FileReport, FileStatus, PatchReport, UncoveredMutation};
use crate::token::{MutationKind, MutationToken};
use jmake_cpp::analyze;
use jmake_diff::{changed_lines, ChangeKind, Patch};
use jmake_kbuild::{
    bootstrap_files_of, tree::file_name, ArchId, BuildEngine, BuildError, ConfigKind, ObjKind,
    PathId, SourceTree,
};
use jmake_trace::Stage;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Tunable behaviour of the pipeline.
#[derive(Debug, Clone)]
pub struct Options {
    /// Maximum `.c` files per make invocation (paper: 50, to bound the
    /// tmpfs footprint).
    pub group_limit: usize,
    /// When a header has more candidate `.c` files than this, only
    /// allyesconfig is tried (paper: 100, user-configurable; costs 23
    /// false positives out of 21,012 file instances in the paper's runs).
    pub header_candidate_threshold: usize,
    /// Hard cap on candidate `.c` files actually compiled per header
    /// (the paper observed 1–12 compilations per header).
    pub max_header_candidates: usize,
    /// Consider prepared `configs/` configurations (paper: on; +1% patch
    /// success over allyesconfig alone).
    pub use_defconfigs: bool,
    /// Additionally try allmodconfig — the paper's proposed extension for
    /// the `#ifdef MODULE` rows of Table IV.
    pub use_allmodconfig: bool,
    /// Directory prefixes whose files are ignored (paper §V.A).
    pub skip_dirs: Vec<String>,
    /// Ablation: disable §III.E's changed-macro hints when ranking header
    /// candidates (include evidence only).
    pub use_header_hints: bool,
    /// Ablation: one mutation per changed line instead of §III.B's
    /// minimized placement.
    pub naive_mutations: bool,
    /// Extension (§VII): synthesize coverage-maximizing configurations
    /// (flipping variables off) for leftovers the standard configurations
    /// miss — the Vampyr/Troll-style complement the paper proposes.
    pub use_coverage_configs: bool,
    /// Cap on synthesized coverage configurations per file.
    pub max_coverage_configs: usize,
    /// Randconfig portfolio: for each seed, every file's trials also fan
    /// out to `ConfigKind::Rand { seed }` on its selected architectures
    /// (the seeds come from `covsel::select_portfolio`). Empty (the
    /// default) keeps the paper's allyes-first behaviour byte-identical.
    pub portfolio: Vec<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            group_limit: 50,
            header_candidate_threshold: 100,
            max_header_candidates: 16,
            use_defconfigs: true,
            use_allmodconfig: false,
            skip_dirs: vec![
                "Documentation".to_string(),
                "scripts".to_string(),
                "tools".to_string(),
            ],
            use_header_hints: true,
            naive_mutations: false,
            use_coverage_configs: false,
            max_coverage_configs: 4,
            portfolio: Vec::new(),
        }
    }
}

/// The JMake checker.
#[derive(Debug, Clone, Default)]
pub struct JMake {
    /// Behaviour knobs.
    pub options: Options,
}

impl JMake {
    /// A checker with default options.
    pub fn new() -> Self {
        JMake::default()
    }

    /// A checker with explicit options.
    pub fn with_options(options: Options) -> Self {
        JMake { options }
    }

    /// Check one patch against the snapshot held by `engine` (the
    /// post-commit checkout). Returns the full report.
    pub fn check_patch(
        &self,
        engine: &mut BuildEngine,
        patch: &Patch,
        author: &str,
    ) -> PatchReport {
        let start_us = engine.clock.now_us();
        let start_cfg = engine.clock.samples.config.len();
        let start_i = engine.clock.samples.i_gen.len();
        let start_o = engine.clock.samples.o_gen.len();

        let base = engine.tree().clone();
        let selector = ArchSelector::new(&base);
        let mut works = self.collect_work(engine, &base, &selector, patch);
        // Path → work-slot index: `run_target` resolves files by name on
        // every trial, so give it O(1) lookups instead of linear scans.
        let index: WorkIndex = works
            .iter()
            .enumerate()
            .map(|(i, w)| (w.path.clone(), i))
            .collect();

        // Build the mutated tree (bootstrap files stay pristine: mutating
        // them would fail every make invocation, paper §V.D).
        let mut mutated = base.clone();
        for w in works.iter().filter(|w| !w.bootstrap) {
            mutated.insert(w.path.clone(), w.plan.mutated.clone());
        }

        let mut expanded_macros: HashSet<String> = HashSet::new();

        self.c_phase(engine, &base, &mutated, &mut works, &index, &mut expanded_macros);
        if self.options.use_coverage_configs {
            self.coverage_phase(engine, &base, &mutated, &mut works, &index, &mut expanded_macros);
        }
        for w in works.iter_mut().filter(|w| w.is_header) {
            w.header_covered_by_patch_c = !w.plan.is_trivial() && w.remaining.is_empty();
        }
        let mut header_memo = HeaderCandidateMemo::default();
        self.h_phase(
            engine,
            &base,
            &mutated,
            &selector,
            &mut works,
            &index,
            &mut expanded_macros,
            &mut header_memo,
        );
        let files = self.finish(engine, &base, works, &expanded_macros);

        PatchReport {
            author: author.to_string(),
            files,
            elapsed_us: engine.clock.now_us() - start_us,
            config_creations: engine.clock.samples.config.len() - start_cfg,
            i_invocations: engine.clock.samples.i_gen.len() - start_i,
            o_invocations: engine.clock.samples.o_gen.len() - start_o,
        }
    }

    fn collect_work(
        &self,
        engine: &BuildEngine,
        base: &SourceTree,
        selector: &ArchSelector,
        patch: &Patch,
    ) -> Vec<Work> {
        let mut works = Vec::new();
        for fp in &patch.files {
            if fp.kind != ChangeKind::Modify {
                continue;
            }
            let path = fp.path().to_string();
            let is_header = path.ends_with(".h");
            if !is_header && !path.ends_with(".c") {
                continue;
            }
            if self
                .options
                .skip_dirs
                .iter()
                .any(|d| path.starts_with(&format!("{d}/")))
            {
                continue;
            }
            let Some(content) = base.get(&path) else {
                continue;
            };
            let new_len = content.lines().count() as u32;
            let changed = changed_lines(fp, new_len);
            let plan = {
                let _span = engine.tracer().span(Stage::MutationPlan).with_file(&path);
                if self.options.naive_mutations {
                    crate::mutation::mutate_naive(&path, content, &changed)
                } else {
                    mutate(&path, content, &changed)
                }
            };
            let candidates = if is_header {
                Vec::new() // headers are compiled via candidate .c files
            } else {
                self.filter_targets(selector.candidates(base, &path))
            };
            let remaining: BTreeSet<MutationToken> = plan.mutations.iter().cloned().collect();
            works.push(Work {
                path: path.clone(),
                is_header,
                bootstrap: engine.is_bootstrap(&path),
                candidates,
                remaining,
                plan,
                covered: Vec::new(),
                targets_tried: Vec::new(),
                o_attempts: 0,
                compiled_somewhere: false,
                first_success_seen: false,
                full_on_first_success: false,
                header_candidates_used: 0,
                header_covered_by_patch_c: false,
                errors: Vec::new(),
                degraded: Vec::new(),
            });
        }
        works
    }

    fn filter_targets(&self, targets: Vec<Target>) -> Vec<Target> {
        let mut out: Vec<Target> = targets
            .into_iter()
            .filter(|t| self.options.use_defconfigs || !matches!(t.kind, ConfigKind::Defconfig(_)))
            .collect();
        if self.options.use_allmodconfig {
            let arches: Vec<String> = out.iter().map(|t| t.arch.clone()).collect();
            for arch in arches {
                let t = Target::new(arch, ConfigKind::AllMod);
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        // Portfolio members fan out after the standard targets: trials try
        // allyes/defconfig/allmod first, then each selected randconfig, so
        // attribution ("which config first covered this token") and report
        // bytes are independent of worker count and cache mode — the same
        // global target order every phase (and warm-probe planning) uses.
        if !self.options.portfolio.is_empty() {
            let arches: Vec<String> = out.iter().map(|t| t.arch.clone()).collect();
            for seed in &self.options.portfolio {
                for arch in &arches {
                    let t = Target::new(arch.clone(), ConfigKind::Rand { seed: *seed });
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
            }
        }
        out
    }

    /// §III.D: process the patch's `.c` files across candidate targets.
    #[allow(clippy::too_many_arguments)]
    fn c_phase(
        &self,
        engine: &mut BuildEngine,
        base: &SourceTree,
        mutated: &SourceTree,
        works: &mut [Work],
        index: &WorkIndex,
        expanded_macros: &mut HashSet<String>,
    ) {
        // Global target order: first-seen across the files' candidates.
        let mut order: Vec<Target> = Vec::new();
        for w in works.iter().filter(|w| !w.is_header) {
            for t in &w.candidates {
                if !order.contains(t) {
                    order.push(t.clone());
                }
            }
        }
        for target in &order {
            let pending: Vec<String> = works
                .iter()
                .filter(|w| {
                    !w.is_header
                        && !w.bootstrap
                        && !w.remaining.is_empty()
                        && w.candidates.contains(target)
                })
                .map(|w| w.path.clone())
                .collect();
            if pending.is_empty() {
                continue;
            }
            self.run_target(
                engine,
                base,
                mutated,
                works,
                index,
                expanded_macros,
                target,
                &pending,
                &pending,
            );
            if works
                .iter()
                .all(|w| w.is_header || w.bootstrap || w.remaining.is_empty())
            {
                break;
            }
        }
    }

    /// §VII extension: for `.c` leftovers, synthesize configurations that
    /// flip variables off so `#ifndef`/`#else` branches become live.
    #[allow(clippy::too_many_arguments)]
    fn coverage_phase(
        &self,
        engine: &mut BuildEngine,
        base: &SourceTree,
        mutated: &SourceTree,
        works: &mut [Work],
        index: &WorkIndex,
        expanded_macros: &mut HashSet<String>,
    ) {
        let pending: Vec<(String, Vec<Target>)> = works
            .iter()
            .filter(|w| !w.is_header && !w.bootstrap && !w.remaining.is_empty())
            .filter_map(|w| {
                let content = base.get(&w.path)?;
                let wants = crate::covsel::branch_wants(content);
                if wants.is_empty() {
                    return None;
                }
                // Flip relative to the architecture that got furthest —
                // the first candidate whose configuration exists.
                let arch = w
                    .candidates
                    .first()
                    .map(|t| t.arch.clone())
                    .unwrap_or_else(|| "x86_64".to_string());
                let baseline = engine.make_config(&arch, &ConfigKind::AllYes).ok()?;
                let targets = crate::covsel::generate_cover_targets(
                    &arch,
                    &baseline.config,
                    &wants,
                    Some(&baseline.model),
                    self.options.max_coverage_configs,
                );
                (!targets.is_empty()).then(|| (w.path.clone(), targets))
            })
            .collect();
        for (path, targets) in pending {
            for target in &targets {
                self.run_target(
                    engine,
                    base,
                    mutated,
                    works,
                    index,
                    expanded_macros,
                    target,
                    std::slice::from_ref(&path),
                    std::slice::from_ref(&path),
                );
                let done = index
                    .get(path.as_str())
                    .is_some_and(|&i| works[i].remaining.is_empty());
                if done {
                    break;
                }
            }
        }
    }

    /// §III.E: headers with tokens the `.c` phase did not certify.
    #[allow(clippy::too_many_arguments)]
    fn h_phase(
        &self,
        engine: &mut BuildEngine,
        base: &SourceTree,
        mutated: &SourceTree,
        selector: &ArchSelector,
        works: &mut [Work],
        index: &WorkIndex,
        expanded_macros: &mut HashSet<String>,
        memo: &mut HeaderCandidateMemo,
    ) {
        let headers: Vec<usize> = works
            .iter()
            .enumerate()
            .filter(|(_, w)| {
                w.is_header && !w.bootstrap && !w.remaining.is_empty() && !w.plan.is_trivial()
            })
            .map(|(i, _)| i)
            .collect();
        for idx in headers {
            let (h_path, hints) = {
                let w = &works[idx];
                let hints = if self.options.use_header_hints {
                    w.plan.changed_macros.clone()
                } else {
                    Vec::new()
                };
                (w.path.clone(), hints)
            };
            let all_candidates = memo.get_or_compute(base, &h_path, &hints);
            let over_threshold = all_candidates.len() > self.options.header_candidate_threshold;
            let candidates: Vec<String> = all_candidates
                .into_iter()
                .take(self.options.max_header_candidates)
                .collect();
            if candidates.is_empty() {
                works[idx]
                    .errors
                    .push(format!("no .c file found that could exercise {h_path}"));
                continue;
            }
            // Targets derive from the candidate .c files, like §III.D —
            // over the threshold only allyesconfig is considered.
            let mut order: Vec<Target> = Vec::new();
            for c in &candidates {
                for t in self.filter_targets(selector.candidates(base, c)) {
                    let t = if over_threshold && !matches!(t.kind, ConfigKind::AllYes) {
                        continue;
                    } else {
                        t
                    };
                    if !order.contains(&t) {
                        order.push(t);
                    }
                }
            }
            for target in &order {
                self.run_target(
                    engine,
                    base,
                    mutated,
                    works,
                    index,
                    expanded_macros,
                    target,
                    &candidates,
                    &[],
                );
                if works[idx].remaining.is_empty() {
                    break;
                }
            }
        }
    }

    /// Run one (architecture, configuration) over a set of `.c` files:
    /// create the configuration, preprocess in groups, scan for tokens,
    /// and certify newly-found tokens by compiling the pristine file.
    ///
    /// `record_tried` lists the files whose reports should note this
    /// target (the patch's own files, not header candidates).
    #[allow(clippy::too_many_arguments)]
    fn run_target(
        &self,
        engine: &mut BuildEngine,
        base: &SourceTree,
        mutated: &SourceTree,
        works: &mut [Work],
        index: &WorkIndex,
        expanded_macros: &mut HashSet<String>,
        target: &Target,
        c_files: &[String],
        record_tried: &[String],
    ) {
        let work_of = |path: &str| -> Option<usize> { index.get(path).copied() };
        let desc = target.describe();
        for path in record_tried {
            if let Some(i) = work_of(path) {
                let w = &mut works[i];
                if !w.targets_tried.contains(&desc) {
                    w.targets_tried.push(desc.clone());
                }
            }
        }
        let cfg = match engine.make_config(&target.arch, &target.kind) {
            Ok(c) => c,
            Err(e) => {
                let gave_up = matches!(e, BuildError::RetriesExhausted { .. });
                for path in record_tried {
                    if let Some(i) = work_of(path) {
                        let w = &mut works[i];
                        let msg = format!("{desc}: {e}");
                        if gave_up && !w.degraded.contains(&msg) {
                            w.degraded.push(msg.clone());
                        }
                        if !w.errors.contains(&msg) {
                            w.errors.push(msg);
                        }
                    }
                }
                return;
            }
        };
        for chunk in c_files.chunks(self.options.group_limit.max(1)) {
            let results = match engine.make_i(&cfg, mutated, chunk) {
                Ok(r) => r,
                Err(e) => {
                    let gave_up = matches!(e, BuildError::RetriesExhausted { .. });
                    for path in record_tried {
                        if let Some(i) = work_of(path) {
                            let w = &mut works[i];
                            let msg = format!("{desc}: {e}");
                            if gave_up && !w.degraded.contains(&msg) {
                                w.degraded.push(msg.clone());
                            }
                            w.errors.push(msg);
                        }
                    }
                    return;
                }
            };
            for (c_path, res) in results {
                let ifile = match res {
                    Ok(f) => f,
                    Err(e) => {
                        if let Some(i) = work_of(&c_path) {
                            let w = &mut works[i];
                            let msg = format!("{desc}: {e}");
                            if !w.errors.contains(&msg) {
                                w.errors.push(msg);
                            }
                        }
                        continue;
                    }
                };
                expanded_macros.extend(ifile.expanded_macros.iter().cloned());
                let found = MutationToken::scan(&ifile.text);
                let new_tokens: Vec<MutationToken> = found
                    .iter()
                    .filter(|t| {
                        index
                            .get(t.file.as_str())
                            .is_some_and(|&i| works[i].remaining.contains(t))
                    })
                    .cloned()
                    .collect();
                if new_tokens.is_empty() {
                    continue;
                }
                // A mutant surfaced: certify by compiling the pristine file
                // (paper §III.D step 4).
                let compiled = {
                    if let Some(i) = work_of(&c_path) {
                        works[i].o_attempts += 1;
                    }
                    engine.make_o(&cfg, base, &c_path)
                };
                match compiled {
                    Ok(()) => {
                        if let Some(i) = work_of(&c_path) {
                            let w = &mut works[i];
                            w.compiled_somewhere = true;
                            if !w.first_success_seen {
                                w.first_success_seen = true;
                                w.full_on_first_success =
                                    w.plan.mutations.iter().all(|t| found.contains(t));
                            }
                        }
                        let mut credited_headers: BTreeSet<String> = BTreeSet::new();
                        for tok in new_tokens {
                            if let Some(i) = work_of(&tok.file) {
                                let w = &mut works[i];
                                if w.remaining.remove(&tok) {
                                    if w.is_header && w.path != c_path {
                                        credited_headers.insert(w.path.clone());
                                    }
                                    w.covered.push((tok, desc.clone()));
                                }
                            }
                        }
                        // One candidate compilation may certify several
                        // header tokens; count it once per header.
                        for h in credited_headers {
                            if let Some(i) = work_of(&h) {
                                works[i].header_candidates_used += 1;
                            }
                        }
                    }
                    Err(e) => {
                        if let Some(i) = work_of(&c_path) {
                            let w = &mut works[i];
                            let msg = format!("{desc}: {e}");
                            if matches!(e, BuildError::RetriesExhausted { .. })
                                && !w.degraded.contains(&msg)
                            {
                                w.degraded.push(msg.clone());
                            }
                            if !w.errors.contains(&msg) {
                                w.errors.push(msg);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Classify leftovers and assemble the reports.
    fn finish(
        &self,
        engine: &mut BuildEngine,
        base: &SourceTree,
        works: Vec<Work>,
        expanded_macros: &HashSet<String>,
    ) -> Vec<FileReport> {
        let mut span = engine.tracer().span(Stage::Classify);
        let before = engine.clock.now_us();
        let reports = self.finish_inner(engine, base, works, expanded_macros);
        span.set_virtual_us(engine.clock.now_us() - before);
        reports
    }

    fn finish_inner(
        &self,
        engine: &mut BuildEngine,
        base: &SourceTree,
        works: Vec<Work>,
        expanded_macros: &HashSet<String>,
    ) -> Vec<FileReport> {
        // Classification environment: the host allyesconfig model when
        // available, else the first architecture that configures at all.
        let class_cfg = engine
            .make_config("x86_64", &ConfigKind::AllYes)
            .ok()
            .or_else(|| {
                ArchSelector::new(base)
                    .arches()
                    .iter()
                    .find_map(|a| engine.make_config(a, &ConfigKind::AllYes).ok())
            });
        // Memoized inside the BuildConfig (and therefore shared across
        // patches through the configuration caches): the lint is
        // O(symbols²) and depends only on the solved model.
        let dead = class_cfg.as_ref().map(|c| c.dead_symbols());

        works
            .into_iter()
            .map(|w| {
                // Borrow the file body straight out of the tree: cloning it
                // here used to copy every changed file once per report.
                let content = base.get(&w.path).unwrap_or_default();
                let map = analyze(content);
                let uncovered: Vec<UncoveredMutation> = w
                    .remaining
                    .iter()
                    .map(|tok| {
                        let reason = match (&class_cfg, &dead) {
                            (Some(cfg), Some(dead)) => {
                                let macro_expanded = if tok.kind == MutationKind::Define {
                                    map.macro_def_at(tok.line)
                                        .is_some_and(|d| expanded_macros.contains(&d.name))
                                } else {
                                    true
                                };
                                classify(
                                    tok,
                                    content,
                                    &cfg.model,
                                    dead,
                                    &cfg.config,
                                    macro_expanded,
                                )
                            }
                            _ => crate::classify::UncoveredReason::Unknown,
                        };
                        UncoveredMutation {
                            token: tok.clone(),
                            reason,
                        }
                    })
                    .collect();
                // "Both branches" is a property of the *patch*: it changed
                // the #if side and the #else side, so no single
                // configuration can certify everything — inspect every
                // mutation, not just the leftover ones.
                let both_branches = {
                    let refs: Vec<&MutationToken> = w.plan.mutations.iter().collect();
                    !w.remaining.is_empty() && detect_both_branches(content, &refs)
                };
                let status = if w.bootstrap {
                    FileStatus::Bootstrap
                } else if w.plan.is_trivial() {
                    FileStatus::CommentOnly
                } else if w.remaining.is_empty() {
                    FileStatus::FullyCovered
                } else if w.covered.is_empty() {
                    if w.targets_tried.is_empty() && !w.is_header {
                        FileStatus::NoViableTarget
                    } else {
                        FileStatus::Uncovered
                    }
                } else {
                    FileStatus::PartiallyCovered
                };
                let all_covered_via = |pred: &dyn Fn(&str) -> bool| {
                    !w.plan.mutations.is_empty()
                        && w.remaining.is_empty()
                        && w.covered.iter().all(|(_, d)| pred(d))
                };
                let mut report = FileReport {
                    path: w.path,
                    is_header: w.is_header,
                    status,
                    mutation_count: w.plan.mutations.len(),
                    full_with_host_allyes: all_covered_via(&|d: &str| d == "x86_64/allyesconfig"),
                    full_with_allyes_only: all_covered_via(&|d: &str| d.ends_with("/allyesconfig")),
                    covered: w.covered,
                    uncovered,
                    targets_tried: w.targets_tried,
                    o_attempts: w.o_attempts,
                    compiled_somewhere: w.compiled_somewhere,
                    full_on_first_success: w.full_on_first_success,
                    header_candidates_used: w.header_candidates_used,
                    header_covered_by_patch_c: w.header_covered_by_patch_c,
                    errors: w.errors,
                    degraded_trials: w.degraded,
                    remediations: Vec::new(),
                };
                if both_branches {
                    for u in &mut report.uncovered {
                        if matches!(
                            u.reason,
                            crate::classify::UncoveredReason::IfndefOrElse
                                | crate::classify::UncoveredReason::IfdefNotSetByAllyesconfig
                        ) {
                            u.reason = crate::classify::UncoveredReason::IfdefAndElse;
                        }
                    }
                }
                report
            })
            .collect()
    }
}

/// Path → work-slot index, built once per patch so the hot trial loop in
/// `run_target` resolves files in O(1) instead of scanning `works`.
type WorkIndex = HashMap<String, usize>;

/// Work-in-progress state for one file of the patch.
#[derive(Debug)]
struct Work {
    path: String,
    is_header: bool,
    bootstrap: bool,
    plan: MutationPlan,
    candidates: Vec<Target>,
    remaining: BTreeSet<MutationToken>,
    covered: Vec<(MutationToken, String)>,
    targets_tried: Vec<String>,
    o_attempts: usize,
    compiled_somewhere: bool,
    first_success_seen: bool,
    full_on_first_success: bool,
    header_candidates_used: usize,
    header_covered_by_patch_c: bool,
    errors: Vec<String>,
    degraded: Vec<String>,
}

/// Candidate `.c` files likely to exercise a changed header, in priority
/// order (paper §III.E): files that both include the header and mention
/// every changed-macro hint first, then all-hints files, then includers.
fn header_candidates(base: &SourceTree, h_path: &str, hints: &[String]) -> Vec<String> {
    let h_name = file_name(h_path);
    let include_needle_a = format!("/{h_name}\"");
    let include_needle_b = format!("/{h_name}>");
    let include_needle_c = format!("\"{h_name}\"");
    let include_needle_d = format!("<{h_name}>");
    // An arch header is only relevant to its own arch or to non-arch code.
    let arch_prefix = h_path
        .strip_prefix("arch/")
        .and_then(|r| r.split('/').next().map(|a| format!("arch/{a}/")));
    let mut tiers: [Vec<String>; 3] = Default::default();
    for (path, content) in base.iter() {
        if !path.ends_with(".c") {
            continue;
        }
        if let Some(prefix) = &arch_prefix {
            if path.starts_with("arch/") && !path.starts_with(prefix) {
                continue;
            }
        }
        let includes = content.lines().any(|l| {
            let t = l.trim_start();
            t.starts_with("#include")
                && (t.contains(&include_needle_a)
                    || t.contains(&include_needle_b)
                    || t.contains(&include_needle_c)
                    || t.contains(&include_needle_d))
        });
        let has_all_hints = !hints.is_empty() && hints.iter().all(|h| content.contains(h.as_str()));
        let tier = match (includes, has_all_hints) {
            (true, true) => 0,
            (false, true) => 1,
            (true, false) => 2,
            (false, false) => continue,
        };
        tiers[tier].push(path.to_string());
    }
    let mut out = Vec::new();
    for tier in tiers {
        out.extend(tier);
    }
    out
}

/// Per-`check_patch` memo for [`header_candidates`]: the scan walks every
/// `.c` file in the tree, so recomputing it for each phase that needs the
/// same `(header, hints)` ranking wastes host time. Keyed by both because
/// ablation options can change the hints mid-study.
#[derive(Debug, Default)]
struct HeaderCandidateMemo {
    entries: HashMap<(String, Vec<String>), Vec<String>>,
}

impl HeaderCandidateMemo {
    fn get_or_compute(&mut self, base: &SourceTree, h_path: &str, hints: &[String]) -> Vec<String> {
        self.entries
            .entry((h_path.to_string(), hints.to_vec()))
            .or_insert_with(|| header_candidates(base, h_path, hints))
            .clone()
    }
}

/// One speculative cache-warming unit: replay the preprocess (`I`, over
/// the mutated tree) or compile (`O`, over the pristine tree) of one
/// (file × arch × config) combination into the shared object cache, off
/// the authoritative critical path. The work-stealing driver expands a
/// patch into these on idle workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmProbe {
    /// The `.c` file to probe.
    pub file: String,
    /// Architecture to probe under.
    pub arch: String,
    /// Configuration kind to probe under (never `Custom` — coverage
    /// configs are synthesized per patch and not worth pre-warming;
    /// portfolio `Rand` members *are* probed, since their seed names the
    /// configuration globally).
    pub kind: ConfigKind,
    /// Preprocess the mutated tree (`I`) or compile the pristine one (`O`).
    pub op: ObjKind,
}

impl JMake {
    /// Expand `patch` into its mutated tree plus the speculative warm
    /// probes an idle worker can run: every (file × arch × config) pair
    /// the authoritative `check_patch` may preprocess or compile, in
    /// roughly the order it would reach them. Pure planning — no engine,
    /// no virtual-clock charge, no trace span. Over-planning is sound
    /// (probes only populate the content-addressed cache); the returned
    /// mutated tree is byte-identical to the one `check_patch` builds, so
    /// probe keys match the authoritative lookups exactly.
    pub fn plan_warm_probes(&self, base: &SourceTree, patch: &Patch) -> (SourceTree, Vec<WarmProbe>) {
        struct PlanEntry {
            path: String,
            is_header: bool,
            candidates: Vec<Target>,
            hints: Vec<String>,
            active: bool,
        }
        let selector = ArchSelector::new(base);
        let bootstrap = bootstrap_files_of(base);
        let mut mutated = base.clone();
        let mut entries: Vec<PlanEntry> = Vec::new();
        for fp in &patch.files {
            if fp.kind != ChangeKind::Modify {
                continue;
            }
            let path = fp.path().to_string();
            let is_header = path.ends_with(".h");
            if !is_header && !path.ends_with(".c") {
                continue;
            }
            if self
                .options
                .skip_dirs
                .iter()
                .any(|d| path.starts_with(&format!("{d}/")))
            {
                continue;
            }
            let Some(content) = base.get(&path) else {
                continue;
            };
            let new_len = content.lines().count() as u32;
            let changed = changed_lines(fp, new_len);
            let plan = if self.options.naive_mutations {
                crate::mutation::mutate_naive(&path, content, &changed)
            } else {
                mutate(&path, content, &changed)
            };
            let boot = bootstrap.contains(&path);
            if !boot {
                mutated.insert(path.clone(), plan.mutated.clone());
            }
            let candidates = if is_header {
                Vec::new()
            } else {
                self.filter_targets(selector.candidates(base, &path))
            };
            let hints = if self.options.use_header_hints {
                plan.changed_macros.clone()
            } else {
                Vec::new()
            };
            entries.push(PlanEntry {
                path,
                is_header,
                candidates,
                hints,
                active: !boot && !plan.is_trivial() && !plan.mutations.is_empty(),
            });
        }

        let mut probes = Vec::new();
        // Interned ids keep the dedup set Copy-cheap: no per-probe String
        // clones just to test membership.
        let mut seen: HashSet<(PathId, ArchId, ConfigKind, ObjKind)> = HashSet::new();
        let mut push = |probes: &mut Vec<WarmProbe>, file: &str, target: &Target, op: ObjKind| {
            if matches!(target.kind, ConfigKind::Custom { .. }) {
                return;
            }
            if seen.insert((
                PathId::intern(file),
                ArchId::intern(&target.arch),
                target.kind.clone(),
                op,
            )) {
                probes.push(WarmProbe {
                    file: file.to_string(),
                    arch: target.arch.clone(),
                    kind: target.kind.clone(),
                    op,
                });
            }
        };

        // Mirror c_phase: global first-seen target order, then each
        // pending file under that target.
        let mut order: Vec<Target> = Vec::new();
        for e in entries.iter().filter(|e| !e.is_header) {
            for t in &e.candidates {
                if !order.contains(t) {
                    order.push(t.clone());
                }
            }
        }
        for target in &order {
            for e in entries
                .iter()
                .filter(|e| !e.is_header && e.active && e.candidates.contains(target))
            {
                push(&mut probes, &e.path, target, ObjKind::I);
                push(&mut probes, &e.path, target, ObjKind::O);
            }
        }

        // Mirror h_phase: candidate .c files per header, targets derived
        // from those candidates (allyesconfig only over the threshold).
        let mut memo = HeaderCandidateMemo::default();
        for e in entries.iter().filter(|e| e.is_header && e.active) {
            let all = memo.get_or_compute(base, &e.path, &e.hints);
            let over_threshold = all.len() > self.options.header_candidate_threshold;
            let candidates: Vec<String> = all
                .into_iter()
                .take(self.options.max_header_candidates)
                .collect();
            let mut order: Vec<Target> = Vec::new();
            for c in &candidates {
                for t in self.filter_targets(selector.candidates(base, c)) {
                    if over_threshold && !matches!(t.kind, ConfigKind::AllYes) {
                        continue;
                    }
                    if !order.contains(&t) {
                        order.push(t);
                    }
                }
            }
            for target in &order {
                for c in &candidates {
                    push(&mut probes, c, target, ObjKind::I);
                    push(&mut probes, c, target, ObjKind::O);
                }
            }
        }
        (mutated, probes)
    }
}

/// Keep `BTreeMap` import meaningful for future per-token bookkeeping.
#[allow(dead_code)]
type TokenOwner = BTreeMap<MutationToken, String>;
