//! Architecture and configuration selection (paper §III.C).
//!
//! For a file under `arch/<a>/`, the cross-compiler for `<a>` is assumed.
//! For any other file the first guess is a plain `make` on the host
//! (CONFIG_COMPILE_TEST exists to make that work for drivers). Further
//! hints come from the configuration variables gating the file's object in
//! its Makefile: if such a variable is mentioned under some `arch/<a>/`,
//! allyesconfig for `<a>` becomes a candidate, and if it appears in a
//! prepared configuration under `arch/<a>/configs/`, one such file (chosen
//! deterministically) is tried too.

use jmake_kbuild::{ArchRegistry, ConfigKind, ObjGraph, SourceTree};
use std::collections::BTreeMap;

/// One (architecture, configuration) pair to try.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Target {
    /// Architecture name.
    pub arch: String,
    /// Configuration to create for it.
    pub kind: ConfigKind,
}

impl Target {
    /// Convenience constructor.
    pub fn new(arch: impl Into<String>, kind: ConfigKind) -> Self {
        Target {
            arch: arch.into(),
            kind,
        }
    }

    /// Short human-readable form (`arm/allyesconfig`).
    pub fn describe(&self) -> String {
        format!("{}/{}", self.arch, self.kind)
    }
}

/// Index over `arch/` built once per tree: which architectures mention
/// each configuration variable, and which defconfig files set it.
#[derive(Debug, Clone, Default)]
pub struct ArchSelector {
    /// var → architectures whose subtree mentions it.
    mentions: BTreeMap<String, Vec<String>>,
    /// var → defconfig paths that set it.
    defconfigs: BTreeMap<String, Vec<String>>,
    /// All arch names present in the tree, sorted host-first.
    arches: Vec<String>,
}

impl ArchSelector {
    /// Scan `tree` and build the index.
    pub fn new(tree: &SourceTree) -> Self {
        let registry = ArchRegistry::new();
        let mut sel = ArchSelector::default();
        let mut arches: Vec<String> = tree
            .paths()
            .filter_map(|p| {
                p.strip_prefix("arch/")
                    .and_then(|r| r.split('/').next())
                    .map(str::to_string)
            })
            .collect();
        arches.sort();
        arches.dedup();
        // Host first, then arm (the paper's observed second-most-useful),
        // then the rest alphabetically.
        arches.sort_by_key(|a| (a != "x86_64", a != "arm", a.clone()));
        sel.arches = arches;

        let _ = registry; // consulted by callers; index is registry-agnostic
        for (path, content) in tree.iter() {
            let Some(rest) = path.strip_prefix("arch/") else {
                continue;
            };
            let Some(arch) = rest.split('/').next() else {
                continue;
            };
            let is_defconfig = rest.strip_prefix(&format!("{arch}/configs/")).is_some();
            for var in config_vars_in(content, path.ends_with("Kconfig")) {
                let arches = sel.mentions.entry(var.clone()).or_default();
                if !arches.contains(&arch.to_string()) {
                    arches.push(arch.to_string());
                }
                if is_defconfig {
                    let paths = sel.defconfigs.entry(var).or_default();
                    if !paths.contains(&path.to_string()) {
                        paths.push(path.to_string());
                    }
                }
            }
        }
        sel
    }

    /// The candidate targets for `file`, in trial order.
    pub fn candidates(&self, tree: &SourceTree, file: &str) -> Vec<Target> {
        let mut out: Vec<Target> = Vec::new();
        let push = |t: Target, out: &mut Vec<Target>| {
            if !out.contains(&t) {
                out.push(t);
            }
        };

        if let Some(rest) = file.strip_prefix("arch/") {
            // A file under arch/<a> is assumed compilable for <a>.
            if let Some(arch) = rest.split('/').next() {
                push(Target::new(arch, ConfigKind::AllYes), &mut out);
            }
            return out;
        }
        // First guess: a simple make on the host.
        push(Target::new("x86_64", ConfigKind::AllYes), &mut out);

        let vars = ObjGraph::new(tree).gating_configs(file);
        for var in &vars {
            if let Some(arches) = self.mentions.get(var) {
                let mut sorted = arches.clone();
                sorted.sort_by_key(|a| (a != "x86_64", a != "arm", a.clone()));
                for arch in sorted {
                    push(Target::new(arch, ConfigKind::AllYes), &mut out);
                }
            }
        }
        // Prepared configurations: one per variable, picked
        // deterministically (the paper picks at random).
        for var in &vars {
            if let Some(paths) = self.defconfigs.get(var) {
                let pick = &paths[stable_index(var, paths.len())];
                if let Some(arch) = pick.strip_prefix("arch/").and_then(|r| r.split('/').next()) {
                    push(
                        Target::new(arch, ConfigKind::Defconfig(pick.clone())),
                        &mut out,
                    );
                }
            }
        }
        out
    }

    /// All architectures present in the tree, host-first.
    pub fn arches(&self) -> &[String] {
        &self.arches
    }
}

/// Deterministic stand-in for the paper's random defconfig choice.
fn stable_index(key: &str, len: usize) -> usize {
    let h: u64 = key.bytes().fold(0xcbf29ce484222325u64, |a, b| {
        (a ^ u64::from(b)).wrapping_mul(0x100000001b3)
    });
    (h % len as u64) as usize
}

/// Configuration variables referenced in a file: `CONFIG_X` tokens, plus
/// bare `config X` declarations in Kconfig files.
fn config_vars_in(content: &str, is_kconfig: bool) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = content;
    while let Some(i) = rest.find("CONFIG_") {
        let tail = &rest[i + "CONFIG_".len()..];
        let end = tail
            .find(|c: char| c != '_' && !c.is_ascii_alphanumeric())
            .unwrap_or(tail.len());
        if end > 0 && !out.contains(&tail[..end].to_string()) {
            out.push(tail[..end].to_string());
        }
        rest = &tail[end..];
    }
    if is_kconfig {
        for line in content.lines() {
            let t = line.trim();
            if let Some(name) = t
                .strip_prefix("config ")
                .or_else(|| t.strip_prefix("menuconfig "))
            {
                let name = name.trim();
                if !name.is_empty()
                    && name.chars().all(|c| c == '_' || c.is_ascii_alphanumeric())
                    && !out.contains(&name.to_string())
                {
                    out.push(name.to_string());
                }
            }
            // Dependencies referenced in arch Kconfig count as mentions.
            if let Some(expr) = t
                .strip_prefix("depends on ")
                .or_else(|| t.strip_prefix("select "))
            {
                for word in expr.split(|c: char| !(c == '_' || c.is_ascii_alphanumeric())) {
                    if !word.is_empty()
                        && word.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                        && !out.contains(&word.to_string())
                    {
                        out.push(word.to_string());
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> SourceTree {
        let mut t = SourceTree::new();
        t.insert("Makefile", "obj-y += drivers/\n");
        t.insert("arch/x86_64/Kconfig", "config X86_64\n\tdef_bool y\n");
        t.insert(
            "arch/arm/Kconfig",
            "config ARM\n\tdef_bool y\nconfig ARM_AMBA\n\tbool \"amba\"\n",
        );
        t.insert(
            "arch/arm/configs/multi_defconfig",
            "CONFIG_ARM_AMBA=y\nCONFIG_PL330_DMA=y\n",
        );
        t.insert(
            "arch/powerpc/Kconfig",
            "config PPC\n\tdef_bool y\nconfig PPC_PSERIES\n\tbool \"pseries\"\n",
        );
        t.insert("drivers/Makefile", "obj-y += dma/ generic/\n");
        t.insert(
            "drivers/dma/Makefile",
            "obj-$(CONFIG_PL330_DMA) += pl330.o\n",
        );
        t.insert("drivers/dma/pl330.c", "int pl330;\n");
        t.insert("arch/arm/kernel/setup.c", "int setup;\n");
        t.insert(
            "drivers/generic/Makefile",
            "obj-$(CONFIG_GENERIC_DRV) += gen.o\n",
        );
        t.insert("drivers/generic/gen.c", "int gen;\n");
        // ARM subtree mentions CONFIG_PL330_DMA (a board file).
        t.insert(
            "arch/arm/mach-foo/board.c",
            "#ifdef CONFIG_PL330_DMA\nint uses_pl330;\n#endif\n",
        );
        t
    }

    #[test]
    fn arch_file_targets_its_own_arch_only() {
        let t = tree();
        let sel = ArchSelector::new(&t);
        let c = sel.candidates(&t, "arch/arm/kernel/setup.c");
        assert_eq!(c, vec![Target::new("arm", ConfigKind::AllYes)]);
    }

    #[test]
    fn host_is_always_first_for_non_arch_files() {
        let t = tree();
        let sel = ArchSelector::new(&t);
        let c = sel.candidates(&t, "drivers/generic/gen.c");
        assert_eq!(c[0], Target::new("x86_64", ConfigKind::AllYes));
    }

    #[test]
    fn makefile_var_mentioned_in_arch_adds_candidate() {
        let t = tree();
        let sel = ArchSelector::new(&t);
        let c = sel.candidates(&t, "drivers/dma/pl330.c");
        assert!(c.contains(&Target::new("arm", ConfigKind::AllYes)), "{c:?}");
        // And the defconfig that sets the variable.
        assert!(
            c.contains(&Target::new(
                "arm",
                ConfigKind::Defconfig("arch/arm/configs/multi_defconfig".to_string())
            )),
            "{c:?}"
        );
        // powerpc never mentions PL330: not a candidate.
        assert!(!c.iter().any(|t| t.arch == "powerpc"));
    }

    #[test]
    fn arches_sorted_host_then_arm() {
        let t = tree();
        let sel = ArchSelector::new(&t);
        assert_eq!(sel.arches()[0], "x86_64");
        assert_eq!(sel.arches()[1], "arm");
    }

    #[test]
    fn kconfig_declarations_count_as_mentions() {
        let t = tree();
        let sel = ArchSelector::new(&t);
        // ARM_AMBA is declared in arch/arm/Kconfig.
        assert!(sel
            .mentions
            .get("ARM_AMBA")
            .is_some_and(|a| a.contains(&"arm".to_string())));
        // And set in the arm defconfig.
        assert!(sel.defconfigs.contains_key("ARM_AMBA"));
    }

    #[test]
    fn candidates_are_deduplicated() {
        let t = tree();
        let sel = ArchSelector::new(&t);
        let c = sel.candidates(&t, "drivers/dma/pl330.c");
        let mut seen = std::collections::BTreeSet::new();
        for target in &c {
            assert!(seen.insert(target.describe()), "duplicate {target:?}");
        }
    }

    #[test]
    fn stable_index_is_deterministic_and_in_range() {
        for len in 1..10 {
            let a = stable_index("CONFIG_FOO", len);
            assert_eq!(a, stable_index("CONFIG_FOO", len));
            assert!(a < len);
        }
    }
}
