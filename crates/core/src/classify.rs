//! Why a changed line escaped the compiler (paper Table IV).
//!
//! When JMake reports that a mutation never surfaced in any `.i` file for
//! any successfully-compiled configuration, this module inspects the
//! source context of the mutation site and assigns one of the paper's
//! seven reasons.

use crate::token::{MutationKind, MutationToken};
use jmake_cpp::lines::logical_lines;
use jmake_kconfig::{DeadSymbols, KconfigModel};
use std::fmt;

/// The reason categories of paper Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UncoveredReason {
    /// Guarded by `#ifdef CONFIG_X` where X exists but allyesconfig does
    /// not set it (e.g. it conflicts with another y symbol).
    IfdefNotSetByAllyesconfig,
    /// Guarded by a variable never settable anywhere in the kernel
    /// (undeclared, or declared with unsatisfiable dependencies).
    IfdefNeverSetInKernel,
    /// Guarded by `#ifdef MODULE`; allyesconfig builds everything in, so
    /// MODULE is never defined (allmodconfig would recover these).
    IfdefModule,
    /// Under `#ifndef X` or in the `#else` of a satisfied guard —
    /// allyesconfig sets variables to *yes*, so these branches lose.
    IfndefOrElse,
    /// The patch changes both the `#ifdef` branch and the matching
    /// `#else` branch: no single configuration can cover both.
    IfdefAndElse,
    /// Inside `#if 0`.
    IfZero,
    /// The change is in a macro definition that no configuration expands.
    UnusedMacro,
    /// None of the above patterns matched (not a Table IV row; kept so the
    /// classifier is total).
    Unknown,
}

impl fmt::Display for UncoveredReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UncoveredReason::IfdefNotSetByAllyesconfig => {
                "change under #ifdef variable not set by allyesconfig"
            }
            UncoveredReason::IfdefNeverSetInKernel => {
                "change under #ifdef variable never set in the kernel"
            }
            UncoveredReason::IfdefModule => "change under #ifdef MODULE",
            UncoveredReason::IfndefOrElse => "change under #ifndef or #else",
            UncoveredReason::IfdefAndElse => "change under both #ifdef and #else",
            UncoveredReason::IfZero => "change under #if 0",
            UncoveredReason::UnusedMacro => "change in unused macro",
            UncoveredReason::Unknown => "unclassified",
        };
        f.write_str(s)
    }
}

/// One stack frame of the conditional context around a line.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Guard {
    If(String),
    Ifdef(String),
    Ifndef(String),
    /// `#else`/`#elif` of a group whose opening guard is recorded.
    Else(Box<Guard>),
}

/// Classify one uncovered mutation within `content`.
///
/// `model` and `dead` come from the allyesconfig attempt's Kconfig model;
/// `all_sections_changed` should be true when the same patch also changed
/// the matching `#else`/`#if` counterpart (detected by the caller across
/// mutations); `macro_was_expanded` reports whether the mutated macro's
/// name ever appeared among expanded macros in any attempted `.i`.
pub fn classify(
    token: &MutationToken,
    content: &str,
    model: &KconfigModel,
    dead: &DeadSymbols,
    allyes: &jmake_kconfig::Config,
    macro_was_expanded: bool,
) -> UncoveredReason {
    if token.kind == MutationKind::Define && !macro_was_expanded {
        return UncoveredReason::UnusedMacro;
    }
    let stack = guard_stack(content, token.line);
    // Inspect innermost-outward; the innermost decisive guard wins.
    for guard in stack.iter().rev() {
        match guard {
            Guard::If(expr) => {
                let e = expr.trim();
                if e == "0" {
                    return UncoveredReason::IfZero;
                }
                if let Some(var) = single_defined_var(e) {
                    return classify_var(&var, model, dead, allyes);
                }
                if e.starts_with('!') {
                    return UncoveredReason::IfndefOrElse;
                }
            }
            Guard::Ifdef(var) => {
                if var == "MODULE" {
                    return UncoveredReason::IfdefModule;
                }
                return classify_var(var, model, dead, allyes);
            }
            Guard::Ifndef(_) => return UncoveredReason::IfndefOrElse,
            Guard::Else(opening) => {
                // In the else of an #ifdef that allyesconfig satisfies.
                match &**opening {
                    Guard::Ifndef(_) => {
                        // else-of-ifndef is the positively-guarded branch;
                        // keep looking outward.
                    }
                    _ => return UncoveredReason::IfndefOrElse,
                }
            }
        }
    }
    UncoveredReason::Unknown
}

/// Upgrade a pair of reasons when a patch changed both branches of the
/// same conditional (paper Table IV row 5).
pub fn detect_both_branches(content: &str, tokens: &[&MutationToken]) -> bool {
    // Two uncovered mutations whose guard stacks are the if- and else-
    // sides of the same group: compare group indices.
    let mut sides = std::collections::BTreeSet::new();
    for t in tokens {
        if let Some((group, is_else)) = group_of(content, t.line) {
            sides.insert((group, is_else));
        }
    }
    let groups: std::collections::BTreeSet<u32> = sides.iter().map(|(g, _)| *g).collect();
    groups
        .iter()
        .any(|g| sides.contains(&(*g, false)) && sides.contains(&(*g, true)))
}

fn classify_var(
    var: &str,
    model: &KconfigModel,
    dead: &DeadSymbols,
    allyes: &jmake_kconfig::Config,
) -> UncoveredReason {
    let name = var.strip_prefix("CONFIG_").unwrap_or(var);
    if dead.is_dead(model, name) {
        return UncoveredReason::IfdefNeverSetInKernel;
    }
    if !allyes.is_builtin(name) {
        return UncoveredReason::IfdefNotSetByAllyesconfig;
    }
    UncoveredReason::Unknown
}

/// `#if defined(X)` / `#if defined X` with nothing else → the variable.
fn single_defined_var(expr: &str) -> Option<String> {
    let e = expr.trim();
    let inner = e.strip_prefix("defined")?.trim();
    let inner = inner
        .strip_prefix('(')
        .and_then(|i| i.strip_suffix(')'))
        .unwrap_or(inner)
        .trim();
    if !inner.is_empty() && inner.chars().all(|c| c == '_' || c.is_ascii_alphanumeric()) {
        Some(inner.to_string())
    } else {
        None
    }
}

/// The conditional guard stack enclosing 1-based `line`.
fn guard_stack(content: &str, line: u32) -> Vec<Guard> {
    let mut stack: Vec<Guard> = Vec::new();
    for ll in logical_lines(content) {
        if ll.first_line > line {
            break;
        }
        let Some((name, rest)) = ll.directive() else {
            continue;
        };
        match name {
            "if" => stack.push(Guard::If(rest.to_string())),
            "ifdef" => stack.push(Guard::Ifdef(first_word(rest))),
            "ifndef" => stack.push(Guard::Ifndef(first_word(rest))),
            "elif" | "else" => {
                if let Some(top) = stack.pop() {
                    let opening = match top {
                        Guard::Else(inner) => inner,
                        other => Box::new(other),
                    };
                    stack.push(Guard::Else(opening));
                }
            }
            "endif" => {
                stack.pop();
            }
            _ => {}
        }
    }
    stack
}

/// Conditional group id and branch side (false = if-side, true = else-side)
/// containing `line`, if any (innermost).
fn group_of(content: &str, line: u32) -> Option<(u32, bool)> {
    let mut stack: Vec<(u32, bool)> = Vec::new();
    let mut next_group = 0u32;
    for ll in logical_lines(content) {
        if ll.first_line > line {
            break;
        }
        let Some((name, _)) = ll.directive() else {
            continue;
        };
        match name {
            "if" | "ifdef" | "ifndef" => {
                stack.push((next_group, false));
                next_group += 1;
            }
            "elif" | "else" => {
                if let Some(top) = stack.last_mut() {
                    top.1 = true;
                }
            }
            "endif" => {
                stack.pop();
            }
            _ => {}
        }
    }
    stack.last().copied()
}

fn first_word(s: &str) -> String {
    s.split_whitespace().next().unwrap_or("").to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::MutationKind;

    fn setup(kconfig: &str) -> (KconfigModel, DeadSymbols, jmake_kconfig::Config) {
        let mut model = KconfigModel::new();
        model.parse_str("Kconfig", kconfig).unwrap();
        let dead = DeadSymbols::compute(&model);
        let allyes = model.allyesconfig();
        (model, dead, allyes)
    }

    fn ctx(file_line: u32) -> MutationToken {
        MutationToken::new(MutationKind::Context, "f.c", file_line)
    }

    #[test]
    fn if_zero_detected() {
        let (m, d, a) = setup("");
        let src = "#if 0\nint dead;\n#endif\n";
        assert_eq!(
            classify(&ctx(2), src, &m, &d, &a, true),
            UncoveredReason::IfZero
        );
    }

    #[test]
    fn module_guard_detected() {
        let (m, d, a) = setup("");
        let src = "#ifdef MODULE\nint mod_only;\n#endif\n";
        assert_eq!(
            classify(&ctx(2), src, &m, &d, &a, true),
            UncoveredReason::IfdefModule
        );
    }

    #[test]
    fn never_set_vs_not_set_by_allyesconfig() {
        // TINY depends on !FULL: settable but not by allyesconfig.
        // GHOST is undeclared: never settable.
        let (m, d, a) =
            setup("config FULL\n\tbool \"f\"\nconfig TINY\n\tbool \"t\"\n\tdepends on !FULL\n");
        let tiny = "#ifdef CONFIG_TINY\nint t;\n#endif\n";
        assert_eq!(
            classify(&ctx(2), tiny, &m, &d, &a, true),
            UncoveredReason::IfdefNotSetByAllyesconfig
        );
        let ghost = "#ifdef CONFIG_GHOST\nint g;\n#endif\n";
        assert_eq!(
            classify(&ctx(2), ghost, &m, &d, &a, true),
            UncoveredReason::IfdefNeverSetInKernel
        );
    }

    #[test]
    fn ifndef_and_else_detected() {
        let (m, d, a) = setup("config NET\n\tbool \"n\"\n");
        let ifndef = "#ifndef CONFIG_NET\nint fallback;\n#endif\n";
        assert_eq!(
            classify(&ctx(2), ifndef, &m, &d, &a, true),
            UncoveredReason::IfndefOrElse
        );
        let else_side = "#ifdef CONFIG_NET\nint with;\n#else\nint without;\n#endif\n";
        assert_eq!(
            classify(&ctx(4), else_side, &m, &d, &a, true),
            UncoveredReason::IfndefOrElse
        );
    }

    #[test]
    fn else_of_ifndef_looks_outward() {
        let (m, d, a) = setup("");
        // The else of an ifndef is the "defined" branch — covered when the
        // guard is defined; classification should not blame it.
        let src = "#ifndef GUARD\nint a;\n#else\nint b;\n#endif\n";
        assert_eq!(
            classify(&ctx(4), src, &m, &d, &a, true),
            UncoveredReason::Unknown
        );
    }

    #[test]
    fn defined_expression_form() {
        let (m, d, a) = setup("");
        let src = "#if defined(CONFIG_NOPE)\nint x;\n#endif\n";
        assert_eq!(
            classify(&ctx(2), src, &m, &d, &a, true),
            UncoveredReason::IfdefNeverSetInKernel
        );
    }

    #[test]
    fn unused_macro_detected() {
        let (m, d, a) = setup("");
        let tok = MutationToken::new(MutationKind::Define, "f.c", 1);
        let src = "#define NEVER_USED(x) ((x) + 1)\n";
        assert_eq!(
            classify(&tok, src, &m, &d, &a, false),
            UncoveredReason::UnusedMacro
        );
        // But an expanded macro with a live guard is not "unused".
        assert_ne!(
            classify(&tok, src, &m, &d, &a, true),
            UncoveredReason::UnusedMacro
        );
    }

    #[test]
    fn nested_guards_use_innermost() {
        let (m, d, a) = setup("config NET\n\tbool \"n\"\n");
        let src = "#ifdef CONFIG_NET\n#if 0\nint x;\n#endif\n#endif\n";
        assert_eq!(
            classify(&ctx(3), src, &m, &d, &a, true),
            UncoveredReason::IfZero
        );
    }

    #[test]
    fn both_branches_detection() {
        let src = "#ifdef A\nint a;\n#else\nint b;\n#endif\nint c;\n";
        let t1 = ctx(2);
        let t2 = ctx(4);
        let t3 = ctx(6);
        assert!(detect_both_branches(src, &[&t1, &t2]));
        assert!(!detect_both_branches(src, &[&t1, &t3]));
        assert!(!detect_both_branches(src, &[&t2]));
    }

    #[test]
    fn endif_pops_correctly() {
        let (m, d, a) = setup("");
        let src = "#ifdef MODULE\nint m;\n#endif\nint after;\n";
        assert_eq!(
            classify(&ctx(4), src, &m, &d, &a, true),
            UncoveredReason::Unknown
        );
    }
}
