//! The mutation token (paper §III.A).
//!
//! JMake mutates source by inserting `≡"kind:file:line"` at change sites.
//! The glyph `≡` is not valid C, so a mutated file can never produce a
//! `.o`; the payload is wrapped in a string literal so the preprocessor
//! passes it through unmodified — including through macro expansion at the
//! macro's *use* sites, which is what makes macro-definition changes
//! trackable.

use std::fmt;

/// The invalid character marking a mutation. Matches the paper's figures.
pub const MUTATION_GLYPH: char = '\u{2261}';

/// What kind of change site a token marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MutationKind {
    /// The change is inside a macro definition (paper Fig. 2).
    Define,
    /// Any other (non-comment) change (paper Fig. 3).
    Context,
}

impl MutationKind {
    fn as_str(self) -> &'static str {
        match self {
            MutationKind::Define => "define",
            MutationKind::Context => "context",
        }
    }

    fn parse(s: &str) -> Option<MutationKind> {
        match s {
            "define" => Some(MutationKind::Define),
            "context" => Some(MutationKind::Context),
            _ => None,
        }
    }
}

/// One mutation token: a unique, recognizable marker for one change site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MutationToken {
    /// Change-site kind.
    pub kind: MutationKind,
    /// Source file the mutation was placed in.
    pub file: String,
    /// 1-based line of the changed code the token certifies.
    pub line: u32,
}

impl MutationToken {
    /// Construct a token.
    pub fn new(kind: MutationKind, file: impl Into<String>, line: u32) -> Self {
        MutationToken {
            kind,
            file: file.into(),
            line,
        }
    }

    /// The exact text inserted into the source:
    /// `≡"kind:file:line"`.
    pub fn render(&self) -> String {
        format!(
            "{MUTATION_GLYPH}\"{}:{}:{}\"",
            self.kind.as_str(),
            self.file,
            self.line
        )
    }

    /// Parse a token from the payload between the quotes.
    fn from_payload(payload: &str) -> Option<MutationToken> {
        // file may contain ':' only if someone names files that way; the
        // last segment is the line, the first the kind.
        let (kind_str, rest) = payload.split_once(':')?;
        let (file, line_str) = rest.rsplit_once(':')?;
        Some(MutationToken {
            kind: MutationKind::parse(kind_str)?,
            file: file.to_string(),
            line: line_str.parse().ok()?,
        })
    }

    /// Scan arbitrary text (a `.i` file) for every mutation token present.
    pub fn scan(text: &str) -> Vec<MutationToken> {
        let mut out = Vec::new();
        let mut rest = text;
        while let Some(i) = rest.find(MUTATION_GLYPH) {
            rest = &rest[i + MUTATION_GLYPH.len_utf8()..];
            let Some(quoted) = rest.strip_prefix('"') else {
                continue;
            };
            let Some(end) = quoted.find('"') else {
                continue;
            };
            if let Some(tok) = MutationToken::from_payload(&quoted[..end]) {
                out.push(tok);
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

impl fmt::Display for MutationToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_paper_format() {
        let t = MutationToken::new(
            MutationKind::Define,
            "drivers/staging/comedi/drivers/cb_das16_cs.c",
            49,
        );
        assert_eq!(
            t.render(),
            "\u{2261}\"define:drivers/staging/comedi/drivers/cb_das16_cs.c:49\""
        );
    }

    #[test]
    fn scan_finds_tokens_in_i_text() {
        let i_text = format!(
            "# 1 \"f.c\"\nint x;\n{}\nsome code {} more\n",
            MutationToken::new(MutationKind::Context, "f.c", 12).render(),
            MutationToken::new(MutationKind::Define, "g.h", 3).render(),
        );
        let found = MutationToken::scan(&i_text);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].kind, MutationKind::Define);
        assert_eq!(found[0].file, "g.h");
        assert_eq!(found[1].line, 12);
    }

    #[test]
    fn scan_deduplicates_macro_expansions() {
        // A macro mutation shows up at every use site; one token suffices.
        let tok = MutationToken::new(MutationKind::Define, "f.c", 49).render();
        let text = format!("{tok} a\n{tok} b\n{tok} c\n");
        assert_eq!(MutationToken::scan(&text).len(), 1);
    }

    #[test]
    fn scan_ignores_malformed_markers() {
        let text = "\u{2261}no quote\n\u{2261}\"unterminated\n\u{2261}\"badkind:f:1\"\n\u{2261}\"context:f:notanumber\"\n";
        assert!(MutationToken::scan(text).is_empty());
    }

    #[test]
    fn roundtrip_through_scan() {
        let t = MutationToken::new(MutationKind::Context, "a/b/c.h", 4096);
        let found = MutationToken::scan(&t.render());
        assert_eq!(found, vec![t]);
    }
}
