//! End-to-end tests of the JMake pipeline over a handcrafted mini kernel.

use crate::check::{JMake, Options};
use crate::classify::UncoveredReason;
use crate::report::{FileStatus, PatchReport};
use jmake_diff::{diff_to_patch, DiffOptions, Patch};
use jmake_kbuild::{BuildEngine, SourceTree};

/// A miniature kernel: two arches, networking driver, arm-only driver,
/// module-y driver, headers, pathological conditionals.
fn mini_kernel() -> SourceTree {
    let mut t = SourceTree::new();
    t.insert(
        "Kconfig",
        "config NET\n\tbool \"net\"\n\nconfig E1000\n\ttristate \"e1000\"\n\tdepends on NET\n\nconfig TINY\n\tbool \"tiny\"\n\tdepends on !NET\n\nconfig PL330\n\tbool \"pl330\"\n\tdepends on ARM\n",
    );
    t.insert("arch/x86_64/Kconfig", "config X86_64\n\tdef_bool y\n");
    t.insert("arch/arm/Kconfig", "config ARM\n\tdef_bool y\n");
    t.insert(
        "arch/arm/configs/multi_defconfig",
        "CONFIG_NET=y\nCONFIG_PL330=y\n",
    );
    t.insert("Makefile", "obj-y += drivers/ kernel/\n");
    t.insert("drivers/Makefile", "obj-y += net/ dma/\n");
    t.insert(
        "drivers/net/Makefile",
        "obj-$(CONFIG_E1000) += e1000.o\nobj-y += core.o\n",
    );
    t.insert(
        "drivers/net/e1000.c",
        "#include <linux/hw.h>\nint e1000_up(void)\n{\nreturn HW_REG(3);\n}\n",
    );
    t.insert(
        "drivers/net/core.c",
        "#include <linux/hw.h>\nint net_core(void)\n{\nreturn HW_REG(1) + 1;\n}\n",
    );
    t.insert("drivers/dma/Makefile", "obj-$(CONFIG_PL330) += pl330.o\n");
    t.insert(
        "drivers/dma/pl330.c",
        "#include <asm/dma.h>\nint pl330_probe(void)\n{\nreturn DMA_BASE;\n}\n",
    );
    t.insert("kernel/Makefile", "obj-y += sched.o\n");
    t.insert("kernel/sched.c", "int sched_tick(void)\n{\nreturn 0;\n}\n");
    t.insert("kernel/bounds.c", "int bounds;\n");
    t.insert(
        "include/linux/hw.h",
        "#ifndef _HW_H\n#define _HW_H\n#define HW_REG(n) ((n) << 2)\n#endif\n",
    );
    t.insert("arch/arm/include/asm/dma.h", "#define DMA_BASE 0x4000\n");
    // ARM subtree mentions CONFIG_PL330 so the arch heuristic finds it.
    t.insert(
        "arch/arm/mach/board.c",
        "#ifdef CONFIG_PL330\nint board_uses_pl330;\n#endif\n",
    );
    t.insert("arch/arm/mach/Makefile", "obj-y += board.o\n");
    t
}

/// Apply an edit to one file of the tree and return (tree, patch).
fn edit(mut tree: SourceTree, path: &str, new_content: &str) -> (SourceTree, Patch) {
    let old = tree.get(path).expect("file exists").to_string();
    let patch = diff_to_patch(path, &old, new_content, &DiffOptions::default());
    tree.insert(path, new_content);
    (tree, patch)
}

fn check(tree: SourceTree, patch: &Patch) -> PatchReport {
    let mut engine = BuildEngine::new(tree);
    JMake::new().check_patch(&mut engine, patch, "test author")
}

#[test]
fn simple_host_buildable_change_is_fully_covered() {
    let (tree, patch) = edit(
        mini_kernel(),
        "kernel/sched.c",
        "int sched_tick(void)\n{\nreturn 42;\n}\n",
    );
    let report = check(tree, &patch);
    assert!(report.is_success(), "{report}");
    let f = &report.files[0];
    assert_eq!(f.status, FileStatus::FullyCovered);
    assert!(f.full_with_host_allyes);
    assert!(f.full_on_first_success);
    assert_eq!(f.mutation_count, 1);
    assert_eq!(report.o_invocations, 1);
}

#[test]
fn comment_only_change_needs_no_compilation() {
    let (tree, patch) = edit(
        mini_kernel(),
        "kernel/sched.c",
        "/* better docs */\nint sched_tick(void)\n{\nreturn 0;\n}\n",
    );
    let report = check(tree, &patch);
    assert!(report.is_success());
    assert_eq!(report.files[0].status, FileStatus::CommentOnly);
    assert_eq!(report.o_invocations, 0);
}

#[test]
fn arm_only_driver_needs_arm_and_gets_it() {
    let (tree, patch) = edit(
        mini_kernel(),
        "drivers/dma/pl330.c",
        "#include <asm/dma.h>\nint pl330_probe(void)\n{\nreturn DMA_BASE + 1;\n}\n",
    );
    let report = check(tree, &patch);
    assert!(report.is_success(), "{report}");
    let f = &report.files[0];
    assert!(!f.full_with_host_allyes);
    assert!(
        f.covered.iter().all(|(_, d)| d.starts_with("arm/")),
        "{:?}",
        f.covered
    );
    // The host was tried first and failed (missing asm header / not enabled).
    assert_eq!(f.targets_tried[0], "x86_64/allyesconfig");
}

#[test]
fn change_under_unset_config_is_reported_with_reason() {
    // TINY depends on !NET: allyesconfig can never build it.
    let (tree, patch) = edit(
        mini_kernel(),
        "kernel/sched.c",
        "#ifdef CONFIG_TINY\nint tiny_path;\n#endif\nint sched_tick(void)\n{\nreturn 0;\n}\n",
    );
    let report = check(tree, &patch);
    assert!(!report.is_success());
    let f = &report.files[0];
    assert!(matches!(
        f.status,
        FileStatus::PartiallyCovered | FileStatus::Uncovered
    ));
    assert_eq!(
        f.uncovered[0].reason,
        UncoveredReason::IfdefNotSetByAllyesconfig
    );
}

#[test]
fn change_under_undeclared_config_is_never_set() {
    let (tree, patch) = edit(
        mini_kernel(),
        "kernel/sched.c",
        "#ifdef CONFIG_DOES_NOT_EXIST\nint ghost;\n#endif\nint sched_tick(void)\n{\nreturn 0;\n}\n",
    );
    let report = check(tree, &patch);
    let f = &report.files[0];
    assert_eq!(
        f.uncovered[0].reason,
        UncoveredReason::IfdefNeverSetInKernel
    );
}

#[test]
fn change_under_if_zero() {
    let (tree, patch) = edit(
        mini_kernel(),
        "kernel/sched.c",
        "#if 0\nint debug_only;\n#endif\nint sched_tick(void)\n{\nreturn 0;\n}\n",
    );
    let report = check(tree, &patch);
    assert_eq!(report.files[0].uncovered[0].reason, UncoveredReason::IfZero);
}

#[test]
fn change_under_module_guard_and_allmod_rescue() {
    let new = "#ifdef MODULE\nint module_exit_path;\n#endif\nint e1000_up(void)\n{\nreturn 0;\n}\n";
    let (tree, patch) = edit(mini_kernel(), "drivers/net/e1000.c", new);
    // Default (allyesconfig only): the MODULE branch is dead.
    let report = check(tree.clone(), &patch);
    let f = &report.files[0];
    assert_eq!(f.uncovered[0].reason, UncoveredReason::IfdefModule);

    // With the paper's proposed allmodconfig extension, E1000 is built as
    // a module, MODULE is defined, and the line is certified.
    let mut engine = BuildEngine::new(tree);
    let jmake = JMake::with_options(Options {
        use_allmodconfig: true,
        ..Options::default()
    });
    let report2 = jmake.check_patch(&mut engine, &patch, "test author");
    assert!(report2.is_success(), "{report2}");
}

#[test]
fn unused_macro_change_detected() {
    let (tree, patch) = edit(
        mini_kernel(),
        "kernel/sched.c",
        "#define SCHED_UNUSED_HELPER(x) ((x) * 3)\nint sched_tick(void)\n{\nreturn 0;\n}\n",
    );
    let report = check(tree, &patch);
    let f = &report.files[0];
    assert!(!report.is_success());
    assert_eq!(f.uncovered[0].reason, UncoveredReason::UnusedMacro);
}

#[test]
fn used_macro_change_is_covered_via_use_site() {
    let (tree, patch) = edit(
        mini_kernel(),
        "include/linux/hw.h",
        "#ifndef _HW_H\n#define _HW_H\n#define HW_REG(n) ((n) << 3)\n#endif\n",
    );
    let report = check(tree, &patch);
    assert!(report.is_success(), "{report}");
    let f = &report.files[0];
    assert!(f.is_header);
    assert_eq!(f.status, FileStatus::FullyCovered);
    // No .c file of the patch exists; candidates were needed.
    assert!(!f.header_covered_by_patch_c);
    assert!(f.header_candidates_used >= 1);
}

#[test]
fn header_credited_during_c_phase_when_patch_touches_both() {
    let mut tree = mini_kernel();
    let old_h = tree.get("include/linux/hw.h").unwrap().to_string();
    let new_h = "#ifndef _HW_H\n#define _HW_H\n#define HW_REG(n) ((n) << 4)\n#endif\n";
    let old_c = tree.get("drivers/net/core.c").unwrap().to_string();
    let new_c = "#include <linux/hw.h>\nint net_core(void)\n{\nreturn HW_REG(2) + 1;\n}\n";
    let mut patch = diff_to_patch("include/linux/hw.h", &old_h, new_h, &DiffOptions::default());
    patch.extend(diff_to_patch("drivers/net/core.c", &old_c, new_c, &DiffOptions::default()).files);
    tree.insert("include/linux/hw.h", new_h);
    tree.insert("drivers/net/core.c", new_c);
    let report = check(tree, &patch);
    assert!(report.is_success(), "{report}");
    let h = report.files.iter().find(|f| f.is_header).unwrap();
    assert!(h.header_covered_by_patch_c, "{report}");
}

#[test]
fn bootstrap_file_cannot_be_checked() {
    let (tree, patch) = edit(mini_kernel(), "kernel/bounds.c", "int bounds = 1;\n");
    let report = check(tree, &patch);
    assert_eq!(report.files[0].status, FileStatus::Bootstrap);
    assert!(report.touches_bootstrap());
    assert!(!report.is_success());
}

#[test]
fn multi_file_patch_groups_compilations() {
    let mut tree = mini_kernel();
    let mut patch = Patch::new();
    for path in [
        "drivers/net/e1000.c",
        "drivers/net/core.c",
        "kernel/sched.c",
    ] {
        let old = tree.get(path).unwrap().to_string();
        let new = old.replace("return", "return 1 +");
        patch.extend(diff_to_patch(path, &old, &new, &DiffOptions::default()).files);
        tree.insert(path, new);
    }
    let report = check(tree, &patch);
    assert!(report.is_success(), "{report}");
    assert_eq!(report.files.len(), 3);
    // One grouped .i invocation covers all three on the host.
    assert_eq!(report.i_invocations, 1);
    assert_eq!(report.o_invocations, 3);
}

#[test]
fn group_limit_splits_invocations() {
    let mut tree = mini_kernel();
    let mut patch = Patch::new();
    for path in [
        "drivers/net/e1000.c",
        "drivers/net/core.c",
        "kernel/sched.c",
    ] {
        let old = tree.get(path).unwrap().to_string();
        let new = old.replace("return", "return 2 +");
        patch.extend(diff_to_patch(path, &old, &new, &DiffOptions::default()).files);
        tree.insert(path, new);
    }
    let mut engine = BuildEngine::new(tree);
    let jmake = JMake::with_options(Options {
        group_limit: 1,
        ..Options::default()
    });
    let report = jmake.check_patch(&mut engine, &patch, "a");
    assert!(report.is_success());
    assert_eq!(report.i_invocations, 3);
}

#[test]
fn skip_dirs_are_ignored() {
    let mut tree = mini_kernel();
    tree.insert("Documentation/notes.c", "int doc;\n");
    let (tree, patch) = edit(tree, "Documentation/notes.c", "int doc = 1;\n");
    let report = check(tree, &patch);
    assert!(report.files.is_empty());
}

#[test]
fn changes_in_both_branches_never_succeed() {
    let (tree, patch) = edit(
        mini_kernel(),
        "kernel/sched.c",
        "#ifdef CONFIG_NET\nint with_net_changed;\n#else\nint without_net_changed;\n#endif\nint sched_tick(void)\n{\nreturn 0;\n}\n",
    );
    let report = check(tree, &patch);
    assert!(!report.is_success());
    let f = &report.files[0];
    // The #else side is uncertifiable under allyesconfig; the pair is
    // diagnosed as a both-branches change (Table IV row 5).
    assert!(
        f.uncovered
            .iter()
            .any(|u| u.reason == UncoveredReason::IfdefAndElse),
        "{report}"
    );
}

#[test]
fn coverage_configs_rescue_ifndef_and_else_branches() {
    // The paper (§VII): "JMake never succeeds for a file containing a
    // change that comprises changes under both an ifdef and the
    // corresponding else … JMake could be complemented with more
    // sophisticated configuration generation techniques." This is that
    // complement: flipping NET off covers the #else side and the #ifndef.
    let new = "\
#ifdef CONFIG_NET\nint with_net_changed;\n#else\nint without_net_changed;\n#endif\n\
#ifndef CONFIG_NET\nint no_net_fallback;\n#endif\n\
int sched_tick(void)\n{\nreturn 0;\n}\n";
    let (tree, patch) = edit(mini_kernel(), "kernel/sched.c", new);

    // Standard JMake: both the #else and the #ifndef stay dark.
    let standard = check(tree.clone(), &patch);
    assert!(!standard.is_success());
    assert!(standard.files[0].uncovered.len() >= 2, "{standard}");

    // With coverage-config generation: everything is certified.
    let mut engine = BuildEngine::new(tree);
    let jmake = JMake::with_options(Options {
        use_coverage_configs: true,
        ..Options::default()
    });
    let report = jmake.check_patch(&mut engine, &patch, "test author");
    assert!(report.is_success(), "{report}");
    // The rescuing targets are the synthesized cover configurations.
    assert!(
        report.files[0]
            .covered
            .iter()
            .any(|(_, d)| d.contains("custom:cover")),
        "{report}"
    );
}

#[test]
fn coverage_configs_enable_negatively_dependent_symbols() {
    // TINY depends on !NET: allyesconfig can never set it (Table IV row
    // 1). The coverage generator chases the negated dependency, flips NET
    // off, forces TINY on, and certifies the branch.
    let (tree, patch) = edit(
        mini_kernel(),
        "kernel/sched.c",
        "#ifdef CONFIG_TINY\nint tiny_path_changed;\n#endif\nint sched_tick(void)\n{\nreturn 0;\n}\n",
    );
    let standard = check(tree.clone(), &patch);
    assert!(!standard.is_success());
    assert_eq!(
        standard.files[0].uncovered[0].reason,
        UncoveredReason::IfdefNotSetByAllyesconfig
    );

    let mut engine = BuildEngine::new(tree);
    let jmake = JMake::with_options(Options {
        use_coverage_configs: true,
        ..Options::default()
    });
    let report = jmake.check_patch(&mut engine, &patch, "test author");
    assert!(report.is_success(), "{report}");
}

#[test]
fn timing_and_config_accounting() {
    let (tree, patch) = edit(
        mini_kernel(),
        "kernel/sched.c",
        "int sched_tick(void)\n{\nreturn 7;\n}\n",
    );
    let report = check(tree, &patch);
    assert!(report.elapsed_us > 0);
    assert!(report.config_creations >= 1);
    assert!(report.i_invocations >= 1);
}

#[test]
fn broken_cross_compiler_is_reported_not_fatal() {
    // arm64 exists in the tree but its cross-compiler does not work
    // (paper footnote 3). The file is under arch/arm64, so that is the
    // only candidate — JMake must surface the error, not hang or panic.
    let mut tree = mini_kernel();
    tree.insert("arch/arm64/Kconfig", "config ARM64\n\tdef_bool y\n");
    tree.insert("arch/arm64/kernel/Makefile", "obj-y += setup64.o\n");
    tree.insert("arch/arm64/kernel/setup64.c", "int s64;\n");
    let (tree, patch) = edit(tree, "arch/arm64/kernel/setup64.c", "int s64 = 1;\n");
    let report = check(tree, &patch);
    assert!(!report.is_success());
    let f = &report.files[0];
    assert_eq!(f.status, FileStatus::Uncovered);
    assert!(
        f.errors.iter().any(|e| e.contains("cross-compiler")),
        "{:?}",
        f.errors
    );
}

#[test]
fn missing_makefile_is_reported() {
    let mut tree = mini_kernel();
    tree.insert("orphan/lost.c", "int lost;\n");
    let (tree, patch) = edit(tree, "orphan/lost.c", "int lost = 1;\n");
    let report = check(tree, &patch);
    assert!(!report.is_success());
    let f = &report.files[0];
    // The .i was produced (so the mutation was seen), but no Makefile
    // covers the file, so the certifying .o can never be built.
    assert!(
        f.errors.iter().any(|e| e.contains("no Makefile")),
        "{report}"
    );
}

#[test]
fn arch_file_with_missing_kconfig_is_reported() {
    let mut tree = mini_kernel();
    // A file under an arch directory with no Kconfig at all.
    tree.insert("arch/mips/kernel/setup.c", "int mips_setup;\n");
    tree.insert("arch/mips/kernel/Makefile", "obj-y += setup.o\n");
    let (tree, patch) = edit(tree, "arch/mips/kernel/setup.c", "int mips_setup = 1;\n");
    let report = check(tree, &patch);
    assert!(!report.is_success());
    let f = &report.files[0];
    assert!(
        f.errors.iter().any(|e| e.contains("Kconfig")),
        "{:?}",
        f.errors
    );
}

#[test]
fn deleted_and_created_files_are_not_checked() {
    // --diff-filter=M semantics: only modifications are JMake's business.
    use jmake_diff::{ChangeKind, FilePatch};
    let tree = mini_kernel();
    let patch: Patch = vec![
        FilePatch {
            old_path: "drivers/net/gone.c".into(),
            new_path: "/dev/null".into(),
            kind: ChangeKind::Delete,
            hunks: vec![],
        },
        FilePatch {
            old_path: "drivers/net/new.c".into(),
            new_path: "drivers/net/new.c".into(),
            kind: ChangeKind::Create,
            hunks: vec![],
        },
    ]
    .into_iter()
    .collect();
    let report = check(tree, &patch);
    assert!(report.files.is_empty());
}

#[test]
fn header_over_candidate_threshold_uses_allyes_only() {
    // Force the threshold to zero: every header goes allyesconfig-only,
    // and certification still works through an including .c file.
    let (tree, patch) = edit(
        mini_kernel(),
        "include/linux/hw.h",
        "#ifndef _HW_H\n#define _HW_H\n#define HW_REG(n) ((n) << 5)\n#endif\n",
    );
    let mut engine = BuildEngine::new(tree);
    let jmake = JMake::with_options(Options {
        header_candidate_threshold: 0,
        ..Options::default()
    });
    let report = jmake.check_patch(&mut engine, &patch, "t");
    assert!(report.is_success(), "{report}");
    let h = &report.files[0];
    assert!(h.covered.iter().all(|(_, d)| d.ends_with("/allyesconfig")));
}

#[test]
fn naive_mutation_option_still_certifies() {
    let (tree, patch) = edit(
        mini_kernel(),
        "kernel/sched.c",
        "int sched_tick(void)\n{\nreturn 42;\n}\n",
    );
    let mut engine = BuildEngine::new(tree);
    let jmake = JMake::with_options(Options {
        naive_mutations: true,
        ..Options::default()
    });
    let report = jmake.check_patch(&mut engine, &patch, "t");
    assert!(report.is_success(), "{report}");
}

#[test]
fn report_display_is_actionable() {
    let (tree, patch) = edit(
        mini_kernel(),
        "kernel/sched.c",
        "#if 0\nint dead_code;\n#endif\nint sched_tick(void)\n{\nreturn 0;\n}\n",
    );
    let report = check(tree, &patch);
    let text = report.to_string();
    assert!(text.contains("ATTENTION"), "{text}");
    assert!(text.contains("#if 0"), "{text}");
    assert!(text.contains("kernel/sched.c"), "{text}");
}
